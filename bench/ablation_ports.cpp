// Ablation: per-cluster memory-port limits.  The paper's machine issues any
// mix into its slots; real VLIWs often restrict memory ports.  A single
// memory port per cluster penalises SCED (all loads and their duplicates
// fight for one port) more than the dual-cluster placements, and is a case
// where spreading memory ops buys MLP (§III-D).
#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader("ablation_ports — memory ports per cluster",
                         "design-choice ablation (issue slots vs ports)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const workloads::Workload wl = workloads::makeMpeg2dec(scale);

  TextTable table({"mem ports", "issue", "SCED", "DCED", "CASTED"});
  for (std::uint32_t ports : {0u, 2u, 1u}) {
    for (std::uint32_t iw : {2u, 4u}) {
      arch::MachineConfig machine = arch::makePaperMachine(iw, 1);
      machine.memPortsPerCluster = ports;
      const double noed = static_cast<double>(benchutil::runCycles(
          wl.program, machine, passes::Scheme::kNoed));
      auto slowdown = [&](passes::Scheme scheme) {
        return static_cast<double>(
                   benchutil::runCycles(wl.program, machine, scheme)) /
               noed;
      };
      table.addRow({ports == 0 ? "unlimited" : std::to_string(ports),
                    std::to_string(iw),
                    formatFixed(slowdown(passes::Scheme::kSced), 2),
                    formatFixed(slowdown(passes::Scheme::kDced), 2),
                    formatFixed(slowdown(passes::Scheme::kCasted), 2)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: tightening the memory ports raises SCED's\n"
              "slowdown (duplicated loads serialise on one port) while the\n"
              "spread placements keep using both clusters' ports.\n");
  return 0;
}
