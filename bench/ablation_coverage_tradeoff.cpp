// Ablation: the coverage/performance trade-off of reduced checking.
// Related work (Shoestring, compiler-assisted ED — paper Table III) cuts
// overhead by checking fewer instructions; Algorithm 1 checks every
// non-replicated instruction.  This bench removes check classes one at a
// time and shows what each buys in cycles and costs in silent corruption.
#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_coverage_tradeoff — what each check class buys",
      "context for Table III (full checking vs partial redundancy)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 200);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  const workloads::Workload wl = workloads::makeH263dec(scale);

  struct Mode {
    const char* name;
    bool checkStores;
    bool checkControlFlow;
  };
  const Mode modes[] = {
      {"full (Algorithm 1)", true, true},
      {"stores only (SWIFT-like)", true, false},
      {"control flow only", false, true},
      {"duplication only, no checks", false, false},
  };

  core::PipelineOptions base;
  base.verifyAfterPasses = false;
  const core::CompiledProgram noed =
      core::compile(wl.program, machine, passes::Scheme::kNoed, base);
  const sim::RunResult noedRun = core::run(noed);

  TextTable table({"checking", "checks", "slowdown", "detected",
                   "exception", "data-corrupt"});
  for (const Mode& mode : modes) {
    core::PipelineOptions options = base;
    options.errorDetection.checkStores = mode.checkStores;
    options.errorDetection.checkControlFlow = mode.checkControlFlow;
    const core::CompiledProgram bin = core::compile(
        wl.program, machine, passes::Scheme::kCasted, options);
    const sim::RunResult run = core::run(bin);

    fault::CampaignOptions campaignOptions;
    campaignOptions.trials = trials;
    campaignOptions.originalDefInsns = noedRun.stats.dynamicDefInsns;
    const fault::CoverageReport report =
        core::campaign(bin, campaignOptions);

    table.addRow(
        {mode.name,
         std::to_string(bin.report.stat("error-detection", "checks")),
         formatFixed(static_cast<double>(run.stats.cycles) /
                         static_cast<double>(noedRun.stats.cycles),
                     2),
         formatPercent(report.fraction(fault::Outcome::kDetected)),
         formatPercent(report.fraction(fault::Outcome::kException)),
         formatPercent(report.fraction(fault::Outcome::kDataCorrupt))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: store checks are the last line of defence — dropping\n"
      "them converts detections into silent corruption; dropping branch\n"
      "checks converts a smaller share (wrong-direction branches usually\n"
      "still corrupt a store operand later, or trap).  CASTED keeps full\n"
      "checking and wins the overhead back through placement instead.\n");
  return 0;
}
