// Shared helpers for the figure/table reproduction binaries.
//
// Every bench accepts environment overrides so the full-size experiments can
// be run without recompiling:
//   CASTED_SCALE   workload scale factor        (default per bench)
//   CASTED_TRIALS  Monte Carlo trials per point (default per bench)
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "core/pipeline.h"
#include "support/check.h"
#include "support/env.h"
#include "support/statistics.h"
#include "support/table.h"
#include "workloads/workloads.h"

namespace casted::benchutil {

// Validated environment parsing lives in support/env.h; the old local
// strtoul-based parser silently accepted junk ("1e6" -> 1) and wrapped
// out-of-range values.
using casted::envU32;

// Cycles for one (workload, machine, scheme) point.
inline std::uint64_t runCycles(const ir::Program& program,
                               const arch::MachineConfig& machine,
                               passes::Scheme scheme) {
  core::PipelineOptions options;
  options.verifyAfterPasses = false;  // verified by the test suite
  const core::CompiledProgram bin =
      core::compile(program, machine, scheme, options);
  const sim::RunResult result = core::run(bin);
  CASTED_CHECK(result.exit == sim::ExitKind::kHalted &&
               result.exitCode == 0)
      << "bench run did not halt cleanly";
  return result.stats.cycles;
}

inline void printHeader(const char* title, const char* paperRef) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paperRef);
  std::printf("================================================================\n\n");
}

}  // namespace casted::benchutil
