// Component micro-benchmarks (google-benchmark): throughput of the
// error-detection pass, BUG assignment, list scheduler, cache model and the
// simulator itself — the numbers that bound how big an experiment grid is
// practical.
#include <benchmark/benchmark.h>

#include "core/pipeline.h"
#include "dfg/dfg.h"
#include "fault/campaign.h"
#include "passes/assignment.h"
#include "passes/error_detection.h"
#include "sched/list_scheduler.h"
#include "sim/cache.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace casted;

void BM_ErrorDetectionPass(benchmark::State& state) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  std::size_t insns = 0;
  for (auto _ : state) {
    ir::Program copy = wl.program;
    const passes::ErrorDetectionStats stats =
        passes::applyErrorDetection(copy);
    benchmark::DoNotOptimize(stats.totalInserted());
    insns = copy.insnCount();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(insns));
}
BENCHMARK(BM_ErrorDetectionPass);

void BM_BugAssignment(benchmark::State& state) {
  workloads::Workload wl = workloads::makeH263dec(1);
  passes::applyErrorDetection(wl.program);
  const arch::MachineConfig machine = arch::makePaperMachine(
      static_cast<std::uint32_t>(state.range(0)), 2);
  for (auto _ : state) {
    const passes::AssignmentStats stats = passes::assignClusters(
        wl.program, machine, passes::Scheme::kCasted);
    benchmark::DoNotOptimize(stats.offCluster0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wl.program.insnCount()));
}
BENCHMARK(BM_BugAssignment)->Arg(1)->Arg(4);

void BM_ListScheduler(benchmark::State& state) {
  workloads::Workload wl = workloads::makeCjpeg(1);
  passes::applyErrorDetection(wl.program);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  passes::assignClusters(wl.program, machine, passes::Scheme::kCasted);
  for (auto _ : state) {
    const sched::ProgramSchedule schedule =
        sched::scheduleProgram(wl.program, machine);
    benchmark::DoNotOptimize(schedule.functions.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wl.program.insnCount()));
}
BENCHMARK(BM_ListScheduler);

void BM_CacheHierarchyAccess(benchmark::State& state) {
  arch::CacheConfig config;
  sim::CacheHierarchy caches(config);
  Rng rng(1);
  // Working set sized by the arg (KiB) to sweep hit levels.
  const std::uint64_t span = static_cast<std::uint64_t>(state.range(0)) << 10;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    sum += caches.access(0x10000 + (rng.next() % span));
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess)->Arg(8)->Arg(128)->Arg(2048)->Arg(8192);

void BM_SimulatorThroughput(benchmark::State& state) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 1);
  core::PipelineOptions options;
  options.verifyAfterPasses = false;
  const core::CompiledProgram bin = core::compile(
      wl.program, machine,
      static_cast<passes::Scheme>(state.range(0)), options);
  std::uint64_t dyn = 0;
  for (auto _ : state) {
    const sim::RunResult result = core::run(bin);
    benchmark::DoNotOptimize(result.stats.cycles);
    dyn = result.stats.dynamicInsns;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dyn));
  state.SetLabel("simulated-insns/s in items");
}
BENCHMARK(BM_SimulatorThroughput)
    ->Arg(static_cast<int>(passes::Scheme::kNoed))
    ->Arg(static_cast<int>(passes::Scheme::kCasted));

void BM_FaultTrial(benchmark::State& state) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  core::PipelineOptions options;
  options.verifyAfterPasses = false;
  const core::CompiledProgram bin =
      core::compile(wl.program, machine, passes::Scheme::kCasted, options);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::CampaignOptions campaignOptions;
    campaignOptions.trials = 1;
    campaignOptions.seed = seed++;
    const fault::CoverageReport report =
        core::campaign(bin, campaignOptions);
    benchmark::DoNotOptimize(report.trials);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultTrial);

void BM_CompilePipeline(benchmark::State& state) {
  const workloads::Workload wl = workloads::makeH263enc(1);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  core::PipelineOptions options;
  options.verifyAfterPasses = false;
  for (auto _ : state) {
    const core::CompiledProgram bin = core::compile(
        wl.program, machine, passes::Scheme::kCasted, options);
    benchmark::DoNotOptimize(bin.program.insnCount());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompilePipeline);

}  // namespace

BENCHMARK_MAIN();
