// Ablation: the two CASTED design choices DESIGN.md calls out on top of
// plain Algorithm 2 — (a) the anticipated-communication penalty and (b) the
// per-block placement fallback.  Shows the mean CASTED slowdown across the
// full configuration grid for each combination, plus how often CASTED loses
// to the best fixed scheme (the paper's headline property).
#include <vector>

#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_bug — BUG anticipation & placement fallback",
      "design-choice ablation for §III-D (Algorithm 2)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::vector<workloads::Workload> suite = {
      workloads::makeH263dec(scale), workloads::makeH263enc(scale),
      workloads::makeMcf(scale)};

  TextTable table({"anticipation", "fallback", "mean slowdown",
                   "max slowdown", "losses vs best fixed"});
  for (std::uint32_t anticipation : {0u, 50u, 100u}) {
    for (bool fallback : {false, true}) {
      std::vector<double> slowdowns;
      int losses = 0;
      for (const workloads::Workload& wl : suite) {
        for (std::uint32_t iw : {1u, 2u, 4u}) {
          for (std::uint32_t delay : {1u, 2u, 4u}) {
            arch::MachineConfig machine = arch::makePaperMachine(iw, delay);
            const double noed = static_cast<double>(benchutil::runCycles(
                wl.program, machine, passes::Scheme::kNoed));
            const double sced =
                static_cast<double>(benchutil::runCycles(
                    wl.program, machine, passes::Scheme::kSced)) /
                noed;
            const double dced =
                static_cast<double>(benchutil::runCycles(
                    wl.program, machine, passes::Scheme::kDced)) /
                noed;
            machine.bugAnticipationPercent = anticipation;
            machine.bugPlacementFallback = fallback;
            const double casted =
                static_cast<double>(benchutil::runCycles(
                    wl.program, machine, passes::Scheme::kCasted)) /
                noed;
            slowdowns.push_back(casted);
            if (casted > 1.02 * std::min(sced, dced)) {
              ++losses;
            }
          }
        }
      }
      const SampleSummary s = summarize(slowdowns);
      table.addRow({std::to_string(anticipation) + "%",
                    fallback ? "on" : "off", formatFixed(s.mean, 3),
                    formatFixed(s.max, 2),
                    std::to_string(losses) + "/" +
                        std::to_string(slowdowns.size())});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: plain greedy BUG (0%%, off) over-spreads on high-delay\n"
      "machines and loses to SCED; anticipation prices the return trip and\n"
      "the fallback guarantees 'CASTED at least matches the best fixed\n"
      "scheme' (§IV-B6) by construction.\n");
  return 0;
}
