// Ablation: binary-only library functions (§IV-C).  The paper attributes
// the residual data-corruption of the protected binaries to faults landing
// in system-library code the compiler cannot see.  We reproduce it by
// un-protecting vpr's helper routine and watching corruption reappear —
// and disappear again once the "library" is compiled with CASTED.
#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_library — unprotected library functions leak corruption",
      "fault-coverage discussion of §IV-C (system libraries)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 120);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);

  TextTable table({"helper 'span'", "detected", "exception", "data-corrupt",
                   "benign"});
  for (bool protectHelper : {true, false}) {
    workloads::Workload wl = workloads::makeVpr(scale);
    wl.program.findFunction("span")->setProtected(protectHelper);

    core::PipelineOptions options;
    options.verifyAfterPasses = false;
    const core::CompiledProgram noed = core::compile(
        wl.program, machine, passes::Scheme::kNoed, options);
    const sim::RunResult noedRun = core::run(noed);
    const core::CompiledProgram bin = core::compile(
        wl.program, machine, passes::Scheme::kCasted, options);

    fault::CampaignOptions campaignOptions;
    campaignOptions.trials = trials;
    campaignOptions.originalDefInsns = noedRun.stats.dynamicDefInsns;
    const fault::CoverageReport report =
        core::campaign(bin, campaignOptions);

    table.addRow(
        {protectHelper ? "compiled with CASTED" : "binary-only (skipped)",
         formatPercent(report.fraction(fault::Outcome::kDetected)),
         formatPercent(report.fraction(fault::Outcome::kException)),
         formatPercent(report.fraction(fault::Outcome::kDataCorrupt)),
         formatPercent(report.fraction(fault::Outcome::kBenign))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: faults inside the unprotected helper bypass every check;\n"
      "the paper notes that related work excludes libraries from injection\n"
      "altogether, 'which is somewhat unrealistic', and that libraries can\n"
      "be protected too when their source is available — the first row.\n");
  return 0;
}
