// Table III: compiler-based error-detection schemes compared, extended with
// *measured* placement statistics from our pipeline, showing what "adaptive
// code placement" means concretely: CASTED migrates originals, duplicates
// AND checks between clusters as the configuration changes, while SCED/DCED
// placements are fixed.
#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader("table3_schemes — scheme comparison",
                         "Table III (compiler-based error detection schemes)");

  TextTable related({"scheme", "speed-up factors", "target architecture",
                     "code placement"});
  related.addRow({"EDDI", "-", "wide single-core", "fixed"});
  related.addRow({"SWIFT", "reduced checking points", "wide single-core",
                  "fixed"});
  related.addRow({"Shoestring", "partial redundancy", "single-core",
                  "fixed"});
  related.addRow({"Compiler-assisted ED", "partial redundancy",
                  "single-core", "fixed"});
  related.addRow({"SRMT", "partially synchronized threads", "dual-core",
                  "fixed"});
  related.addRow({"DAFT", "decoupled threads", "dual-core", "fixed"});
  related.addRow({"CASTED", "adaptivity", "tightly-coupled cores",
                  "adaptive"});
  std::printf("%s\n", related.render().c_str());

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const workloads::Workload wl = workloads::makeH263dec(scale);
  std::printf("Measured CASTED placement on %s (fractions of all "
              "instructions):\n",
              wl.name.c_str());
  TextTable placement({"issue", "delay", "off cluster 0",
                       "originals moved", "duplicates kept home",
                       "checks moved"});
  core::PipelineOptions options;
  options.verifyAfterPasses = false;
  for (std::uint32_t iw : {1u, 2u, 4u}) {
    for (std::uint32_t delay : {1u, 2u, 4u}) {
      const core::CompiledProgram bin = core::compile(
          wl.program, arch::makePaperMachine(iw, delay),
          passes::Scheme::kCasted, options);
      const pm::PipelineReport& report = bin.report;
      const double total =
          static_cast<double>(report.stat("assignment", "total"));
      auto frac = [&](const char* key) {
        return formatPercent(
            static_cast<double>(report.stat("assignment", key)) / total);
      };
      placement.addRow({std::to_string(iw), std::to_string(delay),
                        frac("off-cluster0"), frac("originals-moved"),
                        frac("duplicates-home"), frac("checks-moved")});
    }
  }
  std::printf("%s", placement.render().c_str());
  std::printf(
      "\nReading: the placement *changes with the configuration* — more\n"
      "spreading on narrow machines, collapse towards one cluster as the\n"
      "delay grows (paper §III-D: 'checks can migrate from one cluster to\n"
      "the other when appropriate').\n");
  return 0;
}
