// Figure 8: ILP scaling — how each scheme's performance scales as the
// per-cluster issue width grows (speedup over the same scheme at issue 1).
//
// The paper's reading: SCED usually scales *better* than NOED (the
// redundant code adds ILP), DCED starts ahead and flattens, and h263enc is
// the exception where dense checking makes SCED scale worse.
#include <vector>

#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "fig8_ilp_scaling — speedup vs issue width (delay = 1)",
      "Fig. 8 (benchmark ILP scaling)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::vector<workloads::Workload> suite =
      workloads::makeAllWorkloads(scale);

  CsvWriter csv({"benchmark", "scheme", "issue", "speedup"});
  for (const workloads::Workload& wl : suite) {
    std::printf("--- %s ---\n", wl.name.c_str());
    TextTable table({"scheme", "issue 1", "issue 2", "issue 3", "issue 4",
                     "scaling 1->4"});
    double noedScaling = 0.0;
    double scedScaling = 0.0;
    for (passes::Scheme scheme : passes::kAllSchemes) {
      std::vector<std::string> row = {schemeName(scheme)};
      double base = 0.0;
      double last = 0.0;
      for (std::uint32_t iw = 1; iw <= 4; ++iw) {
        const arch::MachineConfig machine = arch::makePaperMachine(iw, 1);
        const double cycles = static_cast<double>(
            benchutil::runCycles(wl.program, machine, scheme));
        if (iw == 1) {
          base = cycles;
        }
        last = base / cycles;
        row.push_back(formatFixed(last, 2));
        csv.addRow({wl.name, schemeName(scheme), std::to_string(iw),
                    formatFixed(last, 4)});
      }
      row.push_back(formatFixed(last, 2) + "x");
      table.addRow(std::move(row));
      if (scheme == passes::Scheme::kNoed) {
        noedScaling = last;
      }
      if (scheme == passes::Scheme::kSced) {
        scedScaling = last;
      }
    }
    std::printf("%s", table.render().c_str());
    std::printf("SCED scales %s than NOED here (paper: better in most "
                "benchmarks, worse for h263enc)\n\n",
                scedScaling >= noedScaling ? "better/equal" : "worse");
  }
  csv.writeFile("fig8.csv");
  std::printf("wrote fig8.csv\n");
  return 0;
}
