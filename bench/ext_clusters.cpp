// Extension study: more than two clusters.  The paper claims CASTED
// "optimizes for a wide range of core counts" but evaluates on two; here we
// sweep 1, 2 and 4 clusters.  The fixed schemes cannot use the extra
// clusters (SCED by definition, DCED uses exactly two); BUG distributes
// across all of them where the delay allows.
#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ext_clusters — scaling the cluster count (1 / 2 / 4)",
      "extension of §I ('wide range of core counts')");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  TextTable table({"benchmark", "delay", "clusters", "CASTED slowdown",
                   "off cluster 0"});
  CsvWriter csv({"benchmark", "delay", "clusters", "slowdown"});
  for (const workloads::Workload& wl :
       {workloads::makeCjpeg(scale), workloads::makeH263dec(scale),
        workloads::makeMpeg2dec(scale)}) {
    for (std::uint32_t delay : {1u, 4u}) {
      for (std::uint32_t clusters : {1u, 2u, 4u}) {
        arch::MachineConfig machine = arch::makePaperMachine(1, delay);
        machine.clusterCount = clusters;
        core::PipelineOptions options;
        options.verifyAfterPasses = false;
        const double noed = static_cast<double>(
            core::run(core::compile(wl.program, machine,
                                    passes::Scheme::kNoed, options))
                .stats.cycles);
        const core::CompiledProgram bin = core::compile(
            wl.program, machine, passes::Scheme::kCasted, options);
        const double casted =
            static_cast<double>(core::run(bin).stats.cycles) / noed;
        const double offHome =
            static_cast<double>(bin.report.stat("assignment", "off-cluster0")) /
            static_cast<double>(bin.report.stat("assignment", "total"));
        table.addRow({wl.name, std::to_string(delay),
                      std::to_string(clusters), formatFixed(casted, 2),
                      formatPercent(offHome)});
        csv.addRow({wl.name, std::to_string(delay),
                    std::to_string(clusters), formatFixed(casted, 4)});
      }
      table.addSeparator();
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: on single-issue clusters with a fast interconnect\n"
              "the third and fourth cluster keep absorbing error-detection\n"
              "work; with a slow interconnect the extra clusters stop\n"
              "paying and CASTED concentrates the code again.\n");
  csv.writeFile("ext_clusters.csv");
  std::printf("wrote ext_clusters.csv\n");
  return 0;
}
