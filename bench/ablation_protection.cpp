// Ablation: why the paper disables late CSE/DCE after the CASTED passes
// (§IV-A).  With protection off, local CSE folds one redundancy stream into
// the other (a duplicate is a textbook common subexpression of its
// original), coupling the two streams and gutting the fault coverage.
#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_protection — late CSE/DCE vs the replicated code",
      "methodology point of §IV-A (late optimisations disabled)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  const workloads::Workload wl = workloads::makeParser(scale);

  TextTable table({"late opts", "CSE folds", "insns", "NOED-rel cycles",
                   "detected", "data-corrupt"});
  for (int mode = 0; mode < 3; ++mode) {
    core::PipelineOptions options;
    options.verifyAfterPasses = false;
    options.runLateOptimisations = mode != 0;
    options.lateOpts.protectRedundant = mode != 2;

    const core::CompiledProgram noed = core::compile(
        wl.program, machine, passes::Scheme::kNoed, options);
    const sim::RunResult noedRun = core::run(noed);

    const core::CompiledProgram bin = core::compile(
        wl.program, machine, passes::Scheme::kCasted, options);
    const sim::RunResult run = core::run(bin);

    fault::CampaignOptions campaignOptions;
    campaignOptions.trials = trials;
    campaignOptions.originalDefInsns = noedRun.stats.dynamicDefInsns;
    const fault::CoverageReport report =
        core::campaign(bin, campaignOptions);

    const char* label = mode == 0   ? "off"
                        : mode == 1 ? "on, protected"
                                    : "on, UNPROTECTED";
    table.addRow(
        {label, std::to_string(bin.report.stat("local-cse", "cse-replaced")),
         std::to_string(bin.program.insnCount()),
         formatFixed(static_cast<double>(run.stats.cycles) /
                         static_cast<double>(noedRun.stats.cycles),
                     2),
         formatPercent(report.fraction(fault::Outcome::kDetected)),
         formatPercent(report.fraction(fault::Outcome::kDataCorrupt))});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: with protection, CSE only touches the original stream\n"
      "(few folds, coverage unchanged).  Without protection the fold count\n"
      "jumps — one redundancy stream is rewritten into copies of the other,\n"
      "so faults hitting the shared value before the copy pass every check;\n"
      "silent corruption becomes possible again (non-zero at high trial\n"
      "counts).  The paper avoids this by disabling the late stages, at\n"
      "<=1.5%% performance cost.\n");
  return 0;
}
