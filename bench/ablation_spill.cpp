// Ablation: register-pressure modelling (§IV-B1).  The duplicated shadow
// stream roughly doubles the live registers; on cjpeg's 8x8 DCT block that
// overflows the 64-entry GP file, so the protected binaries spill where the
// original does not — one of the paper's two explanations for the variation
// in SCED's slowdown.
#include "bench_util.h"
#include "dfg/liveness.h"
#include "ir/builder.h"

namespace {

// A kernel whose NOED pressure (~40 GP) fits the 64-entry file while the
// duplicated version (~80) does not — the cleanest §IV-B1 subject: ONLY the
// protected binaries spill.
casted::workloads::Workload makeMediumPressureKernel(std::uint32_t scale) {
  using namespace casted;
  workloads::Workload wl;
  wl.name = "filter40";
  wl.suite = "synthetic";
  ir::Program& prog = wl.program;
  const std::uint32_t rounds = 60 * scale;
  const std::uint64_t outAddr = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  ir::IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  ir::BasicBlock& loop = b.createBlock("loop");
  ir::BasicBlock& done = b.createBlock("done");
  b.setBlock(entry);
  const ir::Reg outBase = b.movImm(static_cast<std::int64_t>(outAddr));
  const ir::Reg i = b.movImm(0);
  const ir::Reg acc = b.movImm(0);
  b.br(loop);
  b.setBlock(loop);
  std::vector<ir::Reg> taps;
  for (int t = 0; t < 40; ++t) {
    taps.push_back(b.addImm(i, t * 7 + 1));
  }
  ir::Reg sum = taps[0];
  for (std::size_t t = 1; t < taps.size(); ++t) {
    sum = b.add(sum, b.mulImm(taps[t], static_cast<std::int64_t>(t)));
  }
  b.binaryTo(ir::Opcode::kAdd, acc, acc, sum);
  b.addImmTo(i, i, 1);
  const ir::Reg more = b.cmpLtImm(i, rounds);
  b.brCond(more, loop, done);
  b.setBlock(done);
  b.store(outBase, 0, acc);
  b.halt(b.movImm(0));
  return wl;
}

}  // namespace

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_spill — register pressure and spilling",
      "the §IV-B1 spilling effect (duplication doubles register pressure)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);

  std::printf("Register pressure (max simultaneously-live GP registers; "
              "file size is 64 per cluster):\n");
  TextTable pressure({"benchmark", "NOED", "after duplication"});
  for (const workloads::Workload& wl : workloads::makeAllWorkloads(scale)) {
    ir::Program duplicated = wl.program;
    passes::applyErrorDetection(duplicated);
    pressure.addRow({wl.name,
                     std::to_string(dfg::maxPressure(wl.program)[0]),
                     std::to_string(dfg::maxPressure(duplicated)[0])});
  }
  std::printf("%s\n", pressure.render().c_str());

  std::printf("Slowdown with the capacity model on (spilling) vs off, "
              "issue 2 / delay 1:\n");
  TextTable table({"benchmark", "scheme", "spilled regs", "no-spill",
                   "with spilling"});
  const arch::MachineConfig machine = arch::makePaperMachine(2, 1);
  for (const workloads::Workload& wl :
       {makeMediumPressureKernel(scale), workloads::makeCjpeg(scale),
        workloads::makeMpeg2dec(scale)}) {
    core::PipelineOptions noSpill;
    noSpill.verifyAfterPasses = false;
    core::PipelineOptions withSpill = noSpill;
    withSpill.modelRegisterPressure = true;

    const double noedPlain = static_cast<double>(
        core::run(core::compile(wl.program, machine, passes::Scheme::kNoed,
                                noSpill))
            .stats.cycles);
    const double noedSpill = static_cast<double>(
        core::run(core::compile(wl.program, machine, passes::Scheme::kNoed,
                                withSpill))
            .stats.cycles);
    for (passes::Scheme scheme :
         {passes::Scheme::kSced, passes::Scheme::kCasted}) {
      const core::CompiledProgram plain =
          core::compile(wl.program, machine, scheme, noSpill);
      const core::CompiledProgram spilled =
          core::compile(wl.program, machine, scheme, withSpill);
      table.addRow(
          {wl.name, schemeName(scheme),
           std::to_string(spilled.report.stat("spill", "spilled-regs")),
           formatFixed(static_cast<double>(core::run(plain).stats.cycles) /
                           noedPlain,
                       2),
           formatFixed(
               static_cast<double>(core::run(spilled).stats.cycles) /
                   noedSpill,
               2)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: filter40 is the clean §IV-B1 case — the original fits the\n"
      "file, only the protected binaries spill, so their slowdown rises.\n"
      "cjpeg/mpeg2dec overflow the file even unprotected, so NOED spills\n"
      "too and the *ratio* can move either way while absolute cycles grow.\n"
      "Spill code is compiler-generated: neither replicated nor checked.\n");
  return 0;
}
