// Figures 6 & 7: performance of SCED / DCED / CASTED normalized to NOED for
// every benchmark, issue widths 1-4 x inter-cluster delays 1-4.
//
// Also prints the paper's §IV-B headline aggregates: the SCED / DCED /
// CASTED slowdown ranges and averages, and CASTED's best improvement over
// the better fixed scheme.  A CSV (fig6_7.csv) is written next to the
// binary for plotting.
#include <vector>

#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "fig6_7_performance — slowdown vs NOED across configurations",
      "Figs. 6 and 7 (performance, all benchmarks, issue 1-4, delay 1-4)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::vector<workloads::Workload> suite =
      workloads::makeAllWorkloads(scale);

  CsvWriter csv({"benchmark", "issue", "delay", "scheme", "cycles",
                 "slowdown"});
  std::vector<double> scedAll;
  std::vector<double> dcedAll;
  std::vector<double> castedAll;
  double bestImprovement = 0.0;
  std::string bestImprovementWhere;

  for (const workloads::Workload& wl : suite) {
    std::printf("--- %s (%s) ---\n", wl.name.c_str(), wl.suite.c_str());
    TextTable table({"issue", "delay", "SCED", "DCED", "CASTED",
                     "CASTED vs best fixed"});
    for (std::uint32_t iw = 1; iw <= 4; ++iw) {
      for (std::uint32_t delay = 1; delay <= 4; ++delay) {
        const arch::MachineConfig machine =
            arch::makePaperMachine(iw, delay);
        const double noed = static_cast<double>(benchutil::runCycles(
            wl.program, machine, passes::Scheme::kNoed));
        auto slowdown = [&](passes::Scheme scheme) {
          const std::uint64_t cycles =
              benchutil::runCycles(wl.program, machine, scheme);
          csv.addRow({wl.name, std::to_string(iw), std::to_string(delay),
                      schemeName(scheme), std::to_string(cycles),
                      formatFixed(static_cast<double>(cycles) / noed, 4)});
          return static_cast<double>(cycles) / noed;
        };
        const double sced = slowdown(passes::Scheme::kSced);
        const double dced = slowdown(passes::Scheme::kDced);
        const double casted = slowdown(passes::Scheme::kCasted);
        scedAll.push_back(sced);
        dcedAll.push_back(dced);
        castedAll.push_back(casted);
        const double bestFixed = std::min(sced, dced);
        const double improvement = (bestFixed - casted) / bestFixed;
        if (improvement > bestImprovement) {
          bestImprovement = improvement;
          bestImprovementWhere = wl.name + " issue " + std::to_string(iw) +
                                 " delay " + std::to_string(delay);
        }
        table.addRow({std::to_string(iw), std::to_string(delay),
                      formatFixed(sced, 2), formatFixed(dced, 2),
                      formatFixed(casted, 2), formatPercent(improvement)});
      }
      table.addSeparator();
    }
    std::printf("%s\n", table.render().c_str());
  }

  const SampleSummary sced = summarize(scedAll);
  const SampleSummary dced = summarize(dcedAll);
  const SampleSummary casted = summarize(castedAll);

  std::printf("=== §IV-B headline aggregates (paper values in brackets) ===\n");
  TextTable summary({"scheme", "min", "max", "mean", "paper min..max (mean)"});
  summary.addRow({"SCED", formatFixed(sced.min, 2), formatFixed(sced.max, 2),
                  formatFixed(sced.mean, 2), "1.34..2.22 (1.70)"});
  summary.addRow({"DCED", formatFixed(dced.min, 2), formatFixed(dced.max, 2),
                  formatFixed(dced.mean, 2), "1.31..3.32 (2.10)"});
  summary.addRow({"CASTED", formatFixed(casted.min, 2),
                  formatFixed(casted.max, 2), formatFixed(casted.mean, 2),
                  "1.19..2.10 (1.58)"});
  std::printf("%s\n", summary.render().c_str());
  std::printf("CASTED best win over best fixed scheme: %s at %s "
              "(paper: up to 21.2%%, cjpeg issue 2 delay 3)\n",
              formatPercent(bestImprovement).c_str(),
              bestImprovementWhere.c_str());
  std::printf("CASTED mean slowdown reduction: %s vs SCED, %s vs DCED "
              "(paper: 7.5%% and 24.7%%)\n",
              formatPercent((sced.mean - casted.mean) / sced.mean).c_str(),
              formatPercent((dced.mean - casted.mean) / dced.mean).c_str());

  csv.writeFile("fig6_7.csv");
  std::printf("\nwrote fig6_7.csv\n");
  return 0;
}
