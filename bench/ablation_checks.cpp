// Ablation: fused compare-and-trap checks (our default, 1 issue slot) vs
// the paper's literal compare + jump pairs (2 slots, a serial chain).
// Split checks raise every scheme's overhead and push the numbers towards
// the paper's magnitudes; the effect is largest for the check-dense
// benchmarks (h263enc, parser) — the Amdahl's-law argument of §IV-B2.
#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "ablation_checks — fused vs split (cmp+jump) checks",
      "check-cost ablation for Algorithm 1 step iii");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  TextTable table({"benchmark", "checks", "issue", "SCED fused",
                   "SCED split", "DCED fused", "DCED split", "CASTED fused",
                   "CASTED split"});
  for (const workloads::Workload& wl :
       {workloads::makeH263enc(scale), workloads::makeParser(scale),
        workloads::makeH263dec(scale)}) {
    for (std::uint32_t iw : {1u, 2u}) {
      const arch::MachineConfig machine = arch::makePaperMachine(iw, 1);
      core::PipelineOptions fused;
      fused.verifyAfterPasses = false;
      core::PipelineOptions split = fused;
      split.errorDetection.splitChecks = true;

      const double noed = static_cast<double>(benchutil::runCycles(
          wl.program, machine, passes::Scheme::kNoed));
      auto slowdown = [&](passes::Scheme scheme,
                          const core::PipelineOptions& options) {
        const core::CompiledProgram bin =
            core::compile(wl.program, machine, scheme, options);
        const sim::RunResult result = core::run(bin);
        return static_cast<double>(result.stats.cycles) / noed;
      };
      const core::CompiledProgram probe = core::compile(
          wl.program, machine, passes::Scheme::kSced, fused);
      table.addRow(
          {wl.name,
           std::to_string(probe.report.stat("error-detection", "checks")),
           std::to_string(iw),
           formatFixed(slowdown(passes::Scheme::kSced, fused), 2),
           formatFixed(slowdown(passes::Scheme::kSced, split), 2),
           formatFixed(slowdown(passes::Scheme::kDced, fused), 2),
           formatFixed(slowdown(passes::Scheme::kDced, split), 2),
           formatFixed(slowdown(passes::Scheme::kCasted, fused), 2),
           formatFixed(slowdown(passes::Scheme::kCasted, split), 2)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: split checks cost one extra slot and one extra\n"
              "dependence level per checked register; check-dense code\n"
              "becomes more serial (the paper's explanation for h263enc's\n"
              "poor SCED scaling).\n");
  return 0;
}
