// Table I: the processor configuration, printed from the live machine model
// (so this table can never drift from what the simulator actually uses).
#include "bench_util.h"

int main() {
  using namespace casted;
  benchutil::printHeader("table1_config — processor configuration",
                         "Table I (IA64-style clustered VLIW)");

  const arch::MachineConfig machine = arch::makePaperMachine(2, 1);

  TextTable processor({"parameter", "value"});
  processor.addRow({"Clusters", std::to_string(machine.clusterCount)});
  processor.addRow({"Issue width", "configurable (1-4 per cluster)"});
  processor.addRow({"Inter-cluster delay", "configurable (1-4 cycles)"});
  processor.addRow(
      {"Register file (per cluster)",
       std::to_string(machine.registerFile.gp) + "GP, " +
           std::to_string(machine.registerFile.fp) + "FP, " +
           std::to_string(machine.registerFile.pr) + "PR"});
  processor.addRow({"Branch prediction", "perfect"});
  processor.addRow({"Int ALU / mul / div latency",
                    std::to_string(machine.latencies.intAlu) + " / " +
                        std::to_string(machine.latencies.intMul) + " / " +
                        std::to_string(machine.latencies.intDiv)});
  processor.addRow({"FP ALU / mul / div latency",
                    std::to_string(machine.latencies.fpAlu) + " / " +
                        std::to_string(machine.latencies.fpMul) + " / " +
                        std::to_string(machine.latencies.fpDiv)});
  std::printf("%s\n", processor.render().c_str());

  TextTable cache({"level", "size", "block", "assoc", "latency",
                   "non-blocking"});
  for (const arch::CacheLevelConfig& level : machine.cache.levels) {
    cache.addRow({level.name, std::to_string(level.sizeBytes / 1024) + "K",
                  std::to_string(level.blockBytes) + "B",
                  std::to_string(level.associativity) + "-way",
                  std::to_string(level.latency), "yes (per-bundle MLP)"});
  }
  cache.addRow({"Main", "inf", "-", "-",
                std::to_string(machine.cache.memoryLatency), "-"});
  std::printf("%s\n", cache.render().c_str());

  TextTable benchmarks({"MediaBench II video", "SPEC CINT2000"});
  benchmarks.addRow({"cjpeg", "175.vpr"});
  benchmarks.addRow({"h263dec", "181.mcf"});
  benchmarks.addRow({"mpeg2dec", "197.parser"});
  benchmarks.addRow({"h263enc", "-"});
  std::printf("Table II — benchmark programs (re-authored kernels, see "
              "DESIGN.md §4):\n%s\n",
              benchmarks.render().c_str());
  return 0;
}
