// Figures 2 & 3: the motivating examples, rendered as actual bundle
// schedules from our scheduler.
//
// Example 1 (Fig. 2): single-issue clusters, delay 1 — the single core is
// resource constrained, DCED beats SCED, CASTED at least matches DCED.
// Example 2 (Fig. 3): two-wide clusters, higher delay — DCED pays
// communication on every check, SCED beats DCED, CASTED tracks SCED.
#include "bench_util.h"
#include "dfg/dfg.h"
#include "ir/builder.h"
#include "sched/list_scheduler.h"

namespace {

using namespace casted;

// The running example of §II-B: a small expression DAG feeding one
// non-replicated store.
ir::Program motivatingProgram() {
  ir::Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  ir::IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const ir::Reg base = b.movImm(
      static_cast<std::int64_t>(prog.symbol("output").address));
  const ir::Reg a = b.addImm(base, 3);        // A
  const ir::Reg c1 = b.addImm(base, 5);       // B
  const ir::Reg c2 = b.addImm(base, 7);       // C
  const ir::Reg d = b.add(b.add(a, c1), c2);  // D
  b.store(base, 0, d);                        // non-replicated store
  b.halt(b.movImm(0));
  return prog;
}

void showExample(const char* title, std::uint32_t issueWidth,
                 std::uint32_t delay) {
  std::printf("#### %s (issue %u per cluster, delay %u) ####\n\n", title,
              issueWidth, delay);
  const arch::MachineConfig machine =
      arch::makePaperMachine(issueWidth, delay);
  const ir::Program source = motivatingProgram();

  TextTable verdict({"scheme", "block cycles"});
  std::uint64_t sced = 0;
  std::uint64_t dced = 0;
  std::uint64_t casted = 0;
  for (passes::Scheme scheme : passes::kAllSchemes) {
    core::PipelineOptions options;
    options.runLateOptimisations = false;  // keep the example verbatim
    const core::CompiledProgram bin =
        core::compile(source, machine, scheme, options);
    const sched::BlockSchedule& schedule =
        bin.schedule.functions[0].blocks[0];
    std::printf("%s schedule:\n%s\n", schemeName(scheme),
                schedule.render(bin.program.function(0).block(0),
                                machine.clusterCount, machine.issueWidth)
                    .c_str());
    verdict.addRow({schemeName(scheme), std::to_string(schedule.length)});
    switch (scheme) {
      case passes::Scheme::kSced:
        sced = schedule.length;
        break;
      case passes::Scheme::kDced:
        dced = schedule.length;
        break;
      case passes::Scheme::kCasted:
        casted = schedule.length;
        break;
      default:
        break;
    }
  }
  std::printf("%s", verdict.render().c_str());
  std::printf("winner among fixed schemes: %s;  CASTED %s the best fixed\n\n",
              sced < dced ? "SCED" : "DCED",
              casted < std::min(sced, dced)
                  ? "beats"
                  : (casted == std::min(sced, dced) ? "matches" : "LOSES TO"));
}

}  // namespace

int main() {
  benchutil::printHeader(
      "fig2_3_motivating — the paper's motivating schedules",
      "Figs. 2 and 3 (DCED wins when resource constrained; SCED wins when "
      "the delay dominates; CASTED adapts)");
  showExample("Example 1 / Fig. 2", 1, 1);
  showExample("Example 2 / Fig. 3", 2, 3);
  return 0;
}
