// Ground-truth audit: how much does Monte Carlo sampling error matter?
//
// For every scheme, enumerates the complete fault-site space of one
// workload (the exact per-trial outcome distribution), runs the sampled
// campaign at the configured trial count, and reports the exact SDC
// probability next to the estimate and its 99% Wilson interval — plus the
// static ProtectionLint's gap count, the third view of the same question.
// The "in99" column must read "yes" everywhere: it is the convergence
// contract tests/exhaustive_ground_truth_test.cpp enforces, evaluated here
// on a full workload instead of the test-sized ones.
//
//   CASTED_SCALE=1 CASTED_TRIALS=300 CASTED_THREADS=0 \
//     ./build/bench/ground_truth_audit [workload]
#include "bench_util.h"

#include "fault/exhaustive.h"
#include "passes/protection_lint.h"

using namespace casted;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "parser";
  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  const std::uint32_t threads = benchutil::envU32("CASTED_THREADS", 0);

  benchutil::printHeader(
      "ground-truth audit: exhaustive enumeration vs Monte Carlo vs lint",
      "the sampling methodology behind Fig. 9/10 (paper SIV-C)");

  const workloads::Workload wl = workloads::makeWorkload(name, scale);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  std::printf("workload %s (scale %u), %u MC trials, one flip per trial\n\n",
              wl.name.c_str(), scale, trials);

  TextTable table({"scheme", "sites", "exact-sdc", "lint-gaps", "mc-sdc",
                   "wilson99", "in99"});
  for (const passes::Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(wl.program, machine, scheme);

    fault::ExhaustiveOptions exhaustive;
    exhaustive.threads = threads;
    const fault::GroundTruthReport truth =
        core::groundTruth(bin, exhaustive);
    const double exact =
        truth.mcProbabilityOf(fault::Outcome::kDataCorrupt);

    fault::CampaignOptions mc;
    mc.trials = trials;
    mc.threads = threads;
    mc.originalDefInsns = 0;  // one flip per trial: the measure `truth` states
    const fault::CoverageReport report = core::campaign(bin, mc);
    const std::uint64_t sdc =
        report.counts[static_cast<int>(fault::Outcome::kDataCorrupt)];
    const ProportionInterval interval = wilsonInterval(sdc, report.trials);

    const passes::ProtectionLintResult lint =
        passes::lintProtection(bin.program, scheme);
    table.addRow({passes::schemeName(scheme), std::to_string(truth.sites),
                  formatPercent(exact), std::to_string(lint.gaps()),
                  formatPercent(report.fraction(fault::Outcome::kDataCorrupt)),
                  "[" + formatPercent(interval.low) + ", " +
                      formatPercent(interval.high) + "]",
                  interval.contains(exact) ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "exact-sdc is free of sampling error; mc-sdc at %u trials must land\n"
      "inside its own Wilson interval around it.  lint-gaps counts def sites\n"
      "the static analysis cannot prove protected — every site outside that\n"
      "set contributes zero to exact-sdc by the soundness contract.\n",
      trials);
  return 0;
}
