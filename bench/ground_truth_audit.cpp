// Ground-truth audit: how much does Monte Carlo sampling error matter, and
// how much does checkpoint-and-diverge injection cost to answer exactly?
//
// For every scheme, enumerates the complete fault-site space of one
// workload TWICE — once re-running every site from program start
// (InjectionMode::kFull, the oracle) and once with golden-prefix checkpoint
// restore plus the reconvergence cutoff (kCheckpointed) — and reports wall
// time, sites/second and the speedup, verifying the two reports agree site
// for site.  Then the usual audit: the exact SDC probability next to the
// sampled campaign's estimate and its 99% Wilson interval, plus the static
// ProtectionLint's gap count.  The "in99" column must read "yes"
// everywhere: it is the convergence contract
// tests/exhaustive_ground_truth_test.cpp enforces, evaluated here on a full
// workload instead of the test-sized ones.
//
// Timing and identity results are written to BENCH_ground_truth.json
// (override the path with CASTED_BENCH_JSON).
//
//   CASTED_SCALE=1 CASTED_TRIALS=300 CASTED_THREADS=0 \
//     ./build/bench/ground_truth_audit [workload]
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

#include "fault/exhaustive.h"
#include "passes/protection_lint.h"
#include "support/trace.h"

using namespace casted;

namespace {

struct ModeSample {
  double wallMs = 0.0;
  double sitesPerSec = 0.0;
  fault::GroundTruthReport report;
};

ModeSample measure(const core::CompiledProgram& bin, fault::InjectionMode mode,
                   std::uint32_t threads) {
  fault::ExhaustiveOptions options;
  options.threads = threads;
  options.mode = mode;
  const auto start = std::chrono::steady_clock::now();
  ModeSample sample;
  sample.report = core::groundTruth(bin, options);
  sample.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  sample.sitesPerSec =
      sample.wallMs <= 0.0
          ? 0.0
          : static_cast<double>(sample.report.sites) / (sample.wallMs / 1000.0);
  return sample;
}

// Site-for-site agreement between the two modes.  The integer site counts
// must match exactly; the mcMass doubles are summed in worker order and are
// checked by the test layer with an epsilon instead.
bool reportsIdentical(const fault::GroundTruthReport& a,
                      const fault::GroundTruthReport& b) {
  if (a.defInsns != b.defInsns || a.sites != b.sites || a.counts != b.counts ||
      a.perInsn.size() != b.perInsn.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.perInsn.size(); ++i) {
    if (a.perInsn[i].insn != b.perInsn[i].insn ||
        a.perInsn[i].counts != b.perInsn[i].counts) {
      return false;
    }
  }
  return true;
}

struct SchemeRow {
  std::string scheme;
  ModeSample full;
  ModeSample checkpointed;
  bool identical = false;
};

void writeJson(const std::string& path, const std::string& workload,
               std::uint32_t scale, std::uint32_t threads,
               const std::vector<SchemeRow>& rows) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("(could not write %s)\n", path.c_str());
    return;
  }
  double fullMs = 0.0;
  double checkpointedMs = 0.0;
  bool allIdentical = true;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"ground_truth_audit\",\n");
  std::fprintf(out, "  \"workload\": \"%s\",\n", workload.c_str());
  std::fprintf(out, "  \"scale\": %u,\n", scale);
  std::fprintf(out, "  \"threads\": %u,\n", threads);
  std::fprintf(out, "  \"schemes\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SchemeRow& row = rows[i];
    fullMs += row.full.wallMs;
    checkpointedMs += row.checkpointed.wallMs;
    allIdentical = allIdentical && row.identical;
    const double speedup = row.checkpointed.wallMs <= 0.0
                               ? 0.0
                               : row.full.wallMs / row.checkpointed.wallMs;
    std::fprintf(out, "    \"%s\": {\n", row.scheme.c_str());
    std::fprintf(out, "      \"sites\": %llu,\n",
                 static_cast<unsigned long long>(row.full.report.sites));
    std::fprintf(out,
                 "      \"full\": {\"wall_ms\": %.3f, "
                 "\"sites_per_sec\": %.0f},\n",
                 row.full.wallMs, row.full.sitesPerSec);
    std::fprintf(out,
                 "      \"checkpointed\": {\"wall_ms\": %.3f, "
                 "\"sites_per_sec\": %.0f},\n",
                 row.checkpointed.wallMs, row.checkpointed.sitesPerSec);
    std::fprintf(out, "      \"speedup\": %.3f,\n", speedup);
    std::fprintf(out, "      \"reports_identical\": %s\n",
                 row.identical ? "true" : "false");
    std::fprintf(out, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"total_full_ms\": %.3f,\n", fullMs);
  std::fprintf(out, "  \"total_checkpointed_ms\": %.3f,\n", checkpointedMs);
  std::fprintf(out, "  \"total_speedup\": %.3f,\n",
               checkpointedMs <= 0.0 ? 0.0 : fullMs / checkpointedMs);
  std::fprintf(out, "  \"reports_identical\": %s\n",
               allIdentical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "parser";
  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  const std::uint32_t threads = benchutil::envU32("CASTED_THREADS", 0);
  const char* jsonEnv = std::getenv("CASTED_BENCH_JSON");
  const std::string jsonPath =
      (jsonEnv != nullptr && *jsonEnv != '\0') ? jsonEnv
                                               : "BENCH_ground_truth.json";

  benchutil::printHeader(
      "ground-truth audit: exhaustive enumeration vs Monte Carlo vs lint",
      "the sampling methodology behind Fig. 9/10 (paper SIV-C)");

  const workloads::Workload wl = workloads::makeWorkload(name, scale);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  std::printf("workload %s (scale %u), %u MC trials, one flip per trial\n\n",
              wl.name.c_str(), scale, trials);

  std::vector<SchemeRow> rows;
  TextTable timing({"scheme", "sites", "full ms", "ckpt ms", "Ksites/s full",
                    "Ksites/s ckpt", "speedup", "identical"});
  TextTable table({"scheme", "sites", "exact-sdc", "lint-gaps", "mc-sdc",
                   "wilson99", "in99"});
  for (const passes::Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(wl.program, machine, scheme);

    SchemeRow row;
    row.scheme = passes::schemeName(scheme);
    row.full = measure(bin, fault::InjectionMode::kFull, threads);
    row.checkpointed =
        measure(bin, fault::InjectionMode::kCheckpointed, threads);
    row.identical = reportsIdentical(row.full.report, row.checkpointed.report);
    timing.addRow(
        {row.scheme, std::to_string(row.full.report.sites),
         formatFixed(row.full.wallMs, 1), formatFixed(row.checkpointed.wallMs, 1),
         formatFixed(row.full.sitesPerSec / 1e3, 1),
         formatFixed(row.checkpointed.sitesPerSec / 1e3, 1),
         formatFixed(row.full.wallMs /
                         std::max(row.checkpointed.wallMs, 1e-9), 2),
         row.identical ? "yes" : "NO (bug!)"});

    const fault::GroundTruthReport& truth = row.checkpointed.report;
    const double exact =
        truth.mcProbabilityOf(fault::Outcome::kDataCorrupt);

    fault::CampaignOptions mc;
    mc.trials = trials;
    mc.threads = threads;
    mc.originalDefInsns = 0;  // one flip per trial: the measure `truth` states
    const fault::CoverageReport report = core::campaign(bin, mc);
    const std::uint64_t sdc =
        report.counts[static_cast<int>(fault::Outcome::kDataCorrupt)];
    const ProportionInterval interval = wilsonInterval(sdc, report.trials);

    const passes::ProtectionLintResult lint =
        passes::lintProtection(bin.program, scheme);
    table.addRow({row.scheme, std::to_string(truth.sites),
                  formatPercent(exact), std::to_string(lint.gaps()),
                  formatPercent(report.fraction(fault::Outcome::kDataCorrupt)),
                  "[" + formatPercent(interval.low) + ", " +
                      formatPercent(interval.high) + "]",
                  interval.contains(exact) ? "yes" : "NO"});
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", timing.render().c_str());
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "exact-sdc is free of sampling error; mc-sdc at %u trials must land\n"
      "inside its own Wilson interval around it.  lint-gaps counts def sites\n"
      "the static analysis cannot prove protected — every site outside that\n"
      "set contributes zero to exact-sdc by the soundness contract.\n"
      "The timing table compares full re-execution per site against\n"
      "checkpoint-and-diverge (golden-prefix restore + reconvergence\n"
      "cutoff); 'identical' certifies the two enumerations agree site for\n"
      "site.\n",
      trials);
  writeJson(jsonPath, wl.name, scale, threads, rows);

  // Export the trace session (active only under CASTED_TRACE or an explicit
  // trace::enable); run metadata identifies this audit in the viewer.
  trace::setMetadata("bench", "ground_truth_audit");
  trace::setMetadata("workload", wl.name);
  trace::setMetadata("scale", std::to_string(scale));
  trace::setMetadata("threads", std::to_string(threads));
  trace::setMetadata("engine",
                     sim::engineName(sim::SimOptions{}.engine));
  trace::setMetadata("injection_mode", "full+checkpointed");
  if (trace::writeReport()) {
    std::printf("wrote trace %s\n", trace::outputPath().c_str());
  }
  return 0;
}
