// Figure 9: fault coverage for all benchmarks at issue-width 2, delay 2.
//
// Monte Carlo methodology as in §IV-C: random dynamic instruction, random
// output register, random bit; the error-detection binaries are injected at
// the ORIGINAL binary's error rate (one error per N_orig dynamic
// instructions, i.e. ~2.4 expected flips for a 2.4x binary).  Outcomes are
// the paper's five classes.  Paper default is 300 trials (CASTED_TRIALS).
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "fig9_fault_coverage — outcome distribution, issue 2 / delay 2",
      "Fig. 9 (fault coverage, all benchmarks)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  // Campaign worker threads; the report is bit-identical for any value.
  const std::uint32_t threads = benchutil::envU32("CASTED_THREADS", 0);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);

  std::printf("trials per point: %u (paper: 300)\n\n", trials);

  CsvWriter csv({"benchmark", "scheme", "benign", "detected", "exception",
                 "data_corrupt", "timeout"});
  for (const workloads::Workload& wl : workloads::makeAllWorkloads(scale)) {
    std::printf("--- %s ---\n", wl.name.c_str());
    TextTable table({"scheme", "benign", "detected", "exception",
                     "data-corrupt", "timeout"});
    core::PipelineOptions pipelineOptions;
    pipelineOptions.verifyAfterPasses = false;

    // Profile NOED first: its dynamic length sets the fixed error rate.
    const core::CompiledProgram noed = core::compile(
        wl.program, machine, passes::Scheme::kNoed, pipelineOptions);
    const sim::RunResult noedGolden = core::run(noed);
    const std::uint64_t originalDefInsns =
        noedGolden.stats.dynamicDefInsns;

    for (passes::Scheme scheme : passes::kAllSchemes) {
      const core::CompiledProgram bin =
          core::compile(wl.program, machine, scheme, pipelineOptions);
      fault::CampaignOptions options;
      options.trials = trials;
      options.threads = threads;
      options.seed = 0xCA57ED + static_cast<std::uint64_t>(scheme);
      options.originalDefInsns = originalDefInsns;
      const fault::CoverageReport report = core::campaign(bin, options);
      table.addRow(
          {schemeName(scheme),
           formatPercent(report.fraction(fault::Outcome::kBenign)),
           formatPercent(report.fraction(fault::Outcome::kDetected)),
           formatPercent(report.fraction(fault::Outcome::kException)),
           formatPercent(report.fraction(fault::Outcome::kDataCorrupt)),
           formatPercent(report.fraction(fault::Outcome::kTimeout))});
      csv.addRow({wl.name, schemeName(scheme),
                  formatFixed(report.fraction(fault::Outcome::kBenign), 4),
                  formatFixed(report.fraction(fault::Outcome::kDetected), 4),
                  formatFixed(report.fraction(fault::Outcome::kException), 4),
                  formatFixed(report.fraction(fault::Outcome::kDataCorrupt), 4),
                  formatFixed(report.fraction(fault::Outcome::kTimeout), 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Expected shape (paper §IV-C): protected schemes show little or no\n"
      "silent data corruption; most non-benign outcomes are detections or\n"
      "exceptions; encoders (cjpeg, h263enc) mask more errors.\n");
  csv.writeFile("fig9.csv");
  std::printf("wrote fig9.csv\n");
  return 0;
}
