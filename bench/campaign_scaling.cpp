// Micro-bench: thread scaling of the Monte Carlo fault campaign.
//
// Runs the same campaign at 1, 2, 4, ... worker threads and reports wall
// time, speedup, and — the correctness half of the claim — that the outcome
// counts are bit-identical at every thread count (each trial's randomness
// derives only from seed ^ trialIndex).
//
//   CASTED_SCALE / CASTED_TRIALS as usual; CASTED_MAX_THREADS caps the sweep.
#include <chrono>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "campaign_scaling — fault-campaign thread scaling",
      "infrastructure for Figs. 9/10 (deterministic parallel campaign)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  // Sweep to the core count, but always at least 4 so the counts-identical
  // column is exercised even on single-core CI boxes.
  const std::uint32_t maxThreads = benchutil::envU32(
      "CASTED_MAX_THREADS",
      std::max(4u, std::thread::hardware_concurrency()));

  const workloads::Workload wl = workloads::makeH263dec(scale);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  core::PipelineOptions pipelineOptions;
  pipelineOptions.verifyAfterPasses = false;
  const core::CompiledProgram bin = core::compile(
      wl.program, machine, passes::Scheme::kCasted, pipelineOptions);

  std::printf("%s, %u trials, CASTED scheme\n\n", wl.name.c_str(), trials);

  TextTable table({"threads", "wall ms", "speedup", "counts identical"});
  double serialMs = 0.0;
  fault::CoverageReport reference;
  for (std::uint32_t threads = 1; threads <= maxThreads; threads *= 2) {
    fault::CampaignOptions options;
    options.trials = trials;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const fault::CoverageReport report = core::campaign(bin, options);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (threads == 1) {
      serialMs = ms;
      reference = report;
    }
    table.addRow({std::to_string(threads), formatFixed(ms, 1),
                  formatFixed(serialMs / ms, 2),
                  report.counts == reference.counts ? "yes" : "NO (bug!)"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: speedup should be near-linear until the core count (the\n"
      "trials are embarrassingly parallel); the counts column must say yes\n"
      "everywhere — the campaign's report is defined by (seed, trials)\n"
      "alone, never by the thread count.\n");
  return 0;
}
