// Micro-bench: engine and thread scaling of the Monte Carlo fault campaign.
//
// Axis 1 — engine: the same single-threaded campaign runs on the reference
// IR-walking interpreter and on the decoded micro-op engine; reports wall
// time, dynamic instructions per second, the decoded/reference speedup, and
// — the correctness half of the claim — that the outcome counts are
// bit-identical between engines.  The result is written to
// BENCH_sim_engine.json (override the path with CASTED_BENCH_JSON).
//
// Axis 2 — threads: the decoded-engine campaign at 1, 2, 4, ... workers
// with bit-identical counts at every width (each trial's randomness derives
// only from deriveStreamSeed(seed, trialIndex)).
//
//   CASTED_SCALE / CASTED_TRIALS as usual; CASTED_MAX_THREADS caps the sweep.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"
#include "support/trace.h"

using namespace casted;

namespace {

struct EngineSample {
  sim::Engine engine = sim::Engine::kDecoded;
  double wallMs = 0.0;
  double insnsPerSec = 0.0;
  fault::CoverageReport report;
};

EngineSample measure(const core::CompiledProgram& bin, sim::Engine engine,
                     std::uint32_t trials) {
  fault::CampaignOptions options;
  options.trials = trials;
  options.threads = 1;
  options.simOptions.engine = engine;
  const auto start = std::chrono::steady_clock::now();
  EngineSample sample;
  sample.engine = engine;
  sample.report = core::campaign(bin, options);
  sample.wallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  sample.insnsPerSec = sample.wallMs <= 0.0
                           ? 0.0
                           : static_cast<double>(sample.report.dynamicInsns) /
                                 (sample.wallMs / 1000.0);
  return sample;
}

void writeJson(const std::string& path, const std::string& workload,
               std::uint32_t trials, const EngineSample& reference,
               const EngineSample& decoded) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::printf("(could not write %s)\n", path.c_str());
    return;
  }
  const double speedup =
      decoded.wallMs <= 0.0 ? 0.0 : reference.wallMs / decoded.wallMs;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"campaign_scaling\",\n");
  std::fprintf(out, "  \"workload\": \"%s\",\n", workload.c_str());
  std::fprintf(out, "  \"scheme\": \"casted\",\n");
  std::fprintf(out, "  \"trials\": %u,\n", trials);
  std::fprintf(out, "  \"threads\": 1,\n");
  std::fprintf(out, "  \"engines\": {\n");
  const EngineSample* samples[2] = {&reference, &decoded};
  for (int i = 0; i < 2; ++i) {
    const EngineSample& s = *samples[i];
    std::fprintf(out, "    \"%s\": {\n", sim::engineName(s.engine));
    std::fprintf(out, "      \"wall_ms\": %.3f,\n", s.wallMs);
    std::fprintf(out, "      \"dynamic_insns\": %llu,\n",
                 static_cast<unsigned long long>(s.report.dynamicInsns));
    std::fprintf(out, "      \"insns_per_sec\": %.0f\n", s.insnsPerSec);
    std::fprintf(out, "    }%s\n", i == 0 ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"decoded_speedup\": %.3f,\n", speedup);
  std::fprintf(out, "  \"counts_identical\": %s\n",
               reference.report.counts == decoded.report.counts &&
                       reference.report.dynamicInsns ==
                           decoded.report.dynamicInsns
                   ? "true"
                   : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main() {
  benchutil::printHeader(
      "campaign_scaling — fault-campaign engine + thread scaling",
      "infrastructure for Figs. 9/10 (deterministic parallel campaign)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 300);
  // Sweep to the core count, but always at least 4 so the counts-identical
  // column is exercised even on single-core CI boxes.
  const std::uint32_t maxThreads = benchutil::envU32(
      "CASTED_MAX_THREADS",
      std::max(4u, std::thread::hardware_concurrency()));
  const char* jsonEnv = std::getenv("CASTED_BENCH_JSON");
  const std::string jsonPath =
      (jsonEnv != nullptr && *jsonEnv != '\0') ? jsonEnv
                                               : "BENCH_sim_engine.json";

  const workloads::Workload wl = workloads::makeH263dec(scale);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  core::PipelineOptions pipelineOptions;
  pipelineOptions.verifyAfterPasses = false;
  const core::CompiledProgram bin = core::compile(
      wl.program, machine, passes::Scheme::kCasted, pipelineOptions);

  std::printf("%s, %u trials, CASTED scheme\n\n", wl.name.c_str(), trials);

  // ---- Axis 1: engine (single-threaded) ------------------------------
  const EngineSample reference =
      measure(bin, sim::Engine::kReference, trials);
  const EngineSample decoded = measure(bin, sim::Engine::kDecoded, trials);

  TextTable engineTable(
      {"engine", "wall ms", "Minsns/s", "speedup", "counts identical"});
  for (const EngineSample* s : {&reference, &decoded}) {
    engineTable.addRow(
        {sim::engineName(s->engine), formatFixed(s->wallMs, 1),
         formatFixed(s->insnsPerSec / 1e6, 1),
         formatFixed(reference.wallMs / std::max(s->wallMs, 1e-9), 2),
         s->report.counts == reference.report.counts ? "yes" : "NO (bug!)"});
  }
  std::printf("%s\n", engineTable.render().c_str());
  writeJson(jsonPath, wl.name, trials, reference, decoded);

  // ---- Axis 2: threads (decoded engine) ------------------------------
  std::printf("\n");
  TextTable table({"threads", "wall ms", "speedup", "counts identical"});
  double serialMs = 0.0;
  for (std::uint32_t threads = 1; threads <= maxThreads; threads *= 2) {
    fault::CampaignOptions options;
    options.trials = trials;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const fault::CoverageReport report = core::campaign(bin, options);
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (threads == 1) {
      serialMs = ms;
    }
    table.addRow({std::to_string(threads), formatFixed(ms, 1),
                  formatFixed(serialMs / ms, 2),
                  report.counts == decoded.report.counts ? "yes"
                                                         : "NO (bug!)"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: the decoded engine should run the same campaign several\n"
      "times faster than the reference interpreter at identical counts;\n"
      "thread speedup should be near-linear until the core count (the\n"
      "trials are embarrassingly parallel); the counts column must say yes\n"
      "everywhere — the campaign's report is defined by (seed, trials)\n"
      "alone, never by the engine or the thread count.\n");

  // Export the trace session (active only under CASTED_TRACE or an explicit
  // trace::enable); run metadata identifies this sweep in the viewer.
  trace::setMetadata("bench", "campaign_scaling");
  trace::setMetadata("workload", wl.name);
  trace::setMetadata("trials", std::to_string(trials));
  trace::setMetadata("max_threads", std::to_string(maxThreads));
  trace::setMetadata("engine", "reference+decoded");
  trace::setMetadata("injection_mode",
                     fault::injectionModeName(fault::CampaignOptions{}.mode));
  if (trace::writeReport()) {
    std::printf("wrote trace %s\n", trace::outputPath().c_str());
  }
  return 0;
}
