// Figure 10: fault coverage of h263dec for NOED/SCED/DCED/CASTED across
// issue widths 1-4 and delays 1-4 — the paper's demonstration that
// reliability does NOT depend on the architecture configuration (variation
// is statistical noise only).
#include <vector>

#include "bench_util.h"
#include "fault/campaign.h"

int main() {
  using namespace casted;
  benchutil::printHeader(
      "fig10_coverage_sweep — h263dec coverage across all configurations",
      "Fig. 10 (h263dec fault coverage, issue 1-4, delay 1-4)");

  const std::uint32_t scale = benchutil::envU32("CASTED_SCALE", 1);
  const std::uint32_t trials = benchutil::envU32("CASTED_TRIALS", 60);
  const workloads::Workload wl = workloads::makeH263dec(scale);
  std::printf("trials per point: %u (paper: 300)\n\n", trials);

  core::PipelineOptions pipelineOptions;
  pipelineOptions.verifyAfterPasses = false;

  CsvWriter csv({"issue", "delay", "scheme", "safe", "detected",
                 "data_corrupt"});
  // Track the spread of the "safe" fraction per scheme across configs: the
  // paper's claim is that it stays flat.
  std::vector<double> castedSafe;

  for (passes::Scheme scheme : passes::kAllSchemes) {
    std::printf("--- %s ---\n", schemeName(scheme));
    TextTable table({"issue", "delay", "benign", "detected", "exception",
                     "data-corrupt", "timeout"});
    for (std::uint32_t iw = 1; iw <= 4; ++iw) {
      for (std::uint32_t delay = 1; delay <= 4; ++delay) {
        const arch::MachineConfig machine =
            arch::makePaperMachine(iw, delay);
        const core::CompiledProgram noed = core::compile(
            wl.program, machine, passes::Scheme::kNoed, pipelineOptions);
        const sim::RunResult noedGolden = core::run(noed);

        const core::CompiledProgram bin =
            core::compile(wl.program, machine, scheme, pipelineOptions);
        fault::CampaignOptions options;
        options.trials = trials;
        options.seed = 0xF16 + iw * 17 + delay;
        options.originalDefInsns = noedGolden.stats.dynamicDefInsns;
        const fault::CoverageReport report = core::campaign(bin, options);
        table.addRow(
            {std::to_string(iw), std::to_string(delay),
             formatPercent(report.fraction(fault::Outcome::kBenign)),
             formatPercent(report.fraction(fault::Outcome::kDetected)),
             formatPercent(report.fraction(fault::Outcome::kException)),
             formatPercent(report.fraction(fault::Outcome::kDataCorrupt)),
             formatPercent(report.fraction(fault::Outcome::kTimeout))});
        csv.addRow({std::to_string(iw), std::to_string(delay),
                    schemeName(scheme),
                    formatFixed(report.safeFraction(), 4),
                    formatFixed(report.fraction(fault::Outcome::kDetected), 4),
                    formatFixed(report.fraction(fault::Outcome::kDataCorrupt),
                                4)});
        if (scheme == passes::Scheme::kCasted) {
          castedSafe.push_back(report.safeFraction());
        }
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  const SampleSummary safe = summarize(castedSafe);
  std::printf("CASTED safe fraction across the 16 configurations: "
              "min %s, max %s, stddev %s\n",
              formatPercent(safe.min).c_str(),
              formatPercent(safe.max).c_str(),
              formatFixed(safe.stddev, 3).c_str());
  std::printf("(paper: flat — coverage does not depend on the "
              "configuration; residual variation is Monte Carlo noise)\n");
  csv.writeFile("fig10.csv");
  std::printf("wrote fig10.csv\n");
  return 0;
}
