#!/usr/bin/env bash
# One-shot verification: configure + build + ctest.
#
#   scripts/check.sh                # RelWithDebInfo build in build/
#   scripts/check.sh --sanitize     # ASan+UBSan build in build-asan/
#
# Extra arguments after the flag are passed to cmake's configure step.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
cmake_args=()
if [[ "${1:-}" == "--sanitize" ]]; then
  shift
  build_dir=build-asan
  cmake_args+=(-DCASTED_SANITIZE=ON)
fi

# Prefer Ninja, but never fight an existing cache: a build dir configured
# with another generator (e.g. the README's plain `cmake -B build`) keeps it.
generator=()
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  generator=(-G Ninja)
fi

cmake -B "$build_dir" -S . "${generator[@]}" "${cmake_args[@]}" "$@"
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
