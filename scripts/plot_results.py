#!/usr/bin/env python3
"""Plot the CSVs the bench binaries drop (fig6_7.csv, fig8.csv, fig9.csv,
fig10.csv, ext_clusters.csv) into PNGs shaped like the paper's figures.

Usage:
    for b in build/bench/*; do $b; done   # writes the CSVs to the CWD
    python3 scripts/plot_results.py [--outdir plots]

Requires matplotlib; degrades to a textual summary without it.
"""
import argparse
import csv
import os
import sys
from collections import defaultdict

SCHEMES = ["SCED", "DCED", "CASTED"]
COLORS = {"NOED": "#888888", "SCED": "#1f77b4", "DCED": "#d62728",
          "CASTED": "#2ca02c"}


def load(path):
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return list(csv.DictReader(handle))


def plot_fig6_7(rows, outdir, plt):
    benchmarks = sorted({r["benchmark"] for r in rows})
    fig, axes = plt.subplots(2, 4, figsize=(18, 7), sharey=True)
    for ax, bench in zip(axes.flat, benchmarks):
        for scheme in SCHEMES:
            points = [(int(r["issue"]), int(r["delay"]), float(r["slowdown"]))
                      for r in rows
                      if r["benchmark"] == bench and r["scheme"] == scheme]
            points.sort()
            xs = [f"i{i}d{d}" for i, d, _ in points]
            ax.plot(xs, [s for _, _, s in points], label=scheme,
                    color=COLORS[scheme], linewidth=1.2)
        ax.set_title(bench)
        ax.tick_params(axis="x", rotation=90, labelsize=6)
        ax.axhline(1.0, color="#cccccc", linewidth=0.8)
    axes.flat[0].legend()
    for ax in axes.flat[len(benchmarks):]:
        ax.axis("off")
    fig.suptitle("Figs. 6-7: slowdown vs NOED across configurations")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig6_7.png"), dpi=150)


def plot_fig8(rows, outdir, plt):
    benchmarks = sorted({r["benchmark"] for r in rows})
    fig, axes = plt.subplots(2, 4, figsize=(16, 6), sharey=True)
    for ax, bench in zip(axes.flat, benchmarks):
        for scheme in ["NOED"] + SCHEMES:
            points = [(int(r["issue"]), float(r["speedup"])) for r in rows
                      if r["benchmark"] == bench and r["scheme"] == scheme]
            points.sort()
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=scheme, color=COLORS[scheme])
        ax.set_title(bench)
        ax.set_xlabel("issue width")
    axes.flat[0].set_ylabel("speedup vs issue 1")
    axes.flat[0].legend()
    for ax in axes.flat[len(benchmarks):]:
        ax.axis("off")
    fig.suptitle("Fig. 8: ILP scaling")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig8.png"), dpi=150)


def plot_fig9(rows, outdir, plt):
    classes = ["benign", "detected", "exception", "data_corrupt", "timeout"]
    palette = ["#9ecae1", "#2ca02c", "#ff7f0e", "#d62728", "#7f7f7f"]
    benchmarks = sorted({r["benchmark"] for r in rows})
    schemes = ["NOED"] + SCHEMES
    fig, ax = plt.subplots(figsize=(14, 5))
    width = 0.8
    positions, labels = [], []
    x = 0
    for bench in benchmarks:
        for scheme in schemes:
            row = next((r for r in rows
                        if r["benchmark"] == bench and r["scheme"] == scheme),
                       None)
            if row is None:
                continue
            bottom = 0.0
            for cls, color in zip(classes, palette):
                frac = float(row[cls])
                ax.bar(x, frac, width, bottom=bottom, color=color,
                       label=cls if x == 0 else None)
            # rebuild properly stacked (bar calls above draw over each other
            # unless bottom advances)
                bottom += frac
            positions.append(x)
            labels.append(f"{bench}\n{scheme}")
            x += 1
        x += 1
    ax.set_xticks(positions)
    ax.set_xticklabels(labels, fontsize=6, rotation=90)
    ax.set_ylabel("fraction of trials")
    ax.legend(loc="upper right", fontsize=8)
    fig.suptitle("Fig. 9: fault coverage (issue 2 / delay 2)")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig9.png"), dpi=150)


def plot_fig10(rows, outdir, plt):
    fig, ax = plt.subplots(figsize=(10, 4))
    for scheme in ["NOED"] + SCHEMES:
        points = [(int(r["issue"]), int(r["delay"]), float(r["safe"]))
                  for r in rows if r["scheme"] == scheme]
        points.sort()
        xs = [f"i{i}d{d}" for i, d, _ in points]
        ax.plot(xs, [s for _, _, s in points], marker=".",
                label=scheme, color=COLORS[scheme])
    ax.set_ylabel("safe fraction (1 - silent corruption)")
    ax.tick_params(axis="x", rotation=90, labelsize=7)
    ax.legend()
    fig.suptitle("Fig. 10: h263dec coverage across configurations")
    fig.tight_layout()
    fig.savefig(os.path.join(outdir, "fig10.png"), dpi=150)


def textual_summary(name, rows):
    print(f"-- {name}: {len(rows)} rows")
    if rows:
        print("   columns:", ", ".join(rows[0].keys()))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--outdir", default="plots")
    parser.add_argument("--indir", default=".")
    args = parser.parse_args()

    sources = {
        "fig6_7.csv": plot_fig6_7,
        "fig8.csv": plot_fig8,
        "fig9.csv": plot_fig9,
        "fig10.csv": plot_fig10,
    }
    loaded = {name: load(os.path.join(args.indir, name)) for name in sources}
    missing = [name for name, rows in loaded.items() if rows is None]
    if missing:
        print("missing CSVs (run the bench binaries first):", missing)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; textual summary only")
        for name, rows in loaded.items():
            if rows is not None:
                textual_summary(name, rows)
        return 0

    os.makedirs(args.outdir, exist_ok=True)
    for name, plotter in sources.items():
        rows = loaded[name]
        if rows:
            plotter(rows, args.outdir, plt)
            print(f"wrote {args.outdir}/{name.replace('.csv', '.png')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
