# Empty dependencies file for dfg_test.
# This may be replaced when dependencies are built.
