file(REMOVE_RECURSE
  "CMakeFiles/dfg_test.dir/dfg_test.cpp.o"
  "CMakeFiles/dfg_test.dir/dfg_test.cpp.o.d"
  "dfg_test"
  "dfg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
