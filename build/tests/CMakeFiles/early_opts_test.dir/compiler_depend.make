# Empty compiler generated dependencies file for early_opts_test.
# This may be replaced when dependencies are built.
