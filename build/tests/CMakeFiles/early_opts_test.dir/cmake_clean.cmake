file(REMOVE_RECURSE
  "CMakeFiles/early_opts_test.dir/early_opts_test.cpp.o"
  "CMakeFiles/early_opts_test.dir/early_opts_test.cpp.o.d"
  "early_opts_test"
  "early_opts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_opts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
