file(REMOVE_RECURSE
  "CMakeFiles/sim_timing_test.dir/sim_timing_test.cpp.o"
  "CMakeFiles/sim_timing_test.dir/sim_timing_test.cpp.o.d"
  "sim_timing_test"
  "sim_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
