# Empty compiler generated dependencies file for printer_parser_test.
# This may be replaced when dependencies are built.
