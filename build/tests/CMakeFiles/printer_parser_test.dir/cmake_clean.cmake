file(REMOVE_RECURSE
  "CMakeFiles/printer_parser_test.dir/printer_parser_test.cpp.o"
  "CMakeFiles/printer_parser_test.dir/printer_parser_test.cpp.o.d"
  "printer_parser_test"
  "printer_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printer_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
