file(REMOVE_RECURSE
  "CMakeFiles/spill_fp_test.dir/spill_fp_test.cpp.o"
  "CMakeFiles/spill_fp_test.dir/spill_fp_test.cpp.o.d"
  "spill_fp_test"
  "spill_fp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spill_fp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
