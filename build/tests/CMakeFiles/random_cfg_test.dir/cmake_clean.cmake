file(REMOVE_RECURSE
  "CMakeFiles/random_cfg_test.dir/random_cfg_test.cpp.o"
  "CMakeFiles/random_cfg_test.dir/random_cfg_test.cpp.o.d"
  "random_cfg_test"
  "random_cfg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
