# Empty dependencies file for random_cfg_test.
# This may be replaced when dependencies are built.
