file(REMOVE_RECURSE
  "CMakeFiles/host_reference_test.dir/host_reference_test.cpp.o"
  "CMakeFiles/host_reference_test.dir/host_reference_test.cpp.o.d"
  "host_reference_test"
  "host_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
