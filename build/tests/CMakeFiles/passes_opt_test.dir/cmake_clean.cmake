file(REMOVE_RECURSE
  "CMakeFiles/passes_opt_test.dir/passes_opt_test.cpp.o"
  "CMakeFiles/passes_opt_test.dir/passes_opt_test.cpp.o.d"
  "passes_opt_test"
  "passes_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passes_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
