# Empty compiler generated dependencies file for passes_opt_test.
# This may be replaced when dependencies are built.
