file(REMOVE_RECURSE
  "CMakeFiles/error_detection_test.dir/error_detection_test.cpp.o"
  "CMakeFiles/error_detection_test.dir/error_detection_test.cpp.o.d"
  "error_detection_test"
  "error_detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
