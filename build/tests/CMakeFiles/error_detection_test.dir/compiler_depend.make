# Empty compiler generated dependencies file for error_detection_test.
# This may be replaced when dependencies are built.
