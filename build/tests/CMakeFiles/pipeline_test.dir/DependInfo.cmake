
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/casted_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/casted_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/casted_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/casted_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/casted_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/casted_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/casted_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/casted_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/casted_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casted_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
