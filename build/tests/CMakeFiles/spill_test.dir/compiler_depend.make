# Empty compiler generated dependencies file for spill_test.
# This may be replaced when dependencies are built.
