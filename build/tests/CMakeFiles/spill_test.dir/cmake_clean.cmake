file(REMOVE_RECURSE
  "CMakeFiles/spill_test.dir/spill_test.cpp.o"
  "CMakeFiles/spill_test.dir/spill_test.cpp.o.d"
  "spill_test"
  "spill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
