# Empty dependencies file for fig9_fault_coverage.
# This may be replaced when dependencies are built.
