file(REMOVE_RECURSE
  "CMakeFiles/fig9_fault_coverage.dir/fig9_fault_coverage.cpp.o"
  "CMakeFiles/fig9_fault_coverage.dir/fig9_fault_coverage.cpp.o.d"
  "fig9_fault_coverage"
  "fig9_fault_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fault_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
