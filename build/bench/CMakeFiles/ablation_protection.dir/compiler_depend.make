# Empty compiler generated dependencies file for ablation_protection.
# This may be replaced when dependencies are built.
