file(REMOVE_RECURSE
  "CMakeFiles/ablation_protection.dir/ablation_protection.cpp.o"
  "CMakeFiles/ablation_protection.dir/ablation_protection.cpp.o.d"
  "ablation_protection"
  "ablation_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
