file(REMOVE_RECURSE
  "CMakeFiles/ablation_checks.dir/ablation_checks.cpp.o"
  "CMakeFiles/ablation_checks.dir/ablation_checks.cpp.o.d"
  "ablation_checks"
  "ablation_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
