# Empty dependencies file for ablation_checks.
# This may be replaced when dependencies are built.
