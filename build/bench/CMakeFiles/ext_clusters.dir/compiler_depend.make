# Empty compiler generated dependencies file for ext_clusters.
# This may be replaced when dependencies are built.
