file(REMOVE_RECURSE
  "CMakeFiles/ext_clusters.dir/ext_clusters.cpp.o"
  "CMakeFiles/ext_clusters.dir/ext_clusters.cpp.o.d"
  "ext_clusters"
  "ext_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
