file(REMOVE_RECURSE
  "CMakeFiles/fig2_3_motivating.dir/fig2_3_motivating.cpp.o"
  "CMakeFiles/fig2_3_motivating.dir/fig2_3_motivating.cpp.o.d"
  "fig2_3_motivating"
  "fig2_3_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_3_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
