# Empty compiler generated dependencies file for fig2_3_motivating.
# This may be replaced when dependencies are built.
