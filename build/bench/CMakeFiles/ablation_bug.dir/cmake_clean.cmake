file(REMOVE_RECURSE
  "CMakeFiles/ablation_bug.dir/ablation_bug.cpp.o"
  "CMakeFiles/ablation_bug.dir/ablation_bug.cpp.o.d"
  "ablation_bug"
  "ablation_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
