# Empty dependencies file for ablation_bug.
# This may be replaced when dependencies are built.
