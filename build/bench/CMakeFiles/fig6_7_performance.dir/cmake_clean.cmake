file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_performance.dir/fig6_7_performance.cpp.o"
  "CMakeFiles/fig6_7_performance.dir/fig6_7_performance.cpp.o.d"
  "fig6_7_performance"
  "fig6_7_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
