file(REMOVE_RECURSE
  "CMakeFiles/ablation_library.dir/ablation_library.cpp.o"
  "CMakeFiles/ablation_library.dir/ablation_library.cpp.o.d"
  "ablation_library"
  "ablation_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
