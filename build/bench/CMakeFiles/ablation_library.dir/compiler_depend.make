# Empty compiler generated dependencies file for ablation_library.
# This may be replaced when dependencies are built.
