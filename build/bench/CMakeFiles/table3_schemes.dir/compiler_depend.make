# Empty compiler generated dependencies file for table3_schemes.
# This may be replaced when dependencies are built.
