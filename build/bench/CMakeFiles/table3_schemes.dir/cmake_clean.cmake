file(REMOVE_RECURSE
  "CMakeFiles/table3_schemes.dir/table3_schemes.cpp.o"
  "CMakeFiles/table3_schemes.dir/table3_schemes.cpp.o.d"
  "table3_schemes"
  "table3_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
