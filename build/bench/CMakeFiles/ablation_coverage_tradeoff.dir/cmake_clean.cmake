file(REMOVE_RECURSE
  "CMakeFiles/ablation_coverage_tradeoff.dir/ablation_coverage_tradeoff.cpp.o"
  "CMakeFiles/ablation_coverage_tradeoff.dir/ablation_coverage_tradeoff.cpp.o.d"
  "ablation_coverage_tradeoff"
  "ablation_coverage_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coverage_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
