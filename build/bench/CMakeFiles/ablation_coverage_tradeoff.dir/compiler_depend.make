# Empty compiler generated dependencies file for ablation_coverage_tradeoff.
# This may be replaced when dependencies are built.
