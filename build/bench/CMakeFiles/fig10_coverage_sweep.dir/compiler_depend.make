# Empty compiler generated dependencies file for fig10_coverage_sweep.
# This may be replaced when dependencies are built.
