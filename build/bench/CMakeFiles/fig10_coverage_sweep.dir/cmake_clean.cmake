file(REMOVE_RECURSE
  "CMakeFiles/fig10_coverage_sweep.dir/fig10_coverage_sweep.cpp.o"
  "CMakeFiles/fig10_coverage_sweep.dir/fig10_coverage_sweep.cpp.o.d"
  "fig10_coverage_sweep"
  "fig10_coverage_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_coverage_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
