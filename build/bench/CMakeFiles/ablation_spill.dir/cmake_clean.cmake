file(REMOVE_RECURSE
  "CMakeFiles/ablation_spill.dir/ablation_spill.cpp.o"
  "CMakeFiles/ablation_spill.dir/ablation_spill.cpp.o.d"
  "ablation_spill"
  "ablation_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
