# Empty compiler generated dependencies file for ablation_spill.
# This may be replaced when dependencies are built.
