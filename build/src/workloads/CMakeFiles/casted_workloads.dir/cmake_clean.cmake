file(REMOVE_RECURSE
  "CMakeFiles/casted_workloads.dir/cjpeg.cpp.o"
  "CMakeFiles/casted_workloads.dir/cjpeg.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/h263dec.cpp.o"
  "CMakeFiles/casted_workloads.dir/h263dec.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/h263enc.cpp.o"
  "CMakeFiles/casted_workloads.dir/h263enc.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/mcf.cpp.o"
  "CMakeFiles/casted_workloads.dir/mcf.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/mpeg2dec.cpp.o"
  "CMakeFiles/casted_workloads.dir/mpeg2dec.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/parser.cpp.o"
  "CMakeFiles/casted_workloads.dir/parser.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/registry.cpp.o"
  "CMakeFiles/casted_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/casted_workloads.dir/vpr.cpp.o"
  "CMakeFiles/casted_workloads.dir/vpr.cpp.o.d"
  "libcasted_workloads.a"
  "libcasted_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
