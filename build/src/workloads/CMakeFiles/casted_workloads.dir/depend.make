# Empty dependencies file for casted_workloads.
# This may be replaced when dependencies are built.
