
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cjpeg.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/cjpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/cjpeg.cpp.o.d"
  "/root/repo/src/workloads/h263dec.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/h263dec.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/h263dec.cpp.o.d"
  "/root/repo/src/workloads/h263enc.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/h263enc.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/h263enc.cpp.o.d"
  "/root/repo/src/workloads/mcf.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/mcf.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/mcf.cpp.o.d"
  "/root/repo/src/workloads/mpeg2dec.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/mpeg2dec.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/mpeg2dec.cpp.o.d"
  "/root/repo/src/workloads/parser.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/parser.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/parser.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/vpr.cpp" "src/workloads/CMakeFiles/casted_workloads.dir/vpr.cpp.o" "gcc" "src/workloads/CMakeFiles/casted_workloads.dir/vpr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/casted_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casted_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
