file(REMOVE_RECURSE
  "libcasted_workloads.a"
)
