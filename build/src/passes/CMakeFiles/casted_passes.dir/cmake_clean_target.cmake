file(REMOVE_RECURSE
  "libcasted_passes.a"
)
