# Empty dependencies file for casted_passes.
# This may be replaced when dependencies are built.
