file(REMOVE_RECURSE
  "CMakeFiles/casted_passes.dir/assignment.cpp.o"
  "CMakeFiles/casted_passes.dir/assignment.cpp.o.d"
  "CMakeFiles/casted_passes.dir/early_opts.cpp.o"
  "CMakeFiles/casted_passes.dir/early_opts.cpp.o.d"
  "CMakeFiles/casted_passes.dir/error_detection.cpp.o"
  "CMakeFiles/casted_passes.dir/error_detection.cpp.o.d"
  "CMakeFiles/casted_passes.dir/late_opts.cpp.o"
  "CMakeFiles/casted_passes.dir/late_opts.cpp.o.d"
  "CMakeFiles/casted_passes.dir/liveness.cpp.o"
  "CMakeFiles/casted_passes.dir/liveness.cpp.o.d"
  "CMakeFiles/casted_passes.dir/spill.cpp.o"
  "CMakeFiles/casted_passes.dir/spill.cpp.o.d"
  "libcasted_passes.a"
  "libcasted_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
