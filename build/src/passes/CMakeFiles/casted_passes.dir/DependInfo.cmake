
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/assignment.cpp" "src/passes/CMakeFiles/casted_passes.dir/assignment.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/assignment.cpp.o.d"
  "/root/repo/src/passes/early_opts.cpp" "src/passes/CMakeFiles/casted_passes.dir/early_opts.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/early_opts.cpp.o.d"
  "/root/repo/src/passes/error_detection.cpp" "src/passes/CMakeFiles/casted_passes.dir/error_detection.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/error_detection.cpp.o.d"
  "/root/repo/src/passes/late_opts.cpp" "src/passes/CMakeFiles/casted_passes.dir/late_opts.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/late_opts.cpp.o.d"
  "/root/repo/src/passes/liveness.cpp" "src/passes/CMakeFiles/casted_passes.dir/liveness.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/liveness.cpp.o.d"
  "/root/repo/src/passes/spill.cpp" "src/passes/CMakeFiles/casted_passes.dir/spill.cpp.o" "gcc" "src/passes/CMakeFiles/casted_passes.dir/spill.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/casted_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/casted_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/casted_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/casted_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casted_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
