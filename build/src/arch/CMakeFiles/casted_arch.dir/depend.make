# Empty dependencies file for casted_arch.
# This may be replaced when dependencies are built.
