file(REMOVE_RECURSE
  "libcasted_arch.a"
)
