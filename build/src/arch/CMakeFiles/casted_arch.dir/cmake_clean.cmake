file(REMOVE_RECURSE
  "CMakeFiles/casted_arch.dir/machine_config.cpp.o"
  "CMakeFiles/casted_arch.dir/machine_config.cpp.o.d"
  "libcasted_arch.a"
  "libcasted_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
