file(REMOVE_RECURSE
  "CMakeFiles/casted_core.dir/analysis.cpp.o"
  "CMakeFiles/casted_core.dir/analysis.cpp.o.d"
  "CMakeFiles/casted_core.dir/pipeline.cpp.o"
  "CMakeFiles/casted_core.dir/pipeline.cpp.o.d"
  "libcasted_core.a"
  "libcasted_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
