file(REMOVE_RECURSE
  "libcasted_core.a"
)
