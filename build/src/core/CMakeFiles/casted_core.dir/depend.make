# Empty dependencies file for casted_core.
# This may be replaced when dependencies are built.
