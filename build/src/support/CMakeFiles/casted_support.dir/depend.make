# Empty dependencies file for casted_support.
# This may be replaced when dependencies are built.
