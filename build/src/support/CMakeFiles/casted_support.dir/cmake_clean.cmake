file(REMOVE_RECURSE
  "CMakeFiles/casted_support.dir/check.cpp.o"
  "CMakeFiles/casted_support.dir/check.cpp.o.d"
  "CMakeFiles/casted_support.dir/rng.cpp.o"
  "CMakeFiles/casted_support.dir/rng.cpp.o.d"
  "CMakeFiles/casted_support.dir/statistics.cpp.o"
  "CMakeFiles/casted_support.dir/statistics.cpp.o.d"
  "CMakeFiles/casted_support.dir/table.cpp.o"
  "CMakeFiles/casted_support.dir/table.cpp.o.d"
  "libcasted_support.a"
  "libcasted_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
