file(REMOVE_RECURSE
  "libcasted_support.a"
)
