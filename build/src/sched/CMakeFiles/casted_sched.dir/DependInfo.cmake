
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/list_scheduler.cpp" "src/sched/CMakeFiles/casted_sched.dir/list_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/casted_sched.dir/list_scheduler.cpp.o.d"
  "/root/repo/src/sched/reservation_table.cpp" "src/sched/CMakeFiles/casted_sched.dir/reservation_table.cpp.o" "gcc" "src/sched/CMakeFiles/casted_sched.dir/reservation_table.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/casted_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/casted_sched.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/casted_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/casted_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/casted_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/casted_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
