file(REMOVE_RECURSE
  "libcasted_sched.a"
)
