# Empty dependencies file for casted_sched.
# This may be replaced when dependencies are built.
