file(REMOVE_RECURSE
  "CMakeFiles/casted_sched.dir/list_scheduler.cpp.o"
  "CMakeFiles/casted_sched.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/casted_sched.dir/reservation_table.cpp.o"
  "CMakeFiles/casted_sched.dir/reservation_table.cpp.o.d"
  "CMakeFiles/casted_sched.dir/schedule.cpp.o"
  "CMakeFiles/casted_sched.dir/schedule.cpp.o.d"
  "libcasted_sched.a"
  "libcasted_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
