file(REMOVE_RECURSE
  "libcasted_dfg.a"
)
