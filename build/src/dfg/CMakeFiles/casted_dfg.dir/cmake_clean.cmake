file(REMOVE_RECURSE
  "CMakeFiles/casted_dfg.dir/dfg.cpp.o"
  "CMakeFiles/casted_dfg.dir/dfg.cpp.o.d"
  "libcasted_dfg.a"
  "libcasted_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
