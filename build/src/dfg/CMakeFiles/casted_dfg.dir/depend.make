# Empty dependencies file for casted_dfg.
# This may be replaced when dependencies are built.
