file(REMOVE_RECURSE
  "CMakeFiles/casted_ir.dir/builder.cpp.o"
  "CMakeFiles/casted_ir.dir/builder.cpp.o.d"
  "CMakeFiles/casted_ir.dir/function.cpp.o"
  "CMakeFiles/casted_ir.dir/function.cpp.o.d"
  "CMakeFiles/casted_ir.dir/instruction.cpp.o"
  "CMakeFiles/casted_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/casted_ir.dir/opcode.cpp.o"
  "CMakeFiles/casted_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/casted_ir.dir/parser.cpp.o"
  "CMakeFiles/casted_ir.dir/parser.cpp.o.d"
  "CMakeFiles/casted_ir.dir/printer.cpp.o"
  "CMakeFiles/casted_ir.dir/printer.cpp.o.d"
  "CMakeFiles/casted_ir.dir/reg.cpp.o"
  "CMakeFiles/casted_ir.dir/reg.cpp.o.d"
  "CMakeFiles/casted_ir.dir/verifier.cpp.o"
  "CMakeFiles/casted_ir.dir/verifier.cpp.o.d"
  "libcasted_ir.a"
  "libcasted_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
