file(REMOVE_RECURSE
  "libcasted_ir.a"
)
