# Empty compiler generated dependencies file for casted_ir.
# This may be replaced when dependencies are built.
