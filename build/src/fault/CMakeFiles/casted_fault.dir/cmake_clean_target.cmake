file(REMOVE_RECURSE
  "libcasted_fault.a"
)
