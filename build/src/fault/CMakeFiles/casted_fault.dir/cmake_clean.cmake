file(REMOVE_RECURSE
  "CMakeFiles/casted_fault.dir/campaign.cpp.o"
  "CMakeFiles/casted_fault.dir/campaign.cpp.o.d"
  "libcasted_fault.a"
  "libcasted_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
