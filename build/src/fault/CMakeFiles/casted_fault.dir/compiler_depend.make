# Empty compiler generated dependencies file for casted_fault.
# This may be replaced when dependencies are built.
