file(REMOVE_RECURSE
  "CMakeFiles/casted_sim.dir/cache.cpp.o"
  "CMakeFiles/casted_sim.dir/cache.cpp.o.d"
  "CMakeFiles/casted_sim.dir/memory.cpp.o"
  "CMakeFiles/casted_sim.dir/memory.cpp.o.d"
  "CMakeFiles/casted_sim.dir/simulator.cpp.o"
  "CMakeFiles/casted_sim.dir/simulator.cpp.o.d"
  "libcasted_sim.a"
  "libcasted_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/casted_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
