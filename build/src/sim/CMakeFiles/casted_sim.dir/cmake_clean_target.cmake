file(REMOVE_RECURSE
  "libcasted_sim.a"
)
