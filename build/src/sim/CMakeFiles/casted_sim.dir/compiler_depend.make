# Empty compiler generated dependencies file for casted_sim.
# This may be replaced when dependencies are built.
