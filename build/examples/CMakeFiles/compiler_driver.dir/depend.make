# Empty dependencies file for compiler_driver.
# This may be replaced when dependencies are built.
