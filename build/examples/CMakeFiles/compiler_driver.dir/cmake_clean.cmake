file(REMOVE_RECURSE
  "CMakeFiles/compiler_driver.dir/compiler_driver.cpp.o"
  "CMakeFiles/compiler_driver.dir/compiler_driver.cpp.o.d"
  "compiler_driver"
  "compiler_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
