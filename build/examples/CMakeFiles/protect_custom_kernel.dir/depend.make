# Empty dependencies file for protect_custom_kernel.
# This may be replaced when dependencies are built.
