file(REMOVE_RECURSE
  "CMakeFiles/protect_custom_kernel.dir/protect_custom_kernel.cpp.o"
  "CMakeFiles/protect_custom_kernel.dir/protect_custom_kernel.cpp.o.d"
  "protect_custom_kernel"
  "protect_custom_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protect_custom_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
