// Campaign-level oracle invariants — properties the Monte Carlo campaign
// must satisfy regardless of program, scheme, engine or thread count:
//
//   * every trial lands in exactly one outcome class (counts sum to trials);
//   * a NOED binary carries no CHECK instructions, so it can never report a
//     detection;
//   * the CoverageReport (outcome counts, trials, dynamicInsns) is
//     bit-identical across thread counts, across the two simulator engines
//     AND across the two injection modes (full rerun vs
//     checkpoint-and-diverge) — the campaign result is a pure function of
//     (binary, seed, trials);
//   * tracing (support/trace.h) only observes: an active trace session
//     leaves the report bit-identical to a run with tracing off;
//   * the per-trial RNG derivation decorrelates adjacent trials and nearby
//     master seeds (regression for the old `seed ^ trialIndex` scheme).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "fault/campaign.h"
#include "support/rng.h"
#include "support/trace.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::fault {
namespace {

using passes::Scheme;

CoverageReport runWith(const core::CompiledProgram& bin, std::uint32_t threads,
                       sim::Engine engine, std::uint32_t trials = 48,
                       std::uint64_t seed = 0xCA57EDu,
                       InjectionMode mode = InjectionMode::kCheckpointed) {
  CampaignOptions options;
  options.trials = trials;
  options.threads = threads;
  options.seed = seed;
  options.mode = mode;
  options.simOptions.engine = engine;
  return core::campaign(bin, options);
}

std::uint64_t total(const CoverageReport& report) {
  std::uint64_t sum = 0;
  for (std::uint64_t count : report.counts) {
    sum += count;
  }
  return sum;
}

TEST(CampaignOracleTest, CountsSumToTrialsForEveryScheme) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  for (const Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(wl.program, testutil::machine(2, 2), scheme);
    const CoverageReport report =
        runWith(bin, 2, sim::Engine::kDecoded,
                static_cast<std::uint32_t>(testutil::testTrials(60)));
    EXPECT_EQ(total(report), report.trials) << passes::schemeName(scheme);
    EXPECT_GT(report.dynamicInsns, 0u) << passes::schemeName(scheme);
  }
}

TEST(CampaignOracleTest, NoedNeverDetects) {
  // Detection requires a CHECK instruction; the unprotected binary has
  // none, so any nonzero detected count would mean the campaign (or an
  // engine) invented one.
  const core::CompiledProgram bin =
      core::compile(testutil::makeRandomCfgProgram(3), testutil::machine(2, 1),
                    Scheme::kNoed);
  for (const sim::Engine engine :
       {sim::Engine::kDecoded, sim::Engine::kReference}) {
    const CoverageReport report =
        runWith(bin, 4, engine,
                static_cast<std::uint32_t>(testutil::testTrials(80)));
    EXPECT_EQ(report.counts[static_cast<int>(Outcome::kDetected)], 0u)
        << sim::engineName(engine);
    EXPECT_EQ(total(report), report.trials);
  }
}

TEST(CampaignOracleTest, ReportBitIdenticalAcrossThreadsEnginesAndModes) {
  // The strongest determinism claim: 1, 2 and 8 workers, either engine,
  // full rerun or checkpoint-and-diverge — every combination produces the
  // same report, including the dynamicInsns work total, which would drift
  // on any divergence in trial execution, not just on a changed outcome
  // class.  The baseline is the one-thread full-rerun campaign: the oracle
  // path with no shared state between trials.
  const workloads::Workload wl = workloads::makeParser(1);
  const core::CompiledProgram bin =
      core::compile(wl.program, testutil::machine(2, 2), Scheme::kCasted);
  const std::uint32_t trials =
      static_cast<std::uint32_t>(testutil::testTrials(60));

  const CoverageReport baseline = runWith(bin, 1, sim::Engine::kDecoded,
                                          trials, 0xCA57EDu,
                                          InjectionMode::kFull);
  EXPECT_EQ(total(baseline), baseline.trials);
  for (const sim::Engine engine :
       {sim::Engine::kDecoded, sim::Engine::kReference}) {
    for (const InjectionMode mode :
         {InjectionMode::kFull, InjectionMode::kCheckpointed}) {
      for (const std::uint32_t threads : {1u, 2u, 8u}) {
        const CoverageReport report =
            runWith(bin, threads, engine, trials, 0xCA57EDu, mode);
        const std::string context = std::string(sim::engineName(engine)) +
                                    " " + injectionModeName(mode) + " x" +
                                    std::to_string(threads);
        EXPECT_EQ(report.counts, baseline.counts) << context;
        EXPECT_EQ(report.trials, baseline.trials) << context;
        EXPECT_EQ(report.dynamicInsns, baseline.dynamicInsns) << context;
      }
    }
  }
}

TEST(CampaignOracleTest, ReportBitIdenticalWithTracingOnAndOff) {
  // The trace subsystem's determinism contract (DESIGN.md §11): an active
  // session observes the campaign but never feeds back into it, so the
  // report — counts, trials AND the dynamicInsns work total — is
  // bit-identical to the untraced run, across both injection modes and a
  // multi-worker pool.
  const workloads::Workload wl = workloads::makeParser(1);
  const core::CompiledProgram bin =
      core::compile(wl.program, testutil::machine(2, 2), Scheme::kCasted);
  const std::uint32_t trials =
      static_cast<std::uint32_t>(testutil::testTrials(48));

  trace::resetForTest();
  trace::disable();
  const CoverageReport untraced =
      runWith(bin, 2, sim::Engine::kDecoded, trials);
  EXPECT_EQ(total(untraced), untraced.trials);

  trace::resetForTest();
  trace::enable("");  // in-memory session: no file, full instrumentation
  ASSERT_TRUE(trace::enabled());
  for (const InjectionMode mode :
       {InjectionMode::kFull, InjectionMode::kCheckpointed}) {
    const CoverageReport traced = runWith(bin, 2, sim::Engine::kDecoded,
                                          trials, 0xCA57EDu, mode);
    const std::string context = injectionModeName(mode);
    EXPECT_EQ(traced.counts, untraced.counts) << context;
    EXPECT_EQ(traced.trials, untraced.trials) << context;
    EXPECT_EQ(traced.dynamicInsns, untraced.dynamicInsns) << context;
  }
  // The session did observe the runs: per-worker trial counters merged to
  // the exact trial total per campaign.
  EXPECT_EQ(trace::counterValue("fault.campaign.trials"),
            static_cast<std::int64_t>(trials) * 2);
  trace::resetForTest();
}

TEST(CampaignOracleTest, AdjacentTrialPlansAreNotNearDuplicates) {
  // Regression for the old `seed ^ trialIndex` derivation: XOR only
  // perturbs the low bits, so adjacent trials seeded near-identical RNGs.
  // With the SplitMix64 mix, consecutive trials must draw unrelated plans.
  const std::uint64_t defInsns = 100000;
  std::set<std::uint64_t> firstOrdinals;
  const std::size_t trials = 64;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    Rng rng(deriveStreamSeed(0xCA57EDu, trial));
    const sim::FaultPlan plan = makeTrialPlan(rng, defInsns, 0);
    ASSERT_FALSE(plan.points.empty());
    firstOrdinals.insert(plan.points.front().ordinal);
  }
  // With 64 uniform draws from 100000 ordinals, collisions are rare; the
  // old derivation produced long runs of correlated plans.  Allow a couple
  // of genuine birthday collisions but no systematic duplication.
  EXPECT_GE(firstOrdinals.size(), trials - 2);
}

TEST(CampaignOracleTest, NearbyMasterSeedsShareNoTrialSeeds) {
  // The defining failure of XOR derivation: masters A and A^1 run the SAME
  // set of trial RNGs, merely permuted (A ^ i == (A^1) ^ (i^1)), so their
  // campaign counts were identical.  The mixed derivation must give the two
  // masters fully disjoint trial-seed sets.
  std::set<std::uint64_t> a;
  std::set<std::uint64_t> b;
  for (std::uint64_t trial = 0; trial < 256; ++trial) {
    a.insert(deriveStreamSeed(0xCA57EDu, trial));
    b.insert(deriveStreamSeed(0xCA57ECu, trial));
  }
  EXPECT_EQ(a.size(), 256u);
  EXPECT_EQ(b.size(), 256u);
  std::vector<std::uint64_t> shared;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(shared));
  EXPECT_TRUE(shared.empty());
}

}  // namespace
}  // namespace casted::fault
