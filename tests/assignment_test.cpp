#include <gtest/gtest.h>

#include "ir/builder.h"
#include "passes/assignment.h"
#include "passes/error_detection.h"
#include "sched/list_scheduler.h"
#include "support/check.h"
#include "test_util.h"

namespace casted::passes {
namespace {

using ir::Instruction;
using ir::InsnOrigin;
using ir::Program;

std::uint64_t scheduleLength(const Program& prog,
                             const arch::MachineConfig& config) {
  const sched::ProgramSchedule schedule =
      sched::scheduleProgram(prog, config);
  std::uint64_t total = 0;
  for (const auto& fn : schedule.functions) {
    total += fn.totalLength();
  }
  return total;
}

TEST(AssignmentTest, ScedPutsEverythingOnClusterZero) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const AssignmentStats stats =
      assignClusters(prog, testutil::machine(2, 1), Scheme::kSced);
  EXPECT_EQ(stats.offCluster0, 0u);
  EXPECT_GT(stats.total, 0u);
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    EXPECT_EQ(insn.cluster, 0);
  }
}

TEST(AssignmentTest, DcedSplitsByOrigin) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const AssignmentStats stats =
      assignClusters(prog, testutil::machine(2, 1), Scheme::kDced);
  EXPECT_GT(stats.offCluster0, 0u);
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    const bool redundant = insn.origin == InsnOrigin::kDuplicate ||
                           insn.origin == InsnOrigin::kCheck ||
                           insn.origin == InsnOrigin::kCopy;
    EXPECT_EQ(insn.cluster, redundant ? 1 : 0)
        << insn.toString() << " (" << insnOriginName(insn.origin) << ")";
  }
}

TEST(AssignmentTest, DcedRequiresTwoClusters) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  arch::MachineConfig config = testutil::machine(2, 1);
  config.clusterCount = 1;
  EXPECT_THROW(assignClusters(prog, config, Scheme::kDced), FatalError);
}

TEST(AssignmentTest, CastedAssignsValidClusters) {
  Program prog = testutil::makeRandomStraightLine(17, 60);
  applyErrorDetection(prog);
  const arch::MachineConfig config = testutil::machine(2, 2);
  assignClusters(prog, config, Scheme::kCasted);
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    EXPECT_GE(insn.cluster, 0);
    EXPECT_LT(insn.cluster, static_cast<int>(config.clusterCount));
  }
}

TEST(AssignmentTest, CastedSpreadsOnNarrowMachine) {
  // Issue-1 clusters are resource constrained (paper Example 1): CASTED
  // must use the second cluster.
  Program prog = testutil::makeRandomStraightLine(23, 60);
  applyErrorDetection(prog);
  const AssignmentStats stats =
      assignClusters(prog, testutil::machine(1, 1), Scheme::kCasted);
  EXPECT_GT(stats.offCluster0, 0u);
}

TEST(AssignmentTest, CastedNeverWorseThanScedSchedule) {
  // The placement fallback guarantees the CASTED schedule is at most the
  // single-cluster schedule, per block.
  for (std::uint32_t iw : {1u, 2u, 4u}) {
    for (std::uint32_t delay : {1u, 2u, 4u}) {
      Program casted = testutil::makeRandomStraightLine(29, 80);
      applyErrorDetection(casted);
      Program sced = casted;
      const arch::MachineConfig config = testutil::machine(iw, delay);
      assignClusters(casted, config, Scheme::kCasted);
      assignClusters(sced, config, Scheme::kSced);
      EXPECT_LE(scheduleLength(casted, config), scheduleLength(sced, config))
          << "iw=" << iw << " delay=" << delay;
    }
  }
}

TEST(AssignmentTest, CastedNeverWorseThanDcedSchedule) {
  for (std::uint32_t iw : {1u, 2u, 4u}) {
    for (std::uint32_t delay : {1u, 2u, 4u}) {
      Program casted = testutil::makeRandomStraightLine(31, 80);
      applyErrorDetection(casted);
      Program dced = casted;
      const arch::MachineConfig config = testutil::machine(iw, delay);
      assignClusters(casted, config, Scheme::kCasted);
      assignClusters(dced, config, Scheme::kDced);
      EXPECT_LE(scheduleLength(casted, config), scheduleLength(dced, config))
          << "iw=" << iw << " delay=" << delay;
    }
  }
}

TEST(AssignmentTest, FallbackDisabledCanDiffer) {
  // Pure Algorithm 2 (no fallback) is allowed to lose to SCED on high-delay
  // machines — this documents why the fallback exists.  We only assert it
  // still produces a valid assignment.
  Program prog = testutil::makeRandomStraightLine(37, 80);
  applyErrorDetection(prog);
  arch::MachineConfig config = testutil::machine(2, 4);
  config.bugPlacementFallback = false;
  const AssignmentStats stats =
      assignClusters(prog, config, Scheme::kCasted);
  EXPECT_EQ(stats.total, prog.insnCount());
}

TEST(AssignmentTest, AdaptivityStatsOnlyForCasted) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  Program copy = prog;
  const AssignmentStats dced =
      assignClusters(copy, testutil::machine(1, 1), Scheme::kDced);
  EXPECT_EQ(dced.originalsMoved, 0u);
  EXPECT_EQ(dced.duplicatesHome, 0u);
}

TEST(AssignmentTest, NoedOnUnprotectedProgramStaysHome) {
  Program prog = testutil::makeTinyProgram();
  const AssignmentStats stats =
      assignClusters(prog, testutil::machine(2, 1), Scheme::kNoed);
  EXPECT_EQ(stats.offCluster0, 0u);
}

TEST(AssignmentTest, FourClusterMachineUsable) {
  // CASTED claims a "wide range of core counts": a 4-cluster machine must
  // work end to end.
  Program prog = testutil::makeRandomStraightLine(41, 100);
  applyErrorDetection(prog);
  arch::MachineConfig config = testutil::machine(1, 1);
  config.clusterCount = 4;
  const AssignmentStats stats =
      assignClusters(prog, config, Scheme::kCasted);
  int maxCluster = 0;
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    maxCluster = std::max(maxCluster, insn.cluster);
  }
  EXPECT_LT(maxCluster, 4);
  EXPECT_GT(stats.offCluster0, 0u);
  // And it must schedule + beat or match the 2-cluster machine.
  const std::uint64_t four = scheduleLength(prog, config);
  EXPECT_GT(four, 0u);
}

}  // namespace
}  // namespace casted::passes
