#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/function.h"
#include "ir/opcode.h"
#include "ir/reg.h"
#include "support/check.h"

namespace casted::ir {
namespace {

// --- Reg ---------------------------------------------------------------------

TEST(RegTest, DefaultIsInvalid) {
  EXPECT_FALSE(Reg().valid());
}

TEST(RegTest, ToStringUsesClassPrefix) {
  EXPECT_EQ(Reg(RegClass::kGp, 12).toString(), "g12");
  EXPECT_EQ(Reg(RegClass::kFp, 3).toString(), "f3");
  EXPECT_EQ(Reg(RegClass::kPr, 0).toString(), "p0");
}

TEST(RegTest, OrderingGroupsByClass) {
  EXPECT_LT(Reg(RegClass::kGp, 99), Reg(RegClass::kFp, 0));
  EXPECT_LT(Reg(RegClass::kFp, 99), Reg(RegClass::kPr, 0));
  EXPECT_LT(Reg(RegClass::kGp, 1), Reg(RegClass::kGp, 2));
}

TEST(RegTest, EqualityAndHash) {
  const Reg a(RegClass::kGp, 5);
  const Reg b(RegClass::kGp, 5);
  const Reg c(RegClass::kFp, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<Reg>()(a), std::hash<Reg>()(b));
}

// --- opcode metadata: exhaustive invariants over the whole table -------------

class OpcodeTableTest : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeTableTest, MetadataIsConsistent) {
  const Opcode op = static_cast<Opcode>(GetParam());
  const OpcodeInfo& info = opcodeInfo(op);

  EXPECT_NE(info.name, nullptr);
  EXPECT_GT(std::string(info.name).size(), 0u);
  // name -> opcode lookup round trips.
  EXPECT_EQ(opcodeFromName(info.name), op);

  // Arity constraints.
  EXPECT_LE(info.defCount, 1);
  EXPECT_LE(info.useCount, 3);
  if (info.variableArity) {
    EXPECT_EQ(info.defCount, 0);
    EXPECT_EQ(info.useCount, 0);
  }
  // Only one of the immediate kinds.
  EXPECT_FALSE(info.hasImm && info.hasFpImm);
  // Terminators cannot define registers.
  if (info.isTerminator) {
    EXPECT_EQ(info.defCount, 0);
  }
  // Memory ops are loads xor stores.
  EXPECT_FALSE(info.isLoad && info.isStore);
  if (info.isLoad) {
    EXPECT_EQ(info.defCount, 1);
    EXPECT_TRUE(info.canTrap);
  }
  if (info.isStore) {
    EXPECT_EQ(info.defCount, 0);
    EXPECT_TRUE(info.canTrap);
  }
  // Checks define nothing; the fused forms read two registers of the same
  // class, the split trap reads one predicate.
  if (info.isCheck) {
    EXPECT_EQ(info.defCount, 0);
    if (info.useCount == 2) {
      EXPECT_EQ(info.useClass[0], info.useClass[1]);
    } else {
      EXPECT_EQ(info.useCount, 1);
      EXPECT_EQ(info.useClass[0], RegClass::kPr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeTableTest,
    ::testing::Range(0, static_cast<int>(Opcode::kOpcodeCount)));

TEST(OpcodeTest, UnknownNameReturnsSentinel) {
  EXPECT_EQ(opcodeFromName("no-such-op"), Opcode::kOpcodeCount);
}

TEST(OpcodeTest, ReplicationPolicyMatchesPaper) {
  // Algorithm 1: control flow, stores and checks are not replicated...
  EXPECT_FALSE(isReplicableOpcode(Opcode::kBr));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kBrCond));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kCall));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kRet));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kHalt));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kStore));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kStoreB));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kFStore));
  EXPECT_FALSE(isReplicableOpcode(Opcode::kCheckG));
  // ... but loads ARE (SWIFT-style sphere of replication).
  EXPECT_TRUE(isReplicableOpcode(Opcode::kLoad));
  EXPECT_TRUE(isReplicableOpcode(Opcode::kFLoad));
  EXPECT_TRUE(isReplicableOpcode(Opcode::kAdd));
  EXPECT_TRUE(isReplicableOpcode(Opcode::kFMul));
  EXPECT_TRUE(isReplicableOpcode(Opcode::kCmpEq));
}

// --- Instruction -----------------------------------------------------------------

TEST(InstructionTest, ToStringBinaryOp) {
  Instruction insn;
  insn.op = Opcode::kAdd;
  insn.defs = {Reg(RegClass::kGp, 3)};
  insn.uses = {Reg(RegClass::kGp, 1), Reg(RegClass::kGp, 2)};
  EXPECT_EQ(insn.toString(), "g3 = add g1, g2");
}

TEST(InstructionTest, ToStringLoadStore) {
  Instruction load;
  load.op = Opcode::kLoad;
  load.defs = {Reg(RegClass::kGp, 1)};
  load.uses = {Reg(RegClass::kGp, 0)};
  load.imm = 16;
  EXPECT_EQ(load.toString(), "g1 = load [g0+16]");

  Instruction store;
  store.op = Opcode::kStore;
  store.uses = {Reg(RegClass::kGp, 0), Reg(RegClass::kGp, 1)};
  store.imm = 8;
  EXPECT_EQ(store.toString(), "store [g0+8], g1");
}

TEST(InstructionTest, NonReplicatedPredicate) {
  Instruction store;
  store.op = Opcode::kStore;
  EXPECT_TRUE(store.isNonReplicated());

  Instruction add;
  add.op = Opcode::kAdd;
  EXPECT_FALSE(add.isNonReplicated());

  Instruction check;
  check.op = Opcode::kCheckG;
  check.origin = InsnOrigin::kCheck;
  EXPECT_FALSE(check.isNonReplicated());
  EXPECT_TRUE(check.isCheck());
}

TEST(InstructionTest, ReplicableConsidersOrigin) {
  Instruction add;
  add.op = Opcode::kAdd;
  EXPECT_TRUE(add.isReplicable());
  add.origin = InsnOrigin::kDuplicate;
  EXPECT_FALSE(add.isReplicable());
  add.origin = InsnOrigin::kSpill;
  EXPECT_FALSE(add.isReplicable());
}

// --- Function / Program ---------------------------------------------------------

TEST(FunctionTest, NewRegCountsPerClass) {
  Function fn(0, "f");
  const Reg g0 = fn.newReg(RegClass::kGp);
  const Reg g1 = fn.newReg(RegClass::kGp);
  const Reg f0 = fn.newReg(RegClass::kFp);
  EXPECT_EQ(g0.index, 0u);
  EXPECT_EQ(g1.index, 1u);
  EXPECT_EQ(f0.index, 0u);
  EXPECT_EQ(fn.regCount(RegClass::kGp), 2u);
  EXPECT_EQ(fn.regCount(RegClass::kFp), 1u);
  EXPECT_EQ(fn.regCount(RegClass::kPr), 0u);
}

TEST(FunctionTest, ReserveRegsOnlyRaises) {
  Function fn(0, "f");
  fn.reserveRegsAtLeast(RegClass::kGp, 10);
  EXPECT_EQ(fn.regCount(RegClass::kGp), 10u);
  fn.reserveRegsAtLeast(RegClass::kGp, 5);
  EXPECT_EQ(fn.regCount(RegClass::kGp), 10u);
  EXPECT_EQ(fn.newReg(RegClass::kGp).index, 10u);
}

TEST(FunctionTest, BlockIdsAreSequential) {
  Function fn(0, "f");
  EXPECT_EQ(fn.addBlock("a").id(), 0u);
  EXPECT_EQ(fn.addBlock("b").id(), 1u);
  EXPECT_EQ(fn.blockCount(), 2u);
  EXPECT_THROW(fn.block(2), FatalError);
}

TEST(FunctionTest, BlockReferencesStayValidAcrossGrowth) {
  Function fn(0, "f");
  BasicBlock& first = fn.addBlock("first");
  for (int i = 0; i < 100; ++i) {
    fn.addBlock("filler");
  }
  EXPECT_EQ(first.id(), 0u);
  EXPECT_EQ(&fn.block(0), &first);
}

TEST(ProgramTest, GlobalsAreAlignedAndSequential) {
  Program prog;
  const std::uint64_t a = prog.allocateGlobal("a", 3);
  const std::uint64_t b = prog.allocateGlobal("b", 8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 3);
  EXPECT_EQ(prog.symbol("a").size, 3u);
  EXPECT_TRUE(prog.hasSymbol("b"));
  EXPECT_FALSE(prog.hasSymbol("c"));
  EXPECT_THROW(prog.symbol("c"), FatalError);
}

TEST(ProgramTest, DuplicateGlobalRejected) {
  Program prog;
  prog.allocateGlobal("x", 8);
  EXPECT_THROW(prog.allocateGlobal("x", 8), FatalError);
}

TEST(ProgramTest, InitializedGlobalContents) {
  Program prog;
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 4};
  const std::uint64_t addr = prog.allocateGlobal("data", bytes);
  const std::size_t offset = addr - Program::kGlobalBase;
  EXPECT_EQ(prog.globalImage()[offset + 0], 1);
  EXPECT_EQ(prog.globalImage()[offset + 3], 4);
}

TEST(ProgramTest, FirstFunctionBecomesEntry) {
  Program prog;
  Function& main = prog.addFunction("main");
  prog.addFunction("helper");
  EXPECT_EQ(prog.entryFunction(), main.id());
  EXPECT_EQ(prog.findFunction("helper")->name(), "helper");
  EXPECT_EQ(prog.findFunction("nope"), nullptr);
}

// --- IrBuilder -----------------------------------------------------------------

TEST(IrBuilderTest, EmitsIntoCurrentBlock) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& block = b.createBlock("entry");
  b.setBlock(block);
  const Reg v = b.movImm(42);
  b.halt(v);
  ASSERT_EQ(block.insns().size(), 2u);
  EXPECT_EQ(block.insns()[0].op, Opcode::kMovImm);
  EXPECT_EQ(block.insns()[0].imm, 42);
  EXPECT_EQ(block.insns()[1].op, Opcode::kHalt);
}

TEST(IrBuilderTest, NoCurrentBlockThrows) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  EXPECT_THROW(b.movImm(1), FatalError);
}

TEST(IrBuilderTest, AppendAfterTerminatorThrows) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.halt(b.movImm(0));
  EXPECT_THROW(b.movImm(1), FatalError);
}

TEST(IrBuilderTest, CompareDefinesPredicate) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg p = b.cmpLt(b.movImm(1), b.movImm(2));
  EXPECT_EQ(p.cls, RegClass::kPr);
}

TEST(IrBuilderTest, FloatOpsDefineFpRegs) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg f = b.fAdd(b.fMovImm(1.0), b.fMovImm(2.0));
  EXPECT_EQ(f.cls, RegClass::kFp);
  const Reg g = b.f2i(f);
  EXPECT_EQ(g.cls, RegClass::kGp);
}

TEST(IrBuilderTest, CallChecksArityAndAllocatesResults) {
  Program prog;
  Function& helper = prog.addFunction("helper");
  helper.params().push_back(helper.newReg(RegClass::kGp));
  helper.returnClasses().push_back(RegClass::kGp);
  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));
  const Reg arg = b.movImm(1);
  const std::vector<Reg> results = b.call(helper, {arg});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cls, RegClass::kGp);
  EXPECT_THROW(b.call(helper, {arg, arg}), FatalError);
}

TEST(IrBuilderTest, RetChecksDeclaredReturns) {
  Program prog;
  Function& fn = prog.addFunction("f");
  fn.returnClasses().push_back(RegClass::kGp);
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg v = b.movImm(0);
  EXPECT_THROW(b.ret({}), FatalError);
  b.ret({v});
  EXPECT_EQ(fn.block(0).insns().back().op, Opcode::kRet);
}

TEST(IrBuilderTest, BrCondRecordsBothTargets) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& t = b.createBlock("t");
  BasicBlock& f = b.createBlock("f");
  b.setBlock(entry);
  const Reg p = b.pSetImm(true);
  b.brCond(p, t, f);
  const Instruction& term = entry.insns().back();
  EXPECT_EQ(term.target, t.id());
  EXPECT_EQ(term.target2, f.id());
  EXPECT_EQ(entry.successors(), (std::vector<BlockId>{t.id(), f.id()}));
}

TEST(IrBuilderTest, MovToDispatchesOnClass) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg g = b.movImm(1);
  const Reg f = b.fMovImm(1.0);
  const Reg p = b.pSetImm(false);
  b.movTo(g, b.movImm(2));
  b.movTo(f, b.fMovImm(2.0));
  b.movTo(p, b.pSetImm(true));
  const auto& insns = entry.insns();
  EXPECT_EQ(insns[insns.size() - 5].op, Opcode::kMov);
  EXPECT_EQ(insns[insns.size() - 3].op, Opcode::kFMov);
  EXPECT_EQ(insns[insns.size() - 1].op, Opcode::kPMov);
  EXPECT_THROW(b.movTo(g, f), FatalError);
}

TEST(IrBuilderTest, BinaryToValidatesOpcodeShape) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(1);
  const Reg c = b.movImm(2);
  b.binaryTo(Opcode::kAdd, a, a, c);
  EXPECT_THROW(b.binaryTo(Opcode::kMovImm, a, a, c), FatalError);
}

}  // namespace
}  // namespace casted::ir
