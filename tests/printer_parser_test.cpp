#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/check.h"
#include "passes/error_detection.h"
#include "test_util.h"

namespace casted::ir {
namespace {

TEST(PrinterTest, TinyProgramRendersSymbolsAndEntry) {
  const Program prog = testutil::makeTinyProgram();
  const std::string text = printProgram(prog);
  EXPECT_NE(text.find("global input 16"), std::string::npos);
  EXPECT_NE(text.find("global output 8"), std::string::npos);
  EXPECT_NE(text.find("func @main() -> ()"), std::string::npos);
  EXPECT_NE(text.find("entry @main"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(PrinterTest, NonZeroGlobalsPrintHexBytes) {
  Program prog;
  prog.allocateGlobal("data", std::vector<std::uint8_t>{0xde, 0xad});
  const std::string text = printProgram(prog);
  EXPECT_NE(text.find("global data 2 = de ad"), std::string::npos);
}

TEST(PrinterTest, UnprotectedFunctionAnnotated) {
  Program prog;
  Function& fn = prog.addFunction("lib");
  fn.setProtected(false);
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.halt(b.movImm(0));
  EXPECT_NE(printFunction(fn).find("unprotected"), std::string::npos);
}

TEST(ParserTest, RoundTripTinyProgram) {
  const Program prog = testutil::makeTinyProgram();
  const std::string once = printProgram(prog);
  const Program reparsed = parseProgram(once);
  EXPECT_TRUE(verify(reparsed).empty());
  EXPECT_EQ(printProgram(reparsed), once);
}

TEST(ParserTest, RoundTripLoopProgram) {
  const std::string once = printProgram(testutil::makeLoopProgram(5));
  EXPECT_EQ(printProgram(parseProgram(once)), once);
}

TEST(ParserTest, RoundTripAfterErrorDetection) {
  // The transformed program carries !dup/!guard annotations and explicit
  // ids; they must survive the round trip exactly.
  Program prog = testutil::makeTinyProgram();
  passes::applyErrorDetection(prog);
  const std::string once = printProgram(prog);
  EXPECT_NE(once.find("!dup="), std::string::npos);
  EXPECT_NE(once.find("!guard="), std::string::npos);
  const Program reparsed = parseProgram(once);
  EXPECT_TRUE(verify(reparsed).empty());
  EXPECT_EQ(printProgram(reparsed), once);
}

TEST(ParserTest, ParsesNegativeOffsetsAndImmediates) {
  const std::string text =
      "global output 8\n"
      "func @main() -> () {\n"
      "bb0:\n"
      "  g0 = movi -5\n"
      "  g1 = addi g0, -3\n"
      "  g2 = movi 4104\n"
      "  g3 = load [g2+-8]\n"
      "  halt g1\n"
      "}\n"
      "entry @main\n";
  const Program prog = parseProgram(text);
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_EQ(insns[0].imm, -5);
  EXPECT_EQ(insns[1].imm, -3);
  EXPECT_EQ(insns[3].imm, -8);
}

TEST(ParserTest, ParsesFpImmediateExactly) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.fMovImm(0.1 + 0.2);  // a value that needs all 17 digits
  b.halt(b.movImm(0));
  const std::string text = printProgram(prog);
  const Program reparsed = parseProgram(text);
  EXPECT_EQ(reparsed.function(0).block(0).insns()[0].fimm, 0.1 + 0.2);
}

TEST(ParserTest, ParsesCallsByName) {
  const std::string text =
      "func @helper(g0) -> (g) {\n"
      "bb0:\n"
      "  g1 = addi g0, 1\n"
      "  ret g1\n"
      "}\n"
      "func @main() -> () {\n"
      "bb0:\n"
      "  g0 = movi 1\n"
      "  g1 = call g0, @helper\n"
      "  halt g1\n"
      "}\n"
      "entry @main\n";
  const Program prog = parseProgram(text);
  EXPECT_TRUE(verify(prog).empty());
  EXPECT_EQ(prog.function(1).block(0).insns()[1].callee, 0u);
  EXPECT_EQ(prog.entryFunction(), 1u);
}

TEST(ParserTest, ForwardCallReferenceWorks) {
  const std::string text =
      "func @main() -> () {\n"
      "bb0:\n"
      "  g0 = call @later\n"
      "  halt g0\n"
      "}\n"
      "func @later() -> (g) {\n"
      "bb0:\n"
      "  g0 = movi 9\n"
      "  ret g0\n"
      "}\n"
      "entry @main\n";
  const Program prog = parseProgram(text);
  EXPECT_TRUE(verify(prog).empty());
}

TEST(ParserTest, UnknownMnemonicReported) {
  const std::string text =
      "func @main() -> () {\nbb0:\n  g0 = frobnicate g1\n}\n";
  try {
    parseProgram(text);
    FAIL() << "expected parse error";
  } catch (const FatalError& error) {
    EXPECT_NE(std::string(error.what()).find("frobnicate"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
  }
}

TEST(ParserTest, UnknownCalleeReported) {
  const std::string text =
      "func @main() -> () {\nbb0:\n  call @ghost\n  halt g0\n}\n";
  EXPECT_THROW(parseProgram(text), FatalError);
}

TEST(ParserTest, NonSequentialBlockLabelRejected) {
  const std::string text = "func @main() -> () {\nbb3:\n  halt g0\n}\n";
  EXPECT_THROW(parseProgram(text), FatalError);
}

TEST(ParserTest, GlobalSizeMismatchRejected) {
  EXPECT_THROW(parseProgram("global x 4 = aa bb\n"), FatalError);
}

TEST(ParserTest, UnterminatedFunctionRejected) {
  EXPECT_THROW(parseProgram("func @main() -> () {\nbb0:\n  halt g0\n"),
               FatalError);
}

TEST(ParserTest, UnprotectedFlagRoundTrips) {
  const std::string text =
      "func @lib() -> () unprotected {\n"
      "bb0:\n"
      "  g0 = movi 0\n"
      "  halt g0\n"
      "}\n"
      "entry @lib\n";
  const Program prog = parseProgram(text);
  EXPECT_FALSE(prog.function(0).isProtected());
  EXPECT_EQ(printProgram(prog), text);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "; leading comment\n"
      "\n"
      "func @main() -> () {\n"
      "bb0:\n"
      "  g0 = movi 1 ; trailing comment\n"
      "  halt g0\n"
      "}\n"
      "entry @main\n";
  const Program prog = parseProgram(text);
  EXPECT_TRUE(verify(prog).empty());
  EXPECT_EQ(prog.function(0).block(0).insns()[0].imm, 1);
}

TEST(ParserTest, ClusterAnnotationRoundTrips) {
  Program prog = testutil::makeTinyProgram();
  prog.function(0).block(0).insns()[2].cluster = 1;
  const std::string once = printProgram(prog);
  EXPECT_NE(once.find("!c=1"), std::string::npos);
  const Program reparsed = parseProgram(once);
  EXPECT_EQ(reparsed.function(0).block(0).insns()[2].cluster, 1);
  EXPECT_EQ(printProgram(reparsed), once);
}

// Property: print/parse/print is a fixpoint for random programs, both plain
// and after the error-detection pass.
class RoundTripPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripPropertyTest, PrintParsePrintIsFixpoint) {
  Program prog = testutil::makeRandomStraightLine(
      static_cast<std::uint64_t>(GetParam()) * 104729, 40);
  if (GetParam() % 2 == 1) {
    passes::applyErrorDetection(prog);
  }
  const std::string once = printProgram(prog);
  const Program reparsed = parseProgram(once);
  EXPECT_TRUE(verify(reparsed).empty());
  EXPECT_EQ(printProgram(reparsed), once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace casted::ir
