// ProtectionLint tests over hand-built IR with deliberate protection gaps.
//
// Each snippet replicates a tiny program SWIFT-style by hand — duplicates
// and guard-linked checks exactly as the error-detection pass would emit
// them — except for ONE deliberately missing piece of the protection
// structure: an unchecked store address, a compare feeding a branch with no
// check, an unreplicated load whose value merges into both streams.  The
// lint must flag exactly the defs that feed the gap, and exhaustive
// injection must confirm every flagged site really leaks at least one
// silent-data-corruption bit (the gaps are genuine, not lint
// conservatism) while every unflagged site leaks none (the soundness
// contract of protection_lint.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/exhaustive.h"
#include "ir/builder.h"
#include "ir/function.h"
#include "ir/verifier.h"
#include "passes/protection_lint.h"
#include "sched/list_scheduler.h"
#include "test_util.h"

namespace casted {
namespace {

using passes::Protection;

// Hand-rolled sphere of replication: `replicateLast` appends the kDuplicate
// shadow copy of the block's last instruction (fresh shadow defs; shadow
// uses fall back to the ORIGINAL register when the value was never
// replicated — which is exactly how an unreplicated def merges the two
// streams).  `check` + `guardLast` emit fused checks guard-linked to a
// consumer, as the error-detection pass does.
struct ShadowEnv {
  ir::Function& fn;
  ir::IrBuilder b;
  std::unordered_map<ir::Reg, ir::Reg> shadow;

  explicit ShadowEnv(ir::Function& f) : fn(f), b(f) {}

  ir::InsnId lastId() { return b.currentBlock().insns().back().id; }

  void replicateLast() {
    const ir::Instruction orig = b.currentBlock().insns().back();  // copy
    std::vector<ir::Reg> defs;
    std::vector<ir::Reg> uses;
    for (const ir::Reg& use : orig.uses) {
      const auto it = shadow.find(use);
      uses.push_back(it == shadow.end() ? use : it->second);
    }
    for (const ir::Reg& def : orig.defs) {
      const ir::Reg copy = fn.newReg(def.cls);
      shadow.emplace(def, copy);
      defs.push_back(copy);
    }
    ir::Instruction& dup = b.emit(orig.op, std::move(defs), std::move(uses));
    dup.imm = orig.imm;
    dup.fimm = orig.fimm;
    dup.origin = ir::InsnOrigin::kDuplicate;
    dup.duplicateOf = orig.id;
  }

  // Emits check(r, shadow(r)); returns its index within the current block so
  // guardLast can link it to the consumer emitted after it.
  std::size_t check(ir::Reg r) {
    const ir::Opcode op = r.cls == ir::RegClass::kGp   ? ir::Opcode::kCheckG
                          : r.cls == ir::RegClass::kFp ? ir::Opcode::kCheckF
                                                       : ir::Opcode::kCheckP;
    ir::Instruction& insn = b.emit(op, {}, {r, shadow.at(r)});
    insn.origin = ir::InsnOrigin::kCheck;
    return b.currentBlock().insns().size() - 1;
  }

  // Points every check in `checks` at the block's last instruction.
  void guardLast(std::initializer_list<std::size_t> checks) {
    std::vector<ir::Instruction>& insns = b.currentBlock().insns();
    for (const std::size_t index : checks) {
      insns[index].guard = insns.back().id;
    }
  }

  // Fully protected epilogue: replicated+checked exit code.
  void haltChecked() {
    const ir::Reg zero = b.movImm(0);
    replicateLast();
    const std::size_t c = check(zero);
    b.halt(zero);
    guardLast({c});
  }
};

struct Snippet {
  ir::Program prog;
  // Static instructions the lint must call unprotected — and no others.
  std::vector<ir::InsnId> gapInsns;
};

// out[8..16) = 42 through a checked VALUE but an unchecked ADDRESS: the
// address def is the one silent-data-corruption channel (a flipped address
// bit redirects the store and the golden bytes are never written).
Snippet uncheckedStoreAddress() {
  Snippet s;
  const std::uint64_t outAddr = s.prog.allocateGlobal("output", 32);
  ShadowEnv env(s.prog.addFunction("main"));
  env.b.setBlock(env.b.createBlock("entry"));

  const ir::Reg addr =
      env.b.movImm(static_cast<std::int64_t>(outAddr + 8));
  s.gapInsns.push_back(env.lastId());
  env.replicateLast();
  const ir::Reg value = env.b.movImm(42);
  env.replicateLast();
  const std::size_t cv = env.check(value);
  env.b.store(addr, 0, value);  // addr has a shadow but no check: the gap
  env.guardLast({cv});
  env.haltChecked();
  return s;
}

// A compare feeding kBrCond with no check on the predicate: flipping the
// predicate (or the value it compares) silently steers execution to the
// wrong arm, which stores a different constant.
Snippet unguardedBranchPredicate() {
  Snippet s;
  const std::uint64_t outAddr = s.prog.allocateGlobal("output", 8);
  ShadowEnv env(s.prog.addFunction("main"));
  ir::BasicBlock& entry = env.b.createBlock("entry");
  ir::BasicBlock& less = env.b.createBlock("less");
  ir::BasicBlock& geq = env.b.createBlock("geq");
  ir::BasicBlock& join = env.b.createBlock("join");

  env.b.setBlock(entry);
  const ir::Reg outBase =
      env.b.movImm(static_cast<std::int64_t>(outAddr));
  env.replicateLast();
  const ir::Reg x = env.b.movImm(3);
  s.gapInsns.push_back(env.lastId());
  env.replicateLast();
  const ir::Reg pred = env.b.cmpLtImm(x, 10);
  s.gapInsns.push_back(env.lastId());
  env.replicateLast();
  env.b.brCond(pred, less, geq);  // predicate never checked: the gap

  const auto storeConst = [&](ir::BasicBlock& block, std::int64_t value) {
    env.b.setBlock(block);
    const ir::Reg c = env.b.movImm(value);
    env.replicateLast();
    const std::size_t cc = env.check(c);
    const std::size_t ca = env.check(outBase);
    env.b.store(outBase, 0, c);
    env.guardLast({cc, ca});
    env.b.br(join);
  };
  storeConst(less, 111);
  storeConst(geq, 222);
  env.b.setBlock(join);
  env.haltChecked();
  return s;
}

// An unreplicated load: its value feeds BOTH instruction streams, so the
// downstream check compares two equally corrupt copies and passes.  Both
// the load and the address def behind it are silent channels.
Snippet unreplicatedLoad() {
  Snippet s;
  std::vector<std::uint8_t> pad(8, 0);
  pad[0] = 77;  // keeps inAddr-8 mapped and distinct from input[0]
  s.prog.allocateGlobal("pad", pad);
  std::vector<std::uint8_t> input(16, 0);
  input[0] = 5;
  input[8] = 9;
  const std::uint64_t inAddr = s.prog.allocateGlobal("input", input);
  const std::uint64_t outAddr = s.prog.allocateGlobal("output", 8);
  ShadowEnv env(s.prog.addFunction("main"));
  env.b.setBlock(env.b.createBlock("entry"));

  const ir::Reg inBase = env.b.movImm(static_cast<std::int64_t>(inAddr));
  s.gapInsns.push_back(env.lastId());
  env.replicateLast();
  const ir::Reg value = env.b.load(inBase, 0);  // no duplicate: the gap
  s.gapInsns.push_back(env.lastId());
  const ir::Reg sum = env.b.addImm(value, 5);
  env.replicateLast();  // shadow addImm reads `value` too — streams merged
  const ir::Reg outBase =
      env.b.movImm(static_cast<std::int64_t>(outAddr));
  env.replicateLast();
  const std::size_t cs = env.check(sum);
  const std::size_t ca = env.check(outBase);
  env.b.store(outBase, 0, sum);
  env.guardLast({cs, ca});
  env.haltChecked();
  return s;
}

std::vector<Snippet (*)()> snippets() {
  return {&uncheckedStoreAddress, &unguardedBranchPredicate,
          &unreplicatedLoad};
}

// The lint's unprotected set, as static instruction ids (every snippet
// instruction defines at most one register, so insn granularity is exact).
std::unordered_set<ir::InsnId> lintGaps(const ir::Program& prog,
                                        passes::Scheme scheme) {
  const passes::ProtectionLintResult lint =
      passes::lintProtection(prog, scheme);
  std::unordered_set<ir::InsnId> gaps;
  for (const passes::LintSite& site : lint.sites) {
    if (site.protection == Protection::kUnprotected) {
      gaps.insert(site.insn);
    }
  }
  return gaps;
}

TEST(ProtectionLintTest, FlagsExactlyTheDeliberateGaps) {
  for (const auto make : snippets()) {
    const Snippet snippet = make();
    ir::verifyOrThrow(snippet.prog);
    for (const passes::Scheme scheme :
         {passes::Scheme::kSced, passes::Scheme::kDced,
          passes::Scheme::kCasted}) {
      const std::unordered_set<ir::InsnId> gaps =
          lintGaps(snippet.prog, scheme);
      const std::unordered_set<ir::InsnId> expected(
          snippet.gapInsns.begin(), snippet.gapInsns.end());
      EXPECT_EQ(gaps, expected)
          << passes::lintProtection(snippet.prog, scheme).toString();
    }
  }
}

TEST(ProtectionLintTest, NoedMarksEveryDefUnprotected) {
  const Snippet snippet = uncheckedStoreAddress();
  const passes::ProtectionLintResult lint =
      passes::lintProtection(snippet.prog, passes::Scheme::kNoed);
  ASSERT_FALSE(lint.sites.empty());
  for (const passes::LintSite& site : lint.sites) {
    EXPECT_EQ(site.protection, Protection::kUnprotected) << site.reason;
  }
  EXPECT_EQ(lint.gaps(), lint.sites.size());
}

TEST(ProtectionLintTest, UnprotectedFunctionMarksEveryDefUnprotected) {
  Snippet snippet = unreplicatedLoad();
  snippet.prog.function(0).setProtected(false);
  const passes::ProtectionLintResult lint =
      passes::lintProtection(snippet.prog, passes::Scheme::kCasted);
  for (const passes::LintSite& site : lint.sites) {
    EXPECT_EQ(site.protection, Protection::kUnprotected) << site.reason;
  }
}

// The cross-validation half of the contract, per snippet:
//   * every flagged def leaks at least one SDC bit under exhaustive
//     injection (the deliberate gaps are real vulnerabilities);
//   * every unflagged def leaks none (lint soundness).
TEST(ProtectionLintTest, ExhaustiveInjectionConfirmsEveryGap) {
  const arch::MachineConfig machine = testutil::machine(2, 1);
  for (const auto make : snippets()) {
    const Snippet snippet = make();
    ir::verifyOrThrow(snippet.prog);
    const sched::ProgramSchedule schedule =
        sched::scheduleProgram(snippet.prog, machine);
    const fault::GroundTruthReport truth =
        fault::enumerateFaultSpace(snippet.prog, schedule, machine);
    const std::unordered_set<ir::InsnId> gaps =
        lintGaps(snippet.prog, passes::Scheme::kCasted);

    for (const ir::InsnId gap : snippet.gapInsns) {
      const fault::SiteOutcome* outcome = truth.find(0, gap);
      ASSERT_NE(outcome, nullptr) << "gap insn #" << gap << " never executed";
      EXPECT_GE(outcome->sdcSites(), 1u)
          << "flagged site leaks no SDC: " << outcome->text << "\n"
          << truth.toString();
    }
    for (const fault::SiteOutcome& outcome : truth.perInsn) {
      if (!gaps.contains(outcome.insn)) {
        EXPECT_EQ(outcome.sdcSites(), 0u)
            << "lint-clean site classified SDC: " << outcome.text;
      }
    }
  }
}

}  // namespace
}  // namespace casted
