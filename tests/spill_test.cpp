#include <gtest/gtest.h>

#include <cstring>

#include "sched/list_scheduler.h"

#include "core/pipeline.h"
#include "dfg/liveness.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/error_detection.h"
#include "passes/spill.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::passes {
namespace {

using ir::IrBuilder;
using ir::Program;
using ir::Reg;
using ir::RegClass;

// A program holding `live` GP values alive simultaneously, then reducing
// them into the output.
Program highPressureProgram(int live) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  std::vector<Reg> values;
  for (int i = 0; i < live; ++i) {
    values.push_back(b.movImm(i * 3 + 1));
  }
  Reg sum = values[0];
  for (int i = 1; i < live; ++i) {
    sum = b.add(sum, values[static_cast<std::size_t>(i)]);
  }
  b.store(b.movImm(static_cast<std::int64_t>(out)), 0, sum);
  b.halt(b.movImm(0));
  return prog;
}

std::int64_t runOutput(const Program& prog) {
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sched::ProgramSchedule schedule =
      sched::scheduleProgram(prog, config);
  const sim::RunResult result = sim::simulate(prog, schedule, config);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  std::int64_t value = 0;
  std::memcpy(&value, result.output.data(), 8);
  return value;
}

TEST(SpillTest, NoSpillWhenPressureFits) {
  Program prog = highPressureProgram(10);
  const SpillStats stats = applySpilling(prog, testutil::machine(2, 1));
  EXPECT_EQ(stats.spilledRegs, 0u);
  EXPECT_FALSE(prog.hasSymbol("spill$main"));
}

TEST(SpillTest, SpillsUntilPressureFits) {
  Program prog = highPressureProgram(100);  // > 64 GP registers live
  const arch::MachineConfig config = testutil::machine(2, 1);
  const SpillStats stats = applySpilling(prog, config);
  EXPECT_GT(stats.spilledRegs, 0u);
  EXPECT_GT(stats.spillStores, 0u);
  EXPECT_GT(stats.spillReloads, 0u);
  EXPECT_TRUE(prog.hasSymbol("spill$main"));
  const dfg::LivenessInfo liveness = dfg::computeLiveness(prog.function(0));
  EXPECT_LE(liveness.maxPressure[static_cast<int>(RegClass::kGp)],
            config.registerFile.gp);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(SpillTest, SemanticsPreserved) {
  Program reference = highPressureProgram(100);
  Program spilled = highPressureProgram(100);
  applySpilling(spilled, testutil::machine(2, 1));
  EXPECT_EQ(runOutput(spilled), runOutput(reference));
}

TEST(SpillTest, SpillCodeIsCompilerGenerated) {
  Program prog = highPressureProgram(100);
  applySpilling(prog, testutil::machine(2, 1));
  bool sawSpill = false;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == ir::InsnOrigin::kSpill) {
      sawSpill = true;
      EXPECT_TRUE(insn.isMemory() || insn.op == ir::Opcode::kMovImm);
    }
  }
  EXPECT_TRUE(sawSpill);
}

TEST(SpillTest, SpillCodeNotReplicatedByErrorDetection) {
  // Pipeline order is ED then spilling, but spill code inserted first must
  // survive a later ED application untouched (compiler-generated rule).
  Program prog = highPressureProgram(100);
  applySpilling(prog, testutil::machine(2, 1));
  const std::size_t spillInsnsBefore = [&] {
    std::size_t count = 0;
    for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
      count += insn.origin == ir::InsnOrigin::kSpill ? 1 : 0;
    }
    return count;
  }();
  applyErrorDetection(prog);
  std::size_t spillInsns = 0;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == ir::InsnOrigin::kSpill) {
      ++spillInsns;
      EXPECT_FALSE(insn.isReplicable());
    }
  }
  EXPECT_EQ(spillInsns, spillInsnsBefore);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(SpillTest, DuplicationTriggersSpillsTheOriginalAvoids) {
  // §IV-B1: code that fits the register file before duplication may spill
  // after it — the shadow stream doubles the pressure.
  Program original = highPressureProgram(40);
  Program duplicated = highPressureProgram(40);
  applyErrorDetection(duplicated);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const SpillStats before = applySpilling(original, config);
  const SpillStats after = applySpilling(duplicated, config);
  EXPECT_EQ(before.spilledRegs, 0u);
  EXPECT_GT(after.spilledRegs, 0u);
  EXPECT_TRUE(ir::verify(duplicated).empty());
}

TEST(SpillTest, PipelineIntegrationPreservesWorkloadOutput) {
  const workloads::Workload wl = workloads::makeCjpeg(1);
  const arch::MachineConfig config = testutil::machine(2, 1);
  core::PipelineOptions options;
  const core::CompiledProgram plain =
      core::compile(wl.program, config, Scheme::kSced, options);
  options.modelRegisterPressure = true;
  const core::CompiledProgram spilled =
      core::compile(wl.program, config, Scheme::kSced, options);
  // The DCT block overflows the register file.
  EXPECT_GT(spilled.report.stat("spill", "spilled-regs"), 0u);
  const sim::RunResult a = core::run(plain);
  const sim::RunResult b = core::run(spilled);
  EXPECT_EQ(a.output, b.output);
  // Spilling costs cycles — that is the point.
  EXPECT_GT(b.stats.cycles, a.stats.cycles);
}

TEST(SpillTest, SpilledParameterStoredAtEntry) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& helper = prog.addFunction("helper");
  const Reg param = helper.newReg(RegClass::kGp);
  helper.params() = {param};
  helper.returnClasses() = {RegClass::kGp};
  {
    IrBuilder hb(helper);
    hb.setBlock(hb.createBlock("body"));
    // Lots of pressure inside the helper, with the parameter used last.
    std::vector<Reg> values;
    for (int i = 0; i < 70; ++i) {
      values.push_back(hb.movImm(i));
    }
    Reg sum = values[0];
    for (std::size_t i = 1; i < values.size(); ++i) {
      sum = hb.add(sum, values[i]);
    }
    hb.ret({hb.add(sum, param)});
  }
  ir::Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  {
    IrBuilder b(main);
    b.setBlock(b.createBlock("entry"));
    const Reg v = b.call(helper, {b.movImm(1000)})[0];
    b.halt(v);
  }
  const Program reference = prog;
  applySpilling(prog, testutil::machine(2, 1));
  EXPECT_TRUE(ir::verify(prog).empty());
  // Behaviour unchanged: exit code = sum + 1000.
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult spilled = sim::simulate(
      prog, sched::scheduleProgram(prog, config), config);
  const sim::RunResult plain = sim::simulate(
      reference, sched::scheduleProgram(reference, config), config);
  EXPECT_EQ(spilled.exitCode, plain.exitCode);
}

// --- split checks -----------------------------------------------------------

TEST(SplitChecksTest, EmitsComparePlusTrapPairs) {
  Program prog = testutil::makeTinyProgram();
  ErrorDetectionOptions options;
  options.splitChecks = true;
  const ErrorDetectionStats stats = applyErrorDetection(prog, options);
  EXPECT_GT(stats.checks, 0u);
  std::size_t cmps = 0;
  std::size_t traps = 0;
  const auto& insns = prog.function(0).block(0).insns();
  for (std::size_t i = 0; i < insns.size(); ++i) {
    if (insns[i].op == ir::Opcode::kTrapIf) {
      ++traps;
      ASSERT_GT(i, 0u);
      // The trap consumes the predicate of the compare just before it.
      EXPECT_EQ(insns[i - 1].defs[0], insns[i].uses[0]);
      EXPECT_EQ(insns[i - 1].origin, ir::InsnOrigin::kCheck);
    }
    if (insns[i].origin == ir::InsnOrigin::kCheck && !insns[i].defs.empty()) {
      ++cmps;
    }
  }
  EXPECT_EQ(cmps, traps);
  EXPECT_EQ(traps, stats.checks);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(SplitChecksTest, DetectsInjectedFaults) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig config = testutil::machine(2, 2);
  core::PipelineOptions options;
  options.errorDetection.splitChecks = true;
  const core::CompiledProgram bin =
      core::compile(wl.program, config, Scheme::kCasted, options);
  fault::CampaignOptions campaignOptions;
  campaignOptions.trials = 30;
  const fault::CoverageReport report = core::campaign(bin, campaignOptions);
  EXPECT_GT(report.fraction(fault::Outcome::kDetected), 0.2);
  EXPECT_EQ(report.counts[static_cast<int>(fault::Outcome::kDataCorrupt)],
            0u);
}

TEST(SplitChecksTest, SplitCostsMoreThanFused) {
  const workloads::Workload wl = workloads::makeH263enc(1);
  const arch::MachineConfig config = testutil::machine(1, 1);
  core::PipelineOptions fused;
  core::PipelineOptions split;
  split.errorDetection.splitChecks = true;
  const sim::RunResult fusedRun = core::run(
      core::compile(wl.program, config, Scheme::kSced, fused));
  const sim::RunResult splitRun = core::run(
      core::compile(wl.program, config, Scheme::kSced, split));
  EXPECT_GT(splitRun.stats.cycles, fusedRun.stats.cycles);
  EXPECT_EQ(splitRun.output, fusedRun.output);
}

TEST(SplitChecksTest, FloatSplitCheckIsBitExact) {
  // fcmpneb must compare bit patterns (a NaN equals itself here).
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg nan = b.fDiv(b.fMovImm(0.0), b.fMovImm(0.0));
  const Reg nanCopy = b.fMov(nan);
  const Reg differs = b.emit(ir::Opcode::kFCmpNeBits,
                             {fn.newReg(RegClass::kPr)}, {nan, nanCopy})
                          .defs[0];
  b.emit(ir::Opcode::kTrapIf, {}, {differs}).origin =
      ir::InsnOrigin::kCheck;
  b.halt(b.movImm(0));
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult result = sim::simulate(
      prog, sched::scheduleProgram(prog, config), config);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);  // NOT detected
}

}  // namespace
}  // namespace casted::passes
