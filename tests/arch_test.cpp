#include <gtest/gtest.h>

#include "arch/machine_config.h"
#include "support/check.h"

namespace casted::arch {
namespace {

TEST(MachineConfigTest, PaperMachineMatchesTableOne) {
  const MachineConfig machine = makePaperMachine(2, 1);
  EXPECT_EQ(machine.clusterCount, 2u);
  EXPECT_EQ(machine.issueWidth, 2u);
  EXPECT_EQ(machine.interClusterDelay, 1u);
  EXPECT_EQ(machine.registerFile.gp, 64u);
  EXPECT_EQ(machine.registerFile.fp, 64u);
  EXPECT_EQ(machine.registerFile.pr, 32u);
  EXPECT_EQ(machine.cache.levels[0].sizeBytes, 16u * 1024);
  EXPECT_EQ(machine.cache.levels[0].blockBytes, 64u);
  EXPECT_EQ(machine.cache.levels[0].associativity, 4u);
  EXPECT_EQ(machine.cache.levels[1].sizeBytes, 256u * 1024);
  EXPECT_EQ(machine.cache.levels[2].sizeBytes, 3u * 1024 * 1024);
  EXPECT_EQ(machine.cache.levels[2].associativity, 12u);
  EXPECT_EQ(machine.cache.memoryLatency, 150u);
}

TEST(MachineConfigTest, LatencyLookupCoversAllClasses) {
  const MachineConfig machine = makePaperMachine(2, 1);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kAdd), machine.latencies.intAlu);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kMul), machine.latencies.intMul);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kDiv), machine.latencies.intDiv);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kFAdd), machine.latencies.fpAlu);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kFMul), machine.latencies.fpMul);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kFDiv), machine.latencies.fpDiv);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kLoad), machine.latencies.mem);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kBr), machine.latencies.branch);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kCall), machine.latencies.call);
  EXPECT_EQ(machine.latencyFor(ir::Opcode::kCheckG),
            machine.latencies.intAlu);
}

TEST(MachineConfigTest, RegisterFileLookup) {
  const RegisterFileConfig files;
  EXPECT_EQ(files.forClass(ir::RegClass::kGp), 64u);
  EXPECT_EQ(files.forClass(ir::RegClass::kFp), 64u);
  EXPECT_EQ(files.forClass(ir::RegClass::kPr), 32u);
}

TEST(MachineConfigTest, PortLimitsDefaultToIssueWidth) {
  MachineConfig machine = makePaperMachine(4, 1);
  EXPECT_EQ(machine.portLimit(ir::FuClass::kIntAlu), 4u);
  EXPECT_EQ(machine.portLimit(ir::FuClass::kMem), 4u);
  // Branches default to a single unit.
  EXPECT_EQ(machine.portLimit(ir::FuClass::kBranch), 1u);
  machine.memPortsPerCluster = 2;
  machine.fpPortsPerCluster = 1;
  EXPECT_EQ(machine.portLimit(ir::FuClass::kMem), 2u);
  EXPECT_EQ(machine.portLimit(ir::FuClass::kFpMul), 1u);
  EXPECT_EQ(machine.portLimit(ir::FuClass::kIntAlu), 4u);
}

TEST(MachineConfigTest, ValidationRejectsNonsense) {
  MachineConfig zeroClusters = makePaperMachine(2, 1);
  zeroClusters.clusterCount = 0;
  EXPECT_THROW(zeroClusters.validate(), FatalError);

  MachineConfig zeroIssue = makePaperMachine(2, 1);
  zeroIssue.issueWidth = 0;
  EXPECT_THROW(zeroIssue.validate(), FatalError);

  MachineConfig zeroLatency = makePaperMachine(2, 1);
  zeroLatency.latencies.intAlu = 0;
  EXPECT_THROW(zeroLatency.validate(), FatalError);

  MachineConfig emptyFile = makePaperMachine(2, 1);
  emptyFile.registerFile.pr = 0;
  EXPECT_THROW(emptyFile.validate(), FatalError);
}

TEST(CacheConfigTest, ValidationRejectsBadGeometry) {
  CacheConfig oddBlock;
  oddBlock.levels[0].blockBytes = 48;
  EXPECT_THROW(oddBlock.validate(), FatalError);

  CacheConfig badSets;
  badSets.levels[0].sizeBytes = 3 * 1024;  // 12 sets: not a power of two
  EXPECT_THROW(badSets.validate(), FatalError);

  CacheConfig decreasing;
  decreasing.levels[2].latency = 2;
  EXPECT_THROW(decreasing.validate(), FatalError);

  CacheConfig zeroAssoc;
  zeroAssoc.levels[1].associativity = 0;
  EXPECT_THROW(zeroAssoc.validate(), FatalError);
}

TEST(MachineConfigTest, ToStringIsDescriptive) {
  EXPECT_EQ(makePaperMachine(3, 2).toString(), "2x issue=3 delay=2");
}

TEST(MachineConfigTest, DelayZeroIsLegal) {
  // A zero-delay interconnect is an idealised machine; it must validate
  // and behave like "free" communication in the ready model.
  MachineConfig machine = makePaperMachine(2, 1);
  machine.interClusterDelay = 0;
  EXPECT_NO_THROW(machine.validate());
}

}  // namespace
}  // namespace casted::arch
