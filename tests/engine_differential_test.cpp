// Differential property test: the decoded engine (sim::Engine::kDecoded)
// must produce field-for-field identical RunResults to the reference
// IR-walking interpreter (sim::Engine::kReference) — same exit kind, trap,
// exit code, output snapshot, and every statistic down to per-cache-level
// hit/miss counts — for every program, schedule, machine and fault plan.
//
// The corpus is random CFG programs compiled under all four schemes (NOED /
// SCED / DCED / CASTED, so CHECK instructions, duplicated code and cluster
// assignment are all exercised), plus straight-line programs and the
// call-heavy paper workloads.  Each compiled binary runs fault-free and
// under several random fault plans (covering detected / trapped / corrupt /
// timeout paths).  CASTED_TEST_TRIALS caps the corpus size in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "fault/campaign.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::sim {
namespace {

using passes::Scheme;

// Compares every observable field of two RunResults.  Any mismatch is an
// equivalence-contract violation; `context` says which program/plan failed.
void expectIdentical(const RunResult& ref, const RunResult& dec,
                     const std::string& context) {
  EXPECT_EQ(static_cast<int>(ref.exit), static_cast<int>(dec.exit)) << context;
  EXPECT_EQ(static_cast<int>(ref.trap), static_cast<int>(dec.trap)) << context;
  EXPECT_EQ(ref.exitCode, dec.exitCode) << context;
  EXPECT_EQ(ref.output, dec.output) << context;
  EXPECT_EQ(ref.stats.cycles, dec.stats.cycles) << context;
  EXPECT_EQ(ref.stats.stallCycles, dec.stats.stallCycles) << context;
  EXPECT_EQ(ref.stats.dynamicInsns, dec.stats.dynamicInsns) << context;
  EXPECT_EQ(ref.stats.dynamicDefInsns, dec.stats.dynamicDefInsns) << context;
  EXPECT_EQ(ref.stats.blockExecutions, dec.stats.blockExecutions) << context;
  EXPECT_EQ(ref.stats.memAccesses, dec.stats.memAccesses) << context;
  EXPECT_EQ(ref.stats.memoryAccesses, dec.stats.memoryAccesses) << context;
  for (int level = 0; level < 3; ++level) {
    EXPECT_EQ(ref.stats.cacheLevel[level].hits,
              dec.stats.cacheLevel[level].hits)
        << context << " L" << (level + 1);
    EXPECT_EQ(ref.stats.cacheLevel[level].misses,
              dec.stats.cacheLevel[level].misses)
        << context << " L" << (level + 1);
  }
}

// Runs one compiled binary through both engines, fault-free and under
// `faultTrials` random fault plans, demanding identical results each time.
void runDifferential(const core::CompiledProgram& bin,
                     const std::string& label, std::uint64_t faultSeed,
                     std::size_t faultTrials) {
  SimOptions refOptions;
  refOptions.engine = Engine::kReference;
  SimOptions decOptions;
  decOptions.engine = Engine::kDecoded;

  const RunResult refGolden =
      simulate(bin.program, bin.schedule, bin.machine, refOptions);
  const RunResult decGolden =
      simulate(bin.program, bin.schedule, bin.machine, decOptions);
  expectIdentical(refGolden, decGolden, label + " fault-free");
  if (refGolden.exit != ExitKind::kHalted ||
      refGolden.stats.dynamicDefInsns == 0) {
    return;  // no fault-target population to draw from
  }

  for (std::size_t trial = 0; trial < faultTrials; ++trial) {
    Rng rng(deriveStreamSeed(faultSeed, trial));
    const FaultPlan plan =
        fault::makeTrialPlan(rng, refGolden.stats.dynamicDefInsns, 0);
    refOptions.faultPlan = &plan;
    decOptions.faultPlan = &plan;
    // Tight watchdog so fault-induced runaways exercise the timeout path.
    refOptions.maxCycles = refGolden.stats.cycles * 20;
    decOptions.maxCycles = refGolden.stats.cycles * 20;
    std::ostringstream context;
    context << label << " fault trial " << trial << " (ordinal "
            << plan.points.front().ordinal << ", whichDef "
            << plan.points.front().whichDef << ", bit "
            << plan.points.front().bit << ")";
    expectIdentical(
        simulate(bin.program, bin.schedule, bin.machine, refOptions),
        simulate(bin.program, bin.schedule, bin.machine, decOptions),
        context.str());
  }
}

TEST(EngineDifferentialTest, RandomCfgProgramsAllSchemes) {
  // 50 seeds x 4 schemes = 200 compiled programs by default; each also runs
  // 3 fault trials, so the contract is checked on ~800 executions.
  const std::size_t seeds = testutil::testTrials(50);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const ir::Program source = testutil::makeRandomCfgProgram(seed);
    const arch::MachineConfig config =
        testutil::machine(2, seed % 2 == 0 ? 1 : 2);
    for (const Scheme scheme : passes::kAllSchemes) {
      const core::CompiledProgram bin =
          core::compile(source, config, scheme);
      std::ostringstream label;
      label << "cfg seed " << seed << " " << passes::schemeName(scheme);
      runDifferential(bin, label.str(), /*faultSeed=*/seed * 977 + 13,
                      /*faultTrials=*/3);
    }
  }
}

TEST(EngineDifferentialTest, StraightLineAndLoopPrograms) {
  const std::size_t seeds = testutil::testTrials(20);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const ir::Program source =
        testutil::makeRandomStraightLine(seed, 12 + seed % 20);
    const core::CompiledProgram bin =
        core::compile(source, testutil::machine(4, 1), Scheme::kCasted);
    runDifferential(bin, "straight seed " + std::to_string(seed),
                    /*faultSeed=*/seed, /*faultTrials=*/2);
  }
  const core::CompiledProgram loop =
      core::compile(testutil::makeLoopProgram(64), testutil::machine(2, 1),
                    Scheme::kDced);
  runDifferential(loop, "loop64", /*faultSeed=*/0xF00D, /*faultTrials=*/8);
}

// Property test for the stepwise checkpoint API (DESIGN.md §10): over random
// programs under every scheme, a stepwise run that pauses at the injection
// ordinal, snapshots, injects and finishes must equal the full-run oracle —
// and after the faulty suffix has trampled registers, memory, caches and
// statistics, restoring the snapshot and re-running must reproduce the very
// same result bit for bit (and, with no injection, the golden result).
TEST(EngineDifferentialTest, CheckpointRoundTripMatchesFullRuns) {
  const std::size_t seeds = testutil::testTrials(100);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const ir::Program source = testutil::makeRandomCfgProgram(seed);
    const arch::MachineConfig config =
        testutil::machine(2, seed % 2 == 0 ? 2 : 1);
    const Scheme scheme =
        passes::kAllSchemes[seed % std::size(passes::kAllSchemes)];
    const core::CompiledProgram bin = core::compile(source, config, scheme);
    const std::string label =
        "checkpoint seed " + std::to_string(seed) + " " +
        passes::schemeName(scheme);

    SimOptions options;
    const RunResult golden = runDecoded(*bin.decoded, options);
    if (golden.exit != ExitKind::kHalted ||
        golden.stats.dynamicDefInsns == 0) {
      continue;
    }
    options.maxCycles = golden.stats.cycles * 20;

    Rng rng(deriveStreamSeed(0xC4EC9017u, seed));
    FaultPlan plan;
    FaultPoint first;
    first.ordinal = rng.nextBelow(golden.stats.dynamicDefInsns);
    first.whichDef = static_cast<std::uint32_t>(rng.nextBelow(4));
    first.bit = static_cast<std::uint32_t>(rng.nextBelow(64));
    plan.points.push_back(first);
    if (seed % 2 == 1 &&
        first.ordinal + 1 < golden.stats.dynamicDefInsns) {
      // A second flip downstream, so checkpoints also round-trip the
      // fault-plan cursor state.
      FaultPoint second;
      second.ordinal =
          first.ordinal + 1 +
          rng.nextBelow(golden.stats.dynamicDefInsns - first.ordinal - 1);
      second.whichDef = static_cast<std::uint32_t>(rng.nextBelow(4));
      second.bit = static_cast<std::uint32_t>(rng.nextBelow(64));
      plan.points.push_back(second);
    }

    SimOptions fullOptions = options;
    fullOptions.faultPlan = &plan;
    const RunResult oracle = runDecoded(*bin.decoded, fullOptions);

    DecodedRunner runner(*bin.decoded);
    runner.begin(options);
    if (seed % 3 != 0) {
      // Two of three seeds arm the reconvergence cutoff, one runs every
      // suffix to its natural end — both must land on the oracle result.
      runner.setCutoffReference(&golden);
    }
    ASSERT_TRUE(runner.runToDef(first.ordinal)) << label;
    EXPECT_EQ(runner.pausedOrdinal(), first.ordinal) << label;
    ArchCheckpoint checkpoint;
    runner.saveCheckpoint(checkpoint);

    runner.injectAtPause(plan);
    expectIdentical(oracle, runner.finish(), label + " first injection");

    runner.restoreCheckpoint(checkpoint);
    runner.injectAtPause(plan);
    expectIdentical(oracle, runner.finish(), label + " after restore");

    runner.restoreCheckpoint(checkpoint);
    expectIdentical(golden, runner.finish(), label + " restored golden");
  }
}

TEST(EngineDifferentialTest, PaperWorkloadsWithCallsAndFloat) {
  // The workloads exercise what the random generators do not: function
  // calls (frame push/pop, return-value plumbing), floating point, and
  // non-trivial memory traffic through the cache hierarchy.
  const std::size_t count = testutil::testTrials(7);
  const std::vector<workloads::Workload> all = workloads::makeAllWorkloads(1);
  for (std::size_t i = 0; i < count && i < all.size(); ++i) {
    for (const Scheme scheme : {Scheme::kNoed, Scheme::kCasted}) {
      const core::CompiledProgram bin =
          core::compile(all[i].program, testutil::machine(2, 2), scheme);
      runDifferential(bin, all[i].name + " " + passes::schemeName(scheme),
                      /*faultSeed=*/0xCA57ED00 + i, /*faultTrials=*/4);
    }
  }
}

}  // namespace
}  // namespace casted::sim
