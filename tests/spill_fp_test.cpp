// FP-class spilling and mixed-pressure scenarios (the base spill_test
// covers the GP path).
#include <gtest/gtest.h>

#include <cstring>

#include "core/pipeline.h"
#include "dfg/liveness.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/spill.h"
#include "sched/list_scheduler.h"
#include "test_util.h"

namespace casted::passes {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;
using ir::RegClass;

// Holds `live` FP values simultaneously, reduces them, stores the bits.
Program fpPressureProgram(int live) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  std::vector<Reg> values;
  for (int i = 0; i < live; ++i) {
    values.push_back(b.fMovImm(1.0 + 0.25 * i));
  }
  Reg sum = values[0];
  for (int i = 1; i < live; ++i) {
    sum = b.fAdd(sum, values[static_cast<std::size_t>(i)]);
  }
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  b.fStore(base, 0, sum);
  b.halt(b.movImm(0));
  return prog;
}

double runOutputF64(const Program& prog) {
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult result = sim::simulate(
      prog, sched::scheduleProgram(prog, config), config);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  double value = 0.0;
  std::memcpy(&value, result.output.data(), 8);
  return value;
}

TEST(FpSpillTest, SpillsFpRegistersWhenOverCapacity) {
  Program prog = fpPressureProgram(90);  // > 64 FP registers live
  const arch::MachineConfig config = testutil::machine(2, 1);
  const SpillStats stats = applySpilling(prog, config);
  EXPECT_GT(stats.spilledRegs, 0u);
  const dfg::LivenessInfo liveness = dfg::computeLiveness(prog.function(0));
  EXPECT_LE(liveness.maxPressure[static_cast<int>(RegClass::kFp)],
            config.registerFile.fp);
  EXPECT_TRUE(ir::verify(prog).empty());
  // Spill code uses the FP load/store opcodes for FP victims.
  bool sawFpSpill = false;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == ir::InsnOrigin::kSpill &&
        (insn.op == Opcode::kFLoad || insn.op == Opcode::kFStore)) {
      sawFpSpill = true;
    }
  }
  EXPECT_TRUE(sawFpSpill);
}

TEST(FpSpillTest, FpSemanticsPreservedExactly) {
  Program reference = fpPressureProgram(90);
  Program spilled = fpPressureProgram(90);
  applySpilling(spilled, testutil::machine(2, 1));
  // Bit-exact: spilling must not reassociate or round differently.
  EXPECT_EQ(runOutputF64(spilled), runOutputF64(reference));
}

TEST(FpSpillTest, MixedPressureSpillsBothClasses) {
  Program prog;
  prog.allocateGlobal("output", 16);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  std::vector<Reg> gps;
  std::vector<Reg> fps;
  for (int i = 0; i < 80; ++i) {
    gps.push_back(b.movImm(i));
    fps.push_back(b.fMovImm(0.5 * i));
  }
  Reg gsum = gps[0];
  Reg fsum = fps[0];
  for (int i = 1; i < 80; ++i) {
    gsum = b.add(gsum, gps[static_cast<std::size_t>(i)]);
    fsum = b.fAdd(fsum, fps[static_cast<std::size_t>(i)]);
  }
  const Reg base =
      b.movImm(static_cast<std::int64_t>(prog.symbol("output").address));
  b.store(base, 0, gsum);
  b.fStore(base, 8, fsum);
  b.halt(b.movImm(0));

  const arch::MachineConfig config = testutil::machine(2, 1);
  applySpilling(prog, config);
  const dfg::LivenessInfo liveness = dfg::computeLiveness(prog.function(0));
  EXPECT_LE(liveness.maxPressure[static_cast<int>(RegClass::kGp)],
            config.registerFile.gp);
  EXPECT_LE(liveness.maxPressure[static_cast<int>(RegClass::kFp)],
            config.registerFile.fp);
  EXPECT_TRUE(ir::verify(prog).empty());
  // Both spill flavours present.
  bool sawG = false;
  bool sawF = false;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin != ir::InsnOrigin::kSpill) {
      continue;
    }
    sawG = sawG || insn.op == Opcode::kStore || insn.op == Opcode::kLoad;
    sawF = sawF || insn.op == Opcode::kFStore || insn.op == Opcode::kFLoad;
  }
  EXPECT_TRUE(sawG);
  EXPECT_TRUE(sawF);
}

TEST(FpSpillTest, SpilledFpProgramSurvivesFullPipeline) {
  const Program prog = fpPressureProgram(50);  // duplication pushes FP > 64
  const arch::MachineConfig machine = testutil::machine(2, 1);
  core::PipelineOptions options;
  options.modelRegisterPressure = true;
  const core::CompiledProgram plain = core::compile(
      prog, machine, Scheme::kNoed, options);
  const core::CompiledProgram bin =
      core::compile(prog, machine, Scheme::kCasted, options);
  EXPECT_GT(bin.report.stat("spill", "spilled-regs"), 0u);
  const sim::RunResult a = core::run(plain);
  const sim::RunResult b = core::run(bin);
  EXPECT_EQ(a.output, b.output);
}

TEST(FpSpillTest, ResidualPrPressureReported) {
  // Predicate registers cannot spill; the pass must report overshoot
  // instead of looping forever.
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  std::vector<Reg> preds;
  for (int i = 0; i < 40; ++i) {
    preds.push_back(b.cmpLtImm(b.movImm(i), 20));
  }
  Reg all = preds[0];
  for (int i = 1; i < 40; ++i) {
    all = b.pAnd(all, preds[static_cast<std::size_t>(i)]);
  }
  b.halt(b.select(all, b.movImm(1), b.movImm(0)));

  arch::MachineConfig config = testutil::machine(2, 1);
  const SpillStats stats = applySpilling(prog, config);
  EXPECT_GT(stats.residualPrPressure, 0u);
  EXPECT_TRUE(ir::verify(prog).empty());
}

}  // namespace
}  // namespace casted::passes
