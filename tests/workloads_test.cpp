#include <gtest/gtest.h>

#include <cstring>

#include "core/pipeline.h"
#include "ir/verifier.h"
#include "support/check.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {
namespace {

using passes::Scheme;

sim::RunResult runWorkload(const Workload& wl, Scheme scheme = Scheme::kNoed,
                           std::uint32_t iw = 2, std::uint32_t delay = 1) {
  const core::CompiledProgram bin =
      core::compile(wl.program, testutil::machine(iw, delay), scheme);
  return core::run(bin);
}

// Every workload, as a parameterised suite: verifies, halts cleanly with
// exit code 0, touches its output, and is deterministic.
class WorkloadSuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuiteTest, VerifiesClean) {
  const Workload wl = makeWorkload(GetParam(), 1);
  EXPECT_TRUE(ir::verify(wl.program).empty());
  EXPECT_TRUE(wl.program.hasSymbol("output"));
  EXPECT_EQ(wl.name, GetParam());
  EXPECT_FALSE(wl.suite.empty());
}

TEST_P(WorkloadSuiteTest, RunsToCompletion) {
  const Workload wl = makeWorkload(GetParam(), 1);
  const sim::RunResult result = runWorkload(wl);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  EXPECT_EQ(result.exitCode, 0);
  EXPECT_GT(result.stats.dynamicInsns, 1000u);
}

TEST_P(WorkloadSuiteTest, OutputNotAllZero) {
  const Workload wl = makeWorkload(GetParam(), 1);
  const sim::RunResult result = runWorkload(wl);
  bool nonZero = false;
  for (std::uint8_t byte : result.output) {
    nonZero = nonZero || byte != 0;
  }
  EXPECT_TRUE(nonZero);
}

TEST_P(WorkloadSuiteTest, DeterministicAcrossConstruction) {
  const sim::RunResult a = runWorkload(makeWorkload(GetParam(), 1));
  const sim::RunResult b = runWorkload(makeWorkload(GetParam(), 1));
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
}

TEST_P(WorkloadSuiteTest, ScaleIncreasesWork) {
  const sim::RunResult small = runWorkload(makeWorkload(GetParam(), 1));
  const sim::RunResult large = runWorkload(makeWorkload(GetParam(), 3));
  EXPECT_GT(large.stats.dynamicInsns, small.stats.dynamicInsns * 2);
}

// The load-bearing invariant for the whole evaluation: error detection must
// not change program semantics — all four schemes produce the identical
// output bytes.
TEST_P(WorkloadSuiteTest, AllSchemesPreserveOutput) {
  const Workload wl = makeWorkload(GetParam(), 1);
  const sim::RunResult noed = runWorkload(wl, Scheme::kNoed);
  for (Scheme scheme : {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
    const sim::RunResult result = runWorkload(wl, scheme);
    EXPECT_EQ(result.exit, sim::ExitKind::kHalted)
        << schemeName(scheme);
    EXPECT_EQ(result.output, noed.output) << schemeName(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSuiteTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(WorkloadRegistryTest, SevenBenchmarksInTableOrder) {
  const auto& names = workloadNames();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "cjpeg");
  EXPECT_EQ(names[3], "h263enc");
  EXPECT_EQ(names[4], "175.vpr");
}

TEST(WorkloadRegistryTest, AliasesAccepted) {
  EXPECT_EQ(makeWorkload("vpr", 1).name, "175.vpr");
  EXPECT_EQ(makeWorkload("mcf", 1).name, "181.mcf");
  EXPECT_EQ(makeWorkload("parser", 1).name, "197.parser");
}

TEST(WorkloadRegistryTest, UnknownNameThrows) {
  EXPECT_THROW(makeWorkload("gcc", 1), FatalError);
}

TEST(WorkloadRegistryTest, MakeAllBuildsSeven) {
  EXPECT_EQ(makeAllWorkloads(1).size(), 7u);
}

// --- per-workload character checks (what each stands in for) -----------------

TEST(WorkloadCharacterTest, CjpegHasLargeBlocksAndHighIlp) {
  const Workload wl = makeCjpeg(1);
  std::size_t maxBlock = 0;
  for (ir::BlockId b = 0; b < wl.program.function(0).blockCount(); ++b) {
    maxBlock = std::max(maxBlock,
                        wl.program.function(0).block(b).insns().size());
  }
  EXPECT_GT(maxBlock, 300u);  // straight-line DCT body
}

TEST(WorkloadCharacterTest, H263encIsBranchy) {
  const Workload wl = makeH263enc(1);
  const sim::RunResult result = runWorkload(wl);
  // Small blocks: average under ~20 instructions per executed block
  // (cjpeg, by contrast, averages hundreds).
  const double insnsPerBlock =
      static_cast<double>(result.stats.dynamicInsns) /
      static_cast<double>(result.stats.blockExecutions);
  EXPECT_LT(insnsPerBlock, 20.0);
}

TEST(WorkloadCharacterTest, McfIsMemoryBound) {
  const Workload wl = makeMcf(1);
  const sim::RunResult result = runWorkload(wl);
  // A third or more of the cycles are cache stalls.
  EXPECT_GT(static_cast<double>(result.stats.stallCycles),
            0.25 * static_cast<double>(result.stats.cycles));
  // And the L1 miss rate is substantial (working set > L1).
  const auto& l1 = result.stats.cacheLevel[0];
  EXPECT_GT(static_cast<double>(l1.misses),
            0.1 * static_cast<double>(l1.hits + l1.misses));
}

TEST(WorkloadCharacterTest, VprUsesFloatingPointAndCalls) {
  const Workload wl = makeVpr(1);
  bool hasFp = false;
  bool hasCall = false;
  for (ir::FuncId f = 0; f < wl.program.functionCount(); ++f) {
    const ir::Function& fn = wl.program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      for (const ir::Instruction& insn : fn.block(b).insns()) {
        hasFp = hasFp || insn.op == ir::Opcode::kFMul;
        hasCall = hasCall || insn.isCall();
      }
    }
  }
  EXPECT_TRUE(hasFp);
  EXPECT_TRUE(hasCall);
}

TEST(WorkloadCharacterTest, ParserCountsTokensPlausibly) {
  const Workload wl = makeParser(1);
  const sim::RunResult result = runWorkload(wl);
  std::int64_t words = 0;
  std::int64_t numbers = 0;
  std::memcpy(&words, result.output.data(), 8);
  std::memcpy(&numbers, result.output.data() + 8, 8);
  // ~55% letters / 15% digits over 1500 chars: both token kinds appear, and
  // there are more word tokens than number tokens.
  EXPECT_GT(words, 50);
  EXPECT_GT(numbers, 10);
  EXPECT_GT(words, numbers);
}

TEST(WorkloadCharacterTest, EncodersMaskMoreThanDecoders) {
  // cjpeg folds its block results into checksums; its output region is far
  // smaller than mpeg2dec's reconstructed frame, so more injected errors
  // are architecturally masked (paper §IV-C on encoding benchmarks).
  const Workload enc = makeCjpeg(1);
  const Workload dec = makeMpeg2dec(1);
  const double encRatio =
      static_cast<double>(enc.program.symbol("output").size) /
      static_cast<double>(enc.program.symbol("input").size);
  const double decRatio =
      static_cast<double>(dec.program.symbol("output").size) /
      static_cast<double>(dec.program.symbol("coeff").size);
  EXPECT_LT(encRatio, decRatio);
}

}  // namespace
}  // namespace casted::workloads
