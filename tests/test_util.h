// Shared helpers for the CASTED test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "arch/machine_config.h"
#include "ir/builder.h"
#include "ir/function.h"
#include "support/rng.h"

namespace casted::testutil {

// Corpus size for property tests: `full` by default, capped by the
// CASTED_TEST_TRIALS environment variable when set.  CI exports a small cap
// (see .github/workflows/ci.yml) so the slow-labelled suites stay fast
// there while local runs keep full coverage.
inline std::size_t testTrials(std::size_t full) {
  if (const char* env = std::getenv("CASTED_TEST_TRIALS")) {
    const long cap = std::strtol(env, nullptr, 10);
    if (cap > 0) {
      return std::min(full, static_cast<std::size_t>(cap));
    }
  }
  return full;
}

// A minimal program:
//   out[0] = (a + b) * 3   (a, b loaded from "input")
//   halt 0
// with symbols "input" (16 bytes: a=5, b=7) and "output" (8 bytes).
inline ir::Program makeTinyProgram() {
  ir::Program prog;
  std::vector<std::uint8_t> input(16, 0);
  input[0] = 5;
  input[8] = 7;
  const std::uint64_t inAddr = prog.allocateGlobal("input", input);
  const std::uint64_t outAddr = prog.allocateGlobal("output", 8);

  ir::Function& main = prog.addFunction("main");
  ir::IrBuilder b(main);
  ir::BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const ir::Reg inBase = b.movImm(static_cast<std::int64_t>(inAddr));
  const ir::Reg outBase = b.movImm(static_cast<std::int64_t>(outAddr));
  const ir::Reg a = b.load(inBase, 0);
  const ir::Reg bb = b.load(inBase, 8);
  const ir::Reg sum = b.add(a, bb);
  const ir::Reg result = b.mulImm(sum, 3);
  b.store(outBase, 0, result);
  b.halt(b.movImm(0));
  return prog;
}

// A program with a counted loop: output = sum of i for i in [0, n).
inline ir::Program makeLoopProgram(std::int64_t n) {
  ir::Program prog;
  const std::uint64_t outAddr = prog.allocateGlobal("output", 8);
  ir::Function& main = prog.addFunction("main");
  ir::IrBuilder b(main);
  ir::BasicBlock& entry = b.createBlock("entry");
  ir::BasicBlock& loop = b.createBlock("loop");
  ir::BasicBlock& done = b.createBlock("done");
  b.setBlock(entry);
  const ir::Reg outBase = b.movImm(static_cast<std::int64_t>(outAddr));
  const ir::Reg i = b.movImm(0);
  const ir::Reg sum = b.movImm(0);
  b.br(loop);
  b.setBlock(loop);
  b.binaryTo(ir::Opcode::kAdd, sum, sum, i);
  b.addImmTo(i, i, 1);
  const ir::Reg more = b.cmpLtImm(i, n);
  b.brCond(more, loop, done);
  b.setBlock(done);
  b.store(outBase, 0, sum);
  b.halt(b.movImm(0));
  return prog;
}

// Random straight-line program generator for property tests: a chain of
// integer ALU ops over a few seed values, ending with a store of the result
// and halt.  Always verifier-clean and always halts.
inline ir::Program makeRandomStraightLine(std::uint64_t seed,
                                          std::size_t length) {
  Rng rng(seed);
  ir::Program prog;
  const std::uint64_t outAddr = prog.allocateGlobal("output", 16);
  ir::Function& main = prog.addFunction("main");
  ir::IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));

  std::vector<ir::Reg> values;
  values.push_back(b.movImm(static_cast<std::int64_t>(rng.nextBelow(1000))));
  values.push_back(b.movImm(static_cast<std::int64_t>(rng.nextBelow(1000))));
  values.push_back(b.movImm(17));
  for (std::size_t i = 0; i < length; ++i) {
    const ir::Reg a = values[rng.nextBelow(values.size())];
    const ir::Reg c = values[rng.nextBelow(values.size())];
    switch (rng.nextBelow(8)) {
      case 0:
        values.push_back(b.add(a, c));
        break;
      case 1:
        values.push_back(b.sub(a, c));
        break;
      case 2:
        values.push_back(b.mul(a, c));
        break;
      case 3:
        values.push_back(b.xor_(a, c));
        break;
      case 4:
        values.push_back(b.min(a, c));
        break;
      case 5:
        values.push_back(b.addImm(a, static_cast<std::int64_t>(
                                          rng.nextBelow(100))));
        break;
      case 6:
        values.push_back(b.and_(a, c));
        break;
      default:
        values.push_back(b.sraImm(a, 1 + rng.nextBelow(8)));
        break;
    }
  }
  const ir::Reg outBase =
      b.movImm(static_cast<std::int64_t>(outAddr));
  b.store(outBase, 0, values.back());
  b.store(outBase, 8, values[values.size() / 2]);
  b.halt(b.movImm(0));
  return prog;
}

inline arch::MachineConfig machine(std::uint32_t issueWidth,
                                   std::uint32_t delay) {
  return arch::makePaperMachine(issueWidth, delay);
}

// Random structured-control-flow program generator: a sequence of segments,
// each either a straight block, an if/else diamond, or a bounded counted
// loop, mutating a small pool of live registers and finally storing a
// digest.  Always verifier-clean, always terminates — the stronger
// workhorse for cross-pass property tests.
inline ir::Program makeRandomCfgProgram(std::uint64_t seed,
                                        std::size_t segments = 4,
                                        std::size_t opsPerBlock = 8) {
  Rng rng(seed ^ 0xCF6);
  ir::Program prog;
  const std::uint64_t dataAddr = prog.allocateGlobal("data", 64);
  const std::uint64_t outAddr = prog.allocateGlobal("output", 16);
  ir::Function& fn = prog.addFunction("main");
  ir::IrBuilder b(fn);

  ir::BasicBlock* current = &b.createBlock("entry");
  b.setBlock(*current);

  // The register pool, fully defined up front.
  std::vector<ir::Reg> pool;
  const ir::Reg dataBase = b.movImm(static_cast<std::int64_t>(dataAddr));
  for (int i = 0; i < 6; ++i) {
    pool.push_back(b.movImm(static_cast<std::int64_t>(rng.nextBelow(500))));
  }
  auto anyReg = [&] { return pool[rng.nextBelow(pool.size())]; };

  // Emits a few random pool mutations into the current block.
  auto emitOps = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const ir::Reg dst = anyReg();
      const ir::Reg a = anyReg();
      const ir::Reg c = anyReg();
      switch (rng.nextBelow(7)) {
        case 0:
          b.binaryTo(ir::Opcode::kAdd, dst, a, c);
          break;
        case 1:
          b.binaryTo(ir::Opcode::kSub, dst, a, c);
          break;
        case 2:
          b.binaryTo(ir::Opcode::kXor, dst, a, c);
          break;
        case 3:
          b.binaryTo(ir::Opcode::kMin, dst, a, c);
          break;
        case 4:
          b.emit(ir::Opcode::kMulImm, {dst}, {a}).imm =
              static_cast<std::int64_t>(rng.nextBelow(9)) + 1;
          break;
        case 5: {
          // A store+load pair through the scratch area (always in range).
          const std::int64_t offset =
              static_cast<std::int64_t>(rng.nextBelow(7)) * 8;
          b.store(dataBase, offset, a);
          b.emit(ir::Opcode::kLoad, {dst}, {dataBase}).imm = offset;
          break;
        }
        default:
          b.emit(ir::Opcode::kSraImm, {dst}, {a}).imm =
              static_cast<std::int64_t>(rng.nextBelow(5)) + 1;
          break;
      }
    }
  };

  for (std::size_t segment = 0; segment < segments; ++segment) {
    emitOps(opsPerBlock);
    switch (rng.nextBelow(3)) {
      case 0: {  // straight: just start a new block
        ir::BasicBlock& next = b.createBlock("seg");
        b.br(next);
        b.setBlock(next);
        break;
      }
      case 1: {  // diamond
        ir::BasicBlock& left = b.createBlock("left");
        ir::BasicBlock& right = b.createBlock("right");
        ir::BasicBlock& join = b.createBlock("join");
        const ir::Reg p = b.cmpLt(anyReg(), anyReg());
        b.brCond(p, left, right);
        b.setBlock(left);
        emitOps(opsPerBlock / 2 + 1);
        b.br(join);
        b.setBlock(right);
        emitOps(opsPerBlock / 2 + 1);
        b.br(join);
        b.setBlock(join);
        break;
      }
      default: {  // bounded loop with a fresh counter
        ir::BasicBlock& body = b.createBlock("loop");
        ir::BasicBlock& exit = b.createBlock("exit");
        const ir::Reg counter = b.movImm(0);
        const std::int64_t trips =
            static_cast<std::int64_t>(rng.nextBelow(6)) + 2;
        b.br(body);
        b.setBlock(body);
        emitOps(opsPerBlock / 2 + 1);
        b.addImmTo(counter, counter, 1);
        const ir::Reg more = b.cmpLtImm(counter, trips);
        b.brCond(more, body, exit);
        b.setBlock(exit);
        break;
      }
    }
  }

  const ir::Reg outBase = b.movImm(static_cast<std::int64_t>(outAddr));
  ir::Reg digest = pool[0];
  for (std::size_t i = 1; i < pool.size(); ++i) {
    digest = b.add(digest, b.mulImm(pool[i], static_cast<std::int64_t>(i)));
  }
  b.store(outBase, 0, digest);
  b.halt(b.movImm(0));
  return prog;
}

}  // namespace casted::testutil
