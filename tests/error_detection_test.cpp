#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/error_detection.h"
#include "test_util.h"

namespace casted::passes {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::InsnOrigin;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;
using ir::RegClass;

// Counts instructions by origin across the whole program.
std::unordered_map<InsnOrigin, std::size_t> countByOrigin(
    const Program& prog) {
  std::unordered_map<InsnOrigin, std::size_t> counts;
  for (ir::FuncId f = 0; f < prog.functionCount(); ++f) {
    const Function& fn = prog.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      for (const Instruction& insn : fn.block(b).insns()) {
        ++counts[insn.origin];
      }
    }
  }
  return counts;
}

TEST(ErrorDetectionTest, TransformedProgramVerifies) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(ErrorDetectionTest, EveryReplicableInsnGetsADuplicateJustBefore) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const BasicBlock& block = prog.function(0).block(0);
  const auto& insns = block.insns();
  for (std::size_t i = 0; i < insns.size(); ++i) {
    if (insns[i].origin == InsnOrigin::kOriginal && insns[i].isReplicable()) {
      ASSERT_GT(i, 0u);
      EXPECT_EQ(insns[i - 1].origin, InsnOrigin::kDuplicate);
      EXPECT_EQ(insns[i - 1].duplicateOf, insns[i].id);
      EXPECT_EQ(insns[i - 1].op, insns[i].op);
      EXPECT_EQ(insns[i - 1].imm, insns[i].imm);
    }
  }
}

TEST(ErrorDetectionTest, StatsMatchTransformedProgram) {
  Program prog = testutil::makeTinyProgram();
  const ErrorDetectionStats stats = applyErrorDetection(prog);
  const auto counts = countByOrigin(prog);
  EXPECT_EQ(stats.replicated, counts.at(InsnOrigin::kDuplicate));
  EXPECT_EQ(stats.checks, counts.at(InsnOrigin::kCheck));
  EXPECT_EQ(stats.copies,
            counts.contains(InsnOrigin::kCopy) ? counts.at(InsnOrigin::kCopy)
                                               : 0u);
  EXPECT_GT(stats.replicated, 0u);
  EXPECT_GT(stats.checks, 0u);
}

TEST(ErrorDetectionTest, DuplicatesWriteOnlyShadowRegisters) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const Function& fn = prog.function(0);
  // Registers written by originals and by duplicates must be disjoint.
  std::unordered_set<Reg> originalDefs;
  std::unordered_set<Reg> duplicateDefs;
  for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
    for (const Instruction& insn : fn.block(b).insns()) {
      auto& set = insn.origin == InsnOrigin::kDuplicate ? duplicateDefs
                                                        : originalDefs;
      for (const Reg& def : insn.defs) {
        set.insert(def);
      }
    }
  }
  for (const Reg& def : duplicateDefs) {
    EXPECT_FALSE(originalDefs.contains(def))
        << def.toString() << " written by both streams";
  }
}

TEST(ErrorDetectionTest, DuplicatesReadOnlyShadowValues) {
  Program prog = testutil::makeRandomStraightLine(11, 50);
  applyErrorDetection(prog);
  const Function& fn = prog.function(0);
  std::unordered_set<Reg> shadowDefs;
  for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
    for (const Instruction& insn : fn.block(b).insns()) {
      if (insn.origin == InsnOrigin::kDuplicate ||
          insn.origin == InsnOrigin::kCopy) {
        for (const Reg& def : insn.defs) {
          shadowDefs.insert(def);
        }
      }
    }
  }
  for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
    for (const Instruction& insn : fn.block(b).insns()) {
      if (insn.origin != InsnOrigin::kDuplicate) {
        continue;
      }
      for (const Reg& use : insn.uses) {
        EXPECT_TRUE(shadowDefs.contains(use))
            << "duplicate reads non-shadow " << use.toString();
      }
    }
  }
}

TEST(ErrorDetectionTest, ChecksGuardEveryRegisterReadByStores) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const BasicBlock& block = prog.function(0).block(0);
  const auto& insns = block.insns();
  for (std::size_t i = 0; i < insns.size(); ++i) {
    const Instruction& insn = insns[i];
    if (!insn.isStore() || insn.origin != InsnOrigin::kOriginal) {
      continue;
    }
    // Every register the store reads must be checked immediately before it
    // (one check per distinct register, in a contiguous run).
    std::unordered_set<Reg> wanted(insn.uses.begin(), insn.uses.end());
    std::size_t j = i;
    while (j > 0 && insns[j - 1].isCheck()) {
      --j;
      if (insns[j].guard == insn.id) {
        EXPECT_TRUE(wanted.erase(insns[j].uses[0]) == 1);
      }
    }
    EXPECT_TRUE(wanted.empty()) << "store misses checks";
  }
}

TEST(ErrorDetectionTest, BranchPredicatesChecked) {
  Program prog = testutil::makeLoopProgram(4);
  applyErrorDetection(prog);
  const Function& fn = prog.function(0);
  bool sawPredicateCheck = false;
  for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
    const auto& insns = fn.block(b).insns();
    for (std::size_t i = 0; i < insns.size(); ++i) {
      if (insns[i].op == Opcode::kBrCond) {
        ASSERT_GT(i, 0u);
        EXPECT_EQ(insns[i - 1].op, Opcode::kCheckP);
        EXPECT_EQ(insns[i - 1].guard, insns[i].id);
        sawPredicateCheck = true;
      }
    }
  }
  EXPECT_TRUE(sawPredicateCheck);
}

TEST(ErrorDetectionTest, ChecksUseMatchingClassOpcodes) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 16);
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  const Reg f = b.fAdd(b.fMovImm(1.5), b.fMovImm(2.5));
  b.fStore(base, 0, f);
  b.halt(b.movImm(0));
  applyErrorDetection(prog);
  bool sawF = false;
  bool sawG = false;
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.op == Opcode::kCheckF) {
      sawF = true;
      EXPECT_EQ(insn.uses[0].cls, RegClass::kFp);
    }
    if (insn.op == Opcode::kCheckG) {
      sawG = true;
    }
  }
  EXPECT_TRUE(sawF);  // the stored FP value
  EXPECT_TRUE(sawG);  // the store address
}

TEST(ErrorDetectionTest, DuplicateRegisterReadOnlyCheckedOnce) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 16);
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  b.store(base, 0, base);  // reads `base` twice
  b.halt(b.movImm(0));
  applyErrorDetection(prog);
  std::size_t checksBeforeStore = 0;
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.isCheck()) {
      ++checksBeforeStore;
    }
    if (insn.isStore()) {
      break;
    }
  }
  EXPECT_EQ(checksBeforeStore, 1u);
}

TEST(ErrorDetectionTest, CallResultsGetShadowCopies) {
  Program prog;
  prog.allocateGlobal("output", 8);
  Function& helper = prog.addFunction("helper");
  helper.returnClasses() = {RegClass::kGp};
  {
    IrBuilder hb(helper);
    hb.setBlock(hb.createBlock("body"));
    hb.ret({hb.movImm(7)});
  }
  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  {
    IrBuilder b(main);
    b.setBlock(b.createBlock("entry"));
    const Reg out = b.movImm(
        static_cast<std::int64_t>(prog.symbol("output").address));
    const Reg v = b.call(helper, {})[0];
    b.store(out, 0, v);
    b.halt(b.movImm(0));
  }
  applyErrorDetection(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  // A kCopy must directly follow the call.
  const auto& insns = prog.function(1).block(0).insns();
  bool sawCopyAfterCall = false;
  for (std::size_t i = 0; i + 1 < insns.size(); ++i) {
    if (insns[i].isCall()) {
      EXPECT_EQ(insns[i + 1].origin, InsnOrigin::kCopy);
      EXPECT_EQ(insns[i + 1].uses[0], insns[i].defs[0]);
      sawCopyAfterCall = true;
    }
  }
  EXPECT_TRUE(sawCopyAfterCall);
}

TEST(ErrorDetectionTest, ParametersGetShadowCopiesAtEntry) {
  Program prog;
  prog.allocateGlobal("output", 8);
  Function& helper = prog.addFunction("helper");
  const Reg param = helper.newReg(RegClass::kGp);
  helper.params() = {param};
  helper.returnClasses() = {RegClass::kGp};
  {
    IrBuilder hb(helper);
    hb.setBlock(hb.createBlock("body"));
    hb.ret({hb.addImm(param, 1)});
  }
  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  {
    IrBuilder b(main);
    b.setBlock(b.createBlock("entry"));
    const Reg v = b.call(helper, {b.movImm(1)})[0];
    b.halt(v);
  }
  applyErrorDetection(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  const Instruction& first = prog.function(0).block(0).insns().front();
  EXPECT_EQ(first.origin, InsnOrigin::kCopy);
  EXPECT_EQ(first.uses[0], param);
}

TEST(ErrorDetectionTest, UnprotectedFunctionLeftUntouched) {
  Program prog;
  prog.allocateGlobal("output", 8);
  Function& lib = prog.addFunction("lib");
  lib.setProtected(false);
  lib.returnClasses() = {RegClass::kGp};
  {
    IrBuilder lb(lib);
    lb.setBlock(lb.createBlock("body"));
    lb.ret({lb.movImm(3)});
  }
  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  {
    IrBuilder b(main);
    b.setBlock(b.createBlock("entry"));
    const Reg v = b.call(lib, {})[0];
    b.halt(v);
  }
  const std::size_t libSizeBefore = prog.function(0).insnCount();
  const ErrorDetectionStats stats = applyErrorDetection(prog);
  EXPECT_EQ(stats.skippedUnprotected, 1u);
  EXPECT_EQ(prog.function(0).insnCount(), libSizeBefore);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(ErrorDetectionTest, OptionsDisableControlFlowChecks) {
  Program prog = testutil::makeLoopProgram(3);
  ErrorDetectionOptions options;
  options.checkControlFlow = false;
  applyErrorDetection(prog, options);
  for (ir::BlockId b = 0; b < prog.function(0).blockCount(); ++b) {
    const auto& insns = prog.function(0).block(b).insns();
    for (std::size_t i = 1; i < insns.size(); ++i) {
      if (insns[i].op == Opcode::kBrCond) {
        EXPECT_FALSE(insns[i - 1].isCheck());
      }
    }
  }
}

TEST(ErrorDetectionTest, OptionsDisableStoreChecks) {
  Program prog = testutil::makeTinyProgram();
  ErrorDetectionOptions options;
  options.checkStores = false;
  options.checkControlFlow = false;
  const ErrorDetectionStats stats = applyErrorDetection(prog, options);
  EXPECT_EQ(stats.checks, 0u);
  EXPECT_GT(stats.replicated, 0u);
}

TEST(ErrorDetectionTest, CodeGrowthInPaperRange) {
  // The paper reports error-detection binaries ~2.4x the original; our
  // kernels should land in the same neighbourhood (2x..3x).
  Program prog = testutil::makeRandomStraightLine(5, 100);
  const std::size_t before = prog.insnCount();
  applyErrorDetection(prog);
  const double growth =
      static_cast<double>(prog.insnCount()) / static_cast<double>(before);
  EXPECT_GT(growth, 1.8);
  EXPECT_LT(growth, 3.0);
}

TEST(ErrorDetectionTest, SecondApplicationNeverDuplicatesCompilerCode) {
  // Re-running the pass re-protects the originals but must never duplicate
  // duplicates, checks or copies (the paper's "compiler-generated" rule),
  // and the result must still verify.
  Program prog = testutil::makeTinyProgram();
  const ErrorDetectionStats first = applyErrorDetection(prog);
  const ErrorDetectionStats second = applyErrorDetection(prog);
  EXPECT_EQ(second.replicated, first.replicated);
  EXPECT_TRUE(ir::verify(prog).empty());
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == InsnOrigin::kDuplicate) {
      // A duplicate's source is always an original instruction.
      bool found = false;
      for (const Instruction& other : prog.function(0).block(0).insns()) {
        if (other.id == insn.duplicateOf) {
          EXPECT_EQ(other.origin, InsnOrigin::kOriginal);
          found = true;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

// Property sweep: for random programs, the three Algorithm 1 invariants
// hold: duplicate-before-original, register isolation, checks before every
// non-replicated instruction.
class ErrorDetectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ErrorDetectionPropertyTest, AlgorithmOneInvariants) {
  Program prog = testutil::makeRandomStraightLine(
      static_cast<std::uint64_t>(GetParam()) * 13 + 3, 70);
  applyErrorDetection(prog);
  EXPECT_TRUE(ir::verify(prog).empty());
  const BasicBlock& block = prog.function(0).block(0);
  const auto& insns = block.insns();
  for (std::size_t i = 0; i < insns.size(); ++i) {
    const Instruction& insn = insns[i];
    if (insn.origin == InsnOrigin::kOriginal && insn.isReplicable()) {
      EXPECT_EQ(insns[i - 1].duplicateOf, insn.id);
    }
    if (insn.origin == InsnOrigin::kOriginal && insn.isNonReplicated()) {
      std::unordered_set<Reg> wanted(insn.uses.begin(), insn.uses.end());
      std::size_t j = i;
      while (j > 0 && insns[j - 1].isCheck()) {
        --j;
        if (insns[j].guard == insn.id) {
          wanted.erase(insns[j].uses[0]);
        }
      }
      EXPECT_TRUE(wanted.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErrorDetectionPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace casted::passes
