// Focused timing-model tests: the per-bundle miss overlap (MLP), the
// branch-ends-bundle rule, zero-delay interconnects, and multi-point fault
// plans.
#include <gtest/gtest.h>

#include <cstring>

#include "dfg/dfg.h"
#include "passes/assignment.h"
#include "passes/error_detection.h"
#include "ir/builder.h"
#include "sched/list_scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace casted::sim {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;

// Two independent loads from distinct cold cache lines, plus a halt.
Program twoColdLoads() {
  Program prog;
  prog.allocateGlobal("output", 8);
  prog.allocateGlobal("data", 4096);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const std::int64_t data =
      static_cast<std::int64_t>(prog.symbol("data").address);
  const Reg baseA = b.movImm(data);
  const Reg baseB = b.movImm(data + 2048);  // different L1/L2 lines
  const Reg a = b.load(baseA, 0);
  const Reg c = b.load(baseB, 0);
  b.halt(b.add(a, c));
  return prog;
}

RunResult runOn(const Program& prog, const arch::MachineConfig& config) {
  return simulate(prog, sched::scheduleProgram(prog, config), config);
}

TEST(MlpTest, SameBundleMissesOverlap) {
  const Program prog = twoColdLoads();
  // Wide cluster: both loads issue in the same cycle -> one miss charge.
  const arch::MachineConfig wide = testutil::machine(4, 1);
  const RunResult overlapped = runOn(prog, wide);
  // Single-issue: loads issue in different cycles -> two miss charges.
  const arch::MachineConfig narrow = testutil::machine(1, 1);
  const RunResult serial = runOn(prog, narrow);

  const std::uint32_t missExtra =
      wide.cache.memoryLatency - wide.latencies.mem;
  EXPECT_EQ(overlapped.stats.stallCycles, missExtra);
  EXPECT_EQ(serial.stats.stallCycles, 2u * missExtra);
}

TEST(MlpTest, SpreadingAcrossClustersBuysOverlap) {
  // Force the two loads onto different clusters at issue width 1: they can
  // share a cycle (one per cluster) and the misses overlap — CASTED's MLP
  // argument (§III-D).
  Program prog = twoColdLoads();
  auto& insns = prog.function(0).block(0).insns();
  // movi, movi, load, load, add, halt
  insns[1].cluster = 1;
  insns[3].cluster = 1;
  const arch::MachineConfig config = testutil::machine(1, 1);
  const RunResult spread = runOn(prog, config);
  const std::uint32_t missExtra =
      config.cache.memoryLatency - config.latencies.mem;
  EXPECT_EQ(spread.stats.stallCycles, missExtra);
}

TEST(BundleCloseTest, BranchEndsTheMachineWord) {
  // With branchClosesBundle, nothing shares a cycle after the terminator's
  // slot is taken; the effect is visible as a schedule-length difference
  // for a block whose last cycle would otherwise be shared.
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg v = b.movImm(1);
  for (int i = 0; i < 3; ++i) {
    b.add(v, v);
  }
  b.halt(v);

  arch::MachineConfig open = testutil::machine(4, 1);
  open.branchClosesBundle = false;
  arch::MachineConfig closed = testutil::machine(4, 1);
  closed.branchClosesBundle = true;

  const dfg::DataFlowGraph graphOpen(entry, open);
  const auto scheduleOpen = sched::scheduleBlock(graphOpen, open);
  const dfg::DataFlowGraph graphClosed(entry, closed);
  const auto scheduleClosed = sched::scheduleBlock(graphClosed, closed);
  EXPECT_LE(scheduleOpen.length, scheduleClosed.length);
}

TEST(ZeroDelayTest, FreeInterconnectMakesSpreadingFree) {
  // delay 0: cross-cluster reads cost nothing, so DCED matches SCED's
  // semantics with strictly more resources.
  const Program prog = testutil::makeRandomStraightLine(3, 40);
  arch::MachineConfig config = testutil::machine(1, 1);
  config.interClusterDelay = 0;
  ir::Program protectedProg = prog;
  ::casted::passes::applyErrorDetection(protectedProg);
  ir::Program dced = protectedProg;
  ir::Program sced = protectedProg;
  ::casted::passes::assignClusters(dced, config, ::casted::passes::Scheme::kDced);
  ::casted::passes::assignClusters(sced, config, ::casted::passes::Scheme::kSced);
  const RunResult dcedRun = runOn(dced, config);
  const RunResult scedRun = runOn(sced, config);
  EXPECT_LE(dcedRun.stats.cycles, scedRun.stats.cycles);
}

TEST(FaultPlanTest, MultiplePointsAllApplied) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 24);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));  // ordinal 0
  const Reg a = b.movImm(10);                                 // ordinal 1
  const Reg c = b.movImm(20);                                 // ordinal 2
  b.store(base, 0, a);
  b.store(base, 8, c);
  b.halt(b.movImm(0));

  FaultPlan plan;
  plan.points.push_back({1, 0, 0});  // 10 ^ 1 = 11
  plan.points.push_back({2, 0, 1});  // 20 ^ 2 = 22
  SimOptions options;
  options.faultPlan = &plan;
  const arch::MachineConfig config = testutil::machine(2, 1);
  const RunResult result =
      simulate(prog, sched::scheduleProgram(prog, config), config, options);
  ASSERT_EQ(result.exit, ExitKind::kHalted);
  std::int64_t w0 = 0;
  std::int64_t w1 = 0;
  std::memcpy(&w0, result.output.data(), 8);
  std::memcpy(&w1, result.output.data() + 8, 8);
  EXPECT_EQ(w0, 11);
  EXPECT_EQ(w1, 22);
}

TEST(FaultPlanTest, OrdinalBeyondRunIsIgnored) {
  const Program prog = testutil::makeLoopProgram(3);
  FaultPlan plan;
  plan.points.push_back({1000000, 0, 0});
  SimOptions options;
  options.faultPlan = &plan;
  const arch::MachineConfig config = testutil::machine(2, 1);
  const RunResult faulty =
      simulate(prog, sched::scheduleProgram(prog, config), config, options);
  const RunResult golden =
      simulate(prog, sched::scheduleProgram(prog, config), config);
  EXPECT_EQ(faulty.output, golden.output);
}

}  // namespace
}  // namespace casted::sim
