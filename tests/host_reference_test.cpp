// Host-reference validation: re-implement two workloads' semantics in
// plain C++ on the host, run the same inputs through the full
// compile+simulate stack, and require bit-identical outputs.  This anchors
// the whole tower — IR semantics, scheduler correctness, simulator
// arithmetic, memory model — to an independent oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/pipeline.h"
#include "support/rng.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted {
namespace {

std::int64_t wordAt(const std::vector<std::uint8_t>& bytes,
                    std::size_t index) {
  std::int64_t value = 0;
  std::memcpy(&value, bytes.data() + index * 8, 8);
  return value;
}

// --- 197.parser oracle ---------------------------------------------------

struct ParserCounts {
  std::int64_t words = 0;
  std::int64_t numbers = 0;
  std::int64_t puncts = 0;
  std::int64_t finalState = 0;
};

// Replicates the DFA semantics of workloads/parser.cpp from first
// principles (NOT by copying its tables): classify each byte, walk the
// word/number/punct automaton, count entries into each token state.
ParserCounts parserOracle(const std::vector<std::uint8_t>& text) {
  ParserCounts counts;
  int state = 0;
  for (std::uint8_t ch : text) {
    int cls;
    if (ch == ' ') {
      cls = 0;
    } else if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')) {
      cls = 1;
    } else if (ch >= '0' && ch <= '9') {
      cls = 2;
    } else {
      cls = 3;
    }
    int next;
    if (cls == 0) {
      next = 0;
    } else if (cls == 1) {
      next = 1;
    } else if (cls == 2) {
      next = state == 1 ? 1 : 2;  // digits inside a word stay in the word
    } else {
      next = 3;
    }
    if (next != state) {
      if (next == 1) {
        ++counts.words;
      } else if (next == 2) {
        ++counts.numbers;
      } else if (next == 3) {
        ++counts.puncts;
      }
    }
    state = next;
  }
  counts.finalState = state;
  return counts;
}

TEST(HostReferenceTest, ParserMatchesOracle) {
  const workloads::Workload wl = workloads::makeParser(2);
  // Extract the exact input text the generator placed in the program image.
  const ir::GlobalSymbol& sym = wl.program.symbol("text");
  std::vector<std::uint8_t> text(
      wl.program.globalImage().begin() +
          static_cast<std::ptrdiff_t>(sym.address - ir::Program::kGlobalBase),
      wl.program.globalImage().begin() +
          static_cast<std::ptrdiff_t>(sym.address - ir::Program::kGlobalBase +
                                      sym.size));
  const ParserCounts expected = parserOracle(text);

  for (passes::Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(wl.program, testutil::machine(2, 1), scheme);
    const sim::RunResult result = core::run(bin);
    ASSERT_EQ(result.exit, sim::ExitKind::kHalted);
    EXPECT_EQ(wordAt(result.output, 0), expected.words)
        << schemeName(scheme);
    EXPECT_EQ(wordAt(result.output, 1), expected.numbers)
        << schemeName(scheme);
    EXPECT_EQ(wordAt(result.output, 2), expected.puncts)
        << schemeName(scheme);
    EXPECT_EQ(wordAt(result.output, 3), expected.finalState)
        << schemeName(scheme);
  }
}

// --- 181.mcf oracle --------------------------------------------------------

TEST(HostReferenceTest, McfMatchesOracle) {
  const workloads::Workload wl = workloads::makeMcf(1);
  const ir::GlobalSymbol& arcs = wl.program.symbol("arcs");
  const auto& image = wl.program.globalImage();
  const std::size_t base =
      static_cast<std::size_t>(arcs.address - ir::Program::kGlobalBase);
  auto arcField = [&](std::uint64_t node, int field) {
    std::uint64_t value = 0;
    std::memcpy(&value, image.data() + base + node * 16 +
                            static_cast<std::size_t>(field) * 8,
                8);
    return value;
  };

  // Walk the chain on the host.  The generator documents: 1536 arcs,
  // 12000*scale steps, start node = the first element of its permutation —
  // recover the start by simulating NOED once and checking against every
  // possible start is unnecessary: the final node + accumulator pair is a
  // strong enough check given a known start, so read the start from the
  // program text (the single movi feeding the loop).
  std::int64_t start = -1;
  for (const ir::Instruction& insn :
       wl.program.function(0).block(0).insns()) {
    // entry block: movi arcs, movi output, movi start, movi 0, movi 0, br.
    if (insn.op == ir::Opcode::kMovImm && insn.imm >= 0 &&
        insn.imm < 1536 && start < 0 &&
        insn.imm != static_cast<std::int64_t>(arcs.address)) {
      start = insn.imm;
    }
  }
  // `start` may legitimately be 0 (the two zero movis): a zero start is
  // still a valid oracle input, but make sure we found *something*.
  ASSERT_GE(start, 0);

  std::uint64_t node = static_cast<std::uint64_t>(start);
  std::uint64_t acc = 0;
  for (int step = 0; step < 12000; ++step) {
    const std::uint64_t cost = arcField(node, 1);
    node = arcField(node, 0);
    acc += cost;
  }

  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 1), passes::Scheme::kCasted);
  const sim::RunResult result = core::run(bin);
  ASSERT_EQ(result.exit, sim::ExitKind::kHalted);
  EXPECT_EQ(static_cast<std::uint64_t>(wordAt(result.output, 0)), acc);
  EXPECT_EQ(static_cast<std::uint64_t>(wordAt(result.output, 1)), node);
}

// --- tiny/loop programs, exhaustively -----------------------------------------

TEST(HostReferenceTest, LoopSumClosedForm) {
  for (std::int64_t n : {1, 2, 7, 100, 255}) {
    const ir::Program prog = testutil::makeLoopProgram(n);
    const core::CompiledProgram bin = core::compile(
        prog, testutil::machine(2, 1), passes::Scheme::kCasted);
    const sim::RunResult result = core::run(bin);
    EXPECT_EQ(wordAt(result.output, 0), n * (n - 1) / 2) << "n=" << n;
  }
}

// The random straight-line generator's semantics, replayed on the host with
// plain C++ integers, must match the simulator for every scheme.
class StraightLineOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(StraightLineOracleTest, MatchesHostReplay) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 97 + 5;
  const ir::Program prog = testutil::makeRandomStraightLine(seed, 50);

  // Host replay of the generated block (interpret the IR directly with
  // host arithmetic — an independent, dead-simple evaluator).
  std::vector<std::int64_t> gp(
      prog.function(0).regCount(ir::RegClass::kGp), 0);
  std::int64_t out0 = 0;
  std::int64_t out8 = 0;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    auto u = [&](int i) { return gp[insn.uses[static_cast<std::size_t>(i)].index]; };
    std::int64_t value = 0;
    switch (insn.op) {
      case ir::Opcode::kMovImm: value = insn.imm; break;
      case ir::Opcode::kAdd: value = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(u(0)) + static_cast<std::uint64_t>(u(1))); break;
      case ir::Opcode::kSub: value = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(u(0)) - static_cast<std::uint64_t>(u(1))); break;
      case ir::Opcode::kMul: value = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(u(0)) * static_cast<std::uint64_t>(u(1))); break;
      case ir::Opcode::kXor: value = u(0) ^ u(1); break;
      case ir::Opcode::kAnd: value = u(0) & u(1); break;
      case ir::Opcode::kMin: value = std::min(u(0), u(1)); break;
      case ir::Opcode::kAddImm: value = static_cast<std::int64_t>(
          static_cast<std::uint64_t>(u(0)) + static_cast<std::uint64_t>(insn.imm)); break;
      case ir::Opcode::kSraImm: value = u(0) >> insn.imm; break;
      case ir::Opcode::kStore:
        if (insn.imm == 0) { out0 = u(1); } else { out8 = u(1); }
        continue;
      case ir::Opcode::kHalt:
        continue;
      default:
        FAIL() << "unexpected opcode in generated program: "
               << insn.toString();
    }
    gp[insn.defs[0].index] = value;
  }

  for (passes::Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(prog, testutil::machine(2, 2), scheme);
    const sim::RunResult result = core::run(bin);
    EXPECT_EQ(wordAt(result.output, 0), out0) << schemeName(scheme);
    EXPECT_EQ(wordAt(result.output, 1), out8) << schemeName(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StraightLineOracleTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace casted
