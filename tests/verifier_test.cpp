#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "support/check.h"
#include "test_util.h"

namespace casted::ir {
namespace {

TEST(VerifierTest, TinyProgramIsClean) {
  const Program prog = testutil::makeTinyProgram();
  EXPECT_TRUE(verify(prog).empty());
  EXPECT_NO_THROW(verifyOrThrow(prog));
}

TEST(VerifierTest, LoopProgramIsClean) {
  EXPECT_TRUE(verify(testutil::makeLoopProgram(10)).empty());
}

TEST(VerifierTest, EmptyProgramRejected) {
  const Program prog;
  const auto errors = verify(prog);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("no functions"), std::string::npos);
}

TEST(VerifierTest, EmptyBlockRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  fn.addBlock("entry");
  const auto errors = verify(prog);
  ASSERT_FALSE(errors.empty());
}

TEST(VerifierTest, MissingTerminatorRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.movImm(1);
  const auto errors = verify(prog);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, TerminatorMidBlockRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg v = b.movImm(0);
  b.halt(v);
  // Smuggle an instruction past the builder's guard.
  Instruction extra;
  extra.op = Opcode::kNop;
  extra.id = fn.newInsnId();
  entry.insns().push_back(extra);
  const auto errors = verify(prog);
  ASSERT_FALSE(errors.empty());
}

TEST(VerifierTest, OperandClassMismatchRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg v = b.movImm(0);
  b.halt(v);
  // Corrupt: add expects GP uses, give it a predicate.
  Instruction bad;
  bad.op = Opcode::kAdd;
  bad.id = fn.newInsnId();
  bad.defs = {fn.newReg(RegClass::kGp)};
  bad.uses = {fn.newReg(RegClass::kPr), fn.newReg(RegClass::kGp)};
  entry.insns().insert(entry.insns().begin(), bad);
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("class") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, OutOfRangeRegisterRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  b.halt(b.movImm(0));
  Instruction bad;
  bad.op = Opcode::kMov;
  bad.id = fn.newInsnId();
  bad.defs = {fn.newReg(RegClass::kGp)};
  bad.uses = {Reg(RegClass::kGp, 1000)};
  entry.insns().insert(entry.insns().begin(), bad);
  EXPECT_FALSE(verify(prog).empty());
}

TEST(VerifierTest, BadBranchTargetRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  Instruction& br = b.emit(Opcode::kBr, {}, {});
  br.target = 17;  // no such block
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("does not exist") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, ReadBeforeWriteRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg uninit = fn.newReg(RegClass::kGp);
  b.emit(Opcode::kHalt, {}, {uninit});
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("before assignment") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, ReadDefinedOnOnlyOnePathRejected) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& left = b.createBlock("left");
  BasicBlock& right = b.createBlock("right");
  BasicBlock& merge = b.createBlock("merge");
  const Reg v = fn.newReg(RegClass::kGp);
  b.setBlock(entry);
  const Reg p = b.pSetImm(true);
  b.brCond(p, left, right);
  b.setBlock(left);
  b.movImmTo(v, 1);  // defined on the left path only
  b.br(merge);
  b.setBlock(right);
  b.br(merge);
  b.setBlock(merge);
  b.halt(v);
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("before assignment") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, ReadDefinedOnBothPathsAccepted) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& left = b.createBlock("left");
  BasicBlock& right = b.createBlock("right");
  BasicBlock& merge = b.createBlock("merge");
  const Reg v = fn.newReg(RegClass::kGp);
  b.setBlock(entry);
  const Reg p = b.pSetImm(true);
  b.brCond(p, left, right);
  b.setBlock(left);
  b.movImmTo(v, 1);
  b.br(merge);
  b.setBlock(right);
  b.movImmTo(v, 2);
  b.br(merge);
  b.setBlock(merge);
  b.halt(v);
  EXPECT_TRUE(verify(prog).empty());
}

TEST(VerifierTest, LoopCarriedValueAccepted) {
  // sum defined before the loop, read+written inside: must be accepted.
  EXPECT_TRUE(verify(testutil::makeLoopProgram(3)).empty());
}

TEST(VerifierTest, ParameterCountsAsAssigned) {
  Program prog;
  Function& helper = prog.addFunction("helper");
  const Reg param = helper.newReg(RegClass::kGp);
  helper.params() = {param};
  helper.returnClasses() = {RegClass::kGp};
  {
    IrBuilder b(helper);
    b.setBlock(b.createBlock("body"));
    b.ret({param});
  }
  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  {
    IrBuilder b(main);
    b.setBlock(b.createBlock("entry"));
    const Reg v = b.call(helper, {b.movImm(7)})[0];
    b.halt(v);
  }
  EXPECT_TRUE(verify(prog).empty());
}

TEST(VerifierTest, CallArityMismatchRejected) {
  Program prog;
  Function& helper = prog.addFunction("helper");
  helper.params() = {helper.newReg(RegClass::kGp)};
  {
    IrBuilder b(helper);
    b.setBlock(b.createBlock("body"));
    b.ret({});
  }
  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  Instruction call;
  call.op = Opcode::kCall;
  call.id = main.newInsnId();
  call.callee = helper.id();
  // no args — helper takes one
  entry.insns().push_back(call);
  b.halt(b.movImm(0));
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("args") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, EntryWithParametersRejected) {
  Program prog;
  Function& main = prog.addFunction("main");
  main.params() = {main.newReg(RegClass::kGp)};
  IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));
  b.halt(b.movImm(0));
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("entry function") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, DuplicateLinkConsistencyEnforced) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg v = b.movImm(1);
  b.halt(v);
  // Claim duplicate origin without a link.
  entry.insns()[0].origin = InsnOrigin::kDuplicate;
  bool found = false;
  for (const std::string& error : verify(prog)) {
    if (error.find("duplicateOf") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VerifierTest, VerifyOrThrowAggregatesErrors) {
  Program prog;
  prog.addFunction("main");
  EXPECT_THROW(verifyOrThrow(prog), FatalError);
}

// Property sweep: random straight-line programs are always verifier-clean.
class RandomProgramVerifyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramVerifyTest, RandomStraightLineIsClean) {
  const Program prog = testutil::makeRandomStraightLine(
      static_cast<std::uint64_t>(GetParam()) * 7919, 60);
  EXPECT_TRUE(verify(prog).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramVerifyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace casted::ir
