// Tests for the casted::pm layer: pipeline construction, analysis caching
// and invalidation, and the per-pass PipelineReport.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ir/builder.h"
#include "pm/analysis_manager.h"
#include "pm/pass.h"
#include "pm/pass_manager.h"
#include "support/check.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::pm {
namespace {

using passes::Scheme;

std::vector<std::string> passNames(const PassManager& manager) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < manager.passCount(); ++i) {
    names.emplace_back(manager.pass(i).name());
  }
  return names;
}

// --- pipeline construction --------------------------------------------------

TEST(BuildPipelineTest, CastedOrderMatchesPaperToolFlow) {
  const PassManager manager = core::buildPipeline(Scheme::kCasted);
  EXPECT_EQ(passNames(manager),
            (std::vector<std::string>{"early-opts", "error-detection",
                                      "local-cse", "dce", "assignment",
                                      "protection-lint"}));
}

TEST(BuildPipelineTest, NoedSkipsErrorDetection) {
  const PassManager manager = core::buildPipeline(Scheme::kNoed);
  EXPECT_EQ(passNames(manager),
            (std::vector<std::string>{"early-opts", "local-cse", "dce",
                                      "assignment", "protection-lint"}));
}

TEST(BuildPipelineTest, OptionsToggleStages) {
  core::PipelineOptions options;
  options.runEarlyOptimisations = false;
  options.runLateOptimisations = false;
  options.modelRegisterPressure = true;
  const PassManager manager = core::buildPipeline(Scheme::kSced, options);
  EXPECT_EQ(passNames(manager),
            (std::vector<std::string>{"error-detection", "spill",
                                      "assignment", "protection-lint"}));
}

// --- analysis caching -------------------------------------------------------

TEST(AnalysisManagerTest, RepeatedQueriesHitTheCache) {
  const ir::Program prog = testutil::makeLoopProgram(4);
  const arch::MachineConfig config = testutil::machine(2, 1);
  AnalysisManager am(config);
  const ir::Function& fn = prog.function(0);

  am.dataFlowGraph(fn, 0);
  am.liveness(fn);
  EXPECT_EQ(am.hits(), 0u);
  EXPECT_EQ(am.misses(), 2u);

  am.dataFlowGraph(fn, 0);
  am.liveness(fn);
  EXPECT_EQ(am.hits(), 2u);
  EXPECT_EQ(am.misses(), 2u);

  am.dataFlowGraph(fn, 1);  // different block: its own miss
  EXPECT_EQ(am.misses(), 3u);
}

TEST(AnalysisManagerTest, InvalidateFunctionDropsItsAnalyses) {
  const ir::Program prog = testutil::makeLoopProgram(4);
  AnalysisManager am(testutil::machine(2, 1));
  const ir::Function& fn = prog.function(0);
  am.dataFlowGraph(fn, 0);
  am.invalidateFunction(fn);
  EXPECT_EQ(am.invalidations(), 1u);
  am.dataFlowGraph(fn, 0);
  EXPECT_EQ(am.hits(), 0u);
  EXPECT_EQ(am.misses(), 2u);
}

// A pass that reads one block DFG and declares it mutated nothing.
class ReadOnlyPass final : public Pass {
 public:
  std::string_view name() const override { return "read-only"; }
  PassResult run(ir::Program& program, AnalysisManager& am) override {
    am.dataFlowGraph(program.function(0), 0);
    PassResult result;
    result.preserved = Preserved::kAll;
    return result;
  }
};

// A pass that appends a (dead but harmless) instruction and reports kNone.
class AppendPass final : public Pass {
 public:
  std::string_view name() const override { return "append"; }
  PassResult run(ir::Program& program, AnalysisManager&) override {
    ir::Function& fn = program.function(0);
    auto& insns = fn.block(0).insns();
    ir::Instruction nop;
    nop.op = ir::Opcode::kMovImm;
    nop.id = fn.newInsnId();
    nop.defs = {fn.newReg(ir::RegClass::kGp)};
    nop.imm = 0;
    insns.insert(insns.end() - 1, nop);
    return {};  // Preserved::kNone
  }
};

TEST(PassManagerTest, PreservingPassKeepsCacheMutatingPassDropsIt) {
  ir::Program prog = testutil::makeTinyProgram();
  AnalysisManager am(testutil::machine(2, 1));

  PassManager keeps;
  keeps.emplacePass<ReadOnlyPass>();
  keeps.emplacePass<ReadOnlyPass>();
  keeps.run(prog, am);
  // Second pass re-reads the graph the first one built.
  EXPECT_EQ(am.misses(), 1u);
  EXPECT_EQ(am.hits(), 1u);
  EXPECT_EQ(am.invalidations(), 0u);

  PassManager drops;
  drops.emplacePass<AppendPass>();
  drops.emplacePass<ReadOnlyPass>();
  drops.run(prog, am);
  // The mutation invalidated everything; the reader rebuilt from scratch.
  EXPECT_GE(am.invalidations(), 1u);
  EXPECT_EQ(am.misses(), 2u);
}

TEST(PassManagerTest, SchedulerReusesAssignmentDfgsThroughSharedManager) {
  // The flagship reuse: cluster assignment (BUG) walks every block DFG and
  // only writes `cluster` fields, so the list scheduler right after gets
  // every graph as a cache hit.
  const workloads::Workload wl = workloads::makeH263dec(1);
  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 1), Scheme::kCasted);
  EXPECT_GT(bin.report.analysisHits, 0u);
  const PassReport* assignment = bin.report.find("assignment");
  ASSERT_NE(assignment, nullptr);
  EXPECT_TRUE(assignment->preservedAnalyses);
}

// --- the report -------------------------------------------------------------

TEST(PipelineReportTest, DeltasSumToObservedCodeGrowth) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const std::size_t sourceInsns = wl.program.insnCount();
  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 1), Scheme::kSced);

  EXPECT_EQ(bin.report.sourceInsns, sourceInsns);
  EXPECT_EQ(bin.report.finalInsns, bin.program.insnCount());
  EXPECT_EQ(bin.report.totalInsnDelta(),
            static_cast<std::int64_t>(bin.report.finalInsns) -
                static_cast<std::int64_t>(bin.report.sourceInsns));
  // Per-pass deltas reproduce the paper's ~2.4x growth (§IV-C).
  const double growth =
      static_cast<double>(bin.report.finalInsns) /
      static_cast<double>(bin.report.sourceInsns);
  EXPECT_GT(growth, 1.7);
  EXPECT_LT(growth, 3.0);
  // Replication is where the growth comes from.
  const PassReport* ed = bin.report.find("error-detection");
  ASSERT_NE(ed, nullptr);
  EXPECT_GT(ed->insnDelta, 0);
}

TEST(PipelineReportTest, AbsentPassReportsZeroStats) {
  const core::CompiledProgram bin =
      core::compile(testutil::makeTinyProgram(), testutil::machine(2, 1),
                    Scheme::kNoed);
  EXPECT_EQ(bin.report.find("error-detection"), nullptr);
  EXPECT_EQ(bin.report.stat("error-detection", "checks"), 0u);
  EXPECT_EQ(bin.report.stat("assignment", "no-such-key"), 0u);
}

TEST(PipelineReportTest, ToStringListsEveryPass) {
  const core::CompiledProgram bin =
      core::compile(testutil::makeTinyProgram(), testutil::machine(2, 1),
                    Scheme::kCasted);
  const std::string text = bin.report.toString();
  for (const PassReport& pass : bin.report.passes) {
    EXPECT_NE(text.find(pass.pass), std::string::npos) << pass.pass;
  }
}

// --- post-pass verification -------------------------------------------------

// A pass that removes the terminator of block 0 — invalid IR.
class CorruptingPass final : public Pass {
 public:
  std::string_view name() const override { return "corrupt"; }
  PassResult run(ir::Program& program, AnalysisManager&) override {
    program.function(0).block(0).insns().pop_back();
    return {};
  }
};

TEST(PassManagerTest, VerifyAfterPassThrowsOnCorruptedIr) {
  ir::Program prog = testutil::makeTinyProgram();
  AnalysisManager am(testutil::machine(2, 1));
  PassManager manager({.verifyAfterEachPass = true});
  manager.emplacePass<CorruptingPass>();
  EXPECT_THROW(manager.run(prog, am), FatalError);
}

TEST(PassManagerTest, VerificationCanBeDisabled) {
  ir::Program prog = testutil::makeTinyProgram();
  AnalysisManager am(testutil::machine(2, 1));
  PassManager manager({.verifyAfterEachPass = false});
  manager.emplacePass<CorruptingPass>();
  EXPECT_NO_THROW(manager.run(prog, am));
}

}  // namespace
}  // namespace casted::pm
