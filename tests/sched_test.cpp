#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "dfg/dfg.h"
#include "ir/builder.h"
#include "passes/assignment.h"
#include "passes/error_detection.h"
#include "sched/list_scheduler.h"
#include "sched/reservation_table.h"
#include "support/check.h"
#include "test_util.h"

namespace casted::sched {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;

// --- ReservationTable -------------------------------------------------------

TEST(ReservationTableTest, RespectsIssueWidth) {
  const arch::MachineConfig config = testutil::machine(2, 1);
  ReservationTable table(config);
  EXPECT_TRUE(table.canIssue(0, 0, ir::FuClass::kIntAlu));
  table.reserve(0, 0, ir::FuClass::kIntAlu);
  EXPECT_TRUE(table.canIssue(0, 0, ir::FuClass::kIntAlu));
  table.reserve(0, 0, ir::FuClass::kIntAlu);
  EXPECT_FALSE(table.canIssue(0, 0, ir::FuClass::kIntAlu));
  // Other cluster and other cycle unaffected.
  EXPECT_TRUE(table.canIssue(1, 0, ir::FuClass::kIntAlu));
  EXPECT_TRUE(table.canIssue(0, 1, ir::FuClass::kIntAlu));
}

TEST(ReservationTableTest, EarliestIssueSkipsFullCycles) {
  const arch::MachineConfig config = testutil::machine(1, 1);
  ReservationTable table(config);
  table.reserve(0, 0, ir::FuClass::kIntAlu);
  table.reserve(0, 1, ir::FuClass::kIntAlu);
  EXPECT_EQ(table.earliestIssue(0, 0, ir::FuClass::kIntAlu), 2u);
}

TEST(ReservationTableTest, MemPortLimitEnforced) {
  arch::MachineConfig config = testutil::machine(4, 1);
  config.memPortsPerCluster = 1;
  ReservationTable table(config);
  table.reserve(0, 0, ir::FuClass::kMem);
  EXPECT_FALSE(table.canIssue(0, 0, ir::FuClass::kMem));
  // Non-memory ops can still use the remaining slots.
  EXPECT_TRUE(table.canIssue(0, 0, ir::FuClass::kIntAlu));
}

TEST(ReservationTableTest, FpPortLimitEnforced) {
  arch::MachineConfig config = testutil::machine(4, 1);
  config.fpPortsPerCluster = 2;
  ReservationTable table(config);
  table.reserve(0, 0, ir::FuClass::kFpAlu);
  table.reserve(0, 0, ir::FuClass::kFpMul);
  EXPECT_FALSE(table.canIssue(0, 0, ir::FuClass::kFpDiv));
  EXPECT_TRUE(table.canIssue(0, 0, ir::FuClass::kIntAlu));
}

TEST(ReservationTableTest, UsedSlotsTracksPerCluster) {
  // Named config: ReservationTable keeps a reference to it.
  const arch::MachineConfig config = testutil::machine(2, 1);
  ReservationTable table(config);
  table.reserve(0, 0, ir::FuClass::kIntAlu);
  table.reserve(1, 3, ir::FuClass::kMem);
  table.reserve(1, 4, ir::FuClass::kMem);
  EXPECT_EQ(table.usedSlots(0), 1u);
  EXPECT_EQ(table.usedSlots(1), 2u);
}

TEST(ReservationTableTest, ReserveUnavailableThrows) {
  const arch::MachineConfig config = testutil::machine(1, 1);
  ReservationTable table(config);
  table.reserve(0, 0, ir::FuClass::kIntAlu);
  EXPECT_THROW(table.reserve(0, 0, ir::FuClass::kIntAlu), FatalError);
}

// --- ListScheduler: validity invariants -----------------------------------------

// Checks that `schedule` respects every DFG edge and resource constraint.
void expectValidSchedule(const BlockSchedule& schedule,
                         const dfg::DataFlowGraph& graph,
                         const arch::MachineConfig& config) {
  ASSERT_EQ(schedule.issueCycle.size(), graph.size());
  ASSERT_EQ(schedule.insns.size(), graph.size());

  // Dependence constraints, including the cross-cluster delay on value-
  // carrying edges.
  std::vector<std::uint32_t> clusterOf(graph.size());
  for (const ScheduledInsn& si : schedule.insns) {
    clusterOf[si.node] = si.cluster;
  }
  for (std::uint32_t node = 0; node < graph.size(); ++node) {
    for (const dfg::Edge& edge : graph.preds(node)) {
      std::uint32_t needed = schedule.issueCycle[edge.from] + edge.latency;
      const bool crossing = clusterOf[edge.from] != clusterOf[node];
      if (crossing && (edge.kind == dfg::DepKind::kData ||
                       edge.kind == dfg::DepKind::kGuard)) {
        needed += config.interClusterDelay;
      }
      EXPECT_GE(schedule.issueCycle[node], needed)
          << "edge " << edge.from << "->" << node << " violated";
    }
  }

  // Resource constraints: issue width per (cluster, cycle).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> perCycle;
  for (const ScheduledInsn& si : schedule.insns) {
    EXPECT_LT(si.cluster, config.clusterCount);
    ++perCycle[{si.cluster, si.cycle}];
  }
  for (const auto& [key, count] : perCycle) {
    EXPECT_LE(count, config.issueWidth);
  }

  // Length covers every completion.
  for (const ScheduledInsn& si : schedule.insns) {
    EXPECT_LE(si.cycle + si.latency, schedule.length);
  }
}

TEST(ListSchedulerTest, SerialChainRespectsLatencies) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg a = b.movImm(1);
  const Reg c = b.mul(a, a);  // latency 3
  const Reg d = b.add(c, c);
  b.halt(d);
  const arch::MachineConfig config = testutil::machine(4, 1);
  const dfg::DataFlowGraph graph(entry, config);
  const BlockSchedule schedule = scheduleBlock(graph, config);
  expectValidSchedule(schedule, graph, config);
  // movi@0, mul@1 (after 1-cycle movi), add@1+3=4, halt@5.
  EXPECT_EQ(schedule.issueCycle[0], 0u);
  EXPECT_EQ(schedule.issueCycle[1], 1u);
  EXPECT_EQ(schedule.issueCycle[2], 4u);
  EXPECT_EQ(schedule.issueCycle[3], 5u);
  EXPECT_EQ(schedule.length, 6u);
}

TEST(ListSchedulerTest, IssueWidthLimitsParallelism) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  for (int i = 0; i < 8; ++i) {
    b.movImm(i);  // 8 independent single-cycle ops
  }
  b.halt(b.movImm(0));
  for (std::uint32_t iw : {1u, 2u, 4u}) {
    const arch::MachineConfig config = testutil::machine(iw, 1);
    const dfg::DataFlowGraph graph(entry, config);
    const BlockSchedule schedule = scheduleBlock(graph, config);
    expectValidSchedule(schedule, graph, config);
    // 10 single-cluster ops over iw slots per cycle.
    EXPECT_EQ(schedule.length, (10 + iw - 1) / iw)
        << "issue width " << iw;
  }
}

TEST(ListSchedulerTest, CrossClusterDelayApplied) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg a = b.movImm(1);   // node 0, cluster 0
  const Reg c = b.add(a, a);   // node 1, forced to cluster 1
  b.halt(c);                   // node 2, cluster 0 again
  entry.insns()[1].cluster = 1;
  const arch::MachineConfig config = testutil::machine(2, 3);
  const dfg::DataFlowGraph graph(entry, config);
  const BlockSchedule schedule = scheduleBlock(graph, config);
  expectValidSchedule(schedule, graph, config);
  // add waits 1 (movi) + 3 (delay); halt waits 1 (add) + 3 (delay back).
  EXPECT_EQ(schedule.issueCycle[1], 4u);
  EXPECT_EQ(schedule.issueCycle[2], 8u);
}

TEST(ListSchedulerTest, HonoursAssignedClusters) {
  Program prog = testutil::makeRandomStraightLine(3, 30);
  passes::applyErrorDetection(prog);
  const arch::MachineConfig config = testutil::machine(2, 1);
  passes::assignClusters(prog, config, passes::Scheme::kDced);
  ir::BasicBlock& block = prog.function(0).block(0);
  const dfg::DataFlowGraph graph(block, config);
  const BlockSchedule schedule = scheduleBlock(graph, config);
  for (const ScheduledInsn& si : schedule.insns) {
    EXPECT_EQ(static_cast<int>(si.cluster), block.insns()[si.node].cluster);
  }
}

TEST(ListSchedulerTest, InvalidClusterRejected) {
  Program prog = testutil::makeTinyProgram();
  prog.function(0).block(0).insns()[0].cluster = 7;
  const arch::MachineConfig config = testutil::machine(2, 1);
  const dfg::DataFlowGraph graph(prog.function(0).block(0), config);
  EXPECT_THROW(scheduleBlock(graph, config), FatalError);
}

TEST(ListSchedulerTest, ScheduleProgramCoversAllBlocks) {
  const Program prog = testutil::makeLoopProgram(5);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const ProgramSchedule schedule = scheduleProgram(prog, config);
  ASSERT_EQ(schedule.functions.size(), 1u);
  ASSERT_EQ(schedule.functions[0].blocks.size(), 3u);
  for (const BlockSchedule& block : schedule.functions[0].blocks) {
    EXPECT_GE(block.length, 1u);
  }
  EXPECT_GT(schedule.functions[0].totalLength(), 0u);
}

TEST(ListSchedulerTest, RenderShowsBundles) {
  const Program prog = testutil::makeTinyProgram();
  const arch::MachineConfig config = testutil::machine(2, 1);
  const ir::BasicBlock& block = prog.function(0).block(0);
  const dfg::DataFlowGraph graph(block, config);
  const BlockSchedule schedule = scheduleBlock(graph, config);
  const std::string rendered = schedule.render(block, 2, 2);
  EXPECT_NE(rendered.find("cluster0"), std::string::npos);
  EXPECT_NE(rendered.find("cluster1"), std::string::npos);
  EXPECT_NE(rendered.find("length:"), std::string::npos);
}

// Property sweep: for random ED programs over all (issue, delay, scheme)
// combinations, the schedule must satisfy every dependence and resource
// constraint.
struct SchedulePropertyParam {
  int seed;
  std::uint32_t issueWidth;
  std::uint32_t delay;
  passes::Scheme scheme;
};

class SchedulePropertyTest
    : public ::testing::TestWithParam<SchedulePropertyParam> {};

TEST_P(SchedulePropertyTest, ScheduleIsValid) {
  const SchedulePropertyParam param = GetParam();
  Program prog = testutil::makeRandomStraightLine(
      static_cast<std::uint64_t>(param.seed) * 31 + 1, 50);
  if (param.scheme != passes::Scheme::kNoed) {
    passes::applyErrorDetection(prog);
  }
  const arch::MachineConfig config =
      testutil::machine(param.issueWidth, param.delay);
  passes::assignClusters(prog, config, param.scheme);
  const ir::BasicBlock& block = prog.function(0).block(0);
  const dfg::DataFlowGraph graph(block, config);
  const BlockSchedule schedule = scheduleBlock(graph, config);
  expectValidSchedule(schedule, graph, config);
}

std::vector<SchedulePropertyParam> scheduleParams() {
  std::vector<SchedulePropertyParam> params;
  for (int seed : {1, 2, 3}) {
    for (std::uint32_t iw : {1u, 2u, 4u}) {
      for (std::uint32_t delay : {1u, 4u}) {
        for (passes::Scheme scheme :
             {passes::Scheme::kSced, passes::Scheme::kDced,
              passes::Scheme::kCasted}) {
          params.push_back({seed, iw, delay, scheme});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulePropertyTest,
                         ::testing::ValuesIn(scheduleParams()));

}  // namespace
}  // namespace casted::sched
