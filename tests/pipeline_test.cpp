// End-to-end pipeline tests, including the paper's motivating examples
// (Figs. 2 and 3) and the headline adaptivity property.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::core {
namespace {

using passes::Scheme;

std::uint64_t cyclesFor(const ir::Program& prog,
                        const arch::MachineConfig& config, Scheme scheme) {
  const CompiledProgram bin = compile(prog, config, scheme);
  const sim::RunResult result = run(bin);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  return result.stats.cycles;
}

TEST(PipelineTest, CompileProducesVerifiedProgramAndSchedule) {
  const ir::Program prog = testutil::makeTinyProgram();
  const CompiledProgram bin =
      compile(prog, testutil::machine(2, 1), Scheme::kCasted);
  EXPECT_TRUE(ir::verify(bin.program).empty());
  EXPECT_EQ(bin.schedule.functions.size(), bin.program.functionCount());
  EXPECT_GT(bin.report.stat("error-detection", "replicated"), 0u);
  EXPECT_GT(bin.report.stat("error-detection", "checks"), 0u);
}

TEST(PipelineTest, SourceProgramNotModified) {
  const ir::Program prog = testutil::makeTinyProgram();
  const std::size_t before = prog.insnCount();
  compile(prog, testutil::machine(2, 1), Scheme::kCasted);
  EXPECT_EQ(prog.insnCount(), before);
}

TEST(PipelineTest, NoedSkipsErrorDetection) {
  const ir::Program prog = testutil::makeTinyProgram();
  const CompiledProgram bin =
      compile(prog, testutil::machine(2, 1), Scheme::kNoed);
  EXPECT_EQ(bin.report.find("error-detection"), nullptr);
  EXPECT_EQ(bin.report.stat("error-detection", "replicated"), 0u);
  EXPECT_EQ(bin.report.stat("assignment", "off-cluster0"), 0u);
}

TEST(PipelineTest, CodeGrowthNearPaperFactor) {
  // Paper §IV-C: error-detection binaries are ~2.4x the original on
  // average.
  const workloads::Workload wl = workloads::makeH263dec(1);
  const std::size_t sourceInsns = wl.program.insnCount();
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kSced);
  const double growth = bin.codeGrowth(sourceInsns);
  EXPECT_GT(growth, 1.7);
  EXPECT_LT(growth, 3.0);
}

TEST(PipelineTest, ErrorDetectionPreservesSemanticsUnderAllConfigs) {
  const ir::Program prog = testutil::makeRandomStraightLine(55, 60);
  const CompiledProgram golden =
      compile(prog, testutil::machine(2, 1), Scheme::kNoed);
  const sim::RunResult goldenRun = run(golden);
  for (std::uint32_t iw : {1u, 2u, 4u}) {
    for (std::uint32_t delay : {1u, 3u}) {
      for (Scheme scheme :
           {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
        const CompiledProgram bin =
            compile(prog, testutil::machine(iw, delay), scheme);
        const sim::RunResult result = run(bin);
        EXPECT_EQ(result.output, goldenRun.output)
            << schemeName(scheme) << " iw=" << iw << " d=" << delay;
      }
    }
  }
}

TEST(PipelineTest, VerifyCanBeDisabledForSpeed) {
  PipelineOptions options;
  options.verifyAfterPasses = false;
  const CompiledProgram bin = compile(testutil::makeTinyProgram(),
                                      testutil::machine(2, 1),
                                      Scheme::kCasted, options);
  EXPECT_GT(bin.program.insnCount(), 0u);
}

// --- the paper's motivating examples -----------------------------------------

// The DFG of Figs. 2/3: A, B, C feed D; D feeds the (non-replicated) store.
ir::Program motivatingProgram() {
  ir::Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  ir::IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const ir::Reg base = b.movImm(
      static_cast<std::int64_t>(prog.symbol("output").address));
  const ir::Reg a = b.addImm(base, 3);   // A
  const ir::Reg c1 = b.addImm(base, 5);  // B
  const ir::Reg c2 = b.addImm(base, 7);  // C
  const ir::Reg d = b.add(b.add(a, c1), c2);  // D (two nodes)
  b.store(base, 0, d);                   // N.R. store
  b.halt(b.movImm(0));
  return prog;
}

TEST(MotivatingExampleTest, Fig2NarrowMachineDcedBeatsSced) {
  // Example 1: single-issue clusters, delay 1.  The single core is resource
  // constrained, so DCED < SCED.
  const ir::Program prog = motivatingProgram();
  const arch::MachineConfig config = testutil::machine(1, 1);
  const std::uint64_t sced = cyclesFor(prog, config, Scheme::kSced);
  const std::uint64_t dced = cyclesFor(prog, config, Scheme::kDced);
  EXPECT_LT(dced, sced);
}

TEST(MotivatingExampleTest, Fig3WideMachineScedBeatsDced) {
  // Example 2: two-wide clusters, larger delay.  The single core absorbs
  // the redundant ILP while DCED pays communication on every check.
  const ir::Program prog = motivatingProgram();
  const arch::MachineConfig config = testutil::machine(2, 3);
  const std::uint64_t sced = cyclesFor(prog, config, Scheme::kSced);
  const std::uint64_t dced = cyclesFor(prog, config, Scheme::kDced);
  EXPECT_LT(sced, dced);
}

TEST(MotivatingExampleTest, CastedMatchesTheBestOnBothMachines) {
  const ir::Program prog = motivatingProgram();
  for (auto [iw, delay] : {std::pair{1u, 1u}, std::pair{2u, 3u}}) {
    const arch::MachineConfig config = testutil::machine(iw, delay);
    const std::uint64_t sced = cyclesFor(prog, config, Scheme::kSced);
    const std::uint64_t dced = cyclesFor(prog, config, Scheme::kDced);
    const std::uint64_t casted = cyclesFor(prog, config, Scheme::kCasted);
    EXPECT_LE(casted, std::min(sced, dced)) << "iw=" << iw << " d=" << delay;
  }
}

// --- headline adaptivity across the full grid ---------------------------------

class AdaptivityGridTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(AdaptivityGridTest, CastedAtMostBestFixedScheme) {
  const auto [name, iw, delay] = GetParam();
  const workloads::Workload wl = workloads::makeWorkload(name, 1);
  const arch::MachineConfig config = testutil::machine(iw, delay);
  const std::uint64_t sced = cyclesFor(wl.program, config, Scheme::kSced);
  const std::uint64_t dced = cyclesFor(wl.program, config, Scheme::kDced);
  const std::uint64_t casted = cyclesFor(wl.program, config, Scheme::kCasted);
  // Allow a 2% tolerance: the fallback decides on static schedule length,
  // while cycles include cache stalls.
  EXPECT_LE(static_cast<double>(casted),
            1.02 * static_cast<double>(std::min(sced, dced)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptivityGridTest,
    ::testing::Combine(::testing::Values("h263dec", "h263enc", "181.mcf"),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '.') {
          c = '_';
        }
      }
      return name + "_iw" + std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

// NOED is always the fastest (error detection cannot speed things up).
TEST(PipelineTest, SlowdownsAreAtLeastOne) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const arch::MachineConfig config = testutil::machine(2, 2);
  const std::uint64_t noed = cyclesFor(wl.program, config, Scheme::kNoed);
  for (Scheme scheme : {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
    EXPECT_GE(cyclesFor(wl.program, config, scheme), noed);
  }
}

// Unprotected library functions reproduce the paper's residual-corruption
// observation: faults there cannot be detected.
TEST(PipelineTest, UnprotectedHelperSkipsProtection) {
  workloads::Workload wl = workloads::makeVpr(1);
  wl.program.findFunction("span")->setProtected(false);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kCasted);
  EXPECT_EQ(bin.report.stat("error-detection", "skipped-unprotected"), 1u);
  // The helper kept its original size (no duplicates inside).
  const ir::Function* span = nullptr;
  for (ir::FuncId f = 0; f < bin.program.functionCount(); ++f) {
    if (bin.program.function(f).name() == "span") {
      span = &bin.program.function(f);
    }
  }
  ASSERT_NE(span, nullptr);
  for (ir::BlockId b = 0; b < span->blockCount(); ++b) {
    for (const ir::Instruction& insn : span->block(b).insns()) {
      EXPECT_EQ(insn.origin, ir::InsnOrigin::kOriginal);
    }
  }
}

}  // namespace
}  // namespace casted::core
