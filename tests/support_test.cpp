#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "support/check.h"
#include "support/env.h"
#include "support/rng.h"
#include "support/statistics.h"
#include "support/table.h"

namespace casted {
namespace {

// --- CASTED_CHECK ----------------------------------------------------------

TEST(CheckTest, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(CASTED_CHECK(1 + 1 == 2) << "never shown");
}

TEST(CheckTest, FailingConditionThrowsFatalError) {
  EXPECT_THROW(CASTED_CHECK(false) << "context", FatalError);
}

TEST(CheckTest, MessageContainsExpressionAndContext) {
  try {
    const int x = 42;
    CASTED_CHECK(x < 0) << "x=" << x;
    FAIL() << "expected FatalError";
  } catch (const FatalError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("x < 0"), std::string::npos);
    EXPECT_NE(what.find("x=42"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, UnreachableThrows) {
  EXPECT_THROW(CASTED_UNREACHABLE("boom"), FatalError);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.nextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.nextBelow(0), FatalError);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.nextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(11);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.nextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo = sawLo || v == -3;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, NextInRangeEmptyThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.nextInRange(3, 2), FatalError);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbabilityExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA.next() == childB.next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

// --- statistics ---------------------------------------------------------------

TEST(StatisticsTest, EmptySummaryIsZero) {
  const SampleSummary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatisticsTest, SingleValue) {
  const std::vector<double> values = {4.0};
  const SampleSummary s = summarize(values);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.geomean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(StatisticsTest, MeanAndExtremes) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const SampleSummary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(StatisticsTest, GeomeanOfPowersOfTwo) {
  const std::vector<double> values = {1.0, 2.0, 4.0, 8.0};
  EXPECT_NEAR(geomean(values), 2.8284271247461903, 1e-12);
}

TEST(StatisticsTest, GeomeanRejectsNonPositive) {
  const std::vector<double> values = {1.0, 0.0};
  EXPECT_THROW(geomean(values), FatalError);
}

TEST(StatisticsTest, GeomeanValidFlagMatchesThrowingTwin) {
  // summarize() and geomean() share one validity rule: geomeanValid is the
  // silent twin of the throwing CHECK.  Positive data: flag set, values
  // agree.  Non-positive data: flag cleared + geomean 0.0 where geomean()
  // throws.
  const std::vector<double> positive = {1.0, 2.0, 4.0, 8.0};
  const SampleSummary good = summarize(positive);
  EXPECT_TRUE(good.geomeanValid);
  EXPECT_NEAR(good.geomean, geomean(positive), 1e-12);

  const std::vector<double> withZero = {1.0, 0.0};
  const SampleSummary bad = summarize(withZero);
  EXPECT_FALSE(bad.geomeanValid);
  EXPECT_DOUBLE_EQ(bad.geomean, 0.0);
  EXPECT_THROW(geomean(withZero), FatalError);

  const std::vector<double> withNegative = {2.0, -3.0};
  EXPECT_FALSE(summarize(withNegative).geomeanValid);
  EXPECT_THROW(geomean(withNegative), FatalError);

  // Empty input is vacuously valid for neither: count 0, no throw, no flag.
  EXPECT_FALSE(summarize({}).geomeanValid);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(StatisticsTest, StddevUsesSampleEstimator) {
  // Regression for the population-stddev bug (divide by n): bench
  // repetitions are a sample, so the estimator must be Bessel-corrected
  // (divide by n-1).  Hand-computed: {1,2,3,4} has mean 2.5 and squared
  // deviations summing to 5, so sample stddev = sqrt(5/3).
  const std::vector<double> small = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(summarize(small).stddev, std::sqrt(5.0 / 3.0), 1e-12);

  // Textbook example: {2,4,4,4,5,5,7,9}, mean 5, squared deviations sum to
  // 32.  Population stddev would be sqrt(32/8) = 2 exactly — the buggy
  // value — while the sample estimator gives sqrt(32/7).
  const std::vector<double> textbook = {2.0, 4.0, 4.0, 4.0,
                                        5.0, 5.0, 7.0, 9.0};
  const double stddev = summarize(textbook).stddev;
  EXPECT_NEAR(stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_GT(stddev, 2.0);  // strictly above the population value
}

TEST(StatisticsTest, StddevOfTinySamplesIsZero) {
  // n <= 1 has no spread estimate; the n-1 denominator must not divide by
  // zero or return NaN.
  const std::vector<double> single = {7.5};
  EXPECT_DOUBLE_EQ(summarize({}).stddev, 0.0);
  EXPECT_DOUBLE_EQ(summarize(single).stddev, 0.0);
}

// --- envU32 ------------------------------------------------------------------

class EnvU32Test : public ::testing::Test {
 protected:
  static constexpr const char* kName = "CASTED_ENVU32_TEST";
  void SetUp() override { ::unsetenv(kName); }
  void TearDown() override { ::unsetenv(kName); }
  void set(const char* value) { ::setenv(kName, value, 1); }
};

TEST_F(EnvU32Test, UnsetAndEmptyFallBack) {
  EXPECT_EQ(envU32(kName, 42), 42u);
  set("");
  EXPECT_EQ(envU32(kName, 42), 42u);
}

TEST_F(EnvU32Test, ParsesPlainDecimal) {
  set("0");
  EXPECT_EQ(envU32(kName, 42), 0u);
  set("123");
  EXPECT_EQ(envU32(kName, 42), 123u);
  set("4294967295");  // UINT32_MAX is in range
  EXPECT_EQ(envU32(kName, 42), 4294967295u);
}

TEST_F(EnvU32Test, RejectsMalformedInput) {
  // Regression for the old strtoul parser: "1e6" silently parsed as 1 and
  // pure junk as 0.  Every non-digit must now die loudly.
  for (const char* bad : {"1e6", "junk", "-1", "+5", " 5", "5 ", "0x10"}) {
    set(bad);
    EXPECT_THROW(envU32(kName, 42), FatalError) << bad;
  }
}

TEST_F(EnvU32Test, RejectsOutOfRange) {
  // The old parser wrapped values above UINT32_MAX modulo 2^32.
  set("4294967296");  // UINT32_MAX + 1
  EXPECT_THROW(envU32(kName, 42), FatalError);
  set("99999999999999999999");  // far beyond uint64 too
  EXPECT_THROW(envU32(kName, 42), FatalError);
}

TEST(WilsonIntervalTest, EmptySampleIsVacuous) {
  const ProportionInterval interval = wilsonInterval(0, 0);
  EXPECT_EQ(interval.low, 0.0);
  EXPECT_EQ(interval.high, 1.0);
  EXPECT_TRUE(interval.contains(0.0));
  EXPECT_TRUE(interval.contains(1.0));
}

TEST(WilsonIntervalTest, MatchesKnownValueAt95) {
  // Textbook example: 50/100 at z=1.96 gives roughly [0.404, 0.596].
  const ProportionInterval interval = wilsonInterval(50, 100, 1.96);
  EXPECT_NEAR(interval.low, 0.4038, 1e-3);
  EXPECT_NEAR(interval.high, 0.5962, 1e-3);
}

TEST(WilsonIntervalTest, BoundariesStayInUnitRangeAndCoverEstimate) {
  const std::uint64_t samples[][2] = {
      {0, 10}, {10, 10}, {1, 1000}, {999, 1000}, {7, 25}};
  for (const auto& [successes, trials] : samples) {
    const ProportionInterval interval = wilsonInterval(successes, trials);
    EXPECT_GE(interval.low, 0.0);
    EXPECT_LE(interval.high, 1.0);
    EXPECT_LT(interval.low, interval.high);
    const double estimate =
        static_cast<double>(successes) / static_cast<double>(trials);
    EXPECT_TRUE(interval.contains(estimate)) << successes << "/" << trials;
  }
  // Degenerate extremes pin the matching bound (up to rounding).
  EXPECT_NEAR(wilsonInterval(0, 10).low, 0.0, 1e-12);
  EXPECT_NEAR(wilsonInterval(10, 10).high, 1.0, 1e-12);
}

TEST(WilsonIntervalTest, NarrowsWithMoreTrials) {
  const ProportionInterval small = wilsonInterval(5, 10);
  const ProportionInterval large = wilsonInterval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonIntervalTest, RejectsMoreSuccessesThanTrials) {
  EXPECT_THROW(wilsonInterval(11, 10), FatalError);
}

TEST(StatisticsTest, StddevOfConstantIsZero) {
  const std::vector<double> values = {3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(summarize(values).stddev, 0.0);
}

TEST(StatisticsTest, FormatFixed) {
  EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
  EXPECT_EQ(formatFixed(1.0, 0), "1");
  EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
}

TEST(StatisticsTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.425), "42.5%");
  EXPECT_EQ(formatPercent(1.0), "100.0%");
}

// --- TextTable -------------------------------------------------------------------

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable table({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTableTest, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), FatalError);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTableTest, SeparatorAddsRule) {
  TextTable table({"x"});
  table.addRow({"1"});
  table.addSeparator();
  table.addRow({"2"});
  const std::string out = table.render();
  // top + header rule + separator + bottom = 4 horizontal rules
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

// --- CsvWriter ----------------------------------------------------------------

TEST(CsvWriterTest, BasicRendering) {
  CsvWriter csv({"a", "b"});
  csv.addRow({"1", "2"});
  EXPECT_EQ(csv.render(), "a,b\n1,2\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv({"a"});
  csv.addRow({"x,y"});
  csv.addRow({"he said \"hi\""});
  const std::string out = csv.render();
  EXPECT_NE(out.find("\"x,y\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(CsvWriterTest, RejectsWrongArity) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.addRow({"1"}), FatalError);
}

}  // namespace
}  // namespace casted
