// support/trace contract tests:
//   * counters merge by summation across runWorkerPool workers;
//   * the exported report is well-formed Chrome-tracing JSON (parsed back
//     here by a small recursive-descent JSON reader — no external parser);
//   * the disabled mode is observationally silent: no file, no counter
//     mutations, no events;
//   * the CASTED_TRACE environment override activates a session lazily.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/driver_util.h"
#include "support/check.h"
#include "support/trace.h"

namespace casted {
namespace {

// --- A minimal JSON reader, just enough to validate the trace export -------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue value = parseValue();
    skipSpace();
    CASTED_CHECK(pos_ == text_.size()) << "trailing JSON at offset " << pos_;
    return value;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipSpace();
    CASTED_CHECK(pos_ < text_.size()) << "unexpected end of JSON";
    return text_[pos_];
  }

  void expect(char c) {
    CASTED_CHECK(peek() == c)
        << "expected '" << c << "' at offset " << pos_ << ", got '"
        << text_[pos_] << "'";
    ++pos_;
  }

  JsonValue parseValue() {
    const char c = peek();
    if (c == '{') {
      return parseObject();
    }
    if (c == '[') {
      return parseArray();
    }
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = parseString();
      return v;
    }
    if (c == 't' || c == 'f') {
      return parseKeyword();
    }
    if (c == 'n') {
      matchWord("null");
      return JsonValue{};
    }
    return parseNumber();
  }

  void matchWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      CASTED_CHECK(pos_ < text_.size() && text_[pos_] == *p)
          << "bad keyword at offset " << pos_;
      ++pos_;
    }
  }

  JsonValue parseKeyword() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_[pos_] == 't') {
      matchWord("true");
      v.boolean = true;
    } else {
      matchWord("false");
    }
    return v;
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    CASTED_CHECK(pos_ > start) << "expected number at offset " << start;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      CASTED_CHECK(pos_ < text_.size()) << "unterminated string";
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        CASTED_CHECK(pos_ < text_.size()) << "unterminated escape";
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            CASTED_CHECK(pos_ + 4 <= text_.size()) << "short \\u escape";
            pos_ += 4;  // validated for shape only; value not needed here
            out += '?';
            break;
          }
          default:
            CASTED_UNREACHABLE("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        return v;
      }
      CASTED_CHECK(c == ',') << "expected ',' in array at offset " << pos_;
    }
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipSpace();
      const std::string key = parseString();
      expect(':');
      v.fields[key] = parseValue();
      const char c = peek();
      ++pos_;
      if (c == '}') {
        return v;
      }
      CASTED_CHECK(c == ',') << "expected ',' in object at offset " << pos_;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// Fresh, path-less in-memory session per test; always left clean.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("CASTED_TRACE");
    trace::resetForTest();
  }
  void TearDown() override {
    ::unsetenv("CASTED_TRACE");
    trace::resetForTest();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndCountersAreNoOps) {
  EXPECT_FALSE(trace::enabled());
  trace::counterAdd("never", 5);
  trace::instant("never");
  { const trace::Scope scope("never"); }
  EXPECT_EQ(trace::counterValue("never"), 0);
  EXPECT_TRUE(trace::counterSnapshot().empty());
}

TEST_F(TraceTest, DisabledModeWritesNoFile) {
  const std::string path = ::testing::TempDir() + "casted_trace_disabled.json";
  std::remove(path.c_str());
  EXPECT_FALSE(trace::writeReport());
  EXPECT_FALSE(trace::writeReportTo(path));
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good()) << "disabled session must not create " << path;
}

TEST_F(TraceTest, CountersAccumulateAndMerge) {
  trace::enable("");
  ASSERT_TRUE(trace::enabled());
  trace::counterAdd("a", 2);
  trace::counterAdd("a", 3);
  trace::counterAdd("b");
  trace::counterAdd("c", -4);  // negative deltas are legal (insn deltas)
  EXPECT_EQ(trace::counterValue("a"), 5);
  EXPECT_EQ(trace::counterValue("b"), 1);
  EXPECT_EQ(trace::counterValue("c"), -4);
  EXPECT_EQ(trace::counterValue("untouched"), 0);
  const auto snapshot = trace::counterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "a");  // sorted by name
  EXPECT_EQ(snapshot[0].second, 5);
}

TEST_F(TraceTest, CountersMergeAcrossWorkerPoolThreads) {
  // Each of 4 pool workers bumps the same counter from its own
  // thread-local buffer; the merged value must be the exact sum, and the
  // per-worker counters must each carry their own contribution.
  trace::enable("");
  fault::detail::runWorkerPool(4, [](std::uint32_t w) {
    for (std::uint32_t i = 0; i < 100; ++i) {
      trace::counterAdd("pool.shared");
    }
    trace::counterAdd("pool.worker" + std::to_string(w), w + 1);
  });
  EXPECT_EQ(trace::counterValue("pool.shared"), 400);
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(trace::counterValue("pool.worker" + std::to_string(w)),
              static_cast<std::int64_t>(w + 1));
  }
}

TEST_F(TraceTest, ReportIsValidChromeTraceJson) {
  trace::enable("");
  {
    const trace::Scope outer("outer");
    const trace::Scope inner("inner");
    trace::instant("marker");
  }
  trace::counterAdd("events.count", 3);
  trace::setMetadata("threads", "4");
  trace::setMetadata("engine", "decoded");
  trace::setMetadata("injection_mode", "checkpointed");

  const std::string json = trace::reportJson();
  const JsonValue root = JsonReader(json).parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);

  // traceEvents: every record is a complete ("X", with dur) or instant
  // ("i") event carrying name/ts/pid/tid.
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->items.size(), 3u);
  bool sawOuter = false;
  bool sawMarker = false;
  for (const JsonValue& event : events->items) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* name = event.find("name");
    const JsonValue* ph = event.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_NE(event.find("ts"), nullptr);
    EXPECT_NE(event.find("pid"), nullptr);
    EXPECT_NE(event.find("tid"), nullptr);
    if (ph->text == "X") {
      EXPECT_NE(event.find("dur"), nullptr) << name->text;
    } else {
      EXPECT_EQ(ph->text, "i") << name->text;
    }
    sawOuter = sawOuter || (name->text == "outer" && ph->text == "X");
    sawMarker = sawMarker || (name->text == "marker" && ph->text == "i");
  }
  EXPECT_TRUE(sawOuter);
  EXPECT_TRUE(sawMarker);

  // counters: the flat summary carries the merged values.
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->kind, JsonValue::Kind::kObject);
  const JsonValue* count = counters->find("events.count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 3.0);

  // metadata: caller keys plus the automatic git_describe.
  const JsonValue* metadata = root.find("metadata");
  ASSERT_NE(metadata, nullptr);
  const JsonValue* threads = metadata->find("threads");
  ASSERT_NE(threads, nullptr);
  EXPECT_EQ(threads->text, "4");
  EXPECT_NE(metadata->find("engine"), nullptr);
  EXPECT_NE(metadata->find("injection_mode"), nullptr);
  EXPECT_NE(metadata->find("git_describe"), nullptr);
}

TEST_F(TraceTest, WriteReportEmitsParsableFile) {
  const std::string path = ::testing::TempDir() + "casted_trace_out.json";
  std::remove(path.c_str());
  trace::enable(path);
  { const trace::Scope scope("write.scope"); }
  trace::counterAdd("write.counter", 7);
  ASSERT_TRUE(trace::writeReport());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = JsonReader(buffer.str()).parse();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->find("write.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 7.0);
  std::remove(path.c_str());
}

TEST_F(TraceTest, EnvOverrideActivatesLazily) {
  // CASTED_TRACE resolves on the first enabled() query after reset — the
  // library path used by binaries that never call trace::enable().
  const std::string path = ::testing::TempDir() + "casted_trace_env.json";
  ::setenv("CASTED_TRACE", path.c_str(), 1);
  trace::resetForTest();
  EXPECT_TRUE(trace::enabled());
  EXPECT_EQ(trace::outputPath(), path);

  // And CASTED_TRACE unset resolves to inactive.
  ::unsetenv("CASTED_TRACE");
  trace::resetForTest();
  EXPECT_FALSE(trace::enabled());
}

TEST_F(TraceTest, DisableKeepsCollectedDataUntilReset) {
  trace::enable("");
  trace::counterAdd("kept", 9);
  trace::disable();
  EXPECT_FALSE(trace::enabled());
  trace::counterAdd("kept", 100);  // no-op while inactive
  EXPECT_EQ(trace::counterValue("kept"), 9);
  trace::resetForTest();
  EXPECT_EQ(trace::counterValue("kept"), 0);
}

}  // namespace
}  // namespace casted
