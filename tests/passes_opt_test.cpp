// Tests for liveness analysis and the late CSE/DCE passes.
#include <gtest/gtest.h>

#include "dfg/liveness.h"
#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/error_detection.h"
#include "passes/late_opts.h"
#include "test_util.h"

namespace casted::passes {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::InsnOrigin;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;
using ir::RegClass;

using dfg::computeLiveness;
using dfg::LivenessInfo;
using dfg::maxPressure;

// --- liveness ---------------------------------------------------------------

TEST(LivenessTest, StraightLineLiveSets) {
  Program prog = testutil::makeTinyProgram();
  const LivenessInfo info = computeLiveness(prog.function(0));
  // Single block: nothing live in or out.
  EXPECT_TRUE(info.liveIn[0].empty());
  EXPECT_TRUE(info.liveOut[0].empty());
  EXPECT_GT(info.maxPressure[static_cast<int>(RegClass::kGp)], 0u);
}

TEST(LivenessTest, LoopCarriedValueLiveAroundBackEdge) {
  Program prog = testutil::makeLoopProgram(5);
  const Function& fn = prog.function(0);
  const LivenessInfo info = computeLiveness(fn);
  // The sum register is written in entry (block 0), used in loop (block 1)
  // and stored in done (block 2): live out of blocks 0 and 1.
  const Reg sum = fn.block(2).insns()[0].uses[1];  // store's value operand
  EXPECT_TRUE(info.isLiveOut(0, sum));
  EXPECT_TRUE(info.isLiveOut(1, sum));
  EXPECT_FALSE(info.isLiveOut(2, sum));
}

TEST(LivenessTest, DuplicationRoughlyDoublesPressure) {
  Program prog = testutil::makeRandomStraightLine(3, 60);
  const auto before = maxPressure(prog);
  applyErrorDetection(prog);
  const auto after = maxPressure(prog);
  // The shadow stream keeps a parallel copy of (almost) every live value —
  // the mechanism behind the paper's §IV-B1 spill observation.
  EXPECT_GE(after[0], before[0] + before[0] / 2);
}

TEST(LivenessTest, DeadDefNotLive) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg dead = b.movImm(1);
  (void)dead;
  b.halt(b.movImm(0));
  const LivenessInfo info = computeLiveness(fn);
  EXPECT_TRUE(info.liveIn[0].empty());
}

// --- local CSE --------------------------------------------------------------

TEST(LocalCseTest, FoldsRepeatedExpression) {
  Program prog;
  prog.allocateGlobal("output", 16);
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base =
      b.movImm(static_cast<std::int64_t>(prog.symbol("output").address));
  const Reg x = b.movImm(21);
  const Reg a = b.add(x, x);
  const Reg c = b.add(x, x);  // same expression
  b.store(base, 0, a);
  b.store(base, 8, c);
  b.halt(b.movImm(0));
  const LateOptStats stats = applyLocalCse(prog);
  EXPECT_EQ(stats.cseReplaced, 1u);
  // The second add became a register copy.
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_EQ(insns[3].op, Opcode::kMov);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(LocalCseTest, RedefinedOperandBlocksFolding) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg x = b.movImm(1);
  const Reg a = b.add(x, x);
  b.movImmTo(x, 2);           // x changed
  const Reg c = b.add(x, x);  // NOT the same value
  b.halt(b.add(a, c));
  const LateOptStats stats = applyLocalCse(prog);
  EXPECT_EQ(stats.cseReplaced, 0u);
}

TEST(LocalCseTest, LoadsFoldUntilStoreIntervenes) {
  Program prog;
  prog.allocateGlobal("data", 16);
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base =
      b.movImm(static_cast<std::int64_t>(prog.symbol("data").address));
  const Reg v1 = b.load(base, 0);
  const Reg v2 = b.load(base, 0);  // foldable
  b.store(base, 8, v1);            // memory epoch bump
  const Reg v3 = b.load(base, 0);  // NOT foldable any more
  b.halt(b.add(v2, v3));
  const LateOptStats stats = applyLocalCse(prog);
  EXPECT_EQ(stats.cseReplaced, 1u);
}

TEST(LocalCseTest, ProtectionKeepsDuplicates) {
  // With protection (the paper's setting), the duplicated immediate moves
  // must NOT be folded into copies of the originals.
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  LateOptOptions options;
  options.protectRedundant = true;
  applyLocalCse(prog, options);
  std::size_t duplicateMovi = 0;
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == InsnOrigin::kDuplicate &&
        insn.op == Opcode::kMovImm) {
      ++duplicateMovi;
    }
  }
  EXPECT_GT(duplicateMovi, 0u);
}

TEST(LocalCseTest, UnprotectedCseFoldsDuplicates) {
  // Without protection, a duplicate is a textbook common subexpression of
  // its original — exactly why the paper disables late CSE (§IV-A).
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  LateOptOptions options;
  options.protectRedundant = false;
  const LateOptStats stats = applyLocalCse(prog, options);
  EXPECT_GT(stats.cseReplaced, 0u);
  // The duplicate is emitted *before* its original, so CSE folds the
  // original into a copy of the duplicate's shadow value — the two streams
  // are no longer independent, which is the coverage hazard.
  bool streamsCoupled = false;
  for (const Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.op == Opcode::kMov && insn.origin == InsnOrigin::kOriginal) {
      streamsCoupled = true;
    }
  }
  EXPECT_TRUE(streamsCoupled);
}

// --- DCE ------------------------------------------------------------------------

TEST(DceTest, RemovesDeadPureInstruction) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.add(b.movImm(1), b.movImm(2));  // dead
  b.halt(b.movImm(0));
  const std::size_t before = fn.insnCount();
  const LateOptStats stats = applyDce(prog);
  EXPECT_GE(stats.dceRemoved, 3u);  // add + both movi feeding it
  EXPECT_LT(fn.insnCount(), before);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(DceTest, KeepsStoresAndTerminators) {
  Program prog = testutil::makeTinyProgram();
  const std::size_t before = prog.insnCount();
  applyDce(prog);
  // Everything in the tiny program feeds the stores/halt: nothing dies.
  EXPECT_EQ(prog.insnCount(), before);
}

TEST(DceTest, KeepsTrappingInstructions) {
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg zero = b.movImm(0);
  const Reg one = b.movImm(1);
  b.div(one, zero);  // dead but trapping: must survive
  b.halt(zero);
  const std::size_t before = fn.insnCount();
  applyDce(prog);
  EXPECT_EQ(fn.insnCount(), before);
}

TEST(DceTest, ProtectionKeepsDeadDuplicates) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  const std::size_t before = prog.insnCount();
  LateOptOptions options;
  options.protectRedundant = true;
  applyDce(prog, options);
  // Shadow values that feed only checks are "live" through the checks
  // (side-effecting) and duplicates are excluded anyway: nothing removed.
  EXPECT_EQ(prog.insnCount(), before);
}

TEST(DceTest, LiveThroughLoopKept) {
  Program prog = testutil::makeLoopProgram(5);
  const std::size_t before = prog.insnCount();
  applyDce(prog);
  EXPECT_EQ(prog.insnCount(), before);
}

TEST(DceTest, CseThenDceRemovesFoldedChain) {
  // After CSE turns a recomputation into a copy, DCE can erase the copy if
  // its result is unused.
  Program prog;
  Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg x = b.movImm(3);
  const Reg a = b.add(x, x);
  b.add(x, x);  // dead recomputation
  b.halt(a);
  applyLocalCse(prog);
  const LateOptStats stats = applyDce(prog);
  EXPECT_GE(stats.dceRemoved, 1u);
  EXPECT_TRUE(ir::verify(prog).empty());
}

}  // namespace
}  // namespace casted::passes
