// Exhaustive enumeration as a ground-truth test layer.
//
// Three contracts, cross-validated on tiny workloads where complete
// enumeration is tractable:
//   1. The def-site trace and the site space are engine- and
//      thread-count-invariant: both engines report the same dynamic def
//      ordinals, and the report is bit-identical however it is computed.
//   2. The static ProtectionLint never calls a site protected (or
//      sphere-exit) that exhaustive injection classifies as silent data
//      corruption — the lint's soundness contract, checked on real pipeline
//      output for every scheme.
//   3. The Monte Carlo campaign converges to the ground truth: with one
//      flip per trial the campaign samples exactly the distribution
//      `GroundTruthReport::mcProbability` states, so every observed outcome
//      fraction must land inside the 99% Wilson interval around it.
// Deterministic seeds throughout; corpus scaled by CASTED_TEST_TRIALS.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "fault/exhaustive.h"
#include "passes/protection_lint.h"
#include "support/statistics.h"
#include "test_util.h"

namespace casted {
namespace {

struct Workload {
  std::string name;
  ir::Program program;
};

std::vector<Workload> workloads() {
  std::vector<Workload> result;
  result.push_back({"tiny", testutil::makeTinyProgram()});
  result.push_back({"loop6", testutil::makeLoopProgram(6)});
  result.push_back({"cfg", testutil::makeRandomCfgProgram(0xC5, 2, 3)});
  return result;
}

core::CompiledProgram compileFor(const ir::Program& program,
                                 passes::Scheme scheme) {
  return core::compile(program, testutil::machine(2, 1), scheme);
}

// CI runs this whole file twice: once in the default checkpoint-and-diverge
// mode and once with CASTED_INJECTION_MODE=full, cross-checking that every
// ground-truth contract holds identically on the oracle path.
fault::InjectionMode envInjectionMode() {
  const char* mode = std::getenv("CASTED_INJECTION_MODE");
  if (mode != nullptr && std::strcmp(mode, "full") == 0) {
    return fault::InjectionMode::kFull;
  }
  return fault::InjectionMode::kCheckpointed;
}

fault::ExhaustiveOptions exhaustiveOptions() {
  fault::ExhaustiveOptions options;
  options.mode = envInjectionMode();
  return options;
}

TEST(ExhaustiveGroundTruthTest, EnginesEmitIdenticalDefTraces) {
  for (const Workload& workload : workloads()) {
    for (const passes::Scheme scheme :
         {passes::Scheme::kNoed, passes::Scheme::kCasted}) {
      const core::CompiledProgram bin = compileFor(workload.program, scheme);
      std::vector<sim::DefSite> referenceTrace;
      std::vector<sim::DefSite> decodedTrace;
      sim::SimOptions referenceOpts;
      referenceOpts.defTrace = &referenceTrace;
      const sim::RunResult reference = sim::simulate(
          bin.program, bin.schedule, bin.machine, referenceOpts);
      sim::SimOptions decodedOpts;
      decodedOpts.defTrace = &decodedTrace;
      const sim::RunResult decoded = sim::runDecoded(*bin.decoded,
                                                     decodedOpts);
      ASSERT_EQ(reference.exit, sim::ExitKind::kHalted) << workload.name;
      EXPECT_EQ(reference.stats.dynamicDefInsns, referenceTrace.size());
      EXPECT_EQ(decoded.stats.dynamicDefInsns, decodedTrace.size());
      EXPECT_EQ(referenceTrace, decodedTrace) << workload.name;
    }
  }
}

TEST(ExhaustiveGroundTruthTest, ReportAccountingIsConsistent) {
  const core::CompiledProgram bin =
      compileFor(testutil::makeTinyProgram(), passes::Scheme::kCasted);
  const fault::GroundTruthReport truth =
      core::groundTruth(bin, exhaustiveOptions());

  ASSERT_GT(truth.defInsns, 0u);
  ASSERT_GT(truth.sites, 0u);
  std::uint64_t countTotal = 0;
  double massTotal = 0.0;
  for (std::size_t i = 0; i < fault::kOutcomeCount; ++i) {
    countTotal += truth.counts[i];
    massTotal += truth.mcProbability[i];
    EXPECT_DOUBLE_EQ(
        truth.fraction(static_cast<fault::Outcome>(i)),
        static_cast<double>(truth.counts[i]) /
            static_cast<double>(truth.sites));
  }
  EXPECT_EQ(countTotal, truth.sites);
  EXPECT_NEAR(massTotal, 1.0, 1e-9);
  EXPECT_NEAR(truth.mcSafeProbability(),
              1.0 - truth.mcProbabilityOf(fault::Outcome::kDataCorrupt),
              1e-12);

  // Per-instruction rows partition the site space.
  std::uint64_t siteTotal = 0;
  std::uint64_t executionTotal = 0;
  for (const fault::SiteOutcome& insn : truth.perInsn) {
    siteTotal += insn.sites;
    executionTotal += insn.executions;
    std::uint64_t insnTotal = 0;
    for (const std::uint64_t count : insn.counts) {
      insnTotal += count;
    }
    EXPECT_EQ(insnTotal, insn.sites) << insn.text;
    EXPECT_NE(truth.find(insn.func, insn.insn), nullptr);
  }
  EXPECT_EQ(siteTotal, truth.sites);
  EXPECT_EQ(executionTotal, truth.defInsns);
  EXPECT_EQ(truth.find(0, ir::kInvalidInsn), nullptr);
  EXPECT_FALSE(truth.toString().empty());
}

TEST(ExhaustiveGroundTruthTest, ThreadCountEngineAndModeAreInvariant) {
  // The baseline is the serial full-rerun enumeration — the oracle path.
  // Every other way of computing the report (checkpoint-and-diverge, more
  // workers, the reference engine) must reproduce it bit for bit; only the
  // mcProbability doubles get an epsilon, since worker partitioning changes
  // their summation order.
  const core::CompiledProgram bin =
      compileFor(testutil::makeLoopProgram(4), passes::Scheme::kCasted);
  fault::ExhaustiveOptions fullSerial;
  fullSerial.mode = fault::InjectionMode::kFull;
  const fault::GroundTruthReport baseline = core::groundTruth(bin, fullSerial);

  std::vector<std::pair<std::string, fault::ExhaustiveOptions>> variants;
  {
    fault::ExhaustiveOptions options;
    options.mode = fault::InjectionMode::kCheckpointed;
    variants.emplace_back("checkpointed serial", options);
    options.threads = 4;
    variants.emplace_back("checkpointed x4", options);
    options.mode = fault::InjectionMode::kFull;
    variants.emplace_back("full x4", options);
  }
  {
    fault::ExhaustiveOptions options;
    options.simOptions.engine = sim::Engine::kReference;
    variants.emplace_back("reference engine", options);
  }

  for (const auto& [label, options] : variants) {
    const fault::GroundTruthReport other = core::groundTruth(bin, options);
    EXPECT_EQ(baseline.defInsns, other.defInsns) << label;
    EXPECT_EQ(baseline.sites, other.sites) << label;
    EXPECT_EQ(baseline.counts, other.counts) << label;
    for (std::size_t i = 0; i < fault::kOutcomeCount; ++i) {
      EXPECT_NEAR(baseline.mcProbability[i], other.mcProbability[i], 1e-12)
          << label;
    }
    ASSERT_EQ(baseline.perInsn.size(), other.perInsn.size()) << label;
    for (std::size_t i = 0; i < baseline.perInsn.size(); ++i) {
      EXPECT_EQ(baseline.perInsn[i].counts, other.perInsn[i].counts)
          << label << " " << baseline.perInsn[i].text;
      EXPECT_EQ(baseline.perInsn[i].insn, other.perInsn[i].insn) << label;
    }
  }
}

// Contract 2: the lint's "protected"/"sphere-exit" verdicts are sound.
// Every static instruction whose defs the lint all clears must show ZERO
// data-corrupt sites under complete enumeration.
TEST(ExhaustiveGroundTruthTest, LintClearedSitesNeverClassifySdc) {
  for (const Workload& workload : workloads()) {
    for (const passes::Scheme scheme :
         {passes::Scheme::kSced, passes::Scheme::kCasted}) {
      const core::CompiledProgram bin = compileFor(workload.program, scheme);
      const fault::GroundTruthReport truth =
          core::groundTruth(bin, exhaustiveOptions());
      const passes::ProtectionLintResult lint =
          passes::lintProtection(bin.program, scheme);

      // An instruction is "cleared" when every def it produces is
      // protected or sphere-exit.
      std::unordered_map<ir::InsnId, bool> cleared;
      for (const passes::LintSite& site : lint.sites) {
        if (site.func != 0) {
          continue;
        }
        const bool safe =
            site.protection != passes::Protection::kUnprotected;
        const auto it = cleared.find(site.insn);
        if (it == cleared.end()) {
          cleared.emplace(site.insn, safe);
        } else {
          it->second = it->second && safe;
        }
      }
      std::size_t checkedInsns = 0;
      for (const fault::SiteOutcome& outcome : truth.perInsn) {
        const auto it = cleared.find(outcome.insn);
        if (outcome.func != 0 || it == cleared.end() || !it->second) {
          continue;
        }
        ++checkedInsns;
        EXPECT_EQ(outcome.sdcSites(), 0u)
            << workload.name << "/" << passes::schemeName(scheme)
            << ": lint cleared " << outcome.text
            << " but exhaustive injection found "
            << outcome.sdcSites() << " SDC sites\n"
            << lint.toString();
      }
      // The contract is vacuous if nothing was cleared; these protected
      // binaries must clear a healthy share of their defs.
      EXPECT_GT(checkedInsns, 0u)
          << workload.name << "/" << passes::schemeName(scheme);
    }
  }
}

// Contract 3: with one flip per trial (originalDefInsns == 0) the campaign
// samples exactly the measure mcProbability states, so each observed
// fraction lands in the 99% Wilson interval around the exact value.
// Deterministic seed: this is a fixed, reproducible draw, not a flaky one.
TEST(ExhaustiveGroundTruthTest, MonteCarloConvergesToGroundTruth) {
  const std::uint32_t trials = static_cast<std::uint32_t>(
      testutil::testTrials(4000));
  std::uint64_t seed = 0xD15EA5Eu;
  for (const Workload& workload : workloads()) {
    for (const passes::Scheme scheme :
         {passes::Scheme::kNoed, passes::Scheme::kCasted}) {
      const core::CompiledProgram bin = compileFor(workload.program, scheme);
      const fault::GroundTruthReport truth =
          core::groundTruth(bin, exhaustiveOptions());

      fault::CampaignOptions mc;
      mc.trials = trials;
      mc.seed = ++seed;
      mc.threads = 2;          // deterministic by construction
      mc.mode = envInjectionMode();
      mc.originalDefInsns = 0; // exactly one flip per trial
      const fault::CoverageReport report = core::campaign(bin, mc);
      ASSERT_EQ(report.trials, trials);

      for (std::size_t i = 0; i < fault::kOutcomeCount; ++i) {
        const auto outcome = static_cast<fault::Outcome>(i);
        const ProportionInterval interval =
            wilsonInterval(report.counts[i], report.trials);
        EXPECT_TRUE(interval.contains(truth.mcProbabilityOf(outcome)))
            << workload.name << "/" << passes::schemeName(scheme) << " "
            << fault::outcomeName(outcome) << ": observed "
            << report.fraction(outcome) << " of " << report.trials
            << " trials, Wilson99 [" << interval.low << ", "
            << interval.high << "], exact "
            << truth.mcProbabilityOf(outcome);
      }
    }
  }
}

// The exhaustive safety figure and the campaign's safeFraction estimate the
// same quantity; under NOED vs CASTED the ground truth must also reproduce
// the paper's qualitative result (protection removes most SDC mass).
TEST(ExhaustiveGroundTruthTest, ProtectionShrinksExactSdcMass) {
  const ir::Program program = testutil::makeLoopProgram(5);
  const fault::GroundTruthReport noed = core::groundTruth(
      compileFor(program, passes::Scheme::kNoed), exhaustiveOptions());
  const fault::GroundTruthReport casted = core::groundTruth(
      compileFor(program, passes::Scheme::kCasted), exhaustiveOptions());
  EXPECT_GT(noed.mcProbabilityOf(fault::Outcome::kDataCorrupt),
            casted.mcProbabilityOf(fault::Outcome::kDataCorrupt));
  EXPECT_GT(casted.mcSafeProbability(), noed.mcSafeProbability());
  EXPECT_GT(casted.mcProbabilityOf(fault::Outcome::kDetected), 0.0);
}

}  // namespace
}  // namespace casted
