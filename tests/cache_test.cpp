#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/memory.h"
#include "support/check.h"
#include "test_util.h"

namespace casted::sim {
namespace {

arch::CacheLevelConfig smallLevel() {
  // 4 sets x 2 ways x 64B = 512B.
  return {"T1", 512, 64, 2, 1};
}

TEST(CacheLevelTest, MissThenHit) {
  CacheLevel level(smallLevel());
  EXPECT_FALSE(level.lookup(0x1000));
  level.fill(0x1000);
  EXPECT_TRUE(level.lookup(0x1000));
  EXPECT_EQ(level.stats().hits, 1u);
  EXPECT_EQ(level.stats().misses, 1u);
}

TEST(CacheLevelTest, SameLineDifferentOffsetHits) {
  CacheLevel level(smallLevel());
  level.fill(0x1000);
  EXPECT_TRUE(level.lookup(0x1000 + 63));
  EXPECT_FALSE(level.lookup(0x1000 + 64));  // next line
}

TEST(CacheLevelTest, LruEvictionWithinSet) {
  CacheLevel level(smallLevel());
  // Three lines mapping to the same set (set stride = 4 lines * 64B).
  const std::uint64_t a = 0x0000;
  const std::uint64_t b = a + 4 * 64;
  const std::uint64_t c = b + 4 * 64;
  level.fill(a);
  level.fill(b);
  EXPECT_TRUE(level.lookup(a));  // a is now MRU
  level.fill(c);                 // evicts b (LRU)
  EXPECT_TRUE(level.lookup(a));
  EXPECT_FALSE(level.lookup(b));
  EXPECT_TRUE(level.lookup(c));
}

TEST(CacheLevelTest, ResetClearsStateAndStats) {
  CacheLevel level(smallLevel());
  level.fill(0x1000);
  level.lookup(0x1000);
  level.reset();
  EXPECT_FALSE(level.lookup(0x1000));
  EXPECT_EQ(level.stats().hits, 0u);
}

TEST(CacheHierarchyTest, LatenciesFollowHitLevel) {
  const arch::CacheConfig config;  // the paper's Table I hierarchy
  CacheHierarchy caches(config);
  // Cold: full miss.
  EXPECT_EQ(caches.access(0x10000), config.memoryLatency);
  // Warm: L1 hit.
  EXPECT_EQ(caches.access(0x10000), config.levels[0].latency);
  EXPECT_EQ(caches.memoryAccesses(), 1u);
}

TEST(CacheHierarchyTest, L2HitAfterL1Eviction) {
  const arch::CacheConfig config;
  CacheHierarchy caches(config);
  caches.access(0x10000);
  // Blow L1 (16K, 4-way, 64B lines): walk 32K of conflicting lines.
  for (std::uint64_t addr = 0x100000; addr < 0x100000 + 32 * 1024;
       addr += 64) {
    caches.access(addr);
  }
  // The original line left L1 but is still in L2.
  EXPECT_EQ(caches.access(0x10000), config.levels[1].latency);
}

TEST(CacheHierarchyTest, InclusiveFillsRefillFasterLevels) {
  const arch::CacheConfig config;
  CacheHierarchy caches(config);
  caches.access(0x4000);               // fills all levels
  caches.reset();
  EXPECT_EQ(caches.access(0x4000), config.memoryLatency);
}

TEST(CacheHierarchyTest, InvalidGeometryRejected) {
  arch::CacheConfig config;
  config.levels[0].blockBytes = 48;  // not a power of two
  EXPECT_THROW(CacheHierarchy{config}, FatalError);

  arch::CacheConfig config2;
  config2.levels[1].latency = 0;  // not increasing
  EXPECT_THROW(CacheHierarchy{config2}, FatalError);

  arch::CacheConfig config3;
  config3.memoryLatency = 5;  // below L3
  EXPECT_THROW(CacheHierarchy{config3}, FatalError);
}

// --- Memory --------------------------------------------------------------------

TEST(MemoryTest, ReadWriteRoundTrip) {
  ir::Program prog;
  const std::uint64_t addr = prog.allocateGlobal("x", 32);
  Memory memory(prog, 0);
  memory.writeU64(addr, 0x1122334455667788ULL);
  EXPECT_EQ(memory.readU64(addr), 0x1122334455667788ULL);
  EXPECT_EQ(memory.readU8(addr), 0x88);  // little endian
  memory.writeU8(addr + 1, 0xff);
  EXPECT_EQ(memory.readU64(addr), 0x112233445566ff88ULL);
  memory.writeF64(addr + 8, 2.5);
  EXPECT_EQ(memory.readF64(addr + 8), 2.5);
}

TEST(MemoryTest, InitialImageFromProgram) {
  ir::Program prog;
  const std::uint64_t addr =
      prog.allocateGlobal("data", std::vector<std::uint8_t>{9, 8, 7});
  const Memory memory(prog, 0);
  EXPECT_EQ(memory.readU8(addr), 9);
  EXPECT_EQ(memory.readU8(addr + 2), 7);
}

TEST(MemoryTest, HeapZeroed) {
  ir::Program prog;
  prog.allocateGlobal("data", 8);
  const Memory memory(prog, 64);
  EXPECT_EQ(memory.readU64(prog.globalEnd()), 0u);
}

TEST(MemoryTest, GuardPageFaults) {
  ir::Program prog;
  prog.allocateGlobal("data", 8);
  const Memory memory(prog, 0);
  EXPECT_THROW(memory.readU8(0), TrapError);
  EXPECT_THROW(memory.readU8(ir::Program::kGlobalBase - 1), TrapError);
}

TEST(MemoryTest, OutOfArenaFaults) {
  ir::Program prog;
  prog.allocateGlobal("data", 8);
  Memory memory(prog, 0);
  EXPECT_THROW(memory.readU64(memory.arenaEnd()), TrapError);
  EXPECT_THROW(memory.readU8(memory.arenaEnd()), TrapError);
  // Last byte is fine.
  EXPECT_NO_THROW(memory.readU8(memory.arenaEnd() - 1));
}

TEST(MemoryTest, MisalignedWordFaults) {
  ir::Program prog;
  prog.allocateGlobal("data", 32);
  Memory memory(prog, 0);
  const std::uint64_t addr = prog.symbol("data").address;
  EXPECT_THROW(memory.readU64(addr + 4), TrapError);
  EXPECT_THROW(memory.writeF64(addr + 1, 1.0), TrapError);
  EXPECT_NO_THROW(memory.readU64(addr + 8));
}

TEST(MemoryTest, WrapAroundAddressFaults) {
  ir::Program prog;
  prog.allocateGlobal("data", 8);
  const Memory memory(prog, 0);
  EXPECT_THROW(memory.readU64(~0ULL - 3), TrapError);
}

TEST(MemoryTest, SnapshotCopiesRange) {
  ir::Program prog;
  const std::uint64_t addr =
      prog.allocateGlobal("data", std::vector<std::uint8_t>{1, 2, 3, 4});
  const Memory memory(prog, 0);
  const std::vector<std::uint8_t> snap = memory.snapshot(addr + 1, 2);
  EXPECT_EQ(snap, (std::vector<std::uint8_t>{2, 3}));
}

}  // namespace
}  // namespace casted::sim
