#include <gtest/gtest.h>

#include <cstring>

#include "ir/builder.h"
#include "ir/verifier.h"
#include "passes/early_opts.h"
#include "passes/error_detection.h"
#include "sched/list_scheduler.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::passes {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;

std::int64_t runExitCode(const Program& prog) {
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult result = sim::simulate(
      prog, sched::scheduleProgram(prog, config), config);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  return result.exitCode;
}

TEST(ConstantFoldingTest, FoldsArithmeticChains) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(6);
  const Reg c = b.movImm(7);
  const Reg prod = b.mul(a, c);        // 42
  const Reg shifted = b.shlImm(prod, 1);  // 84
  b.halt(shifted);
  const EarlyOptStats stats = applyConstantFolding(prog);
  EXPECT_EQ(stats.foldedConstants, 2u);
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_EQ(insns[2].op, Opcode::kMovImm);
  EXPECT_EQ(insns[2].imm, 42);
  EXPECT_EQ(insns[3].op, Opcode::kMovImm);
  EXPECT_EQ(insns[3].imm, 84);
  EXPECT_EQ(runExitCode(prog), 84);
}

TEST(ConstantFoldingTest, FoldsComparesToPredicateSets) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(3);
  const Reg p = b.cmpLtImm(a, 5);  // true
  const Reg v = b.select(p, b.movImm(10), b.movImm(20));
  b.halt(v);
  applyConstantFolding(prog);
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_EQ(insns[1].op, Opcode::kPSetImm);
  EXPECT_EQ(insns[1].imm, 1);
  EXPECT_EQ(runExitCode(prog), 10);
}

TEST(ConstantFoldingTest, SelectFoldsOnKnownPredicate) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg p = b.pSetImm(false);
  const Reg x = b.movImm(1);     // non-constant path still works:
  const Reg y = b.addImm(x, 1);  // y = 2, foldable
  const Reg v = b.select(p, x, y);
  b.halt(v);
  applyConstantFolding(prog);
  EXPECT_EQ(runExitCode(prog), 2);
  // The select became a mov (or further folded to movi).
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_NE(insns[3].op, Opcode::kSelect);
}

TEST(ConstantFoldingTest, NeverFoldsTrappingOps) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg one = b.movImm(1);
  const Reg zero = b.movImm(0);
  b.div(one, zero);  // must still trap at run time
  b.halt(zero);
  applyConstantFolding(prog);
  EXPECT_EQ(prog.function(0).block(0).insns()[2].op, Opcode::kDiv);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult result = sim::simulate(
      prog, sched::scheduleProgram(prog, config), config);
  EXPECT_EQ(result.exit, sim::ExitKind::kException);
}

TEST(ConstantFoldingTest, RedefinitionInvalidatesConstant) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(5);
  const Reg unknown = b.load(b.movImm(0x1000), 0);  // runtime value
  b.emit(Opcode::kMov, {a}, {unknown});             // a no longer constant
  const Reg sum = b.addImm(a, 1);                   // must NOT fold
  b.halt(sum);
  applyConstantFolding(prog);
  // insns: movi a, movi base, load, mov, addi, halt — the addi survives.
  EXPECT_EQ(prog.function(0).block(0).insns()[4].op, Opcode::kAddImm);
}

TEST(ConstantFoldingTest, LeavesRedundantStreamAlone) {
  Program prog = testutil::makeTinyProgram();
  applyErrorDetection(prog);
  std::size_t duplicatesBefore = 0;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    duplicatesBefore +=
        insn.origin == ir::InsnOrigin::kDuplicate ? 1 : 0;
  }
  applyConstantFolding(prog);
  std::size_t duplicateMovi = 0;
  std::size_t duplicates = 0;
  for (const ir::Instruction& insn : prog.function(0).block(0).insns()) {
    if (insn.origin == ir::InsnOrigin::kDuplicate) {
      ++duplicates;
      duplicateMovi += insn.op == Opcode::kMovImm ? 1 : 0;
    }
  }
  EXPECT_EQ(duplicates, duplicatesBefore);
  EXPECT_TRUE(ir::verify(prog).empty());
}

TEST(CopyPropagationTest, RewritesThroughMovChains) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.load(b.movImm(0x1000), 0);
  const Reg c = b.mov(a);
  const Reg d = b.mov(c);
  const Reg sum = b.add(d, d);  // should read `a` directly
  b.halt(sum);
  const EarlyOptStats stats = applyCopyPropagation(prog);
  EXPECT_GE(stats.propagatedCopies, 2u);
  const auto& insns = prog.function(0).block(0).insns();
  EXPECT_EQ(insns[4].uses[0], a);
  EXPECT_EQ(insns[4].uses[1], a);
}

TEST(CopyPropagationTest, SourceRedefinitionStopsPropagation) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(1);
  const Reg c = b.mov(a);
  b.movImmTo(a, 99);           // a changed; c still holds the old value
  const Reg sum = b.add(c, c);  // must keep reading c
  b.halt(sum);
  applyCopyPropagation(prog);
  EXPECT_EQ(prog.function(0).block(0).insns()[3].uses[0], c);
  EXPECT_EQ(runExitCode(prog), 2);
}

TEST(EarlyOptsTest, PreservesEveryWorkloadOutput) {
  for (const std::string& name : workloads::workloadNames()) {
    workloads::Workload wl = workloads::makeWorkload(name, 1);
    const arch::MachineConfig config = testutil::machine(2, 1);
    const sim::RunResult before = sim::simulate(
        wl.program, sched::scheduleProgram(wl.program, config), config);
    applyEarlyOptimisations(wl.program);
    EXPECT_TRUE(ir::verify(wl.program).empty()) << name;
    const sim::RunResult after = sim::simulate(
        wl.program, sched::scheduleProgram(wl.program, config), config);
    EXPECT_EQ(before.output, after.output) << name;
  }
}

// Property: folding + propagation never change the observable result of
// random straight-line programs.
class EarlyOptsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EarlyOptsPropertyTest, SemanticsPreserved) {
  Program original = testutil::makeRandomStraightLine(
      static_cast<std::uint64_t>(GetParam()) * 257 + 11, 60);
  Program optimised = original;
  const EarlyOptStats stats = applyEarlyOptimisations(optimised);
  // Straight-line constant programs fold almost entirely.
  EXPECT_GT(stats.foldedConstants, 0u);
  EXPECT_TRUE(ir::verify(optimised).empty());
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sim::RunResult a = sim::simulate(
      original, sched::scheduleProgram(original, config), config);
  const sim::RunResult b = sim::simulate(
      optimised, sched::scheduleProgram(optimised, config), config);
  EXPECT_EQ(a.output, b.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EarlyOptsPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace casted::passes
