#include <gtest/gtest.h>

#include "core/analysis.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::core {
namespace {

using passes::Scheme;

TEST(AnalysisTest, CountsMatchProgram) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kCasted);
  const ScheduleAnalysis analysis = analyze(bin);
  EXPECT_EQ(analysis.instructions, bin.program.insnCount());
  std::uint64_t clusterSum = 0;
  for (std::uint64_t count : analysis.perCluster) {
    clusterSum += count;
  }
  EXPECT_EQ(clusterSum, analysis.instructions);
  std::uint64_t originSum = 0;
  for (std::uint64_t count : analysis.byOrigin) {
    originSum += count;
  }
  EXPECT_EQ(originSum, analysis.instructions);
  EXPECT_GT(analysis.staticCycles, 0u);
}

TEST(AnalysisTest, ScedHasNoCrossClusterTraffic) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kSced);
  const ScheduleAnalysis analysis = analyze(bin);
  EXPECT_EQ(analysis.crossClusterTransfers, 0u);
  EXPECT_EQ(analysis.fractionOffCluster0(), 0.0);
  EXPECT_GT(analysis.valueEdges, 0u);
}

TEST(AnalysisTest, DcedCommunicatesOnChecks) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kDced);
  const ScheduleAnalysis analysis = analyze(bin);
  // Every check reads one value from each cluster: cross traffic is
  // inevitable for DCED (the paper's §IV-B5 bottleneck).
  EXPECT_GT(analysis.crossClusterTransfers, 0u);
  EXPECT_GT(analysis.fractionOffCluster0(), 0.3);
}

TEST(AnalysisTest, CastedCommunicatesLessThanDcedAtHighDelay) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const arch::MachineConfig machine = testutil::machine(2, 4);
  const ScheduleAnalysis dced =
      analyze(compile(wl.program, machine, Scheme::kDced));
  const ScheduleAnalysis casted =
      analyze(compile(wl.program, machine, Scheme::kCasted));
  // At delay 4 CASTED collapses towards one cluster: fewer transfers.
  EXPECT_LT(casted.crossClusterTransfers, dced.crossClusterTransfers);
}

TEST(AnalysisTest, UtilisationWithinBounds) {
  const workloads::Workload wl = workloads::makeCjpeg(1);
  for (Scheme scheme : passes::kAllSchemes) {
    const CompiledProgram bin =
        compile(wl.program, testutil::machine(2, 1), scheme);
    const ScheduleAnalysis analysis = analyze(bin);
    EXPECT_GT(analysis.slotUtilisation, 0.0);
    EXPECT_LE(analysis.slotUtilisation, 1.0);
  }
}

TEST(AnalysisTest, NoedIsAllOriginal) {
  const workloads::Workload wl = workloads::makeParser(1);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kNoed);
  const ScheduleAnalysis analysis = analyze(bin);
  EXPECT_EQ(analysis.byOrigin[static_cast<int>(ir::InsnOrigin::kOriginal)],
            analysis.instructions);
}

TEST(AnalysisTest, ToStringMentionsKeyNumbers) {
  const workloads::Workload wl = workloads::makeParser(1);
  const CompiledProgram bin =
      compile(wl.program, testutil::machine(2, 1), Scheme::kCasted);
  const std::string text = analyze(bin).toString();
  EXPECT_NE(text.find("instructions"), std::string::npos);
  EXPECT_NE(text.find("cluster0"), std::string::npos);
  EXPECT_NE(text.find("inter-cluster transfers"), std::string::npos);
}

}  // namespace
}  // namespace casted::core
