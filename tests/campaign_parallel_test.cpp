// The threaded fault campaign must be bit-identical at every thread count:
// each trial's randomness derives only from (seed, trialIndex), so outcome
// counts cannot depend on which worker ran a trial or in what order.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "fault/campaign.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::fault {
namespace {

using passes::Scheme;

CoverageReport runWithThreads(const core::CompiledProgram& bin,
                              std::uint32_t threads, std::uint64_t seed) {
  CampaignOptions options;
  options.trials = 60;
  options.threads = threads;
  options.seed = seed;
  return core::campaign(bin, options);
}

TEST(ParallelCampaignTest, IdenticalCountsAtOneTwoAndEightThreads) {
  const workloads::Workload wl = workloads::makeH263dec(1);
  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 2), Scheme::kCasted);
  const CoverageReport serial = runWithThreads(bin, 1, 0xCA57EDu);
  const CoverageReport two = runWithThreads(bin, 2, 0xCA57EDu);
  const CoverageReport eight = runWithThreads(bin, 8, 0xCA57EDu);
  EXPECT_EQ(serial.counts, two.counts);
  EXPECT_EQ(serial.counts, eight.counts);
  EXPECT_EQ(serial.trials, eight.trials);
}

TEST(ParallelCampaignTest, HardwareConcurrencyMatchesSerial) {
  const workloads::Workload wl = workloads::makeParser(1);
  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 1), Scheme::kSced);
  const CoverageReport serial = runWithThreads(bin, 1, 7);
  const CoverageReport automatic = runWithThreads(bin, 0, 7);
  EXPECT_EQ(serial.counts, automatic.counts);
}

TEST(ParallelCampaignTest, MoreThreadsThanTrialsStillCountsEveryTrial) {
  const core::CompiledProgram bin =
      core::compile(testutil::makeLoopProgram(16), testutil::machine(2, 1),
                    Scheme::kCasted);
  CampaignOptions options;
  options.trials = 3;
  options.threads = 16;
  const CoverageReport report = core::campaign(bin, options);
  std::uint64_t total = 0;
  for (std::uint64_t count : report.counts) {
    total += count;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(report.trials, 3u);
}

TEST(ParallelCampaignTest, DifferentSeedsDiffer) {
  // Sanity that the per-trial seeding actually varies the trials.  Since
  // trial seeds come from deriveStreamSeed (a SplitMix64 mix), even
  // adjacent master seeds yield disjoint trial-RNG sets — see
  // campaign_oracle_test for the direct regression on the derivation.
  const workloads::Workload wl = workloads::makeH263dec(1);
  const core::CompiledProgram bin = core::compile(
      wl.program, testutil::machine(2, 2), Scheme::kNoed);
  const CoverageReport a = runWithThreads(bin, 4, 0xCA57EDu);
  const CoverageReport b = runWithThreads(bin, 4, 0xCA57ECu);
  EXPECT_NE(a.counts, b.counts);
}

TEST(ParallelCampaignTest, ReferenceEngineMatchesDecodedAcrossThreads) {
  // The campaign report must not depend on which engine ran the trials any
  // more than on the thread count.
  const core::CompiledProgram bin =
      core::compile(testutil::makeLoopProgram(32), testutil::machine(2, 1),
                    Scheme::kDced);
  CampaignOptions options;
  options.trials = 40;
  options.threads = 1;
  const CoverageReport decoded = core::campaign(bin, options);
  options.simOptions.engine = sim::Engine::kReference;
  for (const std::uint32_t threads : {1u, 4u}) {
    options.threads = threads;
    const CoverageReport reference = core::campaign(bin, options);
    EXPECT_EQ(decoded.counts, reference.counts) << "threads " << threads;
    EXPECT_EQ(decoded.dynamicInsns, reference.dynamicInsns)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace casted::fault
