#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "ir/builder.h"
#include "sched/list_scheduler.h"
#include "sim/simulator.h"
#include "support/check.h"
#include "test_util.h"

namespace casted::sim {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;
using ir::RegClass;

// Runs `prog` on the default machine and returns the result.
RunResult runProgram(const Program& prog, SimOptions options = {}) {
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sched::ProgramSchedule schedule =
      sched::scheduleProgram(prog, config);
  return simulate(prog, schedule, config, std::move(options));
}

std::int64_t outputWord(const RunResult& result, std::size_t index = 0) {
  std::int64_t value = 0;
  std::memcpy(&value, result.output.data() + index * 8, 8);
  return value;
}

// Builds `out[0] = <body>(...)` and runs it.
template <typename Body>
RunResult runExpr(Body&& body) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 16);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  const Reg result = body(b);
  b.store(base, 0, result);
  b.halt(b.movImm(0));
  return runProgram(prog);
}

// --- integer semantics (parameterised over operations) ---------------------

struct IntCase {
  const char* name;
  Opcode op;
  std::int64_t a;
  std::int64_t b;
  std::int64_t expected;
};

class IntSemanticsTest : public ::testing::TestWithParam<IntCase> {};

TEST_P(IntSemanticsTest, BinaryOp) {
  const IntCase c = GetParam();
  const RunResult result = runExpr([&](IrBuilder& b) {
    const Reg lhs = b.movImm(c.a);
    const Reg rhs = b.movImm(c.b);
    ir::Instruction& insn =
        b.emit(c.op, {b.function().newReg(RegClass::kGp)}, {lhs, rhs});
    return insn.defs[0];
  });
  ASSERT_EQ(result.exit, ExitKind::kHalted);
  EXPECT_EQ(outputWord(result), c.expected) << c.name;
}

constexpr std::int64_t kMin64 = std::numeric_limits<std::int64_t>::min();

INSTANTIATE_TEST_SUITE_P(
    Ops, IntSemanticsTest,
    ::testing::Values(
        IntCase{"add", Opcode::kAdd, 5, 7, 12},
        IntCase{"add-wrap", Opcode::kAdd, 0x7fffffffffffffff, 1, kMin64},
        IntCase{"sub", Opcode::kSub, 5, 7, -2},
        IntCase{"mul", Opcode::kMul, -3, 7, -21},
        IntCase{"div", Opcode::kDiv, 22, 7, 3},
        IntCase{"div-neg", Opcode::kDiv, -22, 7, -3},
        IntCase{"div-minwrap", Opcode::kDiv, kMin64, -1, kMin64},
        IntCase{"rem", Opcode::kRem, 22, 7, 1},
        IntCase{"rem-minwrap", Opcode::kRem, kMin64, -1, 0},
        IntCase{"and", Opcode::kAnd, 0b1100, 0b1010, 0b1000},
        IntCase{"or", Opcode::kOr, 0b1100, 0b1010, 0b1110},
        IntCase{"xor", Opcode::kXor, 0b1100, 0b1010, 0b0110},
        IntCase{"shl", Opcode::kShl, 3, 4, 48},
        IntCase{"shl-mask", Opcode::kShl, 1, 65, 2},
        IntCase{"shr-logical", Opcode::kShr, -8, 1,
                static_cast<std::int64_t>(0x7ffffffffffffffcULL)},
        IntCase{"sra-arith", Opcode::kSra, -8, 1, -4},
        IntCase{"min", Opcode::kMin, -5, 3, -5},
        IntCase{"max", Opcode::kMax, -5, 3, 3}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(SimulatorTest, UnaryIntOps) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg a = b.neg(b.movImm(5));         // -5
    const Reg c = b.abs(a);                   // 5
    const Reg d = b.not_(b.movImm(0));        // -1
    const Reg e = b.addImm(c, 10);            // 15
    return b.add(e, d);                       // 14
  });
  EXPECT_EQ(outputWord(result), 14);
}

TEST(SimulatorTest, SelectFollowsPredicate) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg p = b.cmpLt(b.movImm(1), b.movImm(2));
    return b.select(p, b.movImm(111), b.movImm(222));
  });
  EXPECT_EQ(outputWord(result), 111);
}

TEST(SimulatorTest, PredicateLogic) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg t = b.pSetImm(true);
    const Reg f = b.pSetImm(false);
    const Reg andP = b.pAnd(t, f);          // 0
    const Reg orP = b.pOr(andP, t);         // 1
    const Reg xorP = b.pXor(orP, b.pNot(f));  // 1 xor 1 = 0
    return b.select(xorP, b.movImm(1), b.movImm(42));
  });
  EXPECT_EQ(outputWord(result), 42);
}

TEST(SimulatorTest, FloatArithmeticAndConversion) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg x = b.fMovImm(1.5);
    const Reg y = b.fMovImm(2.25);
    const Reg sum = b.fAdd(x, y);              // 3.75
    const Reg prod = b.fMul(sum, b.fMovImm(4.0)); // 15.0
    const Reg diff = b.fSub(prod, b.fMovImm(0.5)); // 14.5
    const Reg q = b.fDiv(diff, b.fMovImm(2.0));    // 7.25
    return b.f2i(b.fMul(q, b.fMovImm(100.0)));     // 725
  });
  EXPECT_EQ(outputWord(result), 725);
}

TEST(SimulatorTest, FloatMinMaxNegAbsSqrt) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg x = b.fMovImm(-9.0);
    const Reg absX = b.fAbs(x);                  // 9
    const Reg root = b.fSqrt(absX);              // 3
    const Reg negated = b.fNeg(root);            // -3
    const Reg lo = b.fMin(negated, root);        // -3
    const Reg hi = b.fMax(negated, root);        // 3
    return b.f2i(b.fSub(hi, lo));                // 6
  });
  EXPECT_EQ(outputWord(result), 6);
}

TEST(SimulatorTest, FloatCompares) {
  const RunResult result = runExpr([](IrBuilder& b) {
    const Reg lt = b.fCmpLt(b.fMovImm(1.0), b.fMovImm(2.0));  // 1
    const Reg eq = b.fCmpEq(b.fMovImm(1.0), b.fMovImm(2.0));  // 0
    const Reg le = b.fCmpLe(b.fMovImm(2.0), b.fMovImm(2.0));  // 1
    const Reg a = b.select(lt, b.movImm(100), b.movImm(0));
    const Reg c = b.select(eq, b.movImm(10), b.movImm(0));
    const Reg d = b.select(le, b.movImm(1), b.movImm(0));
    return b.add(a, b.add(c, d));
  });
  EXPECT_EQ(outputWord(result), 101);
}

TEST(SimulatorTest, IntToFloatRoundTrip) {
  const RunResult result = runExpr([](IrBuilder& b) {
    return b.f2i(b.i2f(b.movImm(-12345)));
  });
  EXPECT_EQ(outputWord(result), -12345);
}

TEST(SimulatorTest, ByteLoadsZeroExtend) {
  Program prog;
  prog.allocateGlobal("data", std::vector<std::uint8_t>{0xff, 0x01});
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base =
      b.movImm(static_cast<std::int64_t>(prog.symbol("data").address));
  const Reg v = b.loadB(base, 0);  // 255, not -1
  b.store(b.movImm(static_cast<std::int64_t>(out)), 0, v);
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(outputWord(result), 255);
}

TEST(SimulatorTest, StoreByteWritesLowByteOnly) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  b.store(base, 0, b.movImm(-1));            // all ones
  b.storeB(base, 0, b.movImm(0x42));         // patch low byte
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(static_cast<std::uint64_t>(outputWord(result)),
            0xffffffffffffff42ULL);
}

TEST(SimulatorTest, FloatLoadStoreRoundTrip) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 16);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  b.fStore(base, 8, b.fMovImm(3.5));
  const Reg v = b.fLoad(base, 8);
  b.store(base, 0, b.f2i(b.fMul(v, b.fMovImm(2.0))));
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(outputWord(result), 7);
}

// --- control flow / calls ------------------------------------------------------

TEST(SimulatorTest, LoopComputesSum) {
  const RunResult result = runProgram(testutil::makeLoopProgram(10));
  ASSERT_EQ(result.exit, ExitKind::kHalted);
  EXPECT_EQ(outputWord(result), 45);  // 0+..+9
}

TEST(SimulatorTest, HaltReturnsExitCode) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.halt(b.movImm(17));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kHalted);
  EXPECT_EQ(result.exitCode, 17);
}

TEST(SimulatorTest, CallPassesArgsAndReturnsValues) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& helper = prog.addFunction("sum3");
  {
    const Reg a = helper.newReg(RegClass::kGp);
    const Reg b2 = helper.newReg(RegClass::kGp);
    const Reg c = helper.newReg(RegClass::kGp);
    helper.params() = {a, b2, c};
    helper.returnClasses() = {RegClass::kGp};
    IrBuilder hb(helper);
    hb.setBlock(hb.createBlock("body"));
    hb.ret({hb.add(a, hb.add(b2, c))});
  }
  ir::Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));
  const Reg v =
      b.call(helper, {b.movImm(1), b.movImm(20), b.movImm(300)})[0];
  b.store(b.movImm(static_cast<std::int64_t>(out)), 0, v);
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(outputWord(result), 321);
}

TEST(SimulatorTest, RecursionComputesFactorial) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fact = prog.addFunction("fact");
  {
    const Reg n = fact.newReg(RegClass::kGp);
    fact.params() = {n};
    fact.returnClasses() = {RegClass::kGp};
    IrBuilder fb(fact);
    ir::BasicBlock& entry = fb.createBlock("entry");
    ir::BasicBlock& recurse = fb.createBlock("recurse");
    ir::BasicBlock& base = fb.createBlock("base");
    fb.setBlock(entry);
    const Reg isBase = fb.cmpLeImm(n, 1);
    fb.brCond(isBase, base, recurse);
    fb.setBlock(recurse);
    const Reg sub = fb.call(fact, {fb.addImm(n, -1)})[0];
    fb.ret({fb.mul(n, sub)});
    fb.setBlock(base);
    fb.ret({fb.movImm(1)});
  }
  ir::Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));
  const Reg v = b.call(fact, {b.movImm(6)})[0];
  b.store(b.movImm(static_cast<std::int64_t>(out)), 0, v);
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(outputWord(result), 720);
}

TEST(SimulatorTest, InfiniteRecursionTrapsAsStackOverflow) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& loop = prog.addFunction("loopy");
  {
    IrBuilder lb(loop);
    lb.setBlock(lb.createBlock("body"));
    lb.call(loop, {});
    lb.ret({});
  }
  ir::Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  b.setBlock(b.createBlock("entry"));
  b.call(loop, {});
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kStackOverflow);
}

// --- traps ------------------------------------------------------------------------

TEST(SimulatorTest, DivideByZeroTraps) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.div(b.movImm(1), b.movImm(0));
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kDivByZero);
}

TEST(SimulatorTest, NullAccessTraps) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.load(b.movImm(0), 8);  // inside the guard page
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kBadAddress);
}

TEST(SimulatorTest, OutOfArenaAccessTraps) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.load(b.movImm(1 << 30), 0);
  b.halt(b.movImm(0));
  SimOptions options;
  options.heapBytes = 4096;
  const RunResult result = runProgram(prog, options);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kBadAddress);
}

TEST(SimulatorTest, MisalignedWordAccessTraps) {
  Program prog;
  prog.allocateGlobal("output", 16);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(
      static_cast<std::int64_t>(prog.symbol("output").address));
  b.load(base, 3);
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kMisaligned);
}

TEST(SimulatorTest, BadFloatConversionTraps) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.f2i(b.fDiv(b.fMovImm(1.0), b.fMovImm(0.0)));  // inf
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kException);
  EXPECT_EQ(result.trap, TrapKind::kBadConversion);
}

TEST(SimulatorTest, WatchdogTimesOut) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  ir::BasicBlock& spin = b.createBlock("spin");
  b.setBlock(entry);
  b.br(spin);
  b.setBlock(spin);
  b.br(spin);  // infinite loop
  SimOptions options;
  options.maxCycles = 10000;
  const RunResult result = runProgram(prog, options);
  EXPECT_EQ(result.exit, ExitKind::kTimeout);
}

// --- checks ------------------------------------------------------------------------

TEST(SimulatorTest, MatchingCheckPasses) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(9);
  const Reg c = b.movImm(9);
  ir::Instruction& chk = b.emit(Opcode::kCheckG, {}, {a, c});
  chk.origin = ir::InsnOrigin::kCheck;
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kHalted);
}

TEST(SimulatorTest, MismatchedCheckDetects) {
  Program prog;
  prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg a = b.movImm(9);
  const Reg c = b.movImm(10);
  ir::Instruction& chk = b.emit(Opcode::kCheckG, {}, {a, c});
  chk.origin = ir::InsnOrigin::kCheck;
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.exit, ExitKind::kDetected);
}

// --- statistics & timing ------------------------------------------------------------

TEST(SimulatorTest, DynamicCountsTracked) {
  const RunResult result = runProgram(testutil::makeLoopProgram(4));
  // entry: 3 + br, loop 4x: 4 insns, done: store + movi + halt.
  EXPECT_EQ(result.stats.dynamicInsns, 4u + 4u * 4u + 3u);
  EXPECT_GT(result.stats.dynamicDefInsns, 0u);
  EXPECT_LT(result.stats.dynamicDefInsns, result.stats.dynamicInsns);
  EXPECT_EQ(result.stats.blockExecutions, 1u + 4u + 1u);
}

TEST(SimulatorTest, CyclesScaleWithWork) {
  // Compare issue cycles (stalls are dominated by one constant cold miss).
  const RunResult small = runProgram(testutil::makeLoopProgram(10));
  const RunResult large = runProgram(testutil::makeLoopProgram(100));
  const std::uint64_t smallIssue =
      small.stats.cycles - small.stats.stallCycles;
  const std::uint64_t largeIssue =
      large.stats.cycles - large.stats.stallCycles;
  EXPECT_GT(largeIssue, smallIssue * 5);
}

TEST(SimulatorTest, WiderIssueNeverSlower) {
  const Program prog = testutil::makeRandomStraightLine(9, 60);
  std::uint64_t previous = ~0ULL;
  for (std::uint32_t iw : {1u, 2u, 4u, 8u}) {
    const arch::MachineConfig config = testutil::machine(iw, 1);
    const sched::ProgramSchedule schedule =
        sched::scheduleProgram(prog, config);
    const RunResult result = simulate(prog, schedule, config);
    EXPECT_LE(result.stats.cycles, previous);
    previous = result.stats.cycles;
  }
}

TEST(SimulatorTest, ColdMissesCharged) {
  // A single load from never-touched memory must cost the full miss chain.
  Program prog;
  prog.allocateGlobal("output", 8);
  prog.allocateGlobal("data", 64);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base =
      b.movImm(static_cast<std::int64_t>(prog.symbol("data").address));
  const Reg v = b.load(base, 0);
  b.halt(v);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const RunResult result = runProgram(prog);
  EXPECT_EQ(result.stats.cacheLevel[0].misses, 1u);
  EXPECT_GE(result.stats.stallCycles,
            config.cache.memoryLatency - config.latencies.mem);
}

TEST(SimulatorTest, RepeatedAccessHitsCache) {
  Program prog = testutil::makeLoopProgram(50);
  const RunResult result = runProgram(prog);
  // The loop touches no memory; only the final store misses.
  EXPECT_LE(result.stats.cacheLevel[0].misses, 1u);
}

TEST(SimulatorTest, OutputSnapshotMatchesSymbol) {
  const RunResult result = runProgram(testutil::makeTinyProgram());
  ASSERT_EQ(result.output.size(), 8u);
  EXPECT_EQ(outputWord(result), 36);  // (5+7)*3
}

TEST(SimulatorTest, MissingOutputSymbolGivesEmptySnapshot) {
  Program prog;
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  b.halt(b.movImm(0));
  const RunResult result = runProgram(prog);
  EXPECT_TRUE(result.output.empty());
}

// --- fault injection hooks ----------------------------------------------------------

TEST(SimulatorTest, FaultPlanFlipsChosenBit) {
  // Flip bit 3 of the first def-producing instruction (movi base) — the
  // store then writes to a shifted address or the value changes; here we
  // target the value producer.
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  b.setBlock(b.createBlock("entry"));
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  const Reg v = b.movImm(100);  // def ordinal 1
  b.store(base, 0, v);
  b.halt(b.movImm(0));

  FaultPlan plan;
  plan.points.push_back({1, 0, 3});  // 100 ^ 8 = 108
  SimOptions options;
  options.faultPlan = &plan;
  const RunResult result = runProgram(prog, options);
  ASSERT_EQ(result.exit, ExitKind::kHalted);
  EXPECT_EQ(outputWord(result), 108);
}

TEST(SimulatorTest, FaultInPredicateFlipsBranch) {
  Program prog;
  const std::uint64_t out = prog.allocateGlobal("output", 8);
  ir::Function& fn = prog.addFunction("main");
  IrBuilder b(fn);
  ir::BasicBlock& entry = b.createBlock("entry");
  ir::BasicBlock& yes = b.createBlock("yes");
  ir::BasicBlock& no = b.createBlock("no");
  b.setBlock(entry);
  const Reg base = b.movImm(static_cast<std::int64_t>(out));
  const Reg p = b.cmpLtImm(b.movImm(1), 10);  // true
  b.brCond(p, yes, no);
  b.setBlock(yes);
  b.store(base, 0, b.movImm(1));
  b.halt(b.movImm(0));
  b.setBlock(no);
  b.store(base, 0, b.movImm(2));
  b.halt(b.movImm(0));

  FaultPlan plan;
  plan.points.push_back({2, 0, 0});  // the cmp's predicate def
  SimOptions options;
  options.faultPlan = &plan;
  const RunResult result = runProgram(prog, options);
  ASSERT_EQ(result.exit, ExitKind::kHalted);
  EXPECT_EQ(outputWord(result), 2);  // took the wrong path
}

TEST(SimulatorTest, EmptyPlanMatchesGoldenRun) {
  const Program prog = testutil::makeRandomStraightLine(1, 40);
  const RunResult golden = runProgram(prog);
  FaultPlan plan;  // empty
  SimOptions options;
  options.faultPlan = &plan;
  const RunResult faulty = runProgram(prog, options);
  EXPECT_EQ(faulty.output, golden.output);
  EXPECT_EQ(faulty.stats.cycles, golden.stats.cycles);
}

// Determinism: identical runs produce identical stats and output.
TEST(SimulatorTest, RunsAreDeterministic) {
  const Program prog = testutil::makeRandomStraightLine(77, 50);
  const RunResult a = runProgram(prog);
  const RunResult c = runProgram(prog);
  EXPECT_EQ(a.stats.cycles, c.stats.cycles);
  EXPECT_EQ(a.stats.dynamicInsns, c.stats.dynamicInsns);
  EXPECT_EQ(a.output, c.output);
}

}  // namespace
}  // namespace casted::sim
