#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "fault/campaign.h"
#include "sched/list_scheduler.h"
#include "support/check.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted::fault {
namespace {

using passes::Scheme;

TEST(ClassifyTest, MapsExitKindsToOutcomes) {
  GoldenProfile golden;
  golden.result.exit = sim::ExitKind::kHalted;
  golden.result.exitCode = 0;
  golden.result.output = {1, 2, 3};

  sim::RunResult faulty;
  faulty.exit = sim::ExitKind::kDetected;
  EXPECT_EQ(classify(faulty, golden), Outcome::kDetected);

  faulty.exit = sim::ExitKind::kException;
  EXPECT_EQ(classify(faulty, golden), Outcome::kException);

  faulty.exit = sim::ExitKind::kTimeout;
  EXPECT_EQ(classify(faulty, golden), Outcome::kTimeout);

  faulty.exit = sim::ExitKind::kHalted;
  faulty.exitCode = 0;
  faulty.output = {1, 2, 3};
  EXPECT_EQ(classify(faulty, golden), Outcome::kBenign);

  faulty.output = {1, 2, 4};
  EXPECT_EQ(classify(faulty, golden), Outcome::kDataCorrupt);

  faulty.output = {1, 2, 3};
  faulty.exitCode = 1;
  EXPECT_EQ(classify(faulty, golden), Outcome::kDataCorrupt);
}

// Property test for the precedence documented in campaign.h: the faulty
// run's ExitKind dominates, and output bytes / exit code are compared only
// for runs that halted cleanly.
TEST(ClassifyTest, ExitKindDominatesOutputComparison) {
  Rng rng(0xC1A55);
  const sim::ExitKind kinds[] = {
      sim::ExitKind::kHalted, sim::ExitKind::kDetected,
      sim::ExitKind::kException, sim::ExitKind::kTimeout};
  for (int trial = 0; trial < 500; ++trial) {
    GoldenProfile golden;
    golden.result.exit = sim::ExitKind::kHalted;
    golden.result.exitCode = static_cast<std::int64_t>(rng.nextBelow(3));
    golden.result.output = {static_cast<std::uint8_t>(rng.nextBelow(4))};

    sim::RunResult faulty;
    faulty.exit = kinds[rng.nextBelow(4)];
    faulty.exitCode = static_cast<std::int64_t>(rng.nextBelow(3));
    faulty.output = {static_cast<std::uint8_t>(rng.nextBelow(4))};

    Outcome expected = Outcome::kBenign;
    switch (faulty.exit) {
      case sim::ExitKind::kDetected:
        expected = Outcome::kDetected;
        break;
      case sim::ExitKind::kException:
        expected = Outcome::kException;
        break;
      case sim::ExitKind::kTimeout:
        expected = Outcome::kTimeout;
        break;
      case sim::ExitKind::kHalted:
        expected = (faulty.output == golden.result.output &&
                    faulty.exitCode == golden.result.exitCode)
                       ? Outcome::kBenign
                       : Outcome::kDataCorrupt;
        break;
    }
    EXPECT_EQ(classify(faulty, golden), expected)
        << "exit=" << static_cast<int>(faulty.exit);
    if (faulty.exit != sim::ExitKind::kHalted) {
      // Corrupt-looking output must not demote a detected/trapped/timed-out
      // run to kDataCorrupt.
      EXPECT_NE(classify(faulty, golden), Outcome::kDataCorrupt);
    }
  }
}

TEST(TrialPlanTest, OriginalBinaryGetsExactlyOneFlip) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const sim::FaultPlan plan = makeTrialPlan(rng, 1000, 1000);
    EXPECT_EQ(plan.points.size(), 1u);
    EXPECT_LT(plan.points[0].ordinal, 1000u);
    EXPECT_LT(plan.points[0].bit, 64u);
  }
}

TEST(TrialPlanTest, LongerBinariesGetProportionallyMoreFlips) {
  Rng rng(2);
  double total = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(makeTrialPlan(rng, 2400, 1000).points.size());
  }
  const double average = total / trials;
  // Expected ~2.4 flips per run (minus rare duplicate-ordinal collapses).
  EXPECT_GT(average, 2.0);
  EXPECT_LT(average, 2.8);
}

TEST(TrialPlanTest, PlansAreSortedAndUnique) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const sim::FaultPlan plan = makeTrialPlan(rng, 5000, 500);
    for (std::size_t j = 1; j < plan.points.size(); ++j) {
      EXPECT_LT(plan.points[j - 1].ordinal, plan.points[j].ordinal);
    }
  }
}

TEST(TrialPlanTest, ZeroOriginalDefaultsToOwnLength) {
  Rng rng(4);
  const sim::FaultPlan plan = makeTrialPlan(rng, 777, 0);
  EXPECT_EQ(plan.points.size(), 1u);
}

TEST(TrialPlanTest, EmptyRunRejected) {
  Rng rng(5);
  EXPECT_THROW(makeTrialPlan(rng, 0, 0), FatalError);
}

TEST(GoldenProfileTest, ProfilesCleanRun) {
  const ir::Program prog = testutil::makeLoopProgram(20);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const sched::ProgramSchedule schedule =
      sched::scheduleProgram(prog, config);
  const GoldenProfile golden = profileGolden(prog, schedule, config, {});
  EXPECT_EQ(golden.result.exit, sim::ExitKind::kHalted);
  EXPECT_GT(golden.defInsns, 0u);
  EXPECT_GT(golden.cycles, 0u);
}

TEST(CampaignTest, DeterministicForSameSeed) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig config = testutil::machine(2, 2);
  const core::CompiledProgram bin =
      core::compile(wl.program, config, Scheme::kCasted);
  CampaignOptions options;
  options.trials = 12;
  options.seed = 99;
  const CoverageReport a = campaign(bin, options);
  const CoverageReport c = campaign(bin, options);
  EXPECT_EQ(a.counts, c.counts);
  EXPECT_EQ(a.trials, 12u);
}

TEST(CampaignTest, UnprotectedBinaryHasCorruptionsOrLuck) {
  // NOED has no checks: nothing can ever be "detected".
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig config = testutil::machine(2, 2);
  const core::CompiledProgram bin =
      core::compile(wl.program, config, Scheme::kNoed);
  CampaignOptions options;
  options.trials = 30;
  const CoverageReport report = campaign(bin, options);
  EXPECT_EQ(report.counts[static_cast<int>(Outcome::kDetected)], 0u);
  EXPECT_EQ(report.trials, 30u);
}

TEST(CampaignTest, ProtectedBinaryDetectsErrors) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig config = testutil::machine(2, 2);
  const core::CompiledProgram noed =
      core::compile(wl.program, config, Scheme::kNoed);
  const core::CompiledProgram casted =
      core::compile(wl.program, config, Scheme::kCasted);

  CampaignOptions options;
  options.trials = 40;
  const CoverageReport noedReport = campaign(noed, options);
  const CoverageReport castedReport = campaign(casted, options);

  // The protected binary must detect a healthy share of injections and have
  // strictly fewer silent corruptions than the unprotected one.
  EXPECT_GT(castedReport.fraction(Outcome::kDetected), 0.2);
  EXPECT_LT(castedReport.fraction(Outcome::kDataCorrupt),
            noedReport.fraction(Outcome::kDataCorrupt));
}

TEST(CampaignTest, OutcomesSumToTrials) {
  const workloads::Workload wl = workloads::makeParser(1);
  const arch::MachineConfig config = testutil::machine(1, 1);
  const core::CompiledProgram bin =
      core::compile(wl.program, config, Scheme::kSced);
  CampaignOptions options;
  options.trials = 25;
  const CoverageReport report = campaign(bin, options);
  std::uint64_t sum = 0;
  for (std::uint64_t count : report.counts) {
    sum += count;
  }
  EXPECT_EQ(sum, report.trials);
  EXPECT_NEAR(report.fraction(Outcome::kBenign) +
                  report.fraction(Outcome::kDetected) +
                  report.fraction(Outcome::kException) +
                  report.fraction(Outcome::kDataCorrupt) +
                  report.fraction(Outcome::kTimeout),
              1.0, 1e-9);
}

TEST(CampaignTest, EmptyCampaignReportsConsistentZeroes) {
  // Regression: safeFraction() used to report 1.0 on zero trials while
  // fraction() reported 0.0 for every outcome.  Both now agree that an
  // empty campaign is evidence of nothing.
  const ir::Program prog = testutil::makeTinyProgram();
  const arch::MachineConfig config = testutil::machine(2, 1);
  const core::CompiledProgram bin =
      core::compile(prog, config, Scheme::kCasted);
  CampaignOptions options;
  options.trials = 0;
  const CoverageReport report = campaign(bin, options);
  EXPECT_EQ(report.trials, 0u);
  for (int i = 0; i < static_cast<int>(kOutcomeCount); ++i) {
    EXPECT_EQ(report.counts[i], 0u);
    EXPECT_EQ(report.fraction(static_cast<Outcome>(i)), 0.0);
  }
  EXPECT_EQ(report.safeFraction(), 0.0);
}

TEST(OutcomeTest, NamesAreStable) {
  EXPECT_STREQ(outcomeName(Outcome::kBenign), "benign");
  EXPECT_STREQ(outcomeName(Outcome::kDetected), "detected");
  EXPECT_STREQ(outcomeName(Outcome::kException), "exception");
  EXPECT_STREQ(outcomeName(Outcome::kDataCorrupt), "data-corrupt");
  EXPECT_STREQ(outcomeName(Outcome::kTimeout), "timeout");
}

}  // namespace
}  // namespace casted::fault
