#include <gtest/gtest.h>

#include "dfg/dfg.h"
#include "ir/builder.h"
#include "passes/error_detection.h"
#include "test_util.h"

namespace casted::dfg {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::Reg;

struct BlockHarness {
  Program prog;
  Function* fn = nullptr;
  BasicBlock* block = nullptr;
  IrBuilder* builder = nullptr;

  BlockHarness() {
    fn = &prog.addFunction("main");
    builder_ = std::make_unique<IrBuilder>(*fn);
    block = &builder_->createBlock("entry");
    builder_->setBlock(*block);
    builder = builder_.get();
  }

 private:
  std::unique_ptr<IrBuilder> builder_;
};

bool hasEdge(const DataFlowGraph& graph, std::uint32_t from, std::uint32_t to,
             DepKind kind) {
  for (const Edge& edge : graph.succs(from)) {
    if (edge.to == to && edge.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(DfgTest, RawEdgeWithProducerLatency) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg a = b.movImm(1);          // node 0
  const Reg c = b.mul(a, a);          // node 1: RAW on node 0
  b.halt(c);                          // node 2: RAW on node 1
  const arch::MachineConfig config = testutil::machine(2, 1);
  const DataFlowGraph graph(*h.block, config);
  ASSERT_EQ(graph.size(), 3u);
  EXPECT_TRUE(hasEdge(graph, 0, 1, DepKind::kData));
  EXPECT_TRUE(hasEdge(graph, 1, 2, DepKind::kData));
  // The mul->halt edge carries the multiplier latency.
  for (const Edge& edge : graph.succs(1)) {
    if (edge.to == 2) {
      EXPECT_EQ(edge.latency, config.latencies.intMul);
    }
  }
}

TEST(DfgTest, IndependentInsnsHaveNoEdges) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg a = b.movImm(1);
  const Reg c = b.movImm(2);
  const Reg d = b.add(a, a);
  const Reg e = b.add(c, c);
  b.emit(Opcode::kHalt, {}, {b.add(d, e)});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_FALSE(hasEdge(graph, 0, 1, DepKind::kData));
  EXPECT_FALSE(hasEdge(graph, 2, 3, DepKind::kData));
}

TEST(DfgTest, WarAndWawEdges) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg a = b.movImm(1);      // 0: def a
  const Reg c = b.add(a, a);      // 1: use a
  b.movImmTo(a, 2);               // 2: redef a -> WAW(0,2), WAR(1,2)
  b.emit(Opcode::kHalt, {}, {c});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 0, 2, DepKind::kOutput));
  EXPECT_TRUE(hasEdge(graph, 1, 2, DepKind::kAnti));
}

TEST(DfgTest, StoreLoadSameAddressOrdered) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg base = b.movImm(0x2000);   // 0
  b.store(base, 0, base);              // 1
  const Reg v = b.load(base, 0);       // 2: must see the store
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 1, 2, DepKind::kMemory));
}

TEST(DfgTest, DisjointOffsetsSameBaseDisambiguated) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg base = b.movImm(0x2000);   // 0
  b.store(base, 0, base);              // 1
  const Reg v = b.load(base, 8);       // 2: different 8-byte range
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_FALSE(hasEdge(graph, 1, 2, DepKind::kMemory));
}

TEST(DfgTest, OverlappingByteAndWordConflict) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg base = b.movImm(0x2000);
  b.store(base, 0, base);              // 1: bytes [0,8)
  const Reg v = b.loadB(base, 7);      // 2: byte 7 overlaps
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 1, 2, DepKind::kMemory));
}

TEST(DfgTest, DifferentBasesConservativelyOrdered) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg baseA = b.movImm(0x2000);  // 0
  const Reg baseB = b.movImm(0x3000);  // 1
  b.store(baseA, 0, baseA);            // 2
  const Reg v = b.load(baseB, 0);      // 3: unknown aliasing -> ordered
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 2, 3, DepKind::kMemory));
}

TEST(DfgTest, RedefinedBaseBreaksDisambiguation) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg base = b.movImm(0x2000);   // 0
  b.store(base, 0, base);              // 1
  b.movImmTo(base, 0x3000);            // 2: base now points elsewhere
  const Reg v = b.load(base, 8);       // 3: must stay ordered w.r.t. store
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 1, 3, DepKind::kMemory));
}

TEST(DfgTest, LoadsNeverOrderedWithLoads) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg base = b.movImm(0x2000);
  const Reg v1 = b.load(base, 0);
  const Reg v2 = b.load(base, 0);  // same address: still no edge
  b.emit(Opcode::kHalt, {}, {b.add(v1, v2)});
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_FALSE(hasEdge(graph, 1, 2, DepKind::kMemory));
}

TEST(DfgTest, CheckGuardEdgePresent) {
  ir::Program prog = testutil::makeTinyProgram();
  passes::applyErrorDetection(prog);
  const ir::BasicBlock& block = prog.function(0).block(0);
  const DataFlowGraph graph(block, testutil::machine(2, 1));
  // Every check node must have a kGuard successor edge to its guarded insn.
  std::size_t guardEdges = 0;
  for (std::uint32_t i = 0; i < graph.size(); ++i) {
    if (!graph.insn(i).isCheck()) {
      continue;
    }
    bool hasGuard = false;
    for (const Edge& edge : graph.succs(i)) {
      if (edge.kind == DepKind::kGuard) {
        hasGuard = true;
        EXPECT_EQ(block.insns()[edge.to].id, graph.insn(i).guard);
      }
    }
    EXPECT_TRUE(hasGuard) << "check node " << i << " lacks a guard edge";
    ++guardEdges;
  }
  EXPECT_GT(guardEdges, 0u);
}

TEST(DfgTest, HeightsDecreaseAlongChains) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg a = b.movImm(1);         // 0
  const Reg c = b.add(a, a);         // 1
  const Reg d = b.add(c, c);         // 2
  b.emit(Opcode::kHalt, {}, {d});    // 3
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  EXPECT_GT(graph.height(0), graph.height(1));
  EXPECT_GT(graph.height(1), graph.height(2));
  EXPECT_GT(graph.height(2), graph.height(3));
  EXPECT_EQ(graph.criticalPathLength(), graph.height(0));
}

TEST(DfgTest, PriorityOrderSortsByHeight) {
  BlockHarness h;
  IrBuilder& b = *h.builder;
  const Reg a = b.movImm(1);        // 0: on the critical chain
  const Reg c = b.mul(a, a);        // 1
  const Reg d = b.mul(c, c);        // 2
  b.movImm(42);                     // 3: independent leaf
  b.emit(Opcode::kHalt, {}, {d});   // 4
  const DataFlowGraph graph(*h.block, testutil::machine(2, 1));
  const std::vector<std::uint32_t> order = graph.priorityOrder();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);  // chain head has the greatest height
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(graph.height(order[i]), graph.height(order[i - 1]));
  }
}

TEST(DfgTest, CallOrderedWithMemoryOps) {
  ir::Program prog;
  ir::Function& helper = prog.addFunction("helper");
  {
    IrBuilder hb(helper);
    hb.setBlock(hb.createBlock("body"));
    hb.ret({});
  }
  ir::Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  b.setBlock(entry);
  const Reg base = b.movImm(0x2000);  // 0
  b.store(base, 0, base);             // 1
  b.call(helper, {});                 // 2: barrier
  const Reg v = b.load(base, 0);      // 3
  b.emit(Opcode::kHalt, {}, {v});
  const DataFlowGraph graph(entry, testutil::machine(2, 1));
  EXPECT_TRUE(hasEdge(graph, 1, 2, DepKind::kBarrier));
  EXPECT_TRUE(hasEdge(graph, 2, 3, DepKind::kBarrier));
}

TEST(DfgTest, EdgesAlwaysPointForward) {
  ir::Program prog = testutil::makeRandomStraightLine(42, 80);
  passes::applyErrorDetection(prog);
  const ir::BasicBlock& block = prog.function(0).block(0);
  const DataFlowGraph graph(block, testutil::machine(2, 2));
  for (std::uint32_t i = 0; i < graph.size(); ++i) {
    for (const Edge& edge : graph.succs(i)) {
      EXPECT_LT(edge.from, edge.to);
    }
  }
}

// Duplicates must have no dependence on their originals: that independence
// is the extra ILP the paper's §II-A relies on.
TEST(DfgTest, DuplicateStreamIndependentOfOriginals) {
  ir::Program prog = testutil::makeRandomStraightLine(7, 40);
  passes::applyErrorDetection(prog);
  const ir::BasicBlock& block = prog.function(0).block(0);
  const DataFlowGraph graph(block, testutil::machine(2, 1));
  for (std::uint32_t i = 0; i < graph.size(); ++i) {
    if (block.insns()[i].origin != ir::InsnOrigin::kDuplicate) {
      continue;
    }
    for (const Edge& edge : graph.preds(i)) {
      if (edge.kind == DepKind::kData) {
        const ir::InsnOrigin producer = block.insns()[edge.from].origin;
        EXPECT_NE(producer, ir::InsnOrigin::kOriginal)
            << "duplicate depends on an original instruction";
      }
    }
  }
}

}  // namespace
}  // namespace casted::dfg
