// Cross-pass property tests over random structured-control-flow programs:
// for any generated program and any machine configuration, every pass
// combination must keep the observable behaviour identical to the NOED
// reference and keep the IR verifier-clean.  This is the suite most likely
// to catch interaction bugs between duplication, renaming, checks, early
// and late optimisations, spilling, assignment and scheduling.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "test_util.h"

namespace casted {
namespace {

using passes::Scheme;

struct CfgParam {
  int seed;
  std::uint32_t issueWidth;
  std::uint32_t delay;
};

class RandomCfgTest : public ::testing::TestWithParam<CfgParam> {};

TEST_P(RandomCfgTest, GeneratedProgramIsCleanAndHalts) {
  const CfgParam param = GetParam();
  const ir::Program prog = testutil::makeRandomCfgProgram(
      static_cast<std::uint64_t>(param.seed));
  EXPECT_TRUE(ir::verify(prog).empty());
  const core::CompiledProgram bin = core::compile(
      prog, testutil::machine(param.issueWidth, param.delay), Scheme::kNoed);
  const sim::RunResult result = core::run(bin);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  EXPECT_EQ(result.exitCode, 0);
}

TEST_P(RandomCfgTest, AllSchemesPreserveOutput) {
  const CfgParam param = GetParam();
  const ir::Program prog = testutil::makeRandomCfgProgram(
      static_cast<std::uint64_t>(param.seed));
  const arch::MachineConfig machine =
      testutil::machine(param.issueWidth, param.delay);
  const sim::RunResult golden =
      core::run(core::compile(prog, machine, Scheme::kNoed));
  for (Scheme scheme : {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
    const core::CompiledProgram bin = core::compile(prog, machine, scheme);
    EXPECT_TRUE(ir::verify(bin.program).empty());
    const sim::RunResult result = core::run(bin);
    EXPECT_EQ(result.output, golden.output)
        << schemeName(scheme) << " seed=" << param.seed;
    EXPECT_GE(result.stats.cycles, golden.stats.cycles);
  }
}

TEST_P(RandomCfgTest, FullPipelineWithEveryFeaturePreservesOutput) {
  const CfgParam param = GetParam();
  const ir::Program prog = testutil::makeRandomCfgProgram(
      static_cast<std::uint64_t>(param.seed), /*segments=*/5);
  const arch::MachineConfig machine =
      testutil::machine(param.issueWidth, param.delay);
  const sim::RunResult golden =
      core::run(core::compile(prog, machine, Scheme::kNoed));

  core::PipelineOptions options;
  options.errorDetection.splitChecks = true;
  options.modelRegisterPressure = true;
  options.runEarlyOptimisations = true;
  options.runLateOptimisations = true;
  const core::CompiledProgram bin =
      core::compile(prog, machine, Scheme::kCasted, options);
  const sim::RunResult result = core::run(bin);
  EXPECT_EQ(result.exit, sim::ExitKind::kHalted);
  EXPECT_EQ(result.output, golden.output) << "seed=" << param.seed;
}

TEST_P(RandomCfgTest, TextualRoundTripPreservesBehaviour) {
  const CfgParam param = GetParam();
  ir::Program prog = testutil::makeRandomCfgProgram(
      static_cast<std::uint64_t>(param.seed));
  passes::applyErrorDetection(prog);
  const ir::Program reparsed = ir::parseProgram(ir::printProgram(prog));
  const arch::MachineConfig machine =
      testutil::machine(param.issueWidth, param.delay);
  const sim::RunResult a = core::run(
      core::compile(prog, machine, Scheme::kNoed));
  const sim::RunResult b = core::run(
      core::compile(reparsed, machine, Scheme::kNoed));
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.dynamicInsns, b.stats.dynamicInsns);
}

std::vector<CfgParam> cfgParams() {
  std::vector<CfgParam> params;
  for (int seed = 0; seed < 8; ++seed) {
    params.push_back({seed, 1 + static_cast<std::uint32_t>(seed % 4),
                      1 + static_cast<std::uint32_t>(seed % 3)});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCfgTest,
                         ::testing::ValuesIn(cfgParams()),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace casted
