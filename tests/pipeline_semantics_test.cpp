// Semantics-preservation properties of the compilation pipeline:
//
//   * printer/parser round trip — parseProgram(printProgram(p)) prints back
//     to the identical text, both for source programs and for fully
//     transformed binaries (error detection, spilling, cluster assignment);
//   * scheme equivalence — in the absence of faults, every error-detection
//     scheme (SCED, DCED, CASTED/BUG) computes exactly the architectural
//     result of the unprotected NOED binary: same output bytes, same exit
//     code.  Protection may only change *how much* work is done, never what
//     is computed.
#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "test_util.h"
#include "workloads/workloads.h"

namespace casted {
namespace {

using passes::Scheme;

// print -> parse -> print must reach a fixed point immediately.
void expectRoundTrips(const ir::Program& program, const std::string& label) {
  const std::string once = ir::printProgram(program);
  const ir::Program reparsed = ir::parseProgram(once);
  ir::verifyOrThrow(reparsed);
  const std::string twice = ir::printProgram(reparsed);
  EXPECT_EQ(once, twice) << label;
}

TEST(PipelineSemanticsTest, SourceProgramsRoundTrip) {
  const std::size_t seeds = testutil::testTrials(25);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    expectRoundTrips(testutil::makeRandomCfgProgram(seed),
                     "cfg seed " + std::to_string(seed));
  }
  expectRoundTrips(testutil::makeTinyProgram(), "tiny");
  expectRoundTrips(testutil::makeLoopProgram(10), "loop");
}

TEST(PipelineSemanticsTest, TransformedProgramsRoundTrip) {
  // The pipeline output carries everything the pass stack adds — CHECKs,
  // duplicated instructions, cluster assignments — and must survive the
  // textual form unchanged too.
  const std::size_t seeds = testutil::testTrials(8);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const ir::Program source = testutil::makeRandomCfgProgram(seed);
    for (const Scheme scheme : passes::kAllSchemes) {
      const core::CompiledProgram bin =
          core::compile(source, testutil::machine(2, 1), scheme);
      expectRoundTrips(bin.program, std::string("compiled seed ") +
                                        std::to_string(seed) + " " +
                                        passes::schemeName(scheme));
    }
  }
}

TEST(PipelineSemanticsTest, SchemesPreserveFaultFreeResults) {
  const std::size_t seeds = testutil::testTrials(15);
  for (std::size_t seed = 0; seed < seeds; ++seed) {
    const ir::Program source = testutil::makeRandomCfgProgram(seed, 5, 9);
    const arch::MachineConfig config = testutil::machine(2, 2);
    const core::CompiledProgram noed =
        core::compile(source, config, Scheme::kNoed);
    const sim::RunResult baseline = core::run(noed);
    ASSERT_EQ(baseline.exit, sim::ExitKind::kHalted) << "seed " << seed;
    for (const Scheme scheme :
         {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
      const core::CompiledProgram bin = core::compile(source, config, scheme);
      const sim::RunResult result = core::run(bin);
      const std::string label = std::string("seed ") + std::to_string(seed) +
                                " " + passes::schemeName(scheme);
      EXPECT_EQ(result.exit, sim::ExitKind::kHalted) << label;
      EXPECT_EQ(result.exitCode, baseline.exitCode) << label;
      EXPECT_EQ(result.output, baseline.output) << label;
    }
  }
}

TEST(PipelineSemanticsTest, SchemesPreserveWorkloadResults) {
  const workloads::Workload wl = workloads::makeMpeg2dec(1);
  const arch::MachineConfig config = testutil::machine(2, 1);
  const core::CompiledProgram noed =
      core::compile(wl.program, config, Scheme::kNoed);
  const sim::RunResult baseline = core::run(noed);
  ASSERT_EQ(baseline.exit, sim::ExitKind::kHalted);
  for (const Scheme scheme :
       {Scheme::kSced, Scheme::kDced, Scheme::kCasted}) {
    const core::CompiledProgram bin = core::compile(wl.program, config, scheme);
    const sim::RunResult result = core::run(bin);
    EXPECT_EQ(result.exit, sim::ExitKind::kHalted)
        << passes::schemeName(scheme);
    EXPECT_EQ(result.exitCode, baseline.exitCode) << passes::schemeName(scheme);
    EXPECT_EQ(result.output, baseline.output) << passes::schemeName(scheme);
  }
}

}  // namespace
}  // namespace casted
