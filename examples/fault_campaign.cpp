// Example: measure how well the protection actually works.
//
// Runs the paper's Monte Carlo fault-injection methodology (§IV-C) on one
// workload: random single-bit flips in instruction output registers, runs
// classified into the five outcome classes.  Compares the unprotected
// binary against the CASTED-protected one.
//
//   ./build/examples/fault_campaign [workload] [trials] [engine]
//   e.g. ./build/examples/fault_campaign h263dec 300 decoded
//
// `engine` selects the simulator backend: "decoded" (default; the
// pre-decoded micro-op engine) or "reference" (the direct IR walk the
// decoded engine is differentially tested against).  The report is
// bit-identical either way — only the wall time changes.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/pipeline.h"
#include "support/statistics.h"
#include "support/table.h"
#include "support/trace.h"
#include "workloads/workloads.h"

using namespace casted;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "h263dec";
  const std::uint32_t trials =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 150;
  sim::Engine engine = sim::Engine::kDecoded;
  if (argc > 3) {
    if (std::strcmp(argv[3], "reference") == 0) {
      engine = sim::Engine::kReference;
    } else if (std::strcmp(argv[3], "decoded") != 0) {
      std::fprintf(stderr, "unknown engine '%s' (decoded|reference)\n",
                   argv[3]);
      return 1;
    }
  }

  const workloads::Workload wl = workloads::makeWorkload(name, 1);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);

  std::printf("fault campaign on %s: %u trials per scheme, one bit flip per\n"
              "%s-sized window of dynamic instructions (paper §IV-C)\n"
              "simulator engine: %s\n\n",
              wl.name.c_str(), trials, "NOED", sim::engineName(engine));

  // The NOED dynamic length fixes the error *rate* for all binaries.
  const core::CompiledProgram noed =
      core::compile(wl.program, machine, passes::Scheme::kNoed);
  const sim::RunResult golden = core::run(noed);

  TextTable table({"scheme", "benign", "detected", "exception",
                   "data-corrupt", "timeout", "unsafe?"});
  for (passes::Scheme scheme : passes::kAllSchemes) {
    const core::CompiledProgram bin =
        core::compile(wl.program, machine, scheme);
    fault::CampaignOptions options;
    options.trials = trials;
    options.threads = 0;  // one worker per hardware thread; same counts as 1
    options.originalDefInsns = golden.stats.dynamicDefInsns;
    options.simOptions.engine = engine;
    const fault::CoverageReport report = core::campaign(bin, options);
    table.addRow({schemeName(scheme),
                  formatPercent(report.fraction(fault::Outcome::kBenign)),
                  formatPercent(report.fraction(fault::Outcome::kDetected)),
                  formatPercent(report.fraction(fault::Outcome::kException)),
                  formatPercent(
                      report.fraction(fault::Outcome::kDataCorrupt)),
                  formatPercent(report.fraction(fault::Outcome::kTimeout)),
                  report.fraction(fault::Outcome::kDataCorrupt) > 0.0
                      ? "yes"
                      : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "How to read this:\n"
      "  benign        output unchanged (the flip was masked)\n"
      "  detected      a CHECK caught the divergence before it escaped\n"
      "  exception     the hardware trapped (bad address, div-by-zero...);\n"
      "                catchable by a handler, so effectively detected\n"
      "  data-corrupt  WRONG OUTPUT with no warning — the failure mode the\n"
      "                whole technique exists to eliminate\n"
      "  timeout       runaway execution, caught by the watchdog\n");

  // Export the trace session (active only under CASTED_TRACE or an explicit
  // trace::enable); run metadata identifies this campaign in the viewer.
  trace::setMetadata("example", "fault_campaign");
  trace::setMetadata("workload", wl.name);
  trace::setMetadata("trials", std::to_string(trials));
  trace::setMetadata("threads", "hardware");
  trace::setMetadata("engine", sim::engineName(engine));
  trace::setMetadata("injection_mode",
                     fault::injectionModeName(fault::CampaignOptions{}.mode));
  if (trace::writeReport()) {
    std::printf("wrote trace %s\n", trace::outputPath().c_str());
  }
  return 0;
}
