// Example: a little compiler driver over the textual IR.
//
// Reads a program in the textual IR (from a file, or an embedded sample),
// protects it under the requested scheme, and prints the transformed IR,
// the per-block VLIW schedules, and the simulated execution result.
//
//   ./build/examples/compiler_driver [scheme] [file.ir]
//   scheme in {noed, sced, dced, casted}; default casted.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/check.h"

using namespace casted;

namespace {

// A saturating vector-add kernel written directly in the textual IR.
const char* kSample = R"(
; vadd8: out[i] = min(a[i] + b[i], 255) over 8 bytes, plus a checksum
global a 8 = 10 20 30 40 f0 60 70 80
global b 8 = 05 05 05 05 f0 05 05 05
global output 16
func @main() -> () {
bb0:
  g0 = movi 4096
  g1 = movi 4104
  g2 = movi 4112
  g3 = movi 0
  g4 = movi 0
  br bb1
bb1:
  g5 = add g0, g4
  g6 = loadb [g5+0]
  g7 = add g1, g4
  g8 = loadb [g7+0]
  g9 = add g6, g8
  g10 = movi 255
  g11 = min g9, g10
  g12 = add g2, g4
  storeb [g12+0], g11
  g13 = add g3, g11
  g3 = mov g13
  g4 = addi g4, 1
  p0 = cmplti g4, 8
  brc p0, bb1, bb2
bb2:
  store [g2+8], g3
  g14 = movi 0
  halt g14
}
entry @main
)";

passes::Scheme schemeFromName(const std::string& name) {
  if (name == "noed") return passes::Scheme::kNoed;
  if (name == "sced") return passes::Scheme::kSced;
  if (name == "dced") return passes::Scheme::kDced;
  if (name == "casted") return passes::Scheme::kCasted;
  std::fprintf(stderr, "unknown scheme '%s', using casted\n", name.c_str());
  return passes::Scheme::kCasted;
}

}  // namespace

int main(int argc, char** argv) {
  const passes::Scheme scheme =
      schemeFromName(argc > 1 ? argv[1] : "casted");
  std::string text = kSample;
  if (argc > 2) {
    std::ifstream file(argv[2]);
    if (!file.good()) {
      std::fprintf(stderr, "cannot open %s\n", argv[2]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  ir::Program program;
  try {
    program = ir::parseProgram(text);
    ir::verifyOrThrow(program);
  } catch (const FatalError& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  const arch::MachineConfig machine = arch::makePaperMachine(2, 1);
  const core::CompiledProgram bin =
      core::compile(program, machine, scheme);

  std::printf("=== pass pipeline ===\n%s\n",
              bin.report.toString().c_str());

  std::printf("=== transformed program (%s on %s) ===\n%s\n",
              schemeName(scheme), machine.toString().c_str(),
              ir::printProgram(bin.program).c_str());

  std::printf("=== schedules ===\n");
  for (ir::FuncId f = 0; f < bin.program.functionCount(); ++f) {
    const ir::Function& fn = bin.program.function(f);
    for (ir::BlockId blockId = 0; blockId < fn.blockCount(); ++blockId) {
      std::printf("@%s bb%u:\n%s\n", fn.name().c_str(), blockId,
                  bin.schedule.functions[f]
                      .blocks[blockId]
                      .render(fn.block(blockId), machine.clusterCount,
                              machine.issueWidth)
                      .c_str());
    }
  }

  const sim::RunResult result = core::run(bin);
  std::printf("=== execution ===\nexit: %s (code %ld), %lu cycles, "
              "%lu dynamic instructions\noutput bytes:",
              sim::exitKindName(result.exit),
              static_cast<long>(result.exitCode),
              static_cast<unsigned long>(result.stats.cycles),
              static_cast<unsigned long>(result.stats.dynamicInsns));
  for (std::uint8_t byte : result.output) {
    std::printf(" %02x", byte);
  }
  std::printf("\n");
  return 0;
}
