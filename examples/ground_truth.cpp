// Example: exhaustive ground truth instead of Monte Carlo sampling.
//
// The fault campaign (fault_campaign.cpp) samples the fault space; on small
// workloads the space is small enough to enumerate COMPLETELY — every
// dynamic def, every output register, every bit, injected exactly once.
// That gives exact outcome fractions (no sampling error), the exact
// distribution the campaign converges to, and a per-static-instruction
// ranking of where silent data corruption actually leaks — which this
// example prints next to the ProtectionLint's static verdicts so the two
// views of "where are the gaps" can be compared directly.
//
//   ./build/examples/ground_truth [workload] [scheme] [threads]
//   e.g. ./build/examples/ground_truth parser casted 0
#include <strings.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/pipeline.h"
#include "passes/protection_lint.h"
#include "support/statistics.h"
#include "support/table.h"
#include "workloads/workloads.h"

using namespace casted;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "parser";
  passes::Scheme scheme = passes::Scheme::kCasted;
  if (argc > 2) {
    bool found = false;
    for (const passes::Scheme candidate : passes::kAllSchemes) {
      if (strcasecmp(argv[2], passes::schemeName(candidate)) == 0) {
        scheme = candidate;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown scheme '%s'\n", argv[2]);
      return 1;
    }
  }
  const std::uint32_t threads =
      argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3])) : 0;

  const workloads::Workload wl = workloads::makeWorkload(name, 1);
  const arch::MachineConfig machine = arch::makePaperMachine(2, 2);
  const core::CompiledProgram bin =
      core::compile(wl.program, machine, scheme);

  // The static view: what the lint claims about every def site.
  std::printf("== static protection lint (%s, %s)\n", wl.name.c_str(),
              passes::schemeName(scheme));
  const passes::ProtectionLintResult lint =
      passes::lintProtection(bin.program, scheme);
  std::printf("%s\n", lint.toString(/*gapsOnly=*/true).c_str());

  // The dynamic view: inject every site once and classify it.
  fault::ExhaustiveOptions options;
  options.threads = threads;
  const fault::GroundTruthReport truth = core::groundTruth(bin, options);
  std::printf("== exhaustive ground truth\n%s\n",
              truth.toString(/*topInsns=*/10).c_str());

  std::printf(
      "Exact SDC probability of one random flip: %s (safe %s).\n"
      "A Monte Carlo campaign with originalDefInsns=0 converges to exactly\n"
      "these fractions; tests/exhaustive_ground_truth_test.cpp holds it to\n"
      "the 99%% Wilson interval, and every site the lint cleared above is\n"
      "guaranteed to show zero data-corrupt sites here.\n",
      formatPercent(truth.mcProbabilityOf(fault::Outcome::kDataCorrupt))
          .c_str(),
      formatPercent(truth.mcSafeProbability()).c_str());
  return 0;
}
