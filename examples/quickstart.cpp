// Quickstart: protect a small program with CASTED and compare the four
// schemes of the paper on one machine configuration.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "support/statistics.h"
#include "support/table.h"
#include "workloads/workloads.h"

int main() {
  using namespace casted;

  // A 2-cluster VLIW, 2-wide per cluster, 1-cycle inter-cluster delay —
  // the kind of tightly coupled machine the paper targets.
  const arch::MachineConfig machine = arch::makePaperMachine(
      /*issueWidth=*/2, /*interClusterDelay=*/1);

  // Any ir::Program works here; we use the bundled h263dec workload.
  workloads::Workload workload = workloads::makeH263dec(/*scale=*/1);
  const std::size_t sourceInsns = workload.program.insnCount();

  std::printf("CASTED quickstart — %s on %s\n\n", workload.name.c_str(),
              machine.toString().c_str());

  TextTable table({"scheme", "cycles", "slowdown", "code-growth",
                   "checks", "off-cluster-0"});
  double noedCycles = 0.0;
  for (passes::Scheme scheme : passes::kAllSchemes) {
    // Compile: error detection (Algorithm 1) + cluster assignment
    // (SCED/DCED fixed, or BUG — Algorithm 2) + VLIW scheduling.
    const core::CompiledProgram bin =
        core::compile(workload.program, machine, scheme);
    // Simulate on the cycle-accurate clustered-VLIW model.
    const sim::RunResult result = core::run(bin);
    if (result.exit != sim::ExitKind::kHalted || result.exitCode != 0) {
      std::printf("unexpected exit: %s\n", sim::exitKindName(result.exit));
      return 1;
    }
    const double cycles = static_cast<double>(result.stats.cycles);
    if (scheme == passes::Scheme::kNoed) {
      noedCycles = cycles;
    }
    table.addRow({schemeName(scheme), std::to_string(result.stats.cycles),
                  formatFixed(cycles / noedCycles, 2),
                  formatFixed(bin.codeGrowth(sourceInsns), 2),
                  std::to_string(bin.report.stat("error-detection", "checks")),
                  std::to_string(bin.report.stat("assignment", "off-cluster0"))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "CASTED adapts the placement per configuration; SCED/DCED are the\n"
      "fixed single-core / dual-core baselines (paper Figs. 2-3, 6-7).\n");
  return 0;
}
