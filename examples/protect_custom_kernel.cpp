// Example: protect YOUR OWN kernel.
//
// Shows the full library surface a user touches to harden custom code:
//   1. build a program with ir::IrBuilder (here: a FIR filter),
//   2. run the error-detection + adaptive-assignment pipeline,
//   3. inspect the transformed code in the textual IR,
//   4. confirm the protected binary computes the same output and see what
//      the protection costs on this machine.
#include <cstdio>

#include "core/pipeline.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "support/statistics.h"
#include "workloads/data_util.h"

using namespace casted;

// out[i] = sum_k in[i+k] * taps[k], then a checksum of all outputs.
ir::Program buildFirFilter(std::uint32_t samples) {
  ir::Program prog;
  constexpr int kTaps = 4;
  const std::int64_t taps[kTaps] = {1, -3, 3, -1};
  const std::uint64_t inAddr = prog.allocateGlobal(
      "input", workloads::detail::randomBytes(samples + kTaps, 0xF17));
  const std::uint64_t outAddr =
      prog.allocateGlobal("output", std::uint64_t{samples} * 8 + 8);

  ir::Function& main = prog.addFunction("main");
  ir::IrBuilder b(main);
  ir::BasicBlock& entry = b.createBlock("entry");
  ir::BasicBlock& loop = b.createBlock("loop");
  ir::BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const ir::Reg inBase = b.movImm(static_cast<std::int64_t>(inAddr));
  const ir::Reg outBase = b.movImm(static_cast<std::int64_t>(outAddr));
  const ir::Reg i = b.movImm(0);
  const ir::Reg checksum = b.movImm(0);
  b.br(loop);

  b.setBlock(loop);
  const ir::Reg samplePtr = b.add(inBase, i);
  ir::Reg acc = b.movImm(0);
  for (int k = 0; k < kTaps; ++k) {
    const ir::Reg sample = b.loadB(samplePtr, k);
    acc = b.add(acc, b.mulImm(sample, taps[k]));
  }
  const ir::Reg outPtr = b.add(outBase, b.shlImm(i, 3));
  b.store(outPtr, 0, acc);
  const ir::Reg mixed = b.mulImm(checksum, 31);
  b.binaryTo(ir::Opcode::kAdd, checksum, mixed, acc);
  b.addImmTo(i, i, 1);
  const ir::Reg more = b.cmpLtImm(i, samples);
  b.brCond(more, loop, done);

  b.setBlock(done);
  b.store(outBase, std::int64_t{samples} * 8, checksum);
  b.halt(b.movImm(0));
  return prog;
}

int main() {
  const ir::Program kernel = buildFirFilter(/*samples=*/64);
  const arch::MachineConfig machine = arch::makePaperMachine(
      /*issueWidth=*/2, /*interClusterDelay=*/1);

  // Protect with CASTED.
  const core::CompiledProgram protectedBin =
      core::compile(kernel, machine, passes::Scheme::kCasted);
  const core::CompiledProgram plainBin =
      core::compile(kernel, machine, passes::Scheme::kNoed);

  std::printf("=== transformed loop body (duplicates carry !dup, checks "
              "carry !guard, cluster 1 placements carry !c=1) ===\n");
  // Print only the loop block to keep the output focused.
  const ir::Function& fn = protectedBin.program.function(0);
  for (const ir::Instruction& insn : fn.block(1).insns()) {
    std::printf("  %s\n",
                ir::printInstruction(insn, &protectedBin.program).c_str());
  }

  const sim::RunResult plain = core::run(plainBin);
  const sim::RunResult hardened = core::run(protectedBin);
  std::printf("\noutput identical: %s\n",
              plain.output == hardened.output ? "yes" : "NO (bug!)");
  std::printf("cycles: %lu -> %lu (slowdown %s)\n",
              static_cast<unsigned long>(plain.stats.cycles),
              static_cast<unsigned long>(hardened.stats.cycles),
              formatFixed(static_cast<double>(hardened.stats.cycles) /
                              static_cast<double>(plain.stats.cycles),
                          2)
                  .c_str());
  const pm::PipelineReport& report = protectedBin.report;
  std::printf("inserted: %lu duplicates, %lu checks, %lu copies; "
              "%lu instructions moved off cluster 0\n",
              static_cast<unsigned long>(
                  report.stat("error-detection", "replicated")),
              static_cast<unsigned long>(
                  report.stat("error-detection", "checks")),
              static_cast<unsigned long>(
                  report.stat("error-detection", "copies")),
              static_cast<unsigned long>(
                  report.stat("assignment", "off-cluster0")));
  return 0;
}
