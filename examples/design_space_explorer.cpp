// Example: which scheme should a compiler pick for a given machine?
//
// Sweeps the (issue width x inter-cluster delay) design space for one
// workload and prints the winner per point — the map the paper's
// motivating section (§II-B) sketches: DCED wins narrow/fast-interconnect
// machines, SCED wins wide/slow ones, and CASTED never has to choose.
//
//   ./build/examples/design_space_explorer [workload]
#include <cstdio>

#include "core/pipeline.h"
#include "support/statistics.h"
#include "support/table.h"
#include "workloads/workloads.h"

using namespace casted;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "h263dec";
  const workloads::Workload wl = workloads::makeWorkload(name, 1);

  std::printf("design-space map for %s (cells show best fixed scheme, its\n"
              "slowdown, and CASTED's slowdown)\n\n",
              wl.name.c_str());

  TextTable table({"", "delay 1", "delay 2", "delay 3", "delay 4"});
  core::PipelineOptions options;
  options.verifyAfterPasses = false;
  int castedWins = 0;
  int castedTies = 0;
  for (std::uint32_t iw = 1; iw <= 4; ++iw) {
    std::vector<std::string> row = {"issue " + std::to_string(iw)};
    for (std::uint32_t delay = 1; delay <= 4; ++delay) {
      const arch::MachineConfig machine = arch::makePaperMachine(iw, delay);
      auto cycles = [&](passes::Scheme scheme) {
        return core::run(core::compile(wl.program, machine, scheme, options))
            .stats.cycles;
      };
      const double noed = static_cast<double>(cycles(passes::Scheme::kNoed));
      const double sced =
          static_cast<double>(cycles(passes::Scheme::kSced)) / noed;
      const double dced =
          static_cast<double>(cycles(passes::Scheme::kDced)) / noed;
      const double casted =
          static_cast<double>(cycles(passes::Scheme::kCasted)) / noed;
      const bool scedWins = sced <= dced;
      const double best = scedWins ? sced : dced;
      if (casted < best - 1e-9) {
        ++castedWins;
      } else if (casted <= best + 1e-9) {
        ++castedTies;
      }
      row.push_back(std::string(scedWins ? "SCED " : "DCED ") +
                    formatFixed(best, 2) + " | C " + formatFixed(casted, 2));
    }
    table.addRow(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("CASTED strictly beat the best fixed scheme in %d of 16 "
              "cells and matched it in %d more.\n",
              castedWins, castedTies);

  // Show what the CASTED pipeline did at a representative point (the
  // per-pass timing / instruction-delta / stats report).
  const arch::MachineConfig sample = arch::makePaperMachine(2, 2);
  const core::CompiledProgram bin =
      core::compile(wl.program, sample, passes::Scheme::kCasted, options);
  std::printf("\nCASTED pipeline on %s:\n%s\n", sample.toString().c_str(),
              bin.report.toString().c_str());
  std::printf("\nTakeaway: the winning fixed scheme flips across the design\n"
              "space, so any fixed choice is wrong somewhere; the adaptive\n"
              "placement tracks (and often beats) the winner everywhere.\n");
  return 0;
}
