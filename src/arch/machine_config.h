// Machine description: the configurable clustered-VLIW target of the paper
// (Table I plus the issue-width / inter-cluster-delay axes of Figs. 6-10).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ir/opcode.h"

namespace casted::arch {

// One cache level of Table I.
struct CacheLevelConfig {
  std::string name;
  std::uint64_t sizeBytes = 0;
  std::uint32_t blockBytes = 0;
  std::uint32_t associativity = 0;
  std::uint32_t latency = 0;  // total access latency in cycles
};

// The three-level Itanium2 hierarchy plus main memory latency.
struct CacheConfig {
  std::array<CacheLevelConfig, 3> levels = {
      CacheLevelConfig{"L1", 16 * 1024, 64, 4, 1},
      CacheLevelConfig{"L2", 256 * 1024, 128, 8, 5},
      CacheLevelConfig{"L3", 3 * 1024 * 1024, 128, 12, 12},
  };
  std::uint32_t memoryLatency = 150;

  // Throws FatalError when a level's geometry is inconsistent (size not a
  // multiple of block*assoc, non-power-of-two blocks, non-increasing
  // latencies).
  void validate() const;
};

// Per-functional-unit-class instruction latencies ("Instruction Latencies:
// configurable" in Table I).  Memory latency here is the L1-hit latency;
// misses add stall cycles in the simulator.
struct LatencyConfig {
  std::uint32_t intAlu = 1;
  std::uint32_t intMul = 3;
  std::uint32_t intDiv = 12;
  std::uint32_t fpAlu = 4;
  std::uint32_t fpMul = 4;
  std::uint32_t fpDiv = 16;
  std::uint32_t mem = 1;
  std::uint32_t branch = 1;
  std::uint32_t call = 1;

  std::uint32_t forClass(ir::FuClass cls) const;
};

// Per-cluster register-file capacity (Table I: 64GP, 64FL, 32PR per cluster).
struct RegisterFileConfig {
  std::uint32_t gp = 64;
  std::uint32_t fp = 64;
  std::uint32_t pr = 32;

  std::uint32_t forClass(ir::RegClass cls) const;
};

// The whole machine.
struct MachineConfig {
  std::uint32_t clusterCount = 2;
  std::uint32_t issueWidth = 2;        // per cluster
  std::uint32_t interClusterDelay = 1; // extra cycles to read a remote register

  // Optional per-cluster issue-port limits; 0 means "no limit beyond the
  // issue width".  The paper's evaluation uses unconstrained slots; the
  // ablation benches restrict memory ports.
  std::uint32_t memPortsPerCluster = 0;
  std::uint32_t fpPortsPerCluster = 0;
  // Branch units per cluster (default 1, as on real VLIWs).  Ordinary
  // blocks end in a single terminator, so this only binds when the split
  // check mode emits explicit trap-jumps — the mechanism behind the
  // paper's "frequent checking makes the code sequential" observation for
  // h263enc (§IV-B2).
  std::uint32_t branchPortsPerCluster = 1;
  // When true (default), a branch closes its issue cycle for the whole
  // lockstep machine — the IA-64 "branch ends the instruction group" rule.
  // With fused checks this only touches block terminators; with split
  // checks every trap-jump becomes a group boundary, which is what makes
  // check-dense code sequential (the paper's h263enc argument, §IV-B2).
  bool branchClosesBundle = true;

  // BUG anticipated-communication penalty, as a percentage of the
  // inter-cluster delay beyond its first cycle.  A bottom-up greedy
  // assigner cannot see that a result placed off its operands' cluster
  // usually has to travel back to its consumers; this charges part of the
  // return trip up front.  Defaults to 0 (pure Algorithm 2): the
  // `ablation_bug` bench shows the placement fallback below dominates it —
  // aggressive spreading plus the per-block fallback gives both the lowest
  // mean slowdown and zero losses against the fixed schemes.
  std::uint32_t bugAnticipationPercent = 0;

  // After BUG assigns a block, also evaluate the single-cluster (SCED-like)
  // and original/redundant-split (DCED-like) placements with the
  // scheduler's cost model and keep the shortest schedule.  This makes the
  // paper's "CASTED at least matches the best performing fixed scheme"
  // claim hold by construction at block granularity: greedy bottom-up
  // assignment alone can over-spread on high-delay machines or
  // under-spread on narrow ones.  Disabled by the ablation bench.
  bool bugPlacementFallback = true;

  LatencyConfig latencies;
  RegisterFileConfig registerFile;
  CacheConfig cache;

  std::uint32_t latencyFor(ir::Opcode op) const {
    return latencies.forClass(ir::opcodeInfo(op).fuClass);
  }

  // Issue ports available to `cls` on one cluster.
  std::uint32_t portLimit(ir::FuClass cls) const;

  // Throws FatalError on inconsistent parameters.
  void validate() const;

  // e.g. "2x issue=2 delay=1" — used in experiment tables.
  std::string toString() const;
};

// The paper's default 2-cluster machine for a given (issueWidth, delay)
// evaluation point.
MachineConfig makePaperMachine(std::uint32_t issueWidth,
                               std::uint32_t interClusterDelay);

}  // namespace casted::arch
