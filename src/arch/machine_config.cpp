#include "arch/machine_config.h"

#include <sstream>

#include "support/check.h"

namespace casted::arch {
namespace {

bool isPowerOfTwo(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

void CacheConfig::validate() const {
  std::uint32_t previousLatency = 0;
  for (const CacheLevelConfig& level : levels) {
    CASTED_CHECK(isPowerOfTwo(level.blockBytes))
        << level.name << " block size must be a power of two";
    CASTED_CHECK(level.associativity > 0)
        << level.name << " associativity must be positive";
    CASTED_CHECK(level.sizeBytes %
                     (static_cast<std::uint64_t>(level.blockBytes) *
                      level.associativity) ==
                 0)
        << level.name << " size must be a multiple of block*associativity";
    const std::uint64_t sets =
        level.sizeBytes / level.blockBytes / level.associativity;
    CASTED_CHECK(isPowerOfTwo(sets))
        << level.name << " set count must be a power of two";
    CASTED_CHECK(level.latency > previousLatency)
        << level.name << " latency must exceed the previous level";
    previousLatency = level.latency;
  }
  CASTED_CHECK(memoryLatency > previousLatency)
      << "memory latency must exceed L3 latency";
}

std::uint32_t LatencyConfig::forClass(ir::FuClass cls) const {
  switch (cls) {
    case ir::FuClass::kNone:
      return 1;
    case ir::FuClass::kIntAlu:
      return intAlu;
    case ir::FuClass::kIntMul:
      return intMul;
    case ir::FuClass::kIntDiv:
      return intDiv;
    case ir::FuClass::kFpAlu:
      return fpAlu;
    case ir::FuClass::kFpMul:
      return fpMul;
    case ir::FuClass::kFpDiv:
      return fpDiv;
    case ir::FuClass::kMem:
      return mem;
    case ir::FuClass::kBranch:
      return branch;
    case ir::FuClass::kCall:
      return call;
  }
  CASTED_UNREACHABLE("bad FuClass");
}

std::uint32_t RegisterFileConfig::forClass(ir::RegClass cls) const {
  switch (cls) {
    case ir::RegClass::kGp:
      return gp;
    case ir::RegClass::kFp:
      return fp;
    case ir::RegClass::kPr:
      return pr;
  }
  CASTED_UNREACHABLE("bad RegClass");
}

std::uint32_t MachineConfig::portLimit(ir::FuClass cls) const {
  if (cls == ir::FuClass::kMem && memPortsPerCluster > 0) {
    return memPortsPerCluster;
  }
  if (cls == ir::FuClass::kBranch && branchPortsPerCluster > 0) {
    return branchPortsPerCluster;
  }
  if ((cls == ir::FuClass::kFpAlu || cls == ir::FuClass::kFpMul ||
       cls == ir::FuClass::kFpDiv) &&
      fpPortsPerCluster > 0) {
    return fpPortsPerCluster;
  }
  return issueWidth;
}

void MachineConfig::validate() const {
  CASTED_CHECK(clusterCount >= 1) << "need at least one cluster";
  CASTED_CHECK(issueWidth >= 1) << "issue width must be positive";
  CASTED_CHECK(latencies.intAlu >= 1 && latencies.mem >= 1 &&
               latencies.branch >= 1)
      << "latencies must be at least one cycle";
  CASTED_CHECK(registerFile.gp >= 1 && registerFile.fp >= 1 &&
               registerFile.pr >= 1)
      << "register files must be non-empty";
  cache.validate();
}

std::string MachineConfig::toString() const {
  std::ostringstream out;
  out << clusterCount << "x issue=" << issueWidth
      << " delay=" << interClusterDelay;
  return out.str();
}

MachineConfig makePaperMachine(std::uint32_t issueWidth,
                               std::uint32_t interClusterDelay) {
  MachineConfig config;
  config.clusterCount = 2;
  config.issueWidth = issueWidth;
  config.interClusterDelay = interClusterDelay;
  config.validate();
  return config;
}

}  // namespace casted::arch
