// Static analysis of a compiled program: where the instructions went, how
// full the issue slots are, and how much inter-cluster communication the
// placement implies.  Backs the measured half of the Table III bench and
// gives library users a way to understand *why* a placement is fast or
// slow without running the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace casted::core {

struct ScheduleAnalysis {
  std::uint64_t instructions = 0;
  std::vector<std::uint64_t> perCluster;  // instruction count per cluster
  // Instructions by origin, indexed by ir::InsnOrigin.
  std::array<std::uint64_t, 5> byOrigin = {};

  // Sum of block schedule lengths (static cycles).
  std::uint64_t staticCycles = 0;
  // instructions / (staticCycles * clusters * issueWidth): how full the
  // machine's slots are across the static schedule.
  double slotUtilisation = 0.0;

  // Data or guard edges whose producer and consumer sit on different
  // clusters — each is a transfer paying the inter-cluster delay.
  std::uint64_t crossClusterTransfers = 0;
  std::uint64_t valueEdges = 0;  // total data+guard edges, for the ratio

  double crossClusterFraction() const {
    return valueEdges == 0 ? 0.0
                           : static_cast<double>(crossClusterTransfers) /
                                 static_cast<double>(valueEdges);
  }
  double fractionOffCluster0() const {
    if (instructions == 0 || perCluster.empty()) {
      return 0.0;
    }
    return 1.0 - static_cast<double>(perCluster[0]) /
                     static_cast<double>(instructions);
  }

  // A short multi-line human-readable summary.
  std::string toString() const;
};

// Analyses the placement and schedule of `compiled`.
ScheduleAnalysis analyze(const CompiledProgram& compiled);

}  // namespace casted::core
