#include "core/analysis.h"

#include <sstream>

#include "dfg/dfg.h"
#include "support/statistics.h"

namespace casted::core {

ScheduleAnalysis analyze(const CompiledProgram& compiled) {
  ScheduleAnalysis analysis;
  analysis.perCluster.assign(compiled.machine.clusterCount, 0);

  for (ir::FuncId f = 0; f < compiled.program.functionCount(); ++f) {
    const ir::Function& fn = compiled.program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      const ir::BasicBlock& block = fn.block(b);
      for (const ir::Instruction& insn : block.insns()) {
        ++analysis.instructions;
        ++analysis.byOrigin[static_cast<int>(insn.origin)];
        const std::size_t cluster = static_cast<std::size_t>(insn.cluster);
        if (cluster < analysis.perCluster.size()) {
          ++analysis.perCluster[cluster];
        }
      }
      analysis.staticCycles +=
          compiled.schedule.functions[f].blocks[b].length;

      // Count inter-cluster value transfers implied by the placement.
      const dfg::DataFlowGraph graph(block, compiled.machine);
      for (std::uint32_t node = 0; node < graph.size(); ++node) {
        for (const dfg::Edge& edge : graph.succs(node)) {
          if (edge.kind != dfg::DepKind::kData &&
              edge.kind != dfg::DepKind::kGuard) {
            continue;
          }
          ++analysis.valueEdges;
          if (block.insns()[edge.from].cluster !=
              block.insns()[edge.to].cluster) {
            ++analysis.crossClusterTransfers;
          }
        }
      }
    }
  }

  const double slots = static_cast<double>(analysis.staticCycles) *
                       compiled.machine.clusterCount *
                       compiled.machine.issueWidth;
  analysis.slotUtilisation =
      slots == 0.0 ? 0.0 : static_cast<double>(analysis.instructions) / slots;
  return analysis;
}

std::string ScheduleAnalysis::toString() const {
  std::ostringstream out;
  out << instructions << " instructions over " << staticCycles
      << " static cycles, slot utilisation "
      << formatPercent(slotUtilisation) << "\n";
  out << "placement:";
  for (std::size_t c = 0; c < perCluster.size(); ++c) {
    out << " cluster" << c << "=" << perCluster[c];
  }
  out << " (" << formatPercent(fractionOffCluster0()) << " off cluster 0)\n";
  out << "origins: original=" << byOrigin[0] << " duplicate=" << byOrigin[1]
      << " check=" << byOrigin[2] << " copy=" << byOrigin[3]
      << " spill=" << byOrigin[4] << "\n";
  out << "inter-cluster transfers: " << crossClusterTransfers << " of "
      << valueEdges << " value edges ("
      << formatPercent(crossClusterFraction()) << ")";
  return out.str();
}

}  // namespace casted::core
