// casted::core — the library's top-level API.
//
// Mirrors the paper's tool flow (Fig. 5): take a program, run the error-
// detection pass (Algorithm 1), run the cluster-assignment pass (fixed
// SCED/DCED placement or BUG, Algorithm 2), schedule for the clustered VLIW,
// and hand the result to the simulator or the fault-injection campaign.
//
//   auto machine = arch::makePaperMachine(/*issueWidth=*/2, /*delay=*/1);
//   core::CompiledProgram bin =
//       core::compile(program, machine, passes::Scheme::kCasted);
//   sim::RunResult r = core::run(bin);
//   fault::CoverageReport cov = core::campaign(bin, {.trials = 300});
#pragma once

#include "arch/machine_config.h"
#include "fault/campaign.h"
#include "ir/function.h"
#include "passes/assignment.h"
#include "passes/early_opts.h"
#include "passes/error_detection.h"
#include "passes/late_opts.h"
#include "passes/spill.h"
#include "passes/scheme.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace casted::core {

struct PipelineOptions {
  // Pre-protection optimisations (constant folding + copy propagation),
  // standing in for the paper's "-O1, optimizations enabled" input code.
  bool runEarlyOptimisations = true;
  passes::ErrorDetectionOptions errorDetection;
  // Late CSE/DCE.  The paper runs them for NOED and disables them for the
  // replicated code of the protected binaries (§IV-A); `protectRedundant`
  // expresses exactly that, so the passes stay on by default for every
  // scheme.  The ablation bench flips protectRedundant off to show why the
  // paper needed this.
  bool runLateOptimisations = true;
  passes::LateOptOptions lateOpts;
  // Model per-cluster register-file capacity by spilling (DESIGN.md §6 and
  // paper §IV-B1): off by default — the main experiments keep virtual
  // registers, `ablation_spill` turns this on.
  bool modelRegisterPressure = false;
  // Verify the IR after each transformation (cheap; keep on outside of the
  // inner loops of big sweeps).
  bool verifyAfterPasses = true;
};

// A scheduled binary for one (machine, scheme) point.
struct CompiledProgram {
  ir::Program program;  // transformed copy of the source
  sched::ProgramSchedule schedule;
  passes::Scheme scheme = passes::Scheme::kNoed;
  arch::MachineConfig machine;
  passes::ErrorDetectionStats errorDetectionStats;
  passes::AssignmentStats assignmentStats;
  passes::LateOptStats lateOptStats;
  passes::SpillStats spillStats;
  passes::EarlyOptStats earlyOptStats;

  // Static code growth vs `sourceInsns` (the paper reports ~2.4x).
  double codeGrowth(std::size_t sourceInsns) const {
    return sourceInsns == 0
               ? 0.0
               : static_cast<double>(program.insnCount()) /
                     static_cast<double>(sourceInsns);
  }
};

// Compiles `source` for `machine` under `scheme`.  The source program is not
// modified.
CompiledProgram compile(const ir::Program& source,
                        const arch::MachineConfig& machine,
                        passes::Scheme scheme,
                        const PipelineOptions& options = {});

// Executes a compiled program.
sim::RunResult run(const CompiledProgram& compiled,
                   sim::SimOptions options = {});

// Runs the Monte Carlo fault campaign on a compiled program.
fault::CoverageReport campaign(const CompiledProgram& compiled,
                               const fault::CampaignOptions& options = {});

}  // namespace casted::core
