// casted::core — the library's top-level API.
//
// Mirrors the paper's tool flow (Fig. 5) as a declarative pm::PassManager
// pipeline: early optimisations, the error-detection pass (Algorithm 1),
// optional register-pressure spilling, late CSE/DCE, cluster assignment
// (fixed SCED/DCED placement or BUG, Algorithm 2) — then VLIW scheduling
// over the analysis manager's cached block DFGs, and on to the simulator or
// the (optionally multi-threaded) fault-injection campaign.
//
//   auto machine = arch::makePaperMachine(/*issueWidth=*/2, /*delay=*/1);
//   core::CompiledProgram bin =
//       core::compile(program, machine, passes::Scheme::kCasted);
//   bin.report.toString();            // per-pass time / Δinsns / stats
//   bin.report.stat("error-detection", "checks");
//   sim::RunResult r = core::run(bin);
//   fault::CoverageReport cov =
//       core::campaign(bin, {.trials = 300, .threads = 8});
#pragma once

#include <memory>

#include "arch/machine_config.h"
#include "fault/campaign.h"
#include "fault/exhaustive.h"
#include "ir/function.h"
#include "passes/assignment.h"
#include "passes/early_opts.h"
#include "passes/error_detection.h"
#include "passes/late_opts.h"
#include "passes/protection_lint.h"
#include "passes/scheme.h"
#include "passes/spill.h"
#include "pm/pass_manager.h"
#include "sched/schedule.h"
#include "sim/simulator.h"

namespace casted::core {

struct PipelineOptions {
  // Pre-protection optimisations (constant folding + copy propagation),
  // standing in for the paper's "-O1, optimizations enabled" input code.
  bool runEarlyOptimisations = true;
  passes::ErrorDetectionOptions errorDetection;
  // Late CSE/DCE.  The paper runs them for NOED and disables them for the
  // replicated code of the protected binaries (§IV-A); `protectRedundant`
  // expresses exactly that, so the passes stay on by default for every
  // scheme.  The ablation bench flips protectRedundant off to show why the
  // paper needed this.
  bool runLateOptimisations = true;
  passes::LateOptOptions lateOpts;
  // Model per-cluster register-file capacity by spilling (DESIGN.md §8 and
  // paper §IV-B1): off by default — the main experiments keep virtual
  // registers, `ablation_spill` turns this on.
  bool modelRegisterPressure = false;
  // Verify the IR after each transformation (cheap; keep on outside of the
  // inner loops of big sweeps).
  bool verifyAfterPasses = true;
  // Run the ProtectionLint analysis as the final pipeline stage and surface
  // its protected / sphere-exit / unprotected counts in the PipelineReport
  // (e.g. report.stat("protection-lint", "unprotected")).  Analysis-only;
  // flip off in inner loops of big sweeps.
  bool runProtectionLint = true;
  // Observability (support/trace.h): when the global trace session is
  // active (trace::enable() or CASTED_TRACE=<path>), this compile emits
  // scoped duration events (core.compile, pm.<pass>, core.schedule,
  // core.decode) and per-pass instruction-delta counters.  Purely
  // observational — the CompiledProgram and its report are identical either
  // way; set false to opt a hot inner-loop compile out of an active session.
  bool trace = true;
};

// A scheduled binary for one (machine, scheme) point.
struct CompiledProgram {
  ir::Program program;  // transformed copy of the source
  sched::ProgramSchedule schedule;
  passes::Scheme scheme = passes::Scheme::kNoed;
  arch::MachineConfig machine;
  // Per-pass instrumentation: wall time, instruction deltas, and each
  // pass's counters as key/value stats (e.g.
  // report.stat("error-detection", "checks")).  Passes that did not run
  // report 0 for every key.
  pm::PipelineReport report;
  // Decoded form of (program, schedule, machine), built once by compile().
  // Immutable and self-contained, so core::run / core::campaign (and any
  // number of concurrent callers) share it read-only; shared_ptr keeps
  // CompiledProgram copyable without re-decoding.
  std::shared_ptr<const sim::DecodedProgram> decoded;

  // Static code growth vs `sourceInsns` (the paper reports ~2.4x).
  double codeGrowth(std::size_t sourceInsns) const {
    return sourceInsns == 0
               ? 0.0
               : static_cast<double>(program.insnCount()) /
                     static_cast<double>(sourceInsns);
  }
};

// Builds the pass pipeline `compile` runs for (scheme, options): early opts,
// error detection (skipped for NOED), spilling (if modelled), local CSE +
// DCE, cluster assignment.  Exposed so tests and tools can inspect or rerun
// the exact pipeline.
pm::PassManager buildPipeline(passes::Scheme scheme,
                              const PipelineOptions& options = {});

// Compiles `source` for `machine` under `scheme`.  The source program is not
// modified.
CompiledProgram compile(const ir::Program& source,
                        const arch::MachineConfig& machine,
                        passes::Scheme scheme,
                        const PipelineOptions& options = {});

// Executes a compiled program.
sim::RunResult run(const CompiledProgram& compiled,
                   sim::SimOptions options = {});

// Runs the Monte Carlo fault campaign on a compiled program.  Faulty runs
// execute checkpoint-and-diverge by default (options.mode; DESIGN.md §10)
// over the cached decode — the report is bit-identical to the full-rerun
// oracle mode either way.
fault::CoverageReport campaign(const CompiledProgram& compiled,
                               const fault::CampaignOptions& options = {});

// Exhaustively enumerates and classifies the complete fault-site space of a
// compiled program (the ground truth the campaign samples) — see
// fault/exhaustive.h.  Enumeration is ordinal-major, so the default
// checkpointed injection mode restores one golden-prefix snapshot per
// dynamic def instead of re-running the program per site.  Still only
// tractable for small workloads; use `options.maxSites` as a guard.
fault::GroundTruthReport groundTruth(
    const CompiledProgram& compiled,
    const fault::ExhaustiveOptions& options = {});

}  // namespace casted::core
