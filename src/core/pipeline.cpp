#include "core/pipeline.h"

#include "ir/verifier.h"
#include "sched/list_scheduler.h"
#include "support/trace.h"

namespace casted::core {

pm::PassManager buildPipeline(passes::Scheme scheme,
                              const PipelineOptions& options) {
  pm::PassManager manager({.verifyAfterEachPass = options.verifyAfterPasses,
                           .trace = options.trace});
  if (options.runEarlyOptimisations) {
    manager.emplacePass<passes::EarlyOptsPass>();
  }
  if (scheme != passes::Scheme::kNoed) {
    manager.emplacePass<passes::ErrorDetectionPass>(options.errorDetection);
  }
  if (options.modelRegisterPressure) {
    manager.emplacePass<passes::SpillPass>();
  }
  if (options.runLateOptimisations) {
    manager.emplacePass<passes::LocalCsePass>(options.lateOpts);
    manager.emplacePass<passes::DcePass>(options.lateOpts);
  }
  manager.emplacePass<passes::AssignmentPass>(scheme);
  if (options.runProtectionLint) {
    manager.emplacePass<passes::ProtectionLintPass>(scheme);
  }
  return manager;
}

CompiledProgram compile(const ir::Program& source,
                        const arch::MachineConfig& machine,
                        passes::Scheme scheme,
                        const PipelineOptions& options) {
  machine.validate();
  const trace::Scope compileScope("core.compile", options.trace);
  trace::counterAdd("core.compiles");
  CompiledProgram compiled;
  compiled.program = source;
  compiled.scheme = scheme;
  compiled.machine = machine;

  if (options.verifyAfterPasses) {
    ir::verifyOrThrow(compiled.program);
  }

  const pm::PassManager manager = buildPipeline(scheme, options);
  pm::AnalysisManager am(machine);
  compiled.report = manager.run(compiled.program, am);
  {
    // The scheduler walks the same block DFGs the assignment pass used (it
    // preserves them: only `cluster` fields changed).
    const trace::Scope scope("core.schedule", options.trace);
    compiled.schedule = sched::scheduleProgram(compiled.program, machine, &am);
  }
  compiled.report.analysisHits = am.hits();
  compiled.report.analysisMisses = am.misses();
  {
    const trace::Scope scope("core.decode", options.trace);
    compiled.decoded = std::make_shared<const sim::DecodedProgram>(
        sim::DecodedProgram::build(compiled.program, compiled.schedule,
                                   compiled.machine));
  }
  return compiled;
}

sim::RunResult run(const CompiledProgram& compiled, sim::SimOptions options) {
  if (options.engine == sim::Engine::kDecoded && compiled.decoded != nullptr) {
    return sim::runDecoded(*compiled.decoded, options);
  }
  return sim::simulate(compiled.program, compiled.schedule, compiled.machine,
                       std::move(options));
}

fault::CoverageReport campaign(const CompiledProgram& compiled,
                               const fault::CampaignOptions& options) {
  return fault::runCampaign(compiled.program, compiled.schedule,
                            compiled.machine, options,
                            compiled.decoded.get());
}

fault::GroundTruthReport groundTruth(const CompiledProgram& compiled,
                                     const fault::ExhaustiveOptions& options) {
  return fault::enumerateFaultSpace(compiled.program, compiled.schedule,
                                    compiled.machine, options,
                                    compiled.decoded.get());
}

}  // namespace casted::core
