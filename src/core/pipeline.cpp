#include "core/pipeline.h"

#include "ir/verifier.h"
#include "sched/list_scheduler.h"

namespace casted::core {

CompiledProgram compile(const ir::Program& source,
                        const arch::MachineConfig& machine,
                        passes::Scheme scheme,
                        const PipelineOptions& options) {
  machine.validate();
  CompiledProgram compiled;
  compiled.program = source;
  compiled.scheme = scheme;
  compiled.machine = machine;

  if (options.verifyAfterPasses) {
    ir::verifyOrThrow(compiled.program);
  }

  if (options.runEarlyOptimisations) {
    compiled.earlyOptStats =
        passes::applyEarlyOptimisations(compiled.program);
    if (options.verifyAfterPasses) {
      ir::verifyOrThrow(compiled.program);
    }
  }

  if (scheme != passes::Scheme::kNoed) {
    compiled.errorDetectionStats = passes::applyErrorDetection(
        compiled.program, options.errorDetection);
    if (options.verifyAfterPasses) {
      ir::verifyOrThrow(compiled.program);
    }
  }

  if (options.modelRegisterPressure) {
    compiled.spillStats = passes::applySpilling(compiled.program, machine);
    if (options.verifyAfterPasses) {
      ir::verifyOrThrow(compiled.program);
    }
  }

  if (options.runLateOptimisations) {
    const passes::LateOptStats cse =
        passes::applyLocalCse(compiled.program, options.lateOpts);
    const passes::LateOptStats dce =
        passes::applyDce(compiled.program, options.lateOpts);
    compiled.lateOptStats.cseReplaced = cse.cseReplaced;
    compiled.lateOptStats.dceRemoved = dce.dceRemoved;
    if (options.verifyAfterPasses) {
      ir::verifyOrThrow(compiled.program);
    }
  }

  compiled.assignmentStats =
      passes::assignClusters(compiled.program, machine, scheme);
  compiled.schedule = sched::scheduleProgram(compiled.program, machine);
  return compiled;
}

sim::RunResult run(const CompiledProgram& compiled, sim::SimOptions options) {
  return sim::simulate(compiled.program, compiled.schedule, compiled.machine,
                       std::move(options));
}

fault::CoverageReport campaign(const CompiledProgram& compiled,
                               const fault::CampaignOptions& options) {
  return fault::runCampaign(compiled.program, compiled.schedule,
                            compiled.machine, options);
}

}  // namespace casted::core
