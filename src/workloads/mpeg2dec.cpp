// mpeg2dec stand-in: blockwise inverse transform + saturated frame
// reconstruction.
//
// Shape: like the MPEG-2 decoder's IDCT + motion-compensated add, the
// kernel inverse-transforms an 8x8 coefficient block (straight-line
// butterflies: good ILP) and then writes the whole reconstructed block back
// with per-pixel saturation — a store-dense decode, so the error-detection
// pass emits many store-operand checks inside large blocks.
#include <array>

#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeMpeg2dec(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "mpeg2dec";
  workload.suite = "MediaBench II video";

  Program& prog = workload.program;
  const std::uint32_t blocks = 10 * scale;

  const std::uint64_t coeffAddr = prog.allocateGlobal(
      "coeff", detail::randomBytes(std::size_t{blocks} * 64, 0x3562));
  const std::uint64_t predAddr = prog.allocateGlobal(
      "pred", detail::randomBytes(std::size_t{blocks} * 64, 0x3563));
  const std::uint64_t outputAddr =
      prog.allocateGlobal("output", std::uint64_t{blocks} * 64 + 8);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& loop = b.createBlock("loop");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg coeffBase = b.movImm(static_cast<std::int64_t>(coeffAddr));
  const Reg predBase = b.movImm(static_cast<std::int64_t>(predAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg blockIdx = b.movImm(0);
  const Reg checksum = b.movImm(0);
  b.br(loop);

  b.setBlock(loop);
  const Reg blockOff = b.shlImm(blockIdx, 6);
  const Reg cPtr = b.add(coeffBase, blockOff);
  const Reg pPtr = b.add(predBase, blockOff);
  const Reg oPtr = b.add(outBase, blockOff);

  // Load coefficients (centred to roughly +-128).
  std::array<Reg, 64> c;
  for (int k = 0; k < 64; ++k) {
    c[static_cast<std::size_t>(k)] = b.addImm(b.loadB(cPtr, k), -128);
  }

  // Row-wise 8-point inverse butterfly (even/odd recombination).
  auto idct8 = [&](const std::array<Reg, 8>& in) {
    std::array<Reg, 8> out;
    const Reg e0 = b.add(in[0], in[4]);
    const Reg e1 = b.sub(in[0], in[4]);
    const Reg e2 = b.add(in[2], b.sraImm(in[6], 1));
    const Reg e3 = b.sub(b.sraImm(in[2], 1), in[6]);
    const Reg a0 = b.add(e0, e2);
    const Reg a1 = b.add(e1, e3);
    const Reg a2 = b.sub(e1, e3);
    const Reg a3 = b.sub(e0, e2);
    const Reg o0 = b.add(in[1], b.sraImm(in[7], 1));
    const Reg o1 = b.sub(in[3], b.sraImm(in[5], 1));
    const Reg o2 = b.add(in[5], b.sraImm(in[3], 1));
    const Reg o3 = b.sub(in[7], b.sraImm(in[1], 2));
    out[0] = b.add(a0, o0);
    out[7] = b.sub(a0, o0);
    out[1] = b.add(a1, o1);
    out[6] = b.sub(a1, o1);
    out[2] = b.add(a2, o2);
    out[5] = b.sub(a2, o2);
    out[3] = b.add(a3, o3);
    out[4] = b.sub(a3, o3);
    return out;
  };

  std::array<Reg, 64> r;
  for (int row = 0; row < 8; ++row) {
    std::array<Reg, 8> in;
    for (int col = 0; col < 8; ++col) {
      in[static_cast<std::size_t>(col)] =
          c[static_cast<std::size_t>(row * 8 + col)];
    }
    const std::array<Reg, 8> out = idct8(in);
    for (int col = 0; col < 8; ++col) {
      r[static_cast<std::size_t>(row * 8 + col)] =
          out[static_cast<std::size_t>(col)];
    }
  }

  // Reconstruct: pixel = clamp(pred + (r >> 3), 0, 255); store all 64.
  const Reg zero = b.movImm(0);
  const Reg cap = b.movImm(255);
  Reg localSum = b.movImm(0);
  for (int k = 0; k < 64; ++k) {
    const Reg pred = b.loadB(pPtr, k);
    const Reg delta = b.sraImm(r[static_cast<std::size_t>(k)], 3);
    const Reg sum = b.add(pred, delta);
    const Reg clamped = b.max(zero, b.min(cap, sum));
    b.storeB(oPtr, k, clamped);
    localSum = b.add(localSum, clamped);
  }
  const Reg scaled = b.mulImm(checksum, 37);
  b.binaryTo(Opcode::kAdd, checksum, scaled, localSum);

  b.addImmTo(blockIdx, blockIdx, 1);
  const Reg more = b.cmpLtImm(blockIdx, blocks);
  b.brCond(more, loop, done);

  b.setBlock(done);
  b.store(outBase, std::int64_t{blocks} * 64, checksum);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
