// h263enc stand-in: SAD-based motion search with branchy best-candidate
// tracking.
//
// Shape: the H.263 encoder's dominant kernel is block matching — many small
// basic blocks, a serial SAD accumulation chain, and a data-dependent
// branch per candidate to track the minimum.  The redundant code therefore
// has LOW ILP and the frequent non-replicated instructions (branches and
// stores) pull in many checks; this is the benchmark the paper uses to show
// SCED scaling *worse* than NOED (§IV-B2, Amdahl's-law argument).
#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeH263enc(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "h263enc";
  workload.suite = "MediaBench II video";

  Program& prog = workload.program;
  constexpr std::uint32_t kMbEdge = 4;    // 4x4 blocks, 16 pixels
  constexpr std::uint32_t kCands = 9;     // search positions
  const std::uint32_t mbCount = 24 * scale;
  const std::uint32_t width = 64;
  // One row of macroblocks laid out side by side with an 8-pixel guard.
  const std::uint32_t frameBytes = width * (kMbEdge + 8) + mbCount * kMbEdge;

  const std::uint64_t curAddr = prog.allocateGlobal(
      "cur", detail::randomBytes(frameBytes, 0xE263));
  const std::uint64_t refAddr = prog.allocateGlobal(
      "refframe", detail::randomBytes(frameBytes, 0xE264));
  // Candidate displacements: (dx, dy) byte pairs.
  std::vector<std::uint8_t> cands;
  for (std::uint32_t k = 0; k < kCands; ++k) {
    cands.push_back(static_cast<std::uint8_t>(k % 3));
    cands.push_back(static_cast<std::uint8_t>(k / 3));
  }
  const std::uint64_t candAddr = prog.allocateGlobal("cands", cands);
  // Per-macroblock (bestSad, bestCand) pairs + final checksum.
  const std::uint64_t outputAddr =
      prog.allocateGlobal("output", std::uint64_t{mbCount} * 16 + 8);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& mbLoop = b.createBlock("mbLoop");
  BasicBlock& candLoop = b.createBlock("candLoop");
  BasicBlock& pixLoop = b.createBlock("pixLoop");
  BasicBlock& candEval = b.createBlock("candEval");
  BasicBlock& candBetter = b.createBlock("candBetter");
  BasicBlock& candNext = b.createBlock("candNext");
  BasicBlock& mbEnd = b.createBlock("mbEnd");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg curBase = b.movImm(static_cast<std::int64_t>(curAddr));
  const Reg refBase = b.movImm(static_cast<std::int64_t>(refAddr));
  const Reg candBase = b.movImm(static_cast<std::int64_t>(candAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg checksum = b.movImm(0);
  const Reg mb = b.movImm(0);
  // Loop-carried registers (defined here so they dominate all uses).
  const Reg bestSad = b.movImm(0);
  const Reg bestCand = b.movImm(0);
  const Reg cand = b.movImm(0);
  const Reg sad = b.movImm(0);
  const Reg row = b.movImm(0);
  const Reg curPtr = b.movImm(0);
  const Reg refPtr = b.movImm(0);
  b.br(mbLoop);

  b.setBlock(mbLoop);
  b.movImmTo(bestSad, 1 << 30);
  b.movImmTo(bestCand, 0);
  b.movImmTo(cand, 0);
  // curPtr = cur + mb * kMbEdge
  const Reg mbOff = b.shlImm(mb, 2);
  b.binaryTo(Opcode::kAdd, curPtr, curBase, mbOff);
  b.br(candLoop);

  b.setBlock(candLoop);
  const Reg candOff = b.shlImm(cand, 1);
  const Reg candPtr = b.add(candBase, candOff);
  const Reg dx = b.loadB(candPtr, 0);
  const Reg dy = b.loadB(candPtr, 1);
  const Reg dispRow = b.mulImm(dy, width);
  const Reg disp = b.add(dispRow, dx);
  const Reg refMb = b.add(refBase, mbOff);
  b.binaryTo(Opcode::kAdd, refPtr, refMb, disp);
  b.movImmTo(sad, 0);
  b.movImmTo(row, 0);
  b.br(pixLoop);

  b.setBlock(pixLoop);
  // One row of the block: 4 pixels, serially accumulated (a real SAD has
  // exactly this dependence chain).
  const Reg rowOff = b.mulImm(row, width);
  const Reg curRow = b.add(curPtr, rowOff);
  const Reg refRow = b.add(refPtr, rowOff);
  for (std::uint32_t px = 0; px < kMbEdge; ++px) {
    const Reg cp = b.loadB(curRow, px);
    const Reg rp = b.loadB(refRow, px);
    const Reg diff = b.abs(b.sub(cp, rp));
    b.binaryTo(Opcode::kAdd, sad, sad, diff);
  }
  b.addImmTo(row, row, 1);
  const Reg moreRows = b.cmpLtImm(row, kMbEdge);
  b.brCond(moreRows, pixLoop, candEval);

  b.setBlock(candEval);
  const Reg better = b.cmpLt(sad, bestSad);
  b.brCond(better, candBetter, candNext);

  b.setBlock(candBetter);
  b.movTo(bestSad, sad);
  b.movTo(bestCand, cand);
  b.br(candNext);

  b.setBlock(candNext);
  b.addImmTo(cand, cand, 1);
  const Reg moreCands = b.cmpLtImm(cand, kCands);
  b.brCond(moreCands, candLoop, mbEnd);

  b.setBlock(mbEnd);
  const Reg outOff = b.shlImm(mb, 4);
  const Reg outPtr = b.add(outBase, outOff);
  b.store(outPtr, 0, bestSad);
  b.store(outPtr, 8, bestCand);
  const Reg scaled = b.mulImm(checksum, 41);
  const Reg mixed = b.add(scaled, bestSad);
  b.binaryTo(Opcode::kAdd, checksum, mixed, bestCand);
  b.addImmTo(mb, mb, 1);
  const Reg moreMbs = b.cmpLtImm(mb, mbCount);
  b.brCond(moreMbs, mbLoop, done);

  b.setBlock(done);
  b.store(outBase, std::int64_t{mbCount} * 16, checksum);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
