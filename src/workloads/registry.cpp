#include "support/check.h"
#include "workloads/workloads.h"

namespace casted::workloads {

const std::vector<std::string>& workloadNames() {
  static const std::vector<std::string> kNames = {
      "cjpeg",   "h263dec", "mpeg2dec",   "h263enc",
      "175.vpr", "181.mcf", "197.parser",
  };
  return kNames;
}

Workload makeWorkload(const std::string& name, std::uint32_t scale) {
  if (name == "cjpeg") return makeCjpeg(scale);
  if (name == "h263dec") return makeH263dec(scale);
  if (name == "mpeg2dec") return makeMpeg2dec(scale);
  if (name == "h263enc") return makeH263enc(scale);
  if (name == "175.vpr" || name == "vpr") return makeVpr(scale);
  if (name == "181.mcf" || name == "mcf") return makeMcf(scale);
  if (name == "197.parser" || name == "parser") return makeParser(scale);
  throw FatalError("unknown workload: " + name);
}

std::vector<Workload> makeAllWorkloads(std::uint32_t scale) {
  std::vector<Workload> all;
  all.reserve(workloadNames().size());
  for (const std::string& name : workloadNames()) {
    all.push_back(makeWorkload(name, scale));
  }
  return all;
}

}  // namespace casted::workloads
