// cjpeg stand-in: 8x8 forward DCT-style transform + quantisation over an
// image, reduced to per-block checksums.
//
// Shape (why it stands in for cjpeg): the hot loop of JPEG encoding is the
// blockwise fDCT + quantisation; each 8x8 block is one big straight-line
// region with abundant ILP (the rows/columns are independent butterfly
// networks), and the output is *compressed* — most computed bits are folded
// into a checksum, so single bit flips are often masked, which is the
// paper's explanation for cjpeg's low error sensitivity (§IV-C).
#include <array>

#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeCjpeg(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "cjpeg";
  workload.suite = "MediaBench II video";

  Program& prog = workload.program;
  const std::uint32_t blocks = 12 * scale;

  const std::uint64_t inputAddr = prog.allocateGlobal(
      "input", detail::randomBytes(std::size_t{blocks} * 64, 0xC01FEE));
  // Quantisation multipliers, one u64 per coefficient row.
  std::vector<std::uint8_t> quant;
  for (int k = 0; k < 8; ++k) {
    detail::appendU64(quant, 16 + (static_cast<std::uint64_t>(k) * 7) % 48);
  }
  const std::uint64_t quantAddr = prog.allocateGlobal("quant", quant);
  const std::uint64_t outputAddr =
      prog.allocateGlobal("output", std::uint64_t{blocks} * 8 + 8);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& loop = b.createBlock("loop");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg inBase = b.movImm(static_cast<std::int64_t>(inputAddr));
  const Reg qBase = b.movImm(static_cast<std::int64_t>(quantAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg blockIdx = b.movImm(0);
  const Reg total = b.movImm(0);
  b.br(loop);

  b.setBlock(loop);
  // addr = input + blockIdx * 64
  const Reg blockOff = b.shlImm(blockIdx, 6);
  const Reg addr = b.add(inBase, blockOff);

  // Load the 8x8 block of pixels.
  std::array<Reg, 64> x;
  for (int k = 0; k < 64; ++k) {
    x[static_cast<std::size_t>(k)] = b.loadB(addr, k);
  }

  // 8-point forward butterfly network (DCT-II structure with integer
  // weights approximated by shifts/adds).
  auto dct8 = [&](const std::array<Reg, 8>& in) {
    std::array<Reg, 8> out;
    std::array<Reg, 4> s;
    std::array<Reg, 4> d;
    for (int i = 0; i < 4; ++i) {
      s[static_cast<std::size_t>(i)] =
          b.add(in[static_cast<std::size_t>(i)],
                in[static_cast<std::size_t>(7 - i)]);
      d[static_cast<std::size_t>(i)] =
          b.sub(in[static_cast<std::size_t>(i)],
                in[static_cast<std::size_t>(7 - i)]);
    }
    const Reg t0 = b.add(s[0], s[3]);
    const Reg t1 = b.add(s[1], s[2]);
    const Reg t2 = b.sub(s[0], s[3]);
    const Reg t3 = b.sub(s[1], s[2]);
    out[0] = b.add(t0, t1);
    out[4] = b.sub(t0, t1);
    out[2] = b.add(t2, b.sraImm(t3, 1));
    out[6] = b.sub(b.sraImm(t2, 1), t3);
    const Reg u0 = b.add(d[0], b.sraImm(d[1], 1));
    const Reg u1 = b.sub(d[2], b.sraImm(d[3], 1));
    const Reg u2 = b.add(d[1], b.sraImm(d[2], 1));
    const Reg u3 = b.sub(d[3], b.sraImm(d[0], 2));
    out[1] = b.add(u0, u1);
    out[5] = b.sub(u0, u1);
    out[3] = b.add(u2, u3);
    out[7] = b.sub(u2, u3);
    return out;
  };

  // Row pass.
  std::array<Reg, 64> y;
  for (int r = 0; r < 8; ++r) {
    std::array<Reg, 8> row;
    for (int c = 0; c < 8; ++c) {
      row[static_cast<std::size_t>(c)] =
          x[static_cast<std::size_t>(r * 8 + c)];
    }
    const std::array<Reg, 8> transformed = dct8(row);
    for (int c = 0; c < 8; ++c) {
      y[static_cast<std::size_t>(r * 8 + c)] =
          transformed[static_cast<std::size_t>(c)];
    }
  }
  // Column pass.
  std::array<Reg, 64> z;
  for (int c = 0; c < 8; ++c) {
    std::array<Reg, 8> col;
    for (int r = 0; r < 8; ++r) {
      col[static_cast<std::size_t>(r)] =
          y[static_cast<std::size_t>(r * 8 + c)];
    }
    const std::array<Reg, 8> transformed = dct8(col);
    for (int r = 0; r < 8; ++r) {
      z[static_cast<std::size_t>(r * 8 + c)] =
          transformed[static_cast<std::size_t>(r)];
    }
  }

  // Quantise: q = (z * quant[row]) >> 8, then fold into a per-block
  // checksum via a balanced reduction tree (keeps the ILP high).
  std::array<Reg, 8> qm;
  for (int r = 0; r < 8; ++r) {
    qm[static_cast<std::size_t>(r)] = b.load(qBase, r * 8);
  }
  std::vector<Reg> terms;
  terms.reserve(64);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const Reg scaled = b.mul(z[static_cast<std::size_t>(r * 8 + c)],
                               qm[static_cast<std::size_t>(r)]);
      const Reg quantised = b.sraImm(scaled, 8);
      // Position-dependent mixing so permuted coefficients do not cancel.
      terms.push_back(b.mulImm(quantised, 2 * (r * 8 + c) + 3));
    }
  }
  while (terms.size() > 1) {
    std::vector<Reg> next;
    next.reserve(terms.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(b.add(terms[i], terms[i + 1]));
    }
    if (terms.size() % 2 == 1) {
      next.push_back(terms.back());
    }
    terms = std::move(next);
  }
  const Reg blockSum = terms.front();

  const Reg outOff = b.shlImm(blockIdx, 3);
  const Reg outAddr = b.add(outBase, outOff);
  b.store(outAddr, 0, blockSum);

  // total = total * 31 + blockSum (accumulated across blocks).
  const Reg scaledTotal = b.mulImm(total, 31);
  b.binaryTo(Opcode::kAdd, total, scaledTotal, blockSum);

  b.addImmTo(blockIdx, blockIdx, 1);
  const Reg more = b.cmpLtImm(blockIdx, blocks);
  b.brCond(more, loop, done);

  b.setBlock(done);
  b.store(outBase, std::int64_t{blocks} * 8, total);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
