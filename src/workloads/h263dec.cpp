// h263dec stand-in: motion compensation + residual reconstruction + clamp.
//
// Shape: the H.263 decoder's hot path fetches a motion-displaced reference
// block, adds the decoded residual and clamps to pixel range.  Medium-sized
// basic blocks (one 4x4 macroblock per iteration), an even mix of loads,
// ALU and stores — the paper's "representative medium-ILP decoder", and the
// subject of its Fig. 10 sensitivity study.
#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeH263dec(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "h263dec";
  workload.suite = "MediaBench II video";

  Program& prog = workload.program;
  constexpr std::uint32_t kMb = 4;       // macroblock edge (pixels)
  constexpr std::uint32_t kMbPerRow = 12;
  const std::uint32_t mbRows = 4 * scale;
  const std::uint32_t width = kMbPerRow * kMb;
  const std::uint32_t height = mbRows * kMb;
  const std::uint32_t mbCount = kMbPerRow * mbRows;

  // Reference frame has an 8-pixel guard band right/below so displaced
  // fetches stay in range.
  const std::uint32_t refWidth = width + 8;
  const std::uint32_t refHeight = height + 8;
  const std::uint64_t refAddr = prog.allocateGlobal(
      "ref", detail::randomBytes(std::size_t{refWidth} * refHeight, 0x263D));
  const std::uint64_t mvAddr = prog.allocateGlobal(
      "mv", detail::randomBytes(std::size_t{mbCount} * 2, 0x263E));
  const std::uint64_t residAddr = prog.allocateGlobal(
      "resid",
      detail::randomBytes(std::size_t{mbCount} * kMb * kMb, 0x263F));
  const std::uint64_t outputAddr =
      prog.allocateGlobal("output", std::uint64_t{width} * height + 8);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& rowLoop = b.createBlock("rowLoop");
  BasicBlock& mbLoop = b.createBlock("mbLoop");
  BasicBlock& rowEnd = b.createBlock("rowEnd");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg refBase = b.movImm(static_cast<std::int64_t>(refAddr));
  const Reg mvBase = b.movImm(static_cast<std::int64_t>(mvAddr));
  const Reg residBase = b.movImm(static_cast<std::int64_t>(residAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg checksum = b.movImm(0);
  const Reg mbY = b.movImm(0);
  const Reg mbX = b.movImm(0);  // re-initialised per row
  const Reg mbIndex = b.movImm(0);
  b.br(rowLoop);

  b.setBlock(rowLoop);
  b.movImmTo(mbX, 0);
  b.br(mbLoop);

  b.setBlock(mbLoop);
  // Motion vector for this macroblock: dx, dy in [0, 8).
  const Reg mvOff = b.shlImm(mbIndex, 1);
  const Reg mvPtr = b.add(mvBase, mvOff);
  const Reg dxRaw = b.loadB(mvPtr, 0);
  const Reg dyRaw = b.loadB(mvPtr, 1);
  const Reg dx = b.andImm(dxRaw, 7);
  const Reg dy = b.andImm(dyRaw, 7);

  // Reference fetch address: ref + (mbY*4 + dy) * refWidth + mbX*4 + dx.
  const Reg pixY0 = b.add(b.shlImm(mbY, 2), dy);
  const Reg pixX0 = b.add(b.shlImm(mbX, 2), dx);
  const Reg refRow0 = b.mulImm(pixY0, refWidth);
  const Reg refPtr = b.add(b.add(refBase, refRow0), pixX0);

  // Residual base: resid + mbIndex * 16.
  const Reg residPtr = b.add(residBase, b.shlImm(mbIndex, 4));

  // Output base: output + (mbY*4) * width + mbX*4.
  const Reg outRow0 = b.mulImm(b.shlImm(mbY, 2), width);
  const Reg outPtr = b.add(b.add(outBase, outRow0), b.shlImm(mbX, 2));

  const Reg zero = b.movImm(0);
  const Reg cap = b.movImm(255);
  Reg localSum = b.movImm(0);
  for (std::uint32_t py = 0; py < kMb; ++py) {
    for (std::uint32_t px = 0; px < kMb; ++px) {
      const std::int64_t refOff =
          static_cast<std::int64_t>(py) * refWidth + px;
      const Reg refPix = b.loadB(refPtr, refOff);
      const Reg resPix =
          b.loadB(residPtr, static_cast<std::int64_t>(py * kMb + px));
      // Residuals are signed-ish: centre around zero by subtracting 128.
      const Reg centred = b.addImm(resPix, -128);
      const Reg sum = b.add(refPix, centred);
      const Reg clamped = b.max(zero, b.min(cap, sum));
      b.storeB(outPtr, static_cast<std::int64_t>(py) * width + px, clamped);
      localSum = b.add(localSum, clamped);
    }
  }
  // checksum = checksum * 33 + localSum
  const Reg scaled = b.mulImm(checksum, 33);
  b.binaryTo(Opcode::kAdd, checksum, scaled, localSum);

  b.addImmTo(mbIndex, mbIndex, 1);
  b.addImmTo(mbX, mbX, 1);
  const Reg moreX = b.cmpLtImm(mbX, kMbPerRow);
  b.brCond(moreX, mbLoop, rowEnd);

  b.setBlock(rowEnd);
  b.addImmTo(mbY, mbY, 1);
  const Reg moreY = b.cmpLtImm(mbY, mbRows);
  b.brCond(moreY, rowLoop, done);

  b.setBlock(done);
  b.store(outBase, std::int64_t{width} * height, checksum);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
