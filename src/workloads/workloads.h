// Benchmark workloads (paper Table II).
//
// The paper evaluates on MediaBench II video (cjpeg, h263dec, mpeg2dec,
// h263enc) and SPEC CINT2000 (175.vpr, 181.mcf, 197.parser).  Those sources
// cannot be compiled to this IR, so each benchmark is re-authored as a
// kernel with the structural properties the paper's analysis relies on —
// ILP, check density, branchiness, memory behaviour (see DESIGN.md §4):
//
//   cjpeg     8x8 forward DCT + quantisation, big straight-line blocks
//             (high ILP, output is compressed checksums)
//   h263dec   motion compensation + residual decode + clamp (medium ILP)
//   mpeg2dec  inverse transform + saturated reconstruction (store-heavy
//             decode)
//   h263enc   SAD motion search with branchy min-tracking (small blocks,
//             low-ILP redundant code, many checks)
//   vpr       bounding-box placement cost with FP accumulation (mixed)
//   mcf       pointer chasing over a scattered arc array (low ILP,
//             cache-miss bound)
//   parser    table-driven DFA tokenizer (branch- and byte-load-dense)
//
// Every workload is deterministic, halts with exit code 0, and writes its
// results to a global symbol named "output" — what the fault classifier
// diffs against the golden run.  `scale` multiplies the amount of work
// (roughly linearly in dynamic instructions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"

namespace casted::workloads {

struct Workload {
  std::string name;
  std::string suite;
  ir::Program program;
};

Workload makeCjpeg(std::uint32_t scale = 1);
Workload makeH263dec(std::uint32_t scale = 1);
Workload makeMpeg2dec(std::uint32_t scale = 1);
Workload makeH263enc(std::uint32_t scale = 1);
Workload makeVpr(std::uint32_t scale = 1);
Workload makeMcf(std::uint32_t scale = 1);
Workload makeParser(std::uint32_t scale = 1);

// Names in the paper's Table II order.
const std::vector<std::string>& workloadNames();

// Factory by name; throws FatalError for unknown names.
Workload makeWorkload(const std::string& name, std::uint32_t scale = 1);

// All seven, in Table II order.
std::vector<Workload> makeAllWorkloads(std::uint32_t scale = 1);

}  // namespace casted::workloads
