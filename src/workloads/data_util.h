// Internal helpers for building workload input data.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace casted::workloads::detail {

// Appends a little-endian u64.
inline void appendU64(std::vector<std::uint8_t>& bytes, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

// Appends a double by bit pattern.
inline void appendF64(std::vector<std::uint8_t>& bytes, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, 8);
  appendU64(bytes, bits);
}

// `count` deterministic pseudo-random bytes.
inline std::vector<std::uint8_t> randomBytes(std::size_t count,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> bytes(count);
  for (std::uint8_t& byte : bytes) {
    byte = static_cast<std::uint8_t>(rng.nextBelow(256));
  }
  return bytes;
}

}  // namespace casted::workloads::detail
