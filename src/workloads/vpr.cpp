// 175.vpr stand-in: FPGA-placement bounding-box cost evaluation.
//
// Shape: VPR's placement inner loop computes, per net, the half-perimeter
// bounding box of its terminals and accumulates a weighted floating-point
// cost; an acceptance test then updates a small amount of state.  Mixed
// integer/FP work with moderate ILP and a call to a helper routine — the
// call exercises Algorithm 1's shadow-COPY path for non-duplicated defs,
// and the helper is the natural candidate to mark `unprotected` in the
// library-vulnerability experiment.
#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeVpr(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "175.vpr";
  workload.suite = "SPEC CINT2000";

  Program& prog = workload.program;
  const std::uint32_t nets = 48 * scale;

  // Per net: 4 terminals, each (x, y) bytes -> 8 bytes.
  const std::uint64_t netAddr = prog.allocateGlobal(
      "nets", detail::randomBytes(std::size_t{nets} * 8, 0x7799));
  // Per-net FP weight.
  std::vector<std::uint8_t> weights;
  {
    Rng rng(0x779A);
    for (std::uint32_t n = 0; n < nets; ++n) {
      detail::appendF64(weights, 0.5 + rng.nextDouble());
    }
  }
  const std::uint64_t weightAddr = prog.allocateGlobal("weights", weights);
  // Output: accumulated cost bits, accepted-move count, checksum.
  const std::uint64_t outputAddr = prog.allocateGlobal("output", 24);
  const std::uint64_t scratchAddr = prog.allocateGlobal("flags", nets);

  // Helper: span(min0, max0) -> max - min, via a real call.
  Function& spanFn = prog.addFunction("span");
  {
    const Reg lo = spanFn.newReg(RegClass::kGp);
    const Reg hi = spanFn.newReg(RegClass::kGp);
    spanFn.params() = {lo, hi};
    spanFn.returnClasses() = {RegClass::kGp};
    IrBuilder fb(spanFn);
    BasicBlock& body = fb.createBlock("body");
    fb.setBlock(body);
    const Reg span = fb.sub(hi, lo);
    fb.ret({span});
  }

  Function& main = prog.addFunction("main");
  prog.setEntryFunction(main.id());
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& loop = b.createBlock("loop");
  BasicBlock& accept = b.createBlock("accept");
  BasicBlock& next = b.createBlock("next");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg netBase = b.movImm(static_cast<std::int64_t>(netAddr));
  const Reg weightBase = b.movImm(static_cast<std::int64_t>(weightAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg flagBase = b.movImm(static_cast<std::int64_t>(scratchAddr));
  const Reg net = b.movImm(0);
  const Reg accepted = b.movImm(0);
  const Reg checksum = b.movImm(0);
  const Reg cost = b.fMovImm(0.0);
  b.br(loop);

  b.setBlock(loop);
  const Reg netOff = b.shlImm(net, 3);
  const Reg netPtr = b.add(netBase, netOff);
  // Terminals.
  Reg xs[4];
  Reg ys[4];
  for (int t = 0; t < 4; ++t) {
    xs[t] = b.loadB(netPtr, 2 * t);
    ys[t] = b.loadB(netPtr, 2 * t + 1);
  }
  // Bounding box via min/max trees.
  const Reg xMin = b.min(b.min(xs[0], xs[1]), b.min(xs[2], xs[3]));
  const Reg xMax = b.max(b.max(xs[0], xs[1]), b.max(xs[2], xs[3]));
  const Reg yMin = b.min(b.min(ys[0], ys[1]), b.min(ys[2], ys[3]));
  const Reg yMax = b.max(b.max(ys[0], ys[1]), b.max(ys[2], ys[3]));
  const Reg xSpan = b.call(spanFn, {xMin, xMax})[0];
  const Reg ySpan = b.call(spanFn, {yMin, yMax})[0];
  const Reg halfPerim = b.add(xSpan, ySpan);

  // cost += halfPerim * weight[net]
  const Reg wOff = b.shlImm(net, 3);
  const Reg wPtr = b.add(weightBase, wOff);
  const Reg w = b.fLoad(wPtr, 0);
  const Reg hpF = b.i2f(halfPerim);
  const Reg term = b.fMul(hpF, w);
  b.emit(Opcode::kFAdd, {cost}, {cost, term});

  // Acceptance test: congested nets (span above threshold) are flagged.
  const Reg isWide = b.cmpGtImm(halfPerim, 180);
  b.brCond(isWide, accept, next);

  b.setBlock(accept);
  const Reg one = b.movImm(1);
  const Reg flagPtr = b.add(flagBase, net);
  b.storeB(flagPtr, 0, one);
  b.addImmTo(accepted, accepted, 1);
  b.br(next);

  b.setBlock(next);
  const Reg scaled = b.mulImm(checksum, 29);
  b.binaryTo(Opcode::kAdd, checksum, scaled, halfPerim);
  b.addImmTo(net, net, 1);
  const Reg more = b.cmpLtImm(net, nets);
  b.brCond(more, loop, done);

  b.setBlock(done);
  const Reg costBits = b.f2i(b.fMul(cost, b.fMovImm(1024.0)));
  b.store(outBase, 0, costBits);
  b.store(outBase, 8, accepted);
  b.store(outBase, 16, checksum);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
