// 181.mcf stand-in: pointer chasing over a scattered arc array.
//
// Shape: MCF's network-simplex traversal is the canonical low-ILP,
// cache-miss-bound SPEC benchmark — a serial chain of dependent loads over
// a working set far larger than L1.  The paper uses mcf to show NOED
// scaling poorly with issue width while the redundant code's extra ILP
// still helps SCED (§IV-B2).
#include <numeric>

#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeMcf(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "181.mcf";
  workload.suite = "SPEC CINT2000";

  Program& prog = workload.program;
  // Working set: 1536 arcs x 16 bytes = 24 KiB — larger than L1 (16K) but
  // L2-resident, walked for many laps so the steady state is L1-missing /
  // L2-hitting, with the cold misses amortised (mcf's character: the chain
  // stalls on the cache, not on issue slots).
  const std::uint32_t arcCount = 1536;
  const std::uint32_t steps = 12000 * scale;

  // Build one full-cycle permutation so the chain never gets stuck, with a
  // deterministic shuffle for scattered accesses.  Layout: arc i occupies
  // 16 bytes: [next (u64) | cost (u64)].
  std::vector<std::uint32_t> perm(arcCount);
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(0x1C0FFEE);
  for (std::uint32_t i = arcCount - 1; i > 0; --i) {
    const std::uint32_t j =
        static_cast<std::uint32_t>(rng.nextBelow(i + 1));
    std::swap(perm[i], perm[j]);
  }
  std::vector<std::uint8_t> arcs;
  arcs.reserve(std::size_t{arcCount} * 16);
  // Chain: perm[k] -> perm[k+1]; store per-slot successor.
  std::vector<std::uint32_t> nextOf(arcCount);
  for (std::uint32_t k = 0; k < arcCount; ++k) {
    nextOf[perm[k]] = perm[(k + 1) % arcCount];
  }
  for (std::uint32_t i = 0; i < arcCount; ++i) {
    detail::appendU64(arcs, nextOf[i]);
    detail::appendU64(arcs, (std::uint64_t{i} * 2654435761u) & 0xffff);
  }
  const std::uint64_t arcAddr = prog.allocateGlobal("arcs", arcs);
  const std::uint64_t outputAddr = prog.allocateGlobal("output", 16);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& loop = b.createBlock("loop");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg arcBase = b.movImm(static_cast<std::int64_t>(arcAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg node = b.movImm(static_cast<std::int64_t>(perm[0]));
  const Reg acc = b.movImm(0);
  const Reg step = b.movImm(0);
  b.br(loop);

  b.setBlock(loop);
  // addr = arcs + node * 16; node = next; acc += cost (all serial).
  const Reg nodeOff = b.shlImm(node, 4);
  const Reg arcPtr = b.add(arcBase, nodeOff);
  const Reg cost = b.load(arcPtr, 8);
  b.emit(Opcode::kLoad, {node}, {arcPtr}).imm = 0;
  b.binaryTo(Opcode::kAdd, acc, acc, cost);
  b.addImmTo(step, step, 1);
  const Reg more = b.cmpLtImm(step, steps);
  b.brCond(more, loop, done);

  b.setBlock(done);
  b.store(outBase, 0, acc);
  b.store(outBase, 8, node);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
