// 197.parser stand-in: table-driven DFA tokenizer.
//
// Shape: the SPEC parser spends its time in byte-at-a-time, table-driven
// state transitions with data-dependent branching — small basic blocks, a
// serial state dependence, and dense control flow.  Every branch pulls in
// operand checks, making this (with h263enc) the check-heaviest workload.
#include "ir/builder.h"
#include "workloads/data_util.h"
#include "workloads/workloads.h"

namespace casted::workloads {

Workload makeParser(std::uint32_t scale) {
  using namespace ir;
  Workload workload;
  workload.name = "197.parser";
  workload.suite = "SPEC CINT2000";

  Program& prog = workload.program;
  const std::uint32_t textLen = 1500 * scale;

  // Text: words, digits, spaces and punctuation, deterministic.
  std::vector<std::uint8_t> text(textLen);
  {
    Rng rng(0x9A85E5);
    for (std::uint32_t i = 0; i < textLen; ++i) {
      const std::uint64_t kind = rng.nextBelow(100);
      if (kind < 55) {
        text[i] = static_cast<std::uint8_t>('a' + rng.nextBelow(26));
      } else if (kind < 70) {
        text[i] = static_cast<std::uint8_t>('0' + rng.nextBelow(10));
      } else if (kind < 90) {
        text[i] = ' ';
      } else {
        text[i] = static_cast<std::uint8_t>(".,;!?"[rng.nextBelow(5)]);
      }
    }
  }
  const std::uint64_t textAddr = prog.allocateGlobal("text", text);

  // Character classes: 0 = space, 1 = letter, 2 = digit, 3 = punct.
  std::vector<std::uint8_t> classes(256, 3);
  classes[' '] = 0;
  for (int c = 'a'; c <= 'z'; ++c) classes[static_cast<std::size_t>(c)] = 1;
  for (int c = 'A'; c <= 'Z'; ++c) classes[static_cast<std::size_t>(c)] = 1;
  for (int c = '0'; c <= '9'; ++c) classes[static_cast<std::size_t>(c)] = 2;
  const std::uint64_t classAddr = prog.allocateGlobal("classes", classes);

  // DFA over 4 states x 4 classes.  States: 0 = gap, 1 = in-word,
  // 2 = in-number, 3 = after-punct.  A transition *into* state 1 (resp. 2)
  // from outside starts a word (number) token.
  constexpr std::uint8_t kDfa[4][4] = {
      //            space  letter digit  punct
      /*gap*/      {0,     1,     2,     3},
      /*word*/     {0,     1,     1,     3},
      /*number*/   {0,     1,     2,     3},
      /*punct*/    {0,     1,     2,     3},
  };
  std::vector<std::uint8_t> dfa;
  for (const auto& row : kDfa) {
    for (std::uint8_t cell : row) {
      dfa.push_back(cell);
    }
  }
  const std::uint64_t dfaAddr = prog.allocateGlobal("dfa", dfa);
  // Output: word count, number count, punct count, final state.
  const std::uint64_t outputAddr = prog.allocateGlobal("output", 32);

  Function& main = prog.addFunction("main");
  IrBuilder b(main);
  BasicBlock& entry = b.createBlock("entry");
  BasicBlock& loop = b.createBlock("loop");
  BasicBlock& newTok = b.createBlock("newTok");
  BasicBlock& isWord = b.createBlock("isWord");
  BasicBlock& notWord = b.createBlock("notWord");
  BasicBlock& isNum = b.createBlock("isNum");
  BasicBlock& isPunct = b.createBlock("isPunct");
  BasicBlock& next = b.createBlock("next");
  BasicBlock& done = b.createBlock("done");

  b.setBlock(entry);
  const Reg textBase = b.movImm(static_cast<std::int64_t>(textAddr));
  const Reg classBase = b.movImm(static_cast<std::int64_t>(classAddr));
  const Reg dfaBase = b.movImm(static_cast<std::int64_t>(dfaAddr));
  const Reg outBase = b.movImm(static_cast<std::int64_t>(outputAddr));
  const Reg pos = b.movImm(0);
  const Reg state = b.movImm(0);
  const Reg words = b.movImm(0);
  const Reg numbers = b.movImm(0);
  const Reg puncts = b.movImm(0);
  const Reg newState = b.movImm(0);
  b.br(loop);

  b.setBlock(loop);
  const Reg chPtr = b.add(textBase, pos);
  const Reg ch = b.loadB(chPtr, 0);
  const Reg clPtr = b.add(classBase, ch);
  const Reg cls = b.loadB(clPtr, 0);
  const Reg rowOff = b.shlImm(state, 2);
  const Reg cell = b.add(rowOff, cls);
  const Reg dfaPtr = b.add(dfaBase, cell);
  b.emit(Opcode::kLoadB, {newState}, {dfaPtr}).imm = 0;
  const Reg changed = b.cmpEq(newState, state);
  b.brCond(changed, next, newTok);

  b.setBlock(newTok);
  const Reg wasWord = b.cmpEqImm(newState, 1);
  b.brCond(wasWord, isWord, notWord);

  b.setBlock(isWord);
  b.addImmTo(words, words, 1);
  b.br(next);

  b.setBlock(notWord);
  const Reg wasNum = b.cmpEqImm(newState, 2);
  b.brCond(wasNum, isNum, isPunct);

  b.setBlock(isNum);
  b.addImmTo(numbers, numbers, 1);
  b.br(next);

  b.setBlock(isPunct);
  const Reg wasPunct = b.cmpEqImm(newState, 3);
  const Reg bump = b.select(wasPunct, b.movImm(1), b.movImm(0));
  b.binaryTo(Opcode::kAdd, puncts, puncts, bump);
  b.br(next);

  b.setBlock(next);
  b.movTo(state, newState);
  b.addImmTo(pos, pos, 1);
  const Reg more = b.cmpLtImm(pos, textLen);
  b.brCond(more, loop, done);

  b.setBlock(done);
  b.store(outBase, 0, words);
  b.store(outBase, 8, numbers);
  b.store(outBase, 16, puncts);
  b.store(outBase, 24, state);
  b.halt(b.movImm(0));

  return workload;
}

}  // namespace casted::workloads
