#include "fault/driver_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "support/check.h"
#include "support/env.h"

namespace casted::fault::detail {

EngineChoice chooseEngine(const ir::Program& program,
                          const sched::ProgramSchedule& schedule,
                          const arch::MachineConfig& config,
                          const sim::SimOptions& simOptions,
                          const sim::DecodedProgram* decoded) {
  EngineChoice choice;
  if (simOptions.engine == sim::Engine::kDecoded) {
    if (decoded == nullptr) {
      choice.owned.emplace(
          sim::DecodedProgram::build(program, schedule, config));
      choice.decoded = &*choice.owned;
    } else {
      choice.decoded = decoded;
    }
  }
  return choice;
}

sim::RunResult runGolden(const ir::Program& program,
                         const sched::ProgramSchedule& schedule,
                         const arch::MachineConfig& config,
                         const sim::SimOptions& simOptions,
                         const EngineChoice& choice,
                         std::vector<sim::DefSite>* trace) {
  sim::SimOptions goldenOptions = simOptions;
  goldenOptions.faultPlan = nullptr;
  goldenOptions.defTrace = trace;
  return choice.decoded != nullptr
             ? sim::runDecoded(*choice.decoded, goldenOptions)
             : sim::simulate(program, schedule, config, goldenOptions);
}

GoldenProfile toProfile(sim::RunResult result) {
  GoldenProfile profile;
  profile.result = std::move(result);
  CASTED_CHECK(profile.result.exit == sim::ExitKind::kHalted)
      << "golden run did not halt cleanly ("
      << sim::exitKindName(profile.result.exit) << ")";
  profile.defInsns = profile.result.stats.dynamicDefInsns;
  profile.cycles = profile.result.stats.cycles;
  CASTED_CHECK(profile.defInsns > 0) << "program executed no instructions";
  return profile;
}

std::uint32_t resolveThreads(std::uint32_t requested,
                             std::uint64_t workItems) {
  std::uint32_t threads = requested;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      threads, std::max<std::uint64_t>(workItems, 1)));
}

namespace {

constexpr std::uint32_t kDefaultHeartbeatSeconds = 5;

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total,
                             bool enabledOption)
    : label_(std::move(label)), total_(total) {
  // CASTED_PROGRESS overrides the driver option both ways: 0 forces the
  // heartbeat off, N > 0 forces it on every N seconds.  Parsed with the
  // validated helper, so CASTED_PROGRESS=junk dies loudly instead of
  // silently disabling the heartbeat.
  const std::uint32_t interval =
      envU32("CASTED_PROGRESS",
             enabledOption ? kDefaultHeartbeatSeconds : 0);
  intervalSeconds_ = interval;
  active_ = interval > 0;
}

// RAII heartbeat monitor around one worker-pool run: a thread that wakes
// every interval and prints the meter's state to stderr, stopped (and
// joined) by the destructor on every exit path, including a rethrown worker
// exception.
class PoolMonitor {
 public:
  explicit PoolMonitor(ProgressMeter* meter) : meter_(meter) {
    if (meter_ == nullptr || !meter_->active()) {
      return;
    }
    start_ = std::chrono::steady_clock::now();
    thread_ = std::thread([this] { loop(); });
  }

  ~PoolMonitor() {
    if (!thread_.joinable()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::seconds(meter_->intervalSeconds_),
                         [this] { return stop_; })) {
      printHeartbeat();
    }
  }

  void printHeartbeat() const {
    const std::uint64_t done =
        meter_->done_.load(std::memory_order_relaxed);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed
                                      : 0.0;
    const std::uint64_t total = meter_->total_;
    const double pct =
        total == 0 ? 100.0
                   : 100.0 * static_cast<double>(done) /
                         static_cast<double>(total);
    if (rate > 0.0 && done < total) {
      const double eta = static_cast<double>(total - done) / rate;
      std::fprintf(stderr,
                   "[casted] %s: %llu/%llu (%.1f%%) | %.1f/s | ETA %.1fs\n",
                   meter_->label_.c_str(),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total), pct, rate, eta);
    } else {
      std::fprintf(stderr, "[casted] %s: %llu/%llu (%.1f%%) | %.1f/s\n",
                   meter_->label_.c_str(),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total), pct, rate);
    }
    std::fflush(stderr);
  }

  ProgressMeter* meter_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

void runWorkerPool(std::uint32_t threads,
                   const std::function<void(std::uint32_t)>& body,
                   ProgressMeter* progress) {
  const PoolMonitor monitor(progress);
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
}

CheckpointSweep::CheckpointSweep(const sim::DecodedProgram& decoded,
                                 const sim::SimOptions& armedOptions,
                                 const GoldenProfile& golden)
    : runner_(decoded), options_(armedOptions), golden_(golden) {
  CASTED_CHECK(options_.faultPlan == nullptr && options_.defTrace == nullptr)
      << "sweep options must arrive with no plan and no trace";
}

sim::RunResult CheckpointSweep::run(const sim::FaultPlan& plan) {
  CASTED_CHECK(!plan.points.empty()) << "empty fault plan";
  const std::uint64_t target = plan.points[0].ordinal;
  if (!started_) {
    runner_.begin(options_);
    runner_.setCutoffReference(&golden_.result);
    const bool paused = runner_.runToDef(target);
    CASTED_CHECK(paused) << "injection ordinal " << target
                         << " beyond the golden run";
    runner_.saveCheckpoint(checkpoint_);
    started_ = true;
  } else if (target > ordinal_) {
    // Roll the snapshot forward along the golden prefix: resume from the
    // old checkpoint (undoing whatever the previous faulty suffix touched)
    // and re-snapshot at the new ordinal.
    runner_.restoreCheckpoint(checkpoint_);
    const bool paused = runner_.runToDef(target);
    CASTED_CHECK(paused) << "injection ordinal " << target
                         << " beyond the golden run";
    runner_.saveCheckpoint(checkpoint_);
  } else {
    CASTED_CHECK(target == ordinal_)
        << "sweep ordinals must be non-decreasing (got " << target
        << " after " << ordinal_ << ")";
    runner_.restoreCheckpoint(checkpoint_);
  }
  ordinal_ = target;
  runner_.injectAtPause(plan);
  return runner_.finish();
}

}  // namespace casted::fault::detail
