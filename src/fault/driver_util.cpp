#include "fault/driver_util.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "support/check.h"

namespace casted::fault::detail {

EngineChoice chooseEngine(const ir::Program& program,
                          const sched::ProgramSchedule& schedule,
                          const arch::MachineConfig& config,
                          const sim::SimOptions& simOptions,
                          const sim::DecodedProgram* decoded) {
  EngineChoice choice;
  if (simOptions.engine == sim::Engine::kDecoded) {
    if (decoded == nullptr) {
      choice.owned.emplace(
          sim::DecodedProgram::build(program, schedule, config));
      choice.decoded = &*choice.owned;
    } else {
      choice.decoded = decoded;
    }
  }
  return choice;
}

sim::RunResult runGolden(const ir::Program& program,
                         const sched::ProgramSchedule& schedule,
                         const arch::MachineConfig& config,
                         const sim::SimOptions& simOptions,
                         const EngineChoice& choice,
                         std::vector<sim::DefSite>* trace) {
  sim::SimOptions goldenOptions = simOptions;
  goldenOptions.faultPlan = nullptr;
  goldenOptions.defTrace = trace;
  return choice.decoded != nullptr
             ? sim::runDecoded(*choice.decoded, goldenOptions)
             : sim::simulate(program, schedule, config, goldenOptions);
}

GoldenProfile toProfile(sim::RunResult result) {
  GoldenProfile profile;
  profile.result = std::move(result);
  CASTED_CHECK(profile.result.exit == sim::ExitKind::kHalted)
      << "golden run did not halt cleanly ("
      << sim::exitKindName(profile.result.exit) << ")";
  profile.defInsns = profile.result.stats.dynamicDefInsns;
  profile.cycles = profile.result.stats.cycles;
  CASTED_CHECK(profile.defInsns > 0) << "program executed no instructions";
  return profile;
}

std::uint32_t resolveThreads(std::uint32_t requested,
                             std::uint64_t workItems) {
  std::uint32_t threads = requested;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      threads, std::max<std::uint64_t>(workItems, 1)));
}

void runWorkerPool(std::uint32_t threads,
                   const std::function<void(std::uint32_t)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
}

CheckpointSweep::CheckpointSweep(const sim::DecodedProgram& decoded,
                                 const sim::SimOptions& armedOptions,
                                 const GoldenProfile& golden)
    : runner_(decoded), options_(armedOptions), golden_(golden) {
  CASTED_CHECK(options_.faultPlan == nullptr && options_.defTrace == nullptr)
      << "sweep options must arrive with no plan and no trace";
}

sim::RunResult CheckpointSweep::run(const sim::FaultPlan& plan) {
  CASTED_CHECK(!plan.points.empty()) << "empty fault plan";
  const std::uint64_t target = plan.points[0].ordinal;
  if (!started_) {
    runner_.begin(options_);
    runner_.setCutoffReference(&golden_.result);
    const bool paused = runner_.runToDef(target);
    CASTED_CHECK(paused) << "injection ordinal " << target
                         << " beyond the golden run";
    runner_.saveCheckpoint(checkpoint_);
    started_ = true;
  } else if (target > ordinal_) {
    // Roll the snapshot forward along the golden prefix: resume from the
    // old checkpoint (undoing whatever the previous faulty suffix touched)
    // and re-snapshot at the new ordinal.
    runner_.restoreCheckpoint(checkpoint_);
    const bool paused = runner_.runToDef(target);
    CASTED_CHECK(paused) << "injection ordinal " << target
                         << " beyond the golden run";
    runner_.saveCheckpoint(checkpoint_);
  } else {
    CASTED_CHECK(target == ordinal_)
        << "sweep ordinals must be non-decreasing (got " << target
        << " after " << ordinal_ << ")";
    runner_.restoreCheckpoint(checkpoint_);
  }
  ordinal_ = target;
  runner_.injectAtPause(plan);
  return runner_.finish();
}

}  // namespace casted::fault::detail
