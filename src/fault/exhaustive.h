// Exhaustive fault-space enumeration — the ground-truth oracle behind the
// Monte Carlo campaign.
//
// The campaign (campaign.h) samples the fault space; this layer enumerates
// it completely.  The fault space of one run is the set of
//
//     (dynamic def ordinal) x (output register) x (bit)
//
// sites: every def-producing instruction execution, every register it
// defines, every bit of that register (predicate registers are one bit wide,
// so all 64 bit draws of the sampler collapse onto one effective site).
// Every site is injected exactly once and classified against the golden run
// with the same five outcome classes, giving
//   * exact outcome fractions — with each site additionally weighted by the
//     probability the Monte Carlo sampler would draw it, so `mcProbability`
//     is the true per-trial outcome distribution the campaign's
//     CoverageReport fractions must converge to;
//   * a per-static-instruction SiteOutcomeMap naming the instructions whose
//     sites leak silent data corruption — the table the ProtectionLint
//     cross-validation (tests/exhaustive_ground_truth_test.cpp) checks the
//     static classification against.
//
// Enumeration reuses the campaign's machinery: the shared read-only
// DecodedProgram, one reusable DecodedRunner per worker, and a work-stealing
// pool over an atomic cursor.  Classification is deterministic (no RNG —
// the plan IS the site), so the report is bit-identical for every thread
// count and engine.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/machine_config.h"
#include "fault/campaign.h"
#include "ir/function.h"
#include "sched/schedule.h"
#include "sim/decoded.h"
#include "sim/simulator.h"

namespace casted::fault {

struct ExhaustiveOptions {
  // Worker threads for the site loop.  0 = one per hardware thread.
  std::uint32_t threads = 1;
  // Watchdog: a faulty run times out after goldenCycles * timeoutFactor.
  std::uint64_t timeoutFactor = 20;
  // Safety valve for accidental use on big workloads: enumeration refuses
  // (throws) if the site space exceeds this.  0 = unlimited.
  std::uint64_t maxSites = 0;
  // Execution strategy for the faulty runs (see InjectionMode).  The
  // ordinal-major site order makes enumeration the ideal checkpoint
  // customer: one golden-prefix snapshot at dynamic def d serves all
  // (register x bit) sites at d.
  InjectionMode mode = InjectionMode::kCheckpointed;
  // Observability (support/trace.h): when the global trace session is
  // active, enumeration emits scoped duration events (fault.exhaustive,
  // fault.exhaustive.golden, per-worker scopes) and ordinal/site counters.
  // Observation only — the GroundTruthReport is bit-identical either way.
  bool trace = true;
  // Periodic progress heartbeat with rate and ETA on stderr while the
  // ordinal pool runs — a multi-million-site enumeration is no longer
  // silent until it finishes.  CASTED_PROGRESS overrides both ways
  // (0 = off, N = on every N seconds).
  bool progress = false;
  sim::SimOptions simOptions;
};

// Aggregated outcomes of every enumerated site of one static def-producing
// instruction.
struct SiteOutcome {
  ir::FuncId func = 0;
  ir::BlockId block = 0;
  std::uint32_t node = 0;  // instruction index within its block
  ir::InsnId insn = ir::kInvalidInsn;
  std::string text;  // rendered instruction, for reports

  std::uint64_t executions = 0;  // dynamic def ordinals at this instruction
  std::uint64_t sites = 0;       // enumerated (ordinal, def, bit) sites
  std::array<std::uint64_t, kOutcomeCount> counts = {};
  // Probability mass each outcome contributes to one Monte Carlo trial,
  // restricted to this instruction's ordinals (sums to executions/defInsns).
  std::array<double, kOutcomeCount> mcMass = {};

  std::uint64_t sdcSites() const {
    return counts[static_cast<int>(Outcome::kDataCorrupt)];
  }
  double sdcMass() const {
    return mcMass[static_cast<int>(Outcome::kDataCorrupt)];
  }
};

// Per-static-instruction ground truth, sorted worst offender (largest SDC
// probability mass, then most SDC sites) first.
using SiteOutcomeMap = std::vector<SiteOutcome>;

struct GroundTruthReport {
  std::uint64_t defInsns = 0;  // dynamic def-ordinal population of the run
  std::uint64_t sites = 0;     // enumerated effective sites
  std::array<std::uint64_t, kOutcomeCount> counts = {};
  // Exact per-trial outcome distribution of the single-flip Monte Carlo
  // sampler (uniform ordinal x uniform whichDef in [0,4) x uniform bit in
  // [0,64), as drawn by makeTrialPlan with originalDefInsns == 0).  Sums
  // to 1.  This is what CoverageReport fractions estimate.
  std::array<double, kOutcomeCount> mcProbability = {};
  SiteOutcomeMap perInsn;

  // Share of enumerated sites with this outcome (0 for an empty space, like
  // CoverageReport::fraction on an empty campaign).
  double fraction(Outcome outcome) const {
    return sites == 0 ? 0.0
                      : static_cast<double>(
                            counts[static_cast<int>(outcome)]) /
                            static_cast<double>(sites);
  }
  double mcProbabilityOf(Outcome outcome) const {
    return mcProbability[static_cast<int>(outcome)];
  }
  // Everything except silent data corruption, by MC probability mass.
  double mcSafeProbability() const {
    return 1.0 - mcProbabilityOf(Outcome::kDataCorrupt);
  }

  // Looks up the per-instruction entry; nullptr if the instruction never
  // executed a def (e.g. dead code).
  const SiteOutcome* find(ir::FuncId func, ir::InsnId insn) const;

  // Human-readable summary: the outcome table plus the `topInsns` worst
  // offending static instructions.
  std::string toString(std::size_t topInsns = 10) const;
};

// Enumerates and classifies the complete fault-site space of one run.
// `decoded`, when given, must have been built from exactly (program,
// schedule, config) — e.g. the decode cached in core::CompiledProgram; with
// the decoded engine and no cached decode, one is built locally.  The golden
// run must halt cleanly, as in the campaign.
GroundTruthReport enumerateFaultSpace(const ir::Program& program,
                                      const sched::ProgramSchedule& schedule,
                                      const arch::MachineConfig& config,
                                      const ExhaustiveOptions& options = {},
                                      const sim::DecodedProgram* decoded =
                                          nullptr);

}  // namespace casted::fault
