#include "fault/campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "support/check.h"

namespace casted::fault {

const char* outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign:
      return "benign";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kException:
      return "exception";
    case Outcome::kDataCorrupt:
      return "data-corrupt";
    case Outcome::kTimeout:
      return "timeout";
  }
  CASTED_UNREACHABLE("bad Outcome");
}

namespace {

// Wraps a fault-free run into the campaign's golden profile.
GoldenProfile makeProfile(sim::RunResult result) {
  GoldenProfile profile;
  profile.result = std::move(result);
  CASTED_CHECK(profile.result.exit == sim::ExitKind::kHalted)
      << "golden run did not halt cleanly ("
      << sim::exitKindName(profile.result.exit) << ")";
  profile.defInsns = profile.result.stats.dynamicDefInsns;
  profile.cycles = profile.result.stats.cycles;
  CASTED_CHECK(profile.defInsns > 0) << "program executed no instructions";
  return profile;
}

}  // namespace

GoldenProfile profileGolden(const ir::Program& program,
                            const sched::ProgramSchedule& schedule,
                            const arch::MachineConfig& config,
                            const sim::SimOptions& simOptions) {
  sim::SimOptions options = simOptions;
  options.faultPlan = nullptr;
  return makeProfile(sim::simulate(program, schedule, config, options));
}

Outcome classify(const sim::RunResult& faulty, const GoldenProfile& golden) {
  switch (faulty.exit) {
    case sim::ExitKind::kDetected:
      return Outcome::kDetected;
    case sim::ExitKind::kException:
      return Outcome::kException;
    case sim::ExitKind::kTimeout:
      return Outcome::kTimeout;
    case sim::ExitKind::kHalted:
      break;
  }
  const bool sameOutput = faulty.output == golden.result.output;
  const bool sameExit = faulty.exitCode == golden.result.exitCode;
  return (sameOutput && sameExit) ? Outcome::kBenign : Outcome::kDataCorrupt;
}

sim::FaultPlan makeTrialPlan(Rng& rng, std::uint64_t runDefInsns,
                             std::uint64_t originalDefInsns) {
  CASTED_CHECK(runDefInsns > 0) << "empty run";
  if (originalDefInsns == 0) {
    originalDefInsns = runDefInsns;
  }
  // Fixed error rate: expected flips = runLength / originalLength (>= 1 by
  // construction for error-detection binaries; == 1 for the original).
  const double expected = static_cast<double>(runDefInsns) /
                          static_cast<double>(originalDefInsns);
  std::uint64_t flips = static_cast<std::uint64_t>(expected);
  const double fractional = expected - static_cast<double>(flips);
  if (rng.nextDouble() < fractional) {
    ++flips;
  }
  flips = std::max<std::uint64_t>(flips, 1);

  sim::FaultPlan plan;
  plan.points.reserve(flips);
  for (std::uint64_t i = 0; i < flips; ++i) {
    sim::FaultPoint point;
    point.ordinal = rng.nextBelow(runDefInsns);
    point.whichDef = static_cast<std::uint32_t>(rng.nextBelow(4));
    point.bit = static_cast<std::uint32_t>(rng.nextBelow(64));
    plan.points.push_back(point);
  }
  std::sort(plan.points.begin(), plan.points.end(),
            [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
              return a.ordinal < b.ordinal;
            });
  // Collapse duplicate ordinals (the simulator consumes one point per
  // matching instruction).
  plan.points.erase(
      std::unique(plan.points.begin(), plan.points.end(),
                  [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
                    return a.ordinal == b.ordinal;
                  }),
      plan.points.end());
  return plan;
}

namespace {

// Executes one trial.  All randomness derives from (seed, trialIndex) via a
// SplitMix64 mix, so a trial's outcome is independent of which worker runs
// it and in what order — the property that makes the parallel campaign
// bit-identical to the serial one.  `decoded` is the campaign-wide shared
// decode (null when the reference engine was requested).
struct TrialResult {
  Outcome outcome = Outcome::kBenign;
  std::uint64_t dynamicInsns = 0;
};

// Per-worker trial state, set up once and reused for every trial the worker
// claims: the armed SimOptions (watchdog already applied; only faultPlan
// changes per trial) and, for the decoded engine, the reusable execution
// context over the shared DecodedProgram.
struct TrialContext {
  sim::SimOptions simOptions;
  std::optional<sim::DecodedRunner> runner;

  TrialContext(const CampaignOptions& options, const GoldenProfile& golden,
               const sim::DecodedProgram* decoded)
      : simOptions(options.simOptions) {
    simOptions.maxCycles = golden.cycles * options.timeoutFactor;
    if (decoded != nullptr) {
      runner.emplace(*decoded);
    }
  }
};

TrialResult runTrial(const ir::Program& program,
                     const sched::ProgramSchedule& schedule,
                     const arch::MachineConfig& config, TrialContext& context,
                     const CampaignOptions& options,
                     const GoldenProfile& golden, std::uint32_t trialIndex) {
  Rng trialRng(deriveStreamSeed(options.seed, trialIndex));
  const sim::FaultPlan plan =
      makeTrialPlan(trialRng, golden.defInsns, options.originalDefInsns);

  context.simOptions.faultPlan = &plan;
  const sim::RunResult faulty =
      context.runner.has_value()
          ? context.runner->run(context.simOptions)
          : sim::simulate(program, schedule, config, context.simOptions);
  context.simOptions.faultPlan = nullptr;
  return {classify(faulty, golden), faulty.stats.dynamicInsns};
}

}  // namespace

CoverageReport runCampaign(const ir::Program& program,
                           const sched::ProgramSchedule& schedule,
                           const arch::MachineConfig& config,
                           const CampaignOptions& options,
                           const sim::DecodedProgram* decoded) {
  // Decode once per campaign; every trial on every worker shares the result
  // read-only.  A caller-supplied decode (e.g. core::CompiledProgram's) is
  // reused as-is; the reference engine never touches a decode.
  std::optional<sim::DecodedProgram> owned;
  if (options.simOptions.engine == sim::Engine::kDecoded) {
    if (decoded == nullptr) {
      owned.emplace(sim::DecodedProgram::build(program, schedule, config));
      decoded = &*owned;
    }
  } else {
    decoded = nullptr;
  }

  sim::SimOptions goldenOptions = options.simOptions;
  goldenOptions.faultPlan = nullptr;
  const GoldenProfile golden = makeProfile(
      decoded != nullptr
          ? sim::runDecoded(*decoded, goldenOptions)
          : sim::simulate(program, schedule, config, goldenOptions));

  std::uint32_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max(options.trials, 1u));

  CoverageReport report;
  if (threads <= 1) {
    TrialContext context(options, golden, decoded);
    for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
      const TrialResult result = runTrial(program, schedule, config, context,
                                          options, golden, trial);
      ++report.counts[static_cast<int>(result.outcome)];
      report.dynamicInsns += result.dynamicInsns;
    }
    report.trials = options.trials;
    return report;
  }

  // Work-stealing over a shared trial counter; each worker tallies into its
  // own CoverageReport (outcome counts and instruction totals commute, so
  // the merged report does not depend on which worker ran which trial).
  std::atomic<std::uint32_t> nextTrial{0};
  std::vector<CoverageReport> partial(threads);
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        // One reusable execution context per worker; the DecodedProgram
        // itself is shared read-only.
        TrialContext context(options, golden, decoded);
        while (true) {
          const std::uint32_t trial =
              nextTrial.fetch_add(1, std::memory_order_relaxed);
          if (trial >= options.trials) {
            break;
          }
          const TrialResult result = runTrial(program, schedule, config,
                                              context, options, golden, trial);
          ++partial[w].counts[static_cast<int>(result.outcome)];
          partial[w].dynamicInsns += result.dynamicInsns;
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
  for (const CoverageReport& part : partial) {
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
      report.counts[i] += part.counts[i];
    }
    report.dynamicInsns += part.dynamicInsns;
  }
  report.trials = options.trials;
  return report;
}

}  // namespace casted::fault
