#include "fault/campaign.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <optional>
#include <vector>

#include "fault/driver_util.h"
#include "support/check.h"
#include "support/trace.h"

namespace casted::fault {

const char* outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign:
      return "benign";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kException:
      return "exception";
    case Outcome::kDataCorrupt:
      return "data-corrupt";
    case Outcome::kTimeout:
      return "timeout";
  }
  CASTED_UNREACHABLE("bad Outcome");
}

const char* injectionModeName(InjectionMode mode) {
  switch (mode) {
    case InjectionMode::kFull:
      return "full";
    case InjectionMode::kCheckpointed:
      return "checkpointed";
  }
  CASTED_UNREACHABLE("bad InjectionMode");
}

GoldenProfile profileGolden(const ir::Program& program,
                            const sched::ProgramSchedule& schedule,
                            const arch::MachineConfig& config,
                            const sim::SimOptions& simOptions) {
  sim::SimOptions options = simOptions;
  options.faultPlan = nullptr;
  return detail::toProfile(sim::simulate(program, schedule, config, options));
}

Outcome classify(const sim::RunResult& faulty, const GoldenProfile& golden) {
  switch (faulty.exit) {
    case sim::ExitKind::kDetected:
      return Outcome::kDetected;
    case sim::ExitKind::kException:
      return Outcome::kException;
    case sim::ExitKind::kTimeout:
      return Outcome::kTimeout;
    case sim::ExitKind::kHalted:
      break;
  }
  const bool sameOutput = faulty.output == golden.result.output;
  const bool sameExit = faulty.exitCode == golden.result.exitCode;
  return (sameOutput && sameExit) ? Outcome::kBenign : Outcome::kDataCorrupt;
}

sim::FaultPlan makeTrialPlan(Rng& rng, std::uint64_t runDefInsns,
                             std::uint64_t originalDefInsns) {
  CASTED_CHECK(runDefInsns > 0) << "empty run";
  if (originalDefInsns == 0) {
    originalDefInsns = runDefInsns;
  }
  // Fixed error rate: expected flips = runLength / originalLength (>= 1 by
  // construction for error-detection binaries; == 1 for the original).
  const double expected = static_cast<double>(runDefInsns) /
                          static_cast<double>(originalDefInsns);
  std::uint64_t flips = static_cast<std::uint64_t>(expected);
  const double fractional = expected - static_cast<double>(flips);
  if (rng.nextDouble() < fractional) {
    ++flips;
  }
  flips = std::max<std::uint64_t>(flips, 1);

  sim::FaultPlan plan;
  plan.points.reserve(flips);
  for (std::uint64_t i = 0; i < flips; ++i) {
    sim::FaultPoint point;
    point.ordinal = rng.nextBelow(runDefInsns);
    point.whichDef = static_cast<std::uint32_t>(rng.nextBelow(4));
    point.bit = static_cast<std::uint32_t>(rng.nextBelow(64));
    plan.points.push_back(point);
  }
  std::sort(plan.points.begin(), plan.points.end(),
            [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
              return a.ordinal < b.ordinal;
            });
  // Collapse duplicate ordinals (the simulator consumes one point per
  // matching instruction).
  plan.points.erase(
      std::unique(plan.points.begin(), plan.points.end(),
                  [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
                    return a.ordinal == b.ordinal;
                  }),
      plan.points.end());
  return plan;
}

namespace {

// All randomness of a trial derives from (seed, trialIndex) via a SplitMix64
// mix, so a trial's outcome is independent of which worker runs it, in what
// order, and under which InjectionMode — the property that makes the
// parallel and checkpointed campaigns bit-identical to the serial full one.
struct TrialResult {
  Outcome outcome = Outcome::kBenign;
  std::uint64_t dynamicInsns = 0;
};

// Per-worker state for the full-rerun path, set up once and reused for
// every trial the worker claims: the armed SimOptions (watchdog already
// applied; only faultPlan changes per trial) and, for the decoded engine,
// the reusable execution context over the shared DecodedProgram.
struct TrialContext {
  sim::SimOptions simOptions;
  std::optional<sim::DecodedRunner> runner;

  TrialContext(const sim::SimOptions& armedOptions,
               const sim::DecodedProgram* decoded)
      : simOptions(armedOptions) {
    if (decoded != nullptr) {
      runner.emplace(*decoded);
    }
  }
};

TrialResult runTrial(const ir::Program& program,
                     const sched::ProgramSchedule& schedule,
                     const arch::MachineConfig& config, TrialContext& context,
                     const GoldenProfile& golden, const sim::FaultPlan& plan) {
  context.simOptions.faultPlan = &plan;
  const sim::RunResult faulty =
      context.runner.has_value()
          ? context.runner->run(context.simOptions)
          : sim::simulate(program, schedule, config, context.simOptions);
  context.simOptions.faultPlan = nullptr;
  return {classify(faulty, golden), faulty.stats.dynamicInsns};
}

}  // namespace

CoverageReport runCampaign(const ir::Program& program,
                           const sched::ProgramSchedule& schedule,
                           const arch::MachineConfig& config,
                           const CampaignOptions& options,
                           const sim::DecodedProgram* decoded) {
  const trace::Scope campaignScope("fault.campaign", options.trace);
  // Decode once per campaign; every trial on every worker shares the result
  // read-only.  A caller-supplied decode (e.g. core::CompiledProgram's) is
  // reused as-is; the reference engine never touches a decode.
  const detail::EngineChoice choice = detail::chooseEngine(
      program, schedule, config, options.simOptions, decoded);

  GoldenProfile golden;
  {
    const trace::Scope scope("fault.campaign.golden", options.trace);
    golden = detail::toProfile(detail::runGolden(
        program, schedule, config, options.simOptions, choice));
  }

  sim::SimOptions armedOptions = options.simOptions;
  armedOptions.maxCycles = golden.cycles * options.timeoutFactor;
  armedOptions.faultPlan = nullptr;
  armedOptions.defTrace = nullptr;

  const std::uint32_t threads =
      detail::resolveThreads(options.threads, options.trials);

  // Every trial's plan is derived up front — it costs a few RNG draws, and
  // having all plans in hand lets the checkpointed path order each worker's
  // stream by injection ordinal.
  std::vector<sim::FaultPlan> plans(options.trials);
  for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
    Rng trialRng(deriveStreamSeed(options.seed, trial));
    plans[trial] =
        makeTrialPlan(trialRng, golden.defInsns, options.originalDefInsns);
  }

  const bool checkpointed =
      options.mode == InjectionMode::kCheckpointed && choice.decoded != nullptr;

  // Trial visit order.  The checkpointed sweep requires non-decreasing
  // injection ordinals per worker, and profits most when trials that inject
  // at nearby ordinals run back to back (shorter prefix replays between
  // snapshots) — so it claims trials in (ordinal, trialIndex) order.  The
  // full path keeps plain index order, exactly the historical behaviour.
  std::vector<std::uint32_t> order(options.trials);
  std::iota(order.begin(), order.end(), 0u);
  if (checkpointed) {
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const std::uint64_t ordA = plans[a].points[0].ordinal;
                const std::uint64_t ordB = plans[b].points[0].ordinal;
                return ordA != ordB ? ordA < ordB : a < b;
              });
  }

  std::atomic<std::uint32_t> nextSlot{0};
  std::vector<CoverageReport> partial(threads);
  detail::ProgressMeter meter("campaign trials", options.trials,
                              options.progress);
  detail::runWorkerPool(threads, [&](std::uint32_t w) {
    // One reusable execution context per worker; the DecodedProgram itself
    // is shared read-only.  An atomic cursor over the sorted order hands
    // each worker an ascending-ordinal subsequence.
    const trace::Scope workerScope("fault.campaign.worker", options.trace);
    std::optional<detail::CheckpointSweep> sweep;
    std::optional<TrialContext> context;
    if (checkpointed) {
      sweep.emplace(*choice.decoded, armedOptions, golden);
    } else {
      context.emplace(armedOptions, choice.decoded);
    }
    std::uint64_t workerTrials = 0;
    while (true) {
      const std::uint32_t slot =
          nextSlot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= options.trials) {
        break;
      }
      const sim::FaultPlan& plan = plans[order[slot]];
      TrialResult result;
      if (checkpointed) {
        const sim::RunResult faulty = sweep->run(plan);
        result = {classify(faulty, golden), faulty.stats.dynamicInsns};
      } else {
        result = runTrial(program, schedule, config, *context, golden, plan);
      }
      ++partial[w].counts[static_cast<int>(result.outcome)];
      partial[w].dynamicInsns += result.dynamicInsns;
      ++workerTrials;
      meter.add();
    }
    // Per-worker trial totals alongside the worker's duration scope: the
    // pair gives a per-worker trial rate in the trace viewer.
    if (options.trace && trace::enabled()) {
      trace::counterAdd("fault.campaign.trials", workerTrials);
      trace::counterAdd("fault.campaign.worker" + std::to_string(w) +
                            ".trials",
                        workerTrials);
    }
  }, &meter);

  // Outcome counts and instruction totals commute, so the merged report
  // does not depend on which worker ran which trial.
  CoverageReport report;
  for (const CoverageReport& part : partial) {
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
      report.counts[i] += part.counts[i];
    }
    report.dynamicInsns += part.dynamicInsns;
  }
  report.trials = options.trials;
  return report;
}

}  // namespace casted::fault
