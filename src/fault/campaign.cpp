#include "fault/campaign.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "support/check.h"

namespace casted::fault {

const char* outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign:
      return "benign";
    case Outcome::kDetected:
      return "detected";
    case Outcome::kException:
      return "exception";
    case Outcome::kDataCorrupt:
      return "data-corrupt";
    case Outcome::kTimeout:
      return "timeout";
  }
  CASTED_UNREACHABLE("bad Outcome");
}

GoldenProfile profileGolden(const ir::Program& program,
                            const sched::ProgramSchedule& schedule,
                            const arch::MachineConfig& config,
                            const sim::SimOptions& simOptions) {
  GoldenProfile profile;
  sim::SimOptions options = simOptions;
  options.faultPlan = nullptr;
  profile.result = sim::simulate(program, schedule, config, options);
  CASTED_CHECK(profile.result.exit == sim::ExitKind::kHalted)
      << "golden run did not halt cleanly ("
      << sim::exitKindName(profile.result.exit) << ")";
  profile.defInsns = profile.result.stats.dynamicDefInsns;
  profile.cycles = profile.result.stats.cycles;
  CASTED_CHECK(profile.defInsns > 0) << "program executed no instructions";
  return profile;
}

Outcome classify(const sim::RunResult& faulty, const GoldenProfile& golden) {
  switch (faulty.exit) {
    case sim::ExitKind::kDetected:
      return Outcome::kDetected;
    case sim::ExitKind::kException:
      return Outcome::kException;
    case sim::ExitKind::kTimeout:
      return Outcome::kTimeout;
    case sim::ExitKind::kHalted:
      break;
  }
  const bool sameOutput = faulty.output == golden.result.output;
  const bool sameExit = faulty.exitCode == golden.result.exitCode;
  return (sameOutput && sameExit) ? Outcome::kBenign : Outcome::kDataCorrupt;
}

sim::FaultPlan makeTrialPlan(Rng& rng, std::uint64_t runDefInsns,
                             std::uint64_t originalDefInsns) {
  CASTED_CHECK(runDefInsns > 0) << "empty run";
  if (originalDefInsns == 0) {
    originalDefInsns = runDefInsns;
  }
  // Fixed error rate: expected flips = runLength / originalLength (>= 1 by
  // construction for error-detection binaries; == 1 for the original).
  const double expected = static_cast<double>(runDefInsns) /
                          static_cast<double>(originalDefInsns);
  std::uint64_t flips = static_cast<std::uint64_t>(expected);
  const double fractional = expected - static_cast<double>(flips);
  if (rng.nextDouble() < fractional) {
    ++flips;
  }
  flips = std::max<std::uint64_t>(flips, 1);

  sim::FaultPlan plan;
  plan.points.reserve(flips);
  for (std::uint64_t i = 0; i < flips; ++i) {
    sim::FaultPoint point;
    point.ordinal = rng.nextBelow(runDefInsns);
    point.whichDef = static_cast<std::uint32_t>(rng.nextBelow(4));
    point.bit = static_cast<std::uint32_t>(rng.nextBelow(64));
    plan.points.push_back(point);
  }
  std::sort(plan.points.begin(), plan.points.end(),
            [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
              return a.ordinal < b.ordinal;
            });
  // Collapse duplicate ordinals (the simulator consumes one point per
  // matching instruction).
  plan.points.erase(
      std::unique(plan.points.begin(), plan.points.end(),
                  [](const sim::FaultPoint& a, const sim::FaultPoint& b) {
                    return a.ordinal == b.ordinal;
                  }),
      plan.points.end());
  return plan;
}

namespace {

// Executes one trial.  All randomness derives from (seed, trialIndex), so a
// trial's outcome is independent of which worker runs it and in what order —
// the property that makes the parallel campaign bit-identical to the serial
// one.
Outcome runTrial(const ir::Program& program,
                 const sched::ProgramSchedule& schedule,
                 const arch::MachineConfig& config,
                 const CampaignOptions& options, const GoldenProfile& golden,
                 std::uint32_t trialIndex) {
  Rng trialRng(options.seed ^ static_cast<std::uint64_t>(trialIndex));
  const sim::FaultPlan plan =
      makeTrialPlan(trialRng, golden.defInsns, options.originalDefInsns);

  sim::SimOptions simOptions = options.simOptions;
  simOptions.faultPlan = &plan;
  simOptions.maxCycles = golden.cycles * options.timeoutFactor;
  const sim::RunResult faulty =
      sim::simulate(program, schedule, config, simOptions);
  return classify(faulty, golden);
}

}  // namespace

CoverageReport runCampaign(const ir::Program& program,
                           const sched::ProgramSchedule& schedule,
                           const arch::MachineConfig& config,
                           const CampaignOptions& options) {
  const GoldenProfile golden =
      profileGolden(program, schedule, config, options.simOptions);

  std::uint32_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max(options.trials, 1u));

  CoverageReport report;
  if (threads <= 1) {
    for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
      ++report.counts[static_cast<int>(
          runTrial(program, schedule, config, options, golden, trial))];
    }
    report.trials = options.trials;
    return report;
  }

  // Work-stealing over a shared trial counter; each worker tallies into its
  // own CoverageReport (outcome counts commute, so the merged report does
  // not depend on which worker ran which trial).
  std::atomic<std::uint32_t> nextTrial{0};
  std::vector<CoverageReport> partial(threads);
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      try {
        while (true) {
          const std::uint32_t trial =
              nextTrial.fetch_add(1, std::memory_order_relaxed);
          if (trial >= options.trials) {
            break;
          }
          ++partial[w].counts[static_cast<int>(
              runTrial(program, schedule, config, options, golden, trial))];
        }
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
  for (const CoverageReport& part : partial) {
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
      report.counts[i] += part.counts[i];
    }
  }
  report.trials = options.trials;
  return report;
}

}  // namespace casted::fault
