// Monte Carlo fault-injection campaign (paper §IV-C).
//
// Methodology, mirrored from the paper:
//   * profile the binary (a golden run) to learn its dynamic instruction
//     count, cycle count, reference output and exit code;
//   * per trial, pick a random dynamic instruction, pick one of its output
//     registers, flip one random bit of it;
//   * fixed error *rate*: binaries with error detection are longer than the
//     original, so they receive one error per `originalDefInsns` dynamic
//     instructions of their own execution (≈2.4 errors per run at the
//     paper's 2.4x code growth) rather than one per run;
//   * classify each trial into the paper's five outcome classes.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "arch/machine_config.h"
#include "sched/schedule.h"
#include "sim/decoded.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace casted::fault {

// The five outcome classes of Fig. 9/10.
enum class Outcome : std::uint8_t {
  kBenign,       // same output and exit code as the golden run
  kDetected,     // a CHECK fired
  kException,    // hardware trap (kept separate, as in the paper)
  kDataCorrupt,  // wrong output, undetected — the bad case
  kTimeout,      // watchdog expired
};
inline constexpr std::size_t kOutcomeCount = 5;

const char* outcomeName(Outcome outcome);

// How the injection drivers execute each faulty run.
enum class InjectionMode : std::uint8_t {
  // Re-execute every faulty run from program start.  The oracle path: dead
  // simple, no shared state between runs.
  kFull,
  // Checkpoint-and-diverge (DESIGN.md §10): replay the golden prefix once
  // per injection ordinal, snapshot at the def pause, restore for every
  // site at that ordinal, and cut the faulty suffix short the moment the
  // run provably reconverges with the golden trajectory.  Reports are
  // bit-identical to kFull — the driver oracle tests enforce it.  Requires
  // the decoded engine; silently falls back to kFull under the reference
  // engine (which has no stepwise API).
  kCheckpointed,
};

const char* injectionModeName(InjectionMode mode);

struct CoverageReport {
  std::array<std::uint64_t, kOutcomeCount> counts = {};
  std::uint64_t trials = 0;
  // Total dynamic instructions executed across all faulty trials (excluding
  // the golden profiling run) — the work metric the engine benchmarks
  // divide by wall time.  Deterministic for a given (seed, trials) like the
  // outcome counts.
  std::uint64_t dynamicInsns = 0;

  double fraction(Outcome outcome) const {
    return trials == 0 ? 0.0
                       : static_cast<double>(
                             counts[static_cast<int>(outcome)]) /
                             static_cast<double>(trials);
  }
  // Detected + exception + benign + timeout, i.e. everything except silent
  // data corruption.  An empty campaign reports 0 (consistent with
  // fraction(): no trials means no evidence, not perfect safety).
  double safeFraction() const {
    return trials == 0 ? 0.0 : 1.0 - fraction(Outcome::kDataCorrupt);
  }
};

struct CampaignOptions {
  std::uint32_t trials = 300;  // the paper's Monte Carlo repetition count
  std::uint64_t seed = 0xCA57EDu;
  // Worker threads for the trial loop.  0 = one per hardware thread.  Each
  // trial seeds its own RNG from deriveStreamSeed(seed, trialIndex), so the
  // CoverageReport is bit-identical for every thread count (and to the
  // serial run).
  std::uint32_t threads = 1;
  // Dynamic def-producing instruction count of the ORIGINAL (NOED) binary;
  // sets the fixed error rate.  0 means "use the injected binary's own
  // count" (exactly one expected error per run).
  std::uint64_t originalDefInsns = 0;
  // Watchdog: a faulty run is declared a timeout after
  // goldenCycles * timeoutFactor cycles.
  std::uint64_t timeoutFactor = 20;
  // Execution strategy for the faulty runs; kFull is the oracle.  The
  // checkpointed driver sorts each worker's trial stream by injection
  // ordinal so one golden prefix serves every trial that injects there —
  // outcome counts and instruction totals commute, so the report stays
  // bit-identical to kFull at every thread count.
  InjectionMode mode = InjectionMode::kCheckpointed;
  // Observability (support/trace.h): when the global trace session is
  // active, the campaign emits scoped duration events (fault.campaign,
  // fault.campaign.golden, one fault.campaign.worker per pool worker) and
  // per-worker trial counters.  Observation only — the CoverageReport is
  // bit-identical with tracing on or off (the oracle test asserts it); set
  // false to opt a hot inner-loop campaign out of an active session.
  bool trace = true;
  // Periodic progress heartbeat with rate and ETA on stderr while the trial
  // pool runs (see detail::ProgressMeter).  The CASTED_PROGRESS env var
  // overrides this both ways (0 = off, N = on every N seconds).
  bool progress = false;
  sim::SimOptions simOptions;
};

// Profile of the golden (fault-free) run.
struct GoldenProfile {
  sim::RunResult result;
  std::uint64_t defInsns = 0;  // fault-target population
  std::uint64_t cycles = 0;
};

// Runs the golden execution once.
GoldenProfile profileGolden(const ir::Program& program,
                            const sched::ProgramSchedule& schedule,
                            const arch::MachineConfig& config,
                            const sim::SimOptions& simOptions);

// Classifies one faulty run against the golden profile.  Precedence (the
// run's ExitKind dominates any output comparison):
//   1. kDetected  — a CHECK fired, even if memory was already corrupted;
//   2. kException — hardware trap;
//   3. kTimeout   — watchdog expired;
//   4. halted runs only: kDataCorrupt when output bytes or the exit code
//      differ from the golden run, else kBenign.
Outcome classify(const sim::RunResult& faulty, const GoldenProfile& golden);

// Generates the injection plan for one trial: the number of flips follows
// the fixed error rate (>= 1), each targeting a uniformly random dynamic
// def-producing instruction, output register and bit.
sim::FaultPlan makeTrialPlan(Rng& rng, std::uint64_t runDefInsns,
                             std::uint64_t originalDefInsns);

// Runs the full campaign.  Trials execute on a pool of `options.threads`
// workers; every trial's randomness depends only on (seed, trialIndex), so
// the report is deterministic regardless of thread count or interleaving —
// and of the engine, since both engines are behaviourally identical.
//
// With the decoded engine (the default), the program is decoded ONCE —
// either the caller-supplied `decoded` (e.g. the one cached in
// core::CompiledProgram) or a locally built one — and shared read-only by
// every worker, so the per-trial cost is pure execution with no IR
// re-walking.  `decoded`, when given, must have been built from exactly
// (program, schedule, config).
CoverageReport runCampaign(const ir::Program& program,
                           const sched::ProgramSchedule& schedule,
                           const arch::MachineConfig& config,
                           const CampaignOptions& options = {},
                           const sim::DecodedProgram* decoded = nullptr);

}  // namespace casted::fault
