// Shared plumbing of the two injection drivers (campaign.cpp and
// exhaustive.cpp): engine selection, golden profiling, worker-pool
// scaffolding, and the checkpoint-and-diverge sweep that both drivers run
// their faulty executions through in InjectionMode::kCheckpointed.
//
// Everything here is an implementation detail of the fault library —
// callers use runCampaign / enumerateFaultSpace.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/campaign.h"
#include "sim/decoded.h"
#include "sim/simulator.h"

namespace casted::fault::detail {

// The per-driver engine decision: with the decoded engine, reuse the
// caller's decode or build (and own) one; with the reference engine, run
// without a decode.  `decoded` is null exactly when the reference engine
// was requested.
struct EngineChoice {
  std::optional<sim::DecodedProgram> owned;
  const sim::DecodedProgram* decoded = nullptr;
};

EngineChoice chooseEngine(const ir::Program& program,
                          const sched::ProgramSchedule& schedule,
                          const arch::MachineConfig& config,
                          const sim::SimOptions& simOptions,
                          const sim::DecodedProgram* decoded);

// One fault-free run under `simOptions` with the plan stripped, on whichever
// engine `choice` selected; `trace`, when non-null, receives the def-site
// trace (golden runs are the only place a trace is legal).
sim::RunResult runGolden(const ir::Program& program,
                         const sched::ProgramSchedule& schedule,
                         const arch::MachineConfig& config,
                         const sim::SimOptions& simOptions,
                         const EngineChoice& choice,
                         std::vector<sim::DefSite>* trace = nullptr);

// Wraps a fault-free run into a GoldenProfile, checking it halted cleanly
// and executed at least one def.
GoldenProfile toProfile(sim::RunResult result);

// Resolves a requested worker count: 0 means one per hardware thread, and
// no driver spawns more workers than it has work items.
std::uint32_t resolveThreads(std::uint32_t requested, std::uint64_t workItems);

// Progress heartbeat for the injection drivers.  Workers tick add() once
// per completed work item; while the pool runs, a monitor thread prints a
// heartbeat line with completion, rate and ETA to stderr every interval:
//
//   [casted] campaign trials: 4500/30000 (15.0%) | 1234.5/s | ETA 20.7s
//
// Activation: the driver option (CampaignOptions::progress /
// ExhaustiveOptions::progress) turns it on at the default interval; the
// CASTED_PROGRESS env var overrides both ways (0 forces it off, N > 0
// forces it on with an N-second interval).  stderr only — the meter never
// feeds back into a report, so determinism is untouched.
class ProgressMeter {
 public:
  // `label` names the work unit in the heartbeat line (e.g. "campaign
  // trials"); `total` is the work-item count ETA is computed against.
  ProgressMeter(std::string label, std::uint64_t total, bool enabledOption);

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // One relaxed atomic add — cheap enough to tick unconditionally from the
  // trial loop.
  void add(std::uint64_t n = 1) {
    done_.fetch_add(n, std::memory_order_relaxed);
  }

  bool active() const { return active_; }

 private:
  friend class PoolMonitor;

  std::string label_;
  std::uint64_t total_ = 0;
  std::uint32_t intervalSeconds_ = 0;
  bool active_ = false;
  std::atomic<std::uint64_t> done_{0};
};

// Runs `body(workerIndex)` on `threads` workers.  threads <= 1 runs inline
// on the calling thread (exceptions propagate naturally); otherwise each
// worker's first exception is captured and the first one rethrown after the
// join, exactly like the historical per-driver pools.  When `progress` is
// non-null and active, a monitor thread prints its heartbeat for the
// duration of the pool (including the inline threads <= 1 path, where long
// serial sweeps need the heartbeat most).
void runWorkerPool(std::uint32_t threads,
                   const std::function<void(std::uint32_t)>& body,
                   ProgressMeter* progress = nullptr);

// The checkpoint-and-diverge execution strategy, shared by both drivers.
//
// A sweep owns one DecodedRunner and drives it stepwise: the first run()
// replays the golden prefix up to the plan's injection ordinal and
// snapshots there; subsequent runs at the SAME ordinal restore the
// snapshot (O(state the faulty suffix touched)) instead of re-executing
// the prefix, and a LARGER ordinal rolls the snapshot forward.  Ordinals
// must therefore be non-decreasing across run() calls — both drivers
// arrange their work streams that way (enumeration is ordinal-major by
// construction; the campaign sorts each worker's trial stream).
//
// The reconvergence cutoff is armed with the golden final result: a faulty
// run that provably rejoins the fault-free trajectory returns
// `golden.result` verbatim without executing the common suffix.
//
// Bit-identity contract: run(plan) returns a RunResult field-for-field
// identical to a fresh full run under `armedOptions` with `plan` attached.
class CheckpointSweep {
 public:
  // `armedOptions` is the worker's ready-to-run configuration (watchdog
  // applied, faultPlan and defTrace null); `decoded` and `golden` must
  // outlive the sweep.
  CheckpointSweep(const sim::DecodedProgram& decoded,
                  const sim::SimOptions& armedOptions,
                  const GoldenProfile& golden);

  // Executes one faulty run for `plan` (points[0] is the injection point;
  // later points fire downstream).  `plan` only needs to live for the call.
  sim::RunResult run(const sim::FaultPlan& plan);

 private:
  sim::DecodedRunner runner_;
  sim::ArchCheckpoint checkpoint_;
  sim::SimOptions options_;
  const GoldenProfile& golden_;
  bool started_ = false;
  std::uint64_t ordinal_ = 0;  // ordinal of the live checkpoint
};

}  // namespace casted::fault::detail
