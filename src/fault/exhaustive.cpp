#include "fault/exhaustive.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <sstream>
#include <tuple>

#include "fault/driver_util.h"
#include "support/check.h"
#include "support/statistics.h"
#include "support/table.h"
#include "support/trace.h"

namespace casted::fault {
namespace {

// One enumerated static def-producing instruction, resolved from the golden
// trace: identity plus the per-def enumeration shape shared by all of its
// dynamic executions.
struct StaticSite {
  sim::DefSite site;
  ir::InsnId insn = ir::kInvalidInsn;
  std::string text;
  std::uint32_t defCount = 0;
  std::uint32_t sitesPerExecution = 0;  // sum over defs of bitsOf(def)
  std::uint64_t executions = 0;
  // Monte Carlo weight of (whichDef % defCount == d): the sampler draws
  // whichDef uniformly in [0, 4), so for defCount == 3 the weights are
  // non-uniform (2/4, 1/4, 1/4).
  double defWeight[4] = {0, 0, 0, 0};
  // Effective bit sites and per-site MC weight for each def: predicate
  // registers collapse all 64 bit draws onto one flip.
  std::uint32_t bitsOf[4] = {0, 0, 0, 0};
};

std::uint32_t effectiveBits(ir::RegClass cls) {
  return cls == ir::RegClass::kPr ? 1u : 64u;
}

// Per-worker tally for one static instruction.
struct Tally {
  std::array<std::uint64_t, kOutcomeCount> counts = {};
  std::array<double, kOutcomeCount> mcMass = {};
};

}  // namespace

const SiteOutcome* GroundTruthReport::find(ir::FuncId func,
                                           ir::InsnId insn) const {
  for (const SiteOutcome& entry : perInsn) {
    if (entry.func == func && entry.insn == insn) {
      return &entry;
    }
  }
  return nullptr;
}

std::string GroundTruthReport::toString(std::size_t topInsns) const {
  std::ostringstream out;
  out << "exhaustive ground truth: " << sites << " sites over " << defInsns
      << " dynamic def instructions\n";
  TextTable outcomes({"outcome", "sites", "site fraction", "MC probability"});
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    const Outcome outcome = static_cast<Outcome>(i);
    outcomes.addRow({outcomeName(outcome), std::to_string(counts[i]),
                     formatPercent(fraction(outcome)),
                     formatPercent(mcProbability[i])});
  }
  out << outcomes.render();
  if (!perInsn.empty() && topInsns > 0) {
    out << "\nworst static instructions by SDC probability mass:\n";
    TextTable worst({"func", "block", "instruction", "execs", "SDC sites",
                     "SDC mass"});
    std::size_t shown = 0;
    for (const SiteOutcome& entry : perInsn) {
      if (shown++ >= topInsns || entry.sdcSites() == 0) {
        break;
      }
      worst.addRow({std::to_string(entry.func), std::to_string(entry.block),
                    entry.text, std::to_string(entry.executions),
                    std::to_string(entry.sdcSites()),
                    formatPercent(entry.sdcMass())});
    }
    out << worst.render();
  }
  return out.str();
}

GroundTruthReport enumerateFaultSpace(const ir::Program& program,
                                      const sched::ProgramSchedule& schedule,
                                      const arch::MachineConfig& config,
                                      const ExhaustiveOptions& options,
                                      const sim::DecodedProgram* decoded) {
  const trace::Scope enumScope("fault.exhaustive", options.trace);
  // Engine selection mirrors runCampaign: decode once, share read-only.
  const detail::EngineChoice choice = detail::chooseEngine(
      program, schedule, config, options.simOptions, decoded);

  // Golden run with the def-site trace attached: one DefSite per ordinal.
  std::vector<sim::DefSite> defTrace;
  GoldenProfile golden;
  {
    const trace::Scope scope("fault.exhaustive.golden", options.trace);
    golden = detail::toProfile(detail::runGolden(
        program, schedule, config, options.simOptions, choice, &defTrace));
  }
  CASTED_CHECK(defTrace.size() == golden.defInsns)
      << "def trace length " << defTrace.size() << " != def count "
      << golden.defInsns;

  // Resolve the trace into the static site table and the per-ordinal index.
  std::map<std::array<std::uint32_t, 3>, std::uint32_t> staticIndex;
  std::vector<StaticSite> statics;
  std::vector<std::uint32_t> ordinalStatic(defTrace.size());
  for (std::size_t ordinal = 0; ordinal < defTrace.size(); ++ordinal) {
    const sim::DefSite& site = defTrace[ordinal];
    const std::array<std::uint32_t, 3> key = {site.func, site.block,
                                              site.node};
    auto [it, inserted] =
        staticIndex.emplace(key, static_cast<std::uint32_t>(statics.size()));
    if (inserted) {
      const ir::Instruction& insn =
          program.function(site.func).block(site.block).insns()[site.node];
      CASTED_CHECK(!insn.defs.empty() && insn.defs.size() <= 4)
          << "traced def site with " << insn.defs.size() << " defs";
      StaticSite entry;
      entry.site = site;
      entry.insn = insn.id;
      entry.text = insn.toString();
      entry.defCount = static_cast<std::uint32_t>(insn.defs.size());
      for (std::uint32_t d = 0; d < entry.defCount; ++d) {
        entry.bitsOf[d] = effectiveBits(insn.defs[d].cls);
        entry.sitesPerExecution += entry.bitsOf[d];
      }
      for (std::uint32_t w = 0; w < 4; ++w) {
        entry.defWeight[w % entry.defCount] += 0.25;
      }
      statics.push_back(std::move(entry));
    }
    ordinalStatic[ordinal] = it->second;
    ++statics[it->second].executions;
  }

  std::uint64_t totalSites = 0;
  for (const StaticSite& entry : statics) {
    totalSites += entry.executions * entry.sitesPerExecution;
  }
  CASTED_CHECK(options.maxSites == 0 || totalSites <= options.maxSites)
      << "fault space has " << totalSites << " sites, over the maxSites cap "
      << options.maxSites;

  const std::uint32_t threads =
      detail::resolveThreads(options.threads, defTrace.size());

  sim::SimOptions armedOptions = options.simOptions;
  armedOptions.maxCycles = golden.cycles * options.timeoutFactor;
  armedOptions.faultPlan = nullptr;
  armedOptions.defTrace = nullptr;

  const bool checkpointed =
      options.mode == InjectionMode::kCheckpointed && choice.decoded != nullptr;

  // Classifies every site of one dynamic ordinal into `tallies`.  The plan
  // IS the site — no randomness — so the merged result is independent of
  // how ordinals are distributed over workers.  Enumeration is the perfect
  // checkpoint customer: the (def x bit) loop visits up to 256 sites at the
  // SAME ordinal, so the sweep replays the golden prefix once and restores
  // the snapshot for every site after the first.
  const double ordinalWeight = 1.0 / static_cast<double>(golden.defInsns);
  const auto classifyOrdinal = [&](std::uint64_t ordinal,
                                   sim::SimOptions& simOptions,
                                   sim::DecodedRunner* runner,
                                   detail::CheckpointSweep* sweep,
                                   std::vector<Tally>& tallies) {
    const StaticSite& entry = statics[ordinalStatic[ordinal]];
    Tally& tally = tallies[ordinalStatic[ordinal]];
    sim::FaultPlan plan;
    plan.points.resize(1);
    simOptions.faultPlan = &plan;
    for (std::uint32_t d = 0; d < entry.defCount; ++d) {
      const double bitWeight =
          entry.bitsOf[d] == 1 ? 1.0 : 1.0 / 64.0;
      const double siteWeight = ordinalWeight * entry.defWeight[d] * bitWeight;
      for (std::uint32_t bit = 0; bit < entry.bitsOf[d]; ++bit) {
        plan.points[0] = {ordinal, d, bit};
        sim::RunResult faulty;
        if (sweep != nullptr) {
          faulty = sweep->run(plan);
        } else if (runner != nullptr) {
          faulty = runner->run(simOptions);
        } else {
          faulty = sim::simulate(program, schedule, config, simOptions);
        }
        const Outcome outcome = classify(faulty, golden);
        ++tally.counts[static_cast<int>(outcome)];
        tally.mcMass[static_cast<int>(outcome)] += siteWeight;
      }
    }
    simOptions.faultPlan = nullptr;
  };

  // Work-stealing over the ordinal cursor.  fetch_add hands each worker an
  // ascending subsequence of ordinals — exactly the non-decreasing order
  // the checkpointed sweep requires.
  std::vector<std::vector<Tally>> partial(
      threads, std::vector<Tally>(statics.size()));
  std::atomic<std::uint64_t> nextOrdinal{0};
  detail::ProgressMeter meter("exhaustive ordinals", defTrace.size(),
                              options.progress);
  if (options.trace && trace::enabled()) {
    trace::counterAdd("fault.exhaustive.sites",
                      static_cast<std::int64_t>(totalSites));
  }
  detail::runWorkerPool(threads, [&](std::uint32_t w) {
    const trace::Scope workerScope("fault.exhaustive.worker", options.trace);
    std::optional<detail::CheckpointSweep> sweep;
    std::optional<sim::DecodedRunner> runner;
    if (checkpointed) {
      sweep.emplace(*choice.decoded, armedOptions, golden);
    } else if (choice.decoded != nullptr) {
      runner.emplace(*choice.decoded);
    }
    sim::SimOptions simOptions = armedOptions;
    std::uint64_t workerOrdinals = 0;
    while (true) {
      const std::uint64_t ordinal =
          nextOrdinal.fetch_add(1, std::memory_order_relaxed);
      if (ordinal >= defTrace.size()) {
        break;
      }
      classifyOrdinal(ordinal, simOptions,
                      runner.has_value() ? &*runner : nullptr,
                      sweep.has_value() ? &*sweep : nullptr, partial[w]);
      ++workerOrdinals;
      meter.add();
    }
    // Per-worker ordinal totals alongside the worker's duration scope: the
    // pair gives a per-worker enumeration rate in the trace viewer.
    if (options.trace && trace::enabled()) {
      trace::counterAdd("fault.exhaustive.ordinals", workerOrdinals);
      trace::counterAdd("fault.exhaustive.worker" + std::to_string(w) +
                            ".ordinals",
                        workerOrdinals);
    }
  }, &meter);

  GroundTruthReport report;
  report.defInsns = golden.defInsns;
  report.sites = totalSites;
  report.perInsn.reserve(statics.size());
  for (std::size_t s = 0; s < statics.size(); ++s) {
    const StaticSite& entry = statics[s];
    SiteOutcome outcome;
    outcome.func = entry.site.func;
    outcome.block = entry.site.block;
    outcome.node = entry.site.node;
    outcome.insn = entry.insn;
    outcome.text = entry.text;
    outcome.executions = entry.executions;
    outcome.sites = entry.executions * entry.sitesPerExecution;
    for (std::uint32_t w = 0; w < threads; ++w) {
      for (std::size_t i = 0; i < kOutcomeCount; ++i) {
        outcome.counts[i] += partial[w][s].counts[i];
        outcome.mcMass[i] += partial[w][s].mcMass[i];
      }
    }
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
      report.counts[i] += outcome.counts[i];
      report.mcProbability[i] += outcome.mcMass[i];
    }
    report.perInsn.push_back(std::move(outcome));
  }
  std::sort(report.perInsn.begin(), report.perInsn.end(),
            [](const SiteOutcome& a, const SiteOutcome& b) {
              if (a.sdcMass() != b.sdcMass()) {
                return a.sdcMass() > b.sdcMass();
              }
              if (a.sdcSites() != b.sdcSites()) {
                return a.sdcSites() > b.sdcSites();
              }
              return std::tie(a.func, a.block, a.node) <
                     std::tie(b.func, b.block, b.node);
            });
  return report;
}

}  // namespace casted::fault
