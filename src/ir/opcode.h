// Opcode set and static metadata.
//
// The opcode set is a small RISC/IA-64-flavoured mix: integer ALU, multiply/
// divide, predicate-producing compares, predicate logic, double-precision FP,
// loads/stores with immediate offsets, branches on predicates, calls, and the
// CHECK instruction that the error-detection pass inserts (the fused
// cmp+branch-to-handler pair of Algorithm 1 step iii).
#pragma once

#include <cstdint>
#include <span>

#include "ir/reg.h"

namespace casted::ir {

enum class Opcode : std::uint8_t {
  kNop,
  // Integer ALU (def: GP).
  kMovImm,  // g = imm
  kMov,     // g = g
  kAdd,
  kSub,
  kMul,
  kDiv,  // traps on divide-by-zero
  kRem,  // traps on divide-by-zero
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,  // logical
  kSra,  // arithmetic
  kMin,
  kMax,
  kAddImm,
  kMulImm,
  kAndImm,
  kShlImm,
  kShrImm,
  kSraImm,
  kNeg,
  kAbs,
  kNot,
  kSelect,  // g = p ? a : b
  // Integer compares (def: PR).
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,
  kCmpEqImm,
  kCmpNeImm,
  kCmpLtImm,
  kCmpLeImm,
  kCmpGtImm,
  kCmpGeImm,
  // Predicate logic (def: PR).
  kPMov,
  kPNot,
  kPAnd,
  kPOr,
  kPXor,
  kPSetImm,  // p = imm (0/1)
  // Floating point (def: FP unless stated).
  kFMovImm,  // f = fimm
  kFMov,
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFMin,
  kFMax,
  kFNeg,
  kFAbs,
  kFSqrt,
  kFCmpEq,  // def: PR
  kFCmpLt,  // def: PR
  kFCmpLe,  // def: PR
  kI2F,     // f = (double)g
  kF2I,     // g = (int64)f, truncating; traps on non-finite
  // Memory.  Address = GP base + immediate offset.
  kLoad,    // g = mem64[base+imm]
  kLoadB,   // g = zext mem8[base+imm]
  kStore,   // mem64[base+imm] = g
  kStoreB,  // mem8[base+imm] = g (low byte)
  kFLoad,   // f = memF64[base+imm]
  kFStore,  // memF64[base+imm] = f
  // Control flow (terminators except kCall).
  kBr,      // unconditional, `target`
  kBrCond,  // if (p) goto target else goto target2
  kCall,    // non-terminator barrier; defs/uses are the return/argument regs
  kRet,     // uses = returned values
  kHalt,    // uses = {exit code (GP)}
  // Error detection (inserted by the ErrorDetectionPass).
  kCheckG,  // trap-to-detect-handler if uses[0] != uses[1] (GP)
  kCheckF,  // same, FP (bit-pattern compare)
  kCheckP,  // same, PR
  // Split-check mode (the paper's literal cmp+jump pair): a compare feeding
  // an explicit conditional trap.
  kFCmpNeBits,  // p = (bits of f1) != (bits of f2)  — NaN-exact
  kTrapIf,      // trap-to-detect-handler if p

  kOpcodeCount,
};

// Functional-unit class used by the machine model for latency lookup and
// (optionally) per-cluster issue-port constraints.
enum class FuClass : std::uint8_t {
  kNone,    // nop
  kIntAlu,  // single-cycle integer / predicate / compare / check
  kIntMul,
  kIntDiv,
  kFpAlu,
  kFpMul,
  kFpDiv,
  kMem,     // loads and stores
  kBranch,  // br / brcond / ret / halt
  kCall,
};

// Static per-opcode facts.
struct OpcodeInfo {
  const char* name;          // textual mnemonic, e.g. "add"
  FuClass fuClass;
  // Fixed-arity signature.  kCall/kRet have variable arity: the counts below
  // are 0 and `variableArity` is true.
  std::uint8_t defCount;     // 0 or 1
  RegClass defClass;
  std::uint8_t useCount;     // 0..3
  RegClass useClass[3];
  bool variableArity;        // kCall / kRet
  bool hasImm;               // consumes the integer immediate field
  bool hasFpImm;             // consumes the FP immediate field
  bool isTerminator;         // must end a basic block
  bool isBranch;             // kBr / kBrCond
  bool isLoad;
  bool isStore;
  bool isCheck;
  bool canTrap;              // div/rem/f2i/memory: may raise an exception
};

// Metadata accessor; total over all opcodes.
const OpcodeInfo& opcodeInfo(Opcode op);

// Convenience predicates used throughout the passes.
bool isMemoryOp(Opcode op);
bool isControlFlow(Opcode op);  // branches, call, ret, halt

// Replication policy of Algorithm 1: control flow and stores are never
// replicated (checks/copies are compiler-generated and also excluded, but
// those are marked per-instruction, not per-opcode).
bool isReplicableOpcode(Opcode op);

// Looks up an opcode by mnemonic; returns kOpcodeCount if unknown.
Opcode opcodeFromName(std::string_view name);

}  // namespace casted::ir
