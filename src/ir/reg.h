// Virtual registers.
//
// The paper's passes run on GCC RTL with the IA-64 register classes; we keep
// the three classes of Table I (general-purpose, floating-point, predicate)
// but use virtual register numbers.  Physical register-file capacity
// (64 GP / 64 FP / 32 PR per cluster) is modelled by the register-pressure /
// spill pass rather than by an allocator — see DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace casted::ir {

// The three IA-64 register classes used by the paper's target.
enum class RegClass : std::uint8_t {
  kGp,  // 64-bit integer
  kFp,  // double-precision float
  kPr,  // 1-bit predicate
};

// Human-readable class prefix: "g", "f", "p".
const char* regClassPrefix(RegClass cls);

// A virtual register: class plus index.  Value type, totally ordered so it
// can key maps.
struct Reg {
  RegClass cls = RegClass::kGp;
  std::uint32_t index = kInvalidIndex;

  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  constexpr Reg() = default;
  constexpr Reg(RegClass c, std::uint32_t i) : cls(c), index(i) {}

  constexpr bool valid() const { return index != kInvalidIndex; }

  friend constexpr bool operator==(const Reg& a, const Reg& b) {
    return a.cls == b.cls && a.index == b.index;
  }
  friend constexpr bool operator!=(const Reg& a, const Reg& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Reg& a, const Reg& b) {
    if (a.cls != b.cls) {
      return static_cast<int>(a.cls) < static_cast<int>(b.cls);
    }
    return a.index < b.index;
  }

  // e.g. "g12", "f3", "p0".
  std::string toString() const;
};

}  // namespace casted::ir

template <>
struct std::hash<casted::ir::Reg> {
  std::size_t operator()(const casted::ir::Reg& r) const noexcept {
    return (static_cast<std::size_t>(r.cls) << 32) ^ r.index;
  }
};
