#include "ir/builder.h"

#include "support/check.h"

namespace casted::ir {

BasicBlock& IrBuilder::createBlock(std::string name) {
  return fn_.addBlock(std::move(name));
}

BasicBlock& IrBuilder::currentBlock() {
  CASTED_CHECK(current_ != nullptr) << "no current block set in @"
                                    << fn_.name();
  return *current_;
}

Instruction& IrBuilder::emit(Opcode op, std::vector<Reg> defs,
                             std::vector<Reg> uses) {
  BasicBlock& block = currentBlock();
  CASTED_CHECK(block.empty() || !block.insns().back().isTerminator())
      << "appending after terminator in bb" << block.id() << " of @"
      << fn_.name();
  Instruction insn;
  insn.op = op;
  insn.id = fn_.newInsnId();
  insn.defs = std::move(defs);
  insn.uses = std::move(uses);
  block.insns().push_back(std::move(insn));
  return block.insns().back();
}

void IrBuilder::movTo(Reg dst, Reg src) {
  CASTED_CHECK(dst.cls == src.cls) << "movTo class mismatch";
  switch (dst.cls) {
    case RegClass::kGp:
      emit(Opcode::kMov, {dst}, {src});
      break;
    case RegClass::kFp:
      emit(Opcode::kFMov, {dst}, {src});
      break;
    case RegClass::kPr:
      emit(Opcode::kPMov, {dst}, {src});
      break;
  }
}

void IrBuilder::movImmTo(Reg dst, std::int64_t imm) {
  CASTED_CHECK(dst.cls == RegClass::kGp) << "movImmTo needs a GP register";
  emit(Opcode::kMovImm, {dst}, {}).imm = imm;
}

void IrBuilder::addImmTo(Reg dst, Reg src, std::int64_t imm) {
  CASTED_CHECK(dst.cls == RegClass::kGp && src.cls == RegClass::kGp)
      << "addImmTo needs GP registers";
  emit(Opcode::kAddImm, {dst}, {src}).imm = imm;
}

void IrBuilder::binaryTo(Opcode op, Reg dst, Reg a, Reg b) {
  CASTED_CHECK(opcodeInfo(op).defCount == 1 && opcodeInfo(op).useCount == 2)
      << "binaryTo needs a binary opcode";
  CASTED_CHECK(dst.cls == opcodeInfo(op).defClass) << "binaryTo class mismatch";
  emit(op, {dst}, {a, b});
}

Reg IrBuilder::movImm(std::int64_t value) {
  const Reg def = fn_.newReg(RegClass::kGp);
  emit(Opcode::kMovImm, {def}, {}).imm = value;
  return def;
}

Reg IrBuilder::mov(Reg src) { return unary(Opcode::kMov, src); }

Reg IrBuilder::select(Reg pred, Reg a, Reg b) {
  const Reg def = fn_.newReg(RegClass::kGp);
  emit(Opcode::kSelect, {def}, {pred, a, b});
  return def;
}

Reg IrBuilder::pSetImm(bool value) {
  const Reg def = fn_.newReg(RegClass::kPr);
  emit(Opcode::kPSetImm, {def}, {}).imm = value ? 1 : 0;
  return def;
}

Reg IrBuilder::fMovImm(double value) {
  const Reg def = fn_.newReg(RegClass::kFp);
  emit(Opcode::kFMovImm, {def}, {}).fimm = value;
  return def;
}

Reg IrBuilder::load(Reg base, std::int64_t offset) {
  const Reg def = fn_.newReg(RegClass::kGp);
  emit(Opcode::kLoad, {def}, {base}).imm = offset;
  return def;
}

Reg IrBuilder::loadB(Reg base, std::int64_t offset) {
  const Reg def = fn_.newReg(RegClass::kGp);
  emit(Opcode::kLoadB, {def}, {base}).imm = offset;
  return def;
}

Reg IrBuilder::fLoad(Reg base, std::int64_t offset) {
  const Reg def = fn_.newReg(RegClass::kFp);
  emit(Opcode::kFLoad, {def}, {base}).imm = offset;
  return def;
}

void IrBuilder::store(Reg base, std::int64_t offset, Reg value) {
  emit(Opcode::kStore, {}, {base, value}).imm = offset;
}

void IrBuilder::storeB(Reg base, std::int64_t offset, Reg value) {
  emit(Opcode::kStoreB, {}, {base, value}).imm = offset;
}

void IrBuilder::fStore(Reg base, std::int64_t offset, Reg value) {
  emit(Opcode::kFStore, {}, {base, value}).imm = offset;
}

void IrBuilder::br(const BasicBlock& target) {
  emit(Opcode::kBr, {}, {}).target = target.id();
}

void IrBuilder::brCond(Reg pred, const BasicBlock& taken,
                       const BasicBlock& notTaken) {
  Instruction& insn = emit(Opcode::kBrCond, {}, {pred});
  insn.target = taken.id();
  insn.target2 = notTaken.id();
}

std::vector<Reg> IrBuilder::call(const Function& callee,
                                 std::span<const Reg> args) {
  CASTED_CHECK(args.size() == callee.params().size())
      << "call to @" << callee.name() << " passes " << args.size()
      << " args, expected " << callee.params().size();
  std::vector<Reg> results;
  results.reserve(callee.returnClasses().size());
  for (RegClass cls : callee.returnClasses()) {
    results.push_back(fn_.newReg(cls));
  }
  Instruction& insn = emit(Opcode::kCall, results,
                           std::vector<Reg>(args.begin(), args.end()));
  insn.callee = callee.id();
  return results;
}

std::vector<Reg> IrBuilder::call(const Function& callee,
                                 std::initializer_list<Reg> args) {
  return call(callee, std::span<const Reg>(args.begin(), args.size()));
}

void IrBuilder::ret(std::span<const Reg> values) {
  CASTED_CHECK(values.size() == fn_.returnClasses().size())
      << "@" << fn_.name() << " returns " << values.size() << " values, "
      << "declared " << fn_.returnClasses().size();
  emit(Opcode::kRet, {}, std::vector<Reg>(values.begin(), values.end()));
}

void IrBuilder::ret(std::initializer_list<Reg> values) {
  ret(std::span<const Reg>(values.begin(), values.size()));
}

void IrBuilder::halt(Reg exitCode) { emit(Opcode::kHalt, {}, {exitCode}); }

Reg IrBuilder::binary(Opcode op, Reg a, Reg b) {
  const OpcodeInfo& info = opcodeInfo(op);
  const Reg def = fn_.newReg(info.defClass);
  emit(op, {def}, {a, b});
  return def;
}

Reg IrBuilder::unary(Opcode op, Reg a) {
  const OpcodeInfo& info = opcodeInfo(op);
  const Reg def = fn_.newReg(info.defClass);
  emit(op, {def}, {a});
  return def;
}

Reg IrBuilder::unaryImm(Opcode op, Reg a, std::int64_t imm) {
  const OpcodeInfo& info = opcodeInfo(op);
  const Reg def = fn_.newReg(info.defClass);
  emit(op, {def}, {a}).imm = imm;
  return def;
}

Reg IrBuilder::compare(Opcode op, Reg a, Reg b) {
  const Reg def = fn_.newReg(RegClass::kPr);
  emit(op, {def}, {a, b});
  return def;
}

Reg IrBuilder::compareImm(Opcode op, Reg a, std::int64_t imm) {
  const Reg def = fn_.newReg(RegClass::kPr);
  emit(op, {def}, {a}).imm = imm;
  return def;
}

}  // namespace casted::ir
