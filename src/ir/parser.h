// Parser for the textual IR form produced by printer.h.
//
// parseProgram(printProgram(p)) reproduces `p` up to instruction-id
// renumbering of unreferenced instructions; printing again yields identical
// text (the round-trip property the parser tests rely on).
#pragma once

#include <string_view>

#include "ir/function.h"

namespace casted::ir {

// Parses a whole program; throws FatalError with a line number on malformed
// input.  The result is verified structurally by the caller (use
// verifyOrThrow for full checking).
Program parseProgram(std::string_view text);

}  // namespace casted::ir
