#include "ir/parser.h"

#include <charconv>
#include <cstdlib>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace casted::ir {
namespace {

// One source line split into tokens.  Punctuation characters are single
// tokens; identifiers/numbers are maximal runs.
std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ';') {
      break;  // comment to end of line
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (std::string_view("[](){},:=!+").find(c) != std::string_view::npos) {
      tokens.emplace_back(1, c);
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
      tokens.emplace_back("->");
      i += 2;
      continue;
    }
    // Identifier or number (possibly negative / fractional / exponent).
    std::size_t j = i;
    while (j < line.size() &&
           std::string_view(" \t\r;[](){},:=!").find(line[j]) ==
               std::string_view::npos) {
      // '+' terminates tokens except inside an exponent like 1e+05.
      if (line[j] == '+' && !(j > i && (line[j - 1] == 'e' ||
                                        line[j - 1] == 'E'))) {
        break;
      }
      ++j;
    }
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

struct PendingInsn {
  Instruction insn;
  BlockId block;
  bool hasExplicitId = false;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Program run() {
    splitLines();
    prescanFunctions();
    parseAll();
    return std::move(program_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw FatalError("IR parse error at line " + std::to_string(lineNo_) +
                     ": " + message);
  }

  void splitLines() {
    std::size_t start = 0;
    while (start <= text_.size()) {
      const std::size_t end = text_.find('\n', start);
      if (end == std::string_view::npos) {
        lines_.push_back(text_.substr(start));
        break;
      }
      lines_.push_back(text_.substr(start, end - start));
      start = end + 1;
    }
  }

  // Creates all functions up front so calls can reference later functions.
  void prescanFunctions() {
    for (std::string_view line : lines_) {
      const std::vector<std::string> tokens = tokenize(line);
      if (tokens.size() >= 2 && tokens[0] == "func") {
        std::string name = tokens[1];
        if (name.empty() || name[0] != '@') {
          continue;  // reported during the main pass
        }
        name.erase(0, 1);
        program_.addFunction(name);
      }
    }
  }

  std::optional<Reg> parseReg(const std::string& token) {
    if (token.size() < 2) {
      return std::nullopt;
    }
    RegClass cls;
    switch (token[0]) {
      case 'g':
        cls = RegClass::kGp;
        break;
      case 'f':
        cls = RegClass::kFp;
        break;
      case 'p':
        cls = RegClass::kPr;
        break;
      default:
        return std::nullopt;
    }
    std::uint32_t index = 0;
    const char* begin = token.data() + 1;
    const char* end = token.data() + token.size();
    auto [ptr, ec] = std::from_chars(begin, end, index);
    if (ec != std::errc() || ptr != end) {
      return std::nullopt;
    }
    return Reg(cls, index);
  }

  std::int64_t parseInt(const std::string& token) {
    std::int64_t value = 0;
    const char* begin = token.data();
    const char* end = token.data() + token.size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) {
      fail("expected integer, got '" + token + "'");
    }
    return value;
  }

  std::uint32_t parseUint(const std::string& token) {
    const std::int64_t value = parseInt(token);
    if (value < 0) {
      fail("expected unsigned integer, got '" + token + "'");
    }
    return static_cast<std::uint32_t>(value);
  }

  double parseDouble(const std::string& token) {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("expected floating-point number, got '" + token + "'");
    }
    return value;
  }

  BlockId parseBlockRef(const std::string& token) {
    if (token.size() < 3 || token[0] != 'b' || token[1] != 'b') {
      fail("expected block reference, got '" + token + "'");
    }
    return parseUint(token.substr(2));
  }

  Reg expectReg(const std::vector<std::string>& tokens, std::size_t& pos) {
    if (pos >= tokens.size()) {
      fail("expected register, got end of line");
    }
    const std::optional<Reg> reg = parseReg(tokens[pos]);
    if (!reg) {
      fail("expected register, got '" + tokens[pos] + "'");
    }
    ++pos;
    return *reg;
  }

  void expectToken(const std::vector<std::string>& tokens, std::size_t& pos,
                   const char* expected) {
    if (pos >= tokens.size() || tokens[pos] != expected) {
      fail(std::string("expected '") + expected + "'");
    }
    ++pos;
  }

  void skipComma(const std::vector<std::string>& tokens, std::size_t& pos) {
    if (pos < tokens.size() && tokens[pos] == ",") {
      ++pos;
    }
  }

  void parseAll() {
    FuncId nextFunc = 0;
    for (lineNo_ = 1; lineNo_ <= lines_.size(); ++lineNo_) {
      const std::vector<std::string> tokens = tokenize(lines_[lineNo_ - 1]);
      if (tokens.empty()) {
        continue;
      }
      if (tokens[0] == "global") {
        parseGlobal(tokens);
      } else if (tokens[0] == "func") {
        currentFn_ = &program_.function(nextFunc++);
        parseFunctionHeader(tokens);
      } else if (tokens[0] == "}") {
        finishFunction();
      } else if (tokens[0] == "entry") {
        parseEntry(tokens);
      } else if (tokens[0].size() > 2 && tokens[0][0] == 'b' &&
                 tokens[0][1] == 'b' && tokens.size() >= 2 &&
                 tokens[1] == ":") {
        parseBlockHeader(tokens);
      } else {
        parseInstruction(tokens);
      }
    }
    if (currentFn_ != nullptr) {
      fail("unterminated function @" + currentFn_->name());
    }
  }

  void parseGlobal(const std::vector<std::string>& tokens) {
    if (currentFn_ != nullptr) {
      fail("'global' inside a function body");
    }
    if (tokens.size() < 3) {
      fail("usage: global NAME SIZE [= hex bytes...]");
    }
    const std::string& name = tokens[1];
    const std::uint64_t size = parseUint(tokens[2]);
    if (tokens.size() == 3) {
      program_.allocateGlobal(name, size);
      return;
    }
    if (tokens[3] != "=") {
      fail("expected '=' after global size");
    }
    std::vector<std::uint8_t> bytes;
    bytes.reserve(size);
    for (std::size_t i = 4; i < tokens.size(); ++i) {
      const std::string& hex = tokens[i];
      if (hex.size() != 2) {
        fail("expected two-digit hex byte, got '" + hex + "'");
      }
      auto nibble = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        fail("bad hex digit in '" + hex + "'");
      };
      bytes.push_back(
          static_cast<std::uint8_t>(nibble(hex[0]) * 16 + nibble(hex[1])));
    }
    if (bytes.size() != size) {
      fail("global byte count does not match declared size");
    }
    program_.allocateGlobal(name, bytes);
  }

  void parseFunctionHeader(const std::vector<std::string>& tokens) {
    std::size_t pos = 1;
    if (pos >= tokens.size() || tokens[pos].empty() ||
        tokens[pos][0] != '@') {
      fail("expected @name after 'func'");
    }
    ++pos;
    expectToken(tokens, pos, "(");
    while (pos < tokens.size() && tokens[pos] != ")") {
      currentFn_->params().push_back(expectReg(tokens, pos));
      skipComma(tokens, pos);
    }
    expectToken(tokens, pos, ")");
    expectToken(tokens, pos, "->");
    expectToken(tokens, pos, "(");
    while (pos < tokens.size() && tokens[pos] != ")") {
      const std::string& cls = tokens[pos];
      if (cls == "g") {
        currentFn_->returnClasses().push_back(RegClass::kGp);
      } else if (cls == "f") {
        currentFn_->returnClasses().push_back(RegClass::kFp);
      } else if (cls == "p") {
        currentFn_->returnClasses().push_back(RegClass::kPr);
      } else {
        fail("expected return class g/f/p, got '" + cls + "'");
      }
      ++pos;
      skipComma(tokens, pos);
    }
    expectToken(tokens, pos, ")");
    if (pos < tokens.size() && tokens[pos] == "unprotected") {
      currentFn_->setProtected(false);
      ++pos;
    }
    expectToken(tokens, pos, "{");
    currentBlock_ = kInvalidBlock;
    pending_.clear();
    for (const Reg& param : currentFn_->params()) {
      noteReg(param);
    }
  }

  void parseBlockHeader(const std::vector<std::string>& tokens) {
    if (currentFn_ == nullptr) {
      fail("block label outside a function");
    }
    const BlockId id = parseBlockRef(tokens[0]);
    if (id != currentFn_->blockCount()) {
      fail("block labels must be sequential; expected bb" +
           std::to_string(currentFn_->blockCount()));
    }
    // The printer may append "; name" which tokenize() strips as a comment;
    // recover it for debuggability.
    std::string name = "bb" + std::to_string(id);
    const std::string_view line = lines_[lineNo_ - 1];
    const std::size_t semi = line.find(';');
    if (semi != std::string_view::npos) {
      std::size_t start = semi + 1;
      while (start < line.size() && line[start] == ' ') {
        ++start;
      }
      std::size_t end = line.size();
      while (end > start && (line[end - 1] == ' ' || line[end - 1] == '\r')) {
        --end;
      }
      if (end > start) {
        name = std::string(line.substr(start, end - start));
      }
    }
    currentFn_->addBlock(name);
    currentBlock_ = id;
  }

  void noteReg(Reg reg) {
    currentFn_->reserveRegsAtLeast(reg.cls, reg.index + 1);
  }

  void parseInstruction(const std::vector<std::string>& tokens) {
    if (currentFn_ == nullptr) {
      fail("instruction outside a function");
    }
    if (currentBlock_ == kInvalidBlock) {
      fail("instruction before the first block label");
    }
    PendingInsn pending;
    pending.block = currentBlock_;
    Instruction& insn = pending.insn;

    std::size_t pos = 0;
    // Optional defs: a register list followed by '='.
    {
      std::size_t probe = 0;
      std::vector<Reg> defs;
      while (probe < tokens.size()) {
        const std::optional<Reg> reg = parseReg(tokens[probe]);
        if (!reg) {
          break;
        }
        defs.push_back(*reg);
        ++probe;
        if (probe < tokens.size() && tokens[probe] == ",") {
          ++probe;
          continue;
        }
        break;
      }
      if (!defs.empty() && probe < tokens.size() && tokens[probe] == "=") {
        insn.defs = std::move(defs);
        pos = probe + 1;
      }
    }
    if (pos >= tokens.size()) {
      fail("missing mnemonic");
    }
    const Opcode op = opcodeFromName(tokens[pos]);
    if (op == Opcode::kOpcodeCount) {
      fail("unknown mnemonic '" + tokens[pos] + "'");
    }
    insn.op = op;
    ++pos;
    const OpcodeInfo& meta = opcodeInfo(op);

    auto parseAddress = [&] {
      expectToken(tokens, pos, "[");
      insn.uses.push_back(expectReg(tokens, pos));
      expectToken(tokens, pos, "+");
      if (pos >= tokens.size()) {
        fail("expected offset");
      }
      insn.imm = parseInt(tokens[pos++]);
      expectToken(tokens, pos, "]");
    };

    if (meta.isLoad) {
      parseAddress();
    } else if (meta.isStore) {
      parseAddress();
      skipComma(tokens, pos);
      insn.uses.push_back(expectReg(tokens, pos));
    } else if (op == Opcode::kBr) {
      insn.target = parseBlockRef(tokens[pos++]);
    } else if (op == Opcode::kBrCond) {
      insn.uses.push_back(expectReg(tokens, pos));
      skipComma(tokens, pos);
      insn.target = parseBlockRef(tokens[pos++]);
      skipComma(tokens, pos);
      insn.target2 = parseBlockRef(tokens[pos++]);
    } else {
      // Register uses, then immediates, then a call target.
      while (pos < tokens.size() && tokens[pos] != "!" ) {
        if (tokens[pos] == ",") {
          ++pos;
          continue;
        }
        const std::optional<Reg> reg = parseReg(tokens[pos]);
        if (reg && !(meta.hasImm && insn.uses.size() == meta.useCount) ) {
          insn.uses.push_back(*reg);
          ++pos;
          continue;
        }
        break;
      }
      if (meta.hasImm) {
        if (pos >= tokens.size()) {
          fail("expected immediate");
        }
        insn.imm = parseInt(tokens[pos++]);
      }
      if (meta.hasFpImm) {
        if (pos >= tokens.size()) {
          fail("expected FP immediate");
        }
        insn.fimm = parseDouble(tokens[pos++]);
      }
      if (op == Opcode::kCall) {
        if (pos >= tokens.size() || tokens[pos].empty() ||
            tokens[pos][0] != '@') {
          fail("expected @callee");
        }
        std::string name = tokens[pos].substr(1);
        Function* callee = program_.findFunction(name);
        if (callee == nullptr) {
          fail("call to unknown function @" + name);
        }
        insn.callee = callee->id();
        ++pos;
      }
    }

    if (meta.isCheck) {
      insn.origin = InsnOrigin::kCheck;
    }

    // Trailing annotations.
    while (pos < tokens.size()) {
      if (tokens[pos] != "!") {
        fail("unexpected token '" + tokens[pos] + "'");
      }
      ++pos;
      if (pos >= tokens.size()) {
        fail("dangling '!'");
      }
      const std::string key = tokens[pos++];
      auto readValue = [&]() -> std::uint32_t {
        expectToken(tokens, pos, "=");
        if (pos >= tokens.size()) {
          fail("annotation !" + key + " needs a value");
        }
        return parseUint(tokens[pos++]);
      };
      if (key == "id") {
        insn.id = readValue();
        pending.hasExplicitId = true;
      } else if (key == "dup") {
        insn.origin = InsnOrigin::kDuplicate;
        insn.duplicateOf = readValue();
      } else if (key == "guard") {
        insn.origin = InsnOrigin::kCheck;
        insn.guard = readValue();
      } else if (key == "check") {
        insn.origin = InsnOrigin::kCheck;
      } else if (key == "copy") {
        insn.origin = InsnOrigin::kCopy;
      } else if (key == "spill") {
        insn.origin = InsnOrigin::kSpill;
      } else if (key == "c") {
        insn.cluster = static_cast<int>(readValue());
      } else {
        fail("unknown annotation !" + key);
      }
    }

    for (const Reg& def : insn.defs) {
      noteReg(def);
    }
    for (const Reg& use : insn.uses) {
      noteReg(use);
    }
    pending_.push_back(std::move(pending));
  }

  void finishFunction() {
    if (currentFn_ == nullptr) {
      fail("'}' outside a function");
    }
    // Assign ids: explicit ones are kept, the rest get fresh ids above the
    // maximum explicit id.
    std::uint32_t maxId = 0;
    for (const PendingInsn& pending : pending_) {
      if (pending.hasExplicitId) {
        maxId = std::max(maxId, pending.insn.id + 1);
      }
    }
    currentFn_->reserveInsnIdsAtLeast(maxId);
    for (PendingInsn& pending : pending_) {
      if (!pending.hasExplicitId) {
        pending.insn.id = currentFn_->newInsnId();
      }
      currentFn_->block(pending.block).insns().push_back(
          std::move(pending.insn));
    }
    pending_.clear();
    currentFn_ = nullptr;
    currentBlock_ = kInvalidBlock;
  }

  void parseEntry(const std::vector<std::string>& tokens) {
    if (tokens.size() < 2 || tokens[1].empty() || tokens[1][0] != '@') {
      fail("usage: entry @name");
    }
    Function* fn = program_.findFunction(tokens[1].substr(1));
    if (fn == nullptr) {
      fail("entry references unknown function " + tokens[1]);
    }
    program_.setEntryFunction(fn->id());
  }

  std::string_view text_;
  std::vector<std::string_view> lines_;
  std::size_t lineNo_ = 0;
  Program program_;
  Function* currentFn_ = nullptr;
  BlockId currentBlock_ = kInvalidBlock;
  std::vector<PendingInsn> pending_;
};

}  // namespace

Program parseProgram(std::string_view text) { return Parser(text).run(); }

}  // namespace casted::ir
