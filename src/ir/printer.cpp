#include "ir/printer.h"

#include <iomanip>
#include <sstream>
#include <unordered_set>

namespace casted::ir {
namespace {

// Body of Instruction::toString, but resolving call targets through the
// program when available.
void printBody(const Instruction& insn, const Program* program,
               std::ostringstream& out) {
  const OpcodeInfo& meta = insn.info();
  if (!insn.defs.empty()) {
    for (std::size_t i = 0; i < insn.defs.size(); ++i) {
      if (i != 0) {
        out << ", ";
      }
      out << insn.defs[i].toString();
    }
    out << " = ";
  }
  out << meta.name;
  bool first = true;
  auto comma = [&] {
    out << (first ? " " : ", ");
    first = false;
  };
  if (meta.isLoad) {
    comma();
    out << '[' << insn.uses[0].toString() << '+' << insn.imm << ']';
  } else if (meta.isStore) {
    comma();
    out << '[' << insn.uses[0].toString() << '+' << insn.imm << "], "
        << insn.uses[1].toString();
  } else {
    for (const Reg& use : insn.uses) {
      comma();
      out << use.toString();
    }
    if (meta.hasImm) {
      comma();
      out << insn.imm;
    }
    if (meta.hasFpImm) {
      comma();
      // max_digits10 so the parser restores the exact double.
      out << std::setprecision(17) << insn.fimm;
    }
  }
  if (insn.op == Opcode::kBr) {
    comma();
    out << "bb" << insn.target;
  } else if (insn.op == Opcode::kBrCond) {
    comma();
    out << "bb" << insn.target << ", bb" << insn.target2;
  } else if (insn.op == Opcode::kCall) {
    comma();
    if (program != nullptr && insn.callee < program->functionCount()) {
      out << '@' << program->function(insn.callee).name();
    } else {
      out << "@fn" << insn.callee;
    }
  }
}

void printAnnotations(const Instruction& insn, bool printId,
                      std::ostringstream& out) {
  if (printId) {
    out << " !id=" << insn.id;
  }
  switch (insn.origin) {
    case InsnOrigin::kOriginal:
      break;
    case InsnOrigin::kDuplicate:
      out << " !dup=" << insn.duplicateOf;
      break;
    case InsnOrigin::kCheck:
      if (insn.guard != kInvalidInsn) {
        out << " !guard=" << insn.guard;
      } else {
        out << " !check";
      }
      break;
    case InsnOrigin::kCopy:
      out << " !copy";
      break;
    case InsnOrigin::kSpill:
      out << " !spill";
      break;
  }
  if (insn.cluster != 0) {
    out << " !c=" << insn.cluster;
  }
}

// Ids referenced by !dup/!guard links somewhere in the function; these need
// explicit !id annotations to survive the round trip.
std::unordered_set<InsnId> referencedIds(const Function& fn) {
  std::unordered_set<InsnId> ids;
  for (BlockId b = 0; b < fn.blockCount(); ++b) {
    for (const Instruction& insn : fn.block(b).insns()) {
      if (insn.duplicateOf != kInvalidInsn) {
        ids.insert(insn.duplicateOf);
      }
      if (insn.guard != kInvalidInsn) {
        ids.insert(insn.guard);
      }
    }
  }
  return ids;
}

}  // namespace

std::string printInstruction(const Instruction& insn, const Program* program,
                             bool printId) {
  std::ostringstream out;
  printBody(insn, program, out);
  printAnnotations(insn, printId, out);
  return out.str();
}

std::string printFunction(const Function& fn, const Program* program) {
  const std::unordered_set<InsnId> withIds = referencedIds(fn);
  std::ostringstream out;
  out << "func @" << fn.name() << '(';
  for (std::size_t i = 0; i < fn.params().size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << fn.params()[i].toString();
  }
  out << ") -> (";
  for (std::size_t i = 0; i < fn.returnClasses().size(); ++i) {
    if (i != 0) {
      out << ", ";
    }
    out << regClassPrefix(fn.returnClasses()[i]);
  }
  out << ')';
  if (!fn.isProtected()) {
    out << " unprotected";
  }
  out << " {\n";
  for (BlockId b = 0; b < fn.blockCount(); ++b) {
    const BasicBlock& block = fn.block(b);
    out << "bb" << b << ':';
    if (!block.name().empty() && block.name() != "bb" + std::to_string(b)) {
      out << " ; " << block.name();
    }
    out << '\n';
    for (const Instruction& insn : block.insns()) {
      out << "  "
          << printInstruction(insn, program, withIds.contains(insn.id))
          << '\n';
    }
  }
  out << "}\n";
  return out.str();
}

std::string printProgram(const Program& program) {
  std::ostringstream out;
  for (const GlobalSymbol& sym : program.symbols()) {
    out << "global " << sym.name << ' ' << sym.size;
    const auto& image = program.globalImage();
    const std::size_t begin = sym.address - Program::kGlobalBase;
    bool nonZero = false;
    for (std::uint64_t i = 0; i < sym.size; ++i) {
      if (image[begin + i] != 0) {
        nonZero = true;
        break;
      }
    }
    if (nonZero) {
      out << " =";
      static const char* kHex = "0123456789abcdef";
      for (std::uint64_t i = 0; i < sym.size; ++i) {
        const std::uint8_t byte = image[begin + i];
        out << ' ' << kHex[byte >> 4] << kHex[byte & 0xf];
      }
    }
    out << '\n';
  }
  for (FuncId f = 0; f < program.functionCount(); ++f) {
    out << printFunction(program.function(f), &program);
  }
  if (program.functionCount() > 0) {
    out << "entry @" << program.function(program.entryFunction()).name()
        << '\n';
  }
  return out.str();
}

}  // namespace casted::ir
