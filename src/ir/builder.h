// IrBuilder: the fluent construction API used by the workloads, the tests
// and the examples.
//
// The builder is bound to one Function and appends to a current block.  All
// emitters return the freshly defined register so code reads like
// expression-oriented pseudocode:
//
//   IrBuilder b(fn);
//   Reg base = b.movImm(prog.symbol("input").address);
//   Reg x = b.load(base, 0);
//   Reg y = b.addImm(x, 42);
//   b.store(base, 8, y);
//   b.halt(b.movImm(0));
#pragma once

#include <initializer_list>
#include <span>

#include "ir/function.h"

namespace casted::ir {

class IrBuilder {
 public:
  explicit IrBuilder(Function& fn) : fn_(fn) {}

  Function& function() { return fn_; }

  // --- block management -------------------------------------------------
  BasicBlock& createBlock(std::string name);
  void setBlock(BasicBlock& block) { current_ = &block; }
  void setBlock(BlockId id) { current_ = &fn_.block(id); }
  BasicBlock& currentBlock();

  // --- generic emitter ----------------------------------------------------
  // Appends an instruction; returns a reference valid until the next append
  // to the same block.
  Instruction& emit(Opcode op, std::vector<Reg> defs, std::vector<Reg> uses);

  // --- writes to existing registers (loop-carried variables) ---------------
  // dst = src, dispatching on the register class.
  void movTo(Reg dst, Reg src);
  // dst = imm (GP only).
  void movImmTo(Reg dst, std::int64_t imm);
  // dst = src + imm (GP only) — the idiom for induction variables.
  void addImmTo(Reg dst, Reg src, std::int64_t imm);
  // dst = op(a, b) for any fixed-arity two-operand opcode.
  void binaryTo(Opcode op, Reg dst, Reg a, Reg b);

  // --- integer ------------------------------------------------------------
  Reg movImm(std::int64_t value);
  Reg mov(Reg src);
  Reg add(Reg a, Reg b) { return binary(Opcode::kAdd, a, b); }
  Reg sub(Reg a, Reg b) { return binary(Opcode::kSub, a, b); }
  Reg mul(Reg a, Reg b) { return binary(Opcode::kMul, a, b); }
  Reg div(Reg a, Reg b) { return binary(Opcode::kDiv, a, b); }
  Reg rem(Reg a, Reg b) { return binary(Opcode::kRem, a, b); }
  Reg and_(Reg a, Reg b) { return binary(Opcode::kAnd, a, b); }
  Reg or_(Reg a, Reg b) { return binary(Opcode::kOr, a, b); }
  Reg xor_(Reg a, Reg b) { return binary(Opcode::kXor, a, b); }
  Reg shl(Reg a, Reg b) { return binary(Opcode::kShl, a, b); }
  Reg shr(Reg a, Reg b) { return binary(Opcode::kShr, a, b); }
  Reg sra(Reg a, Reg b) { return binary(Opcode::kSra, a, b); }
  Reg min(Reg a, Reg b) { return binary(Opcode::kMin, a, b); }
  Reg max(Reg a, Reg b) { return binary(Opcode::kMax, a, b); }
  Reg addImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kAddImm, a, imm); }
  Reg mulImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kMulImm, a, imm); }
  Reg andImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kAndImm, a, imm); }
  Reg shlImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kShlImm, a, imm); }
  Reg shrImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kShrImm, a, imm); }
  Reg sraImm(Reg a, std::int64_t imm) { return unaryImm(Opcode::kSraImm, a, imm); }
  Reg neg(Reg a) { return unary(Opcode::kNeg, a); }
  Reg abs(Reg a) { return unary(Opcode::kAbs, a); }
  Reg not_(Reg a) { return unary(Opcode::kNot, a); }
  Reg select(Reg pred, Reg a, Reg b);

  // --- compares (define a predicate) ---------------------------------------
  Reg cmpEq(Reg a, Reg b) { return compare(Opcode::kCmpEq, a, b); }
  Reg cmpNe(Reg a, Reg b) { return compare(Opcode::kCmpNe, a, b); }
  Reg cmpLt(Reg a, Reg b) { return compare(Opcode::kCmpLt, a, b); }
  Reg cmpLe(Reg a, Reg b) { return compare(Opcode::kCmpLe, a, b); }
  Reg cmpGt(Reg a, Reg b) { return compare(Opcode::kCmpGt, a, b); }
  Reg cmpGe(Reg a, Reg b) { return compare(Opcode::kCmpGe, a, b); }
  Reg cmpEqImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpEqImm, a, imm); }
  Reg cmpNeImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpNeImm, a, imm); }
  Reg cmpLtImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpLtImm, a, imm); }
  Reg cmpLeImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpLeImm, a, imm); }
  Reg cmpGtImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpGtImm, a, imm); }
  Reg cmpGeImm(Reg a, std::int64_t imm) { return compareImm(Opcode::kCmpGeImm, a, imm); }

  // --- predicates ----------------------------------------------------------
  Reg pMov(Reg p) { return unary(Opcode::kPMov, p); }
  Reg pNot(Reg p) { return unary(Opcode::kPNot, p); }
  Reg pAnd(Reg a, Reg b) { return binary(Opcode::kPAnd, a, b); }
  Reg pOr(Reg a, Reg b) { return binary(Opcode::kPOr, a, b); }
  Reg pXor(Reg a, Reg b) { return binary(Opcode::kPXor, a, b); }
  Reg pSetImm(bool value);

  // --- floating point --------------------------------------------------------
  Reg fMovImm(double value);
  Reg fMov(Reg a) { return unary(Opcode::kFMov, a); }
  Reg fAdd(Reg a, Reg b) { return binary(Opcode::kFAdd, a, b); }
  Reg fSub(Reg a, Reg b) { return binary(Opcode::kFSub, a, b); }
  Reg fMul(Reg a, Reg b) { return binary(Opcode::kFMul, a, b); }
  Reg fDiv(Reg a, Reg b) { return binary(Opcode::kFDiv, a, b); }
  Reg fMin(Reg a, Reg b) { return binary(Opcode::kFMin, a, b); }
  Reg fMax(Reg a, Reg b) { return binary(Opcode::kFMax, a, b); }
  Reg fNeg(Reg a) { return unary(Opcode::kFNeg, a); }
  Reg fAbs(Reg a) { return unary(Opcode::kFAbs, a); }
  Reg fSqrt(Reg a) { return unary(Opcode::kFSqrt, a); }
  Reg fCmpEq(Reg a, Reg b) { return compare(Opcode::kFCmpEq, a, b); }
  Reg fCmpLt(Reg a, Reg b) { return compare(Opcode::kFCmpLt, a, b); }
  Reg fCmpLe(Reg a, Reg b) { return compare(Opcode::kFCmpLe, a, b); }
  Reg i2f(Reg g) { return unary(Opcode::kI2F, g); }
  Reg f2i(Reg f) { return unary(Opcode::kF2I, f); }

  // --- memory ----------------------------------------------------------------
  Reg load(Reg base, std::int64_t offset);
  Reg loadB(Reg base, std::int64_t offset);
  Reg fLoad(Reg base, std::int64_t offset);
  void store(Reg base, std::int64_t offset, Reg value);
  void storeB(Reg base, std::int64_t offset, Reg value);
  void fStore(Reg base, std::int64_t offset, Reg value);

  // --- control flow ------------------------------------------------------------
  void br(const BasicBlock& target);
  void brCond(Reg pred, const BasicBlock& taken, const BasicBlock& notTaken);
  // Calls `callee` with `args`; returns the registers holding its results.
  std::vector<Reg> call(const Function& callee, std::span<const Reg> args);
  std::vector<Reg> call(const Function& callee,
                        std::initializer_list<Reg> args);
  void ret(std::span<const Reg> values);
  void ret(std::initializer_list<Reg> values = {});
  void halt(Reg exitCode);

 private:
  Reg binary(Opcode op, Reg a, Reg b);
  Reg unary(Opcode op, Reg a);
  Reg unaryImm(Opcode op, Reg a, std::int64_t imm);
  Reg compare(Opcode op, Reg a, Reg b);
  Reg compareImm(Opcode op, Reg a, std::int64_t imm);

  Function& fn_;
  BasicBlock* current_ = nullptr;
};

}  // namespace casted::ir
