// Instruction, the unit everything in CASTED operates on.
//
// Instructions carry, besides opcode and operands, the bookkeeping the
// paper's passes need: the origin tag (original / duplicate / check / copy /
// spill — Algorithm 1 must skip compiler-generated code when replicating),
// the duplicate link (the Replicated Instructions Table of Fig. 4a collapses
// to a per-instruction field), the guard link for checks, and the cluster
// chosen by the assignment pass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "ir/reg.h"

namespace casted::ir {

using InsnId = std::uint32_t;
using BlockId = std::uint32_t;
using FuncId = std::uint32_t;

inline constexpr InsnId kInvalidInsn = 0xffffffffu;
inline constexpr BlockId kInvalidBlock = 0xffffffffu;
inline constexpr FuncId kInvalidFunc = 0xffffffffu;

// Why an instruction exists.  Algorithm 1 replicates only kOriginal
// instructions; kCheck/kCopy/kSpill are the paper's "compiler-generated"
// category.
enum class InsnOrigin : std::uint8_t {
  kOriginal,   // came from the source program
  kDuplicate,  // emitted by replicate_insns
  kCheck,      // emitted by emit_check_insns
  kCopy,       // shadow-copy for non-duplicated defs (Alg. 1 lines 34-37)
  kSpill,      // emitted by the register-pressure pass
};

const char* insnOriginName(InsnOrigin origin);

struct Instruction {
  Opcode op = Opcode::kNop;
  InsnId id = kInvalidInsn;

  std::vector<Reg> defs;
  std::vector<Reg> uses;

  std::int64_t imm = 0;   // integer immediate / memory offset
  double fimm = 0.0;      // FP immediate (kFMovImm)

  BlockId target = kInvalidBlock;   // kBr / kBrCond taken target
  BlockId target2 = kInvalidBlock;  // kBrCond not-taken target
  FuncId callee = kInvalidFunc;     // kCall

  InsnOrigin origin = InsnOrigin::kOriginal;
  InsnId duplicateOf = kInvalidInsn;  // set on kDuplicate instructions
  InsnId guard = kInvalidInsn;        // on checks: the guarded instruction

  int cluster = 0;  // assignment-pass result

  const OpcodeInfo& info() const { return opcodeInfo(op); }

  bool isTerminator() const { return info().isTerminator; }
  bool isCheck() const { return info().isCheck; }
  bool isLoad() const { return info().isLoad; }
  bool isStore() const { return info().isStore; }
  bool isMemory() const { return isLoad() || isStore(); }
  bool isCall() const { return op == Opcode::kCall; }

  // True when Algorithm 1 would emit a duplicate for this instruction:
  // replicable opcode and not itself compiler-generated.
  bool isReplicable() const {
    return isReplicableOpcode(op) && origin == InsnOrigin::kOriginal;
  }

  // "Non-replicated" in the paper's sense: instructions that stay single and
  // therefore get their inputs checked (stores, control flow, calls).
  bool isNonReplicated() const {
    return !isReplicableOpcode(op) && !isCheck() && op != Opcode::kNop;
  }

  // Renders like "g3 = add g1, g2" (without trailing newline).
  std::string toString() const;
};

}  // namespace casted::ir
