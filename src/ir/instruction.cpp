#include "ir/instruction.h"

#include <sstream>

#include "support/check.h"

namespace casted::ir {

const char* insnOriginName(InsnOrigin origin) {
  switch (origin) {
    case InsnOrigin::kOriginal:
      return "original";
    case InsnOrigin::kDuplicate:
      return "duplicate";
    case InsnOrigin::kCheck:
      return "check";
    case InsnOrigin::kCopy:
      return "copy";
    case InsnOrigin::kSpill:
      return "spill";
  }
  CASTED_UNREACHABLE("bad InsnOrigin");
}

std::string Instruction::toString() const {
  const OpcodeInfo& meta = info();
  std::ostringstream out;
  if (!defs.empty()) {
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (i != 0) {
        out << ", ";
      }
      out << defs[i].toString();
    }
    out << " = ";
  }
  out << meta.name;
  bool first = true;
  auto comma = [&] {
    out << (first ? " " : ", ");
    first = false;
  };
  if (meta.isLoad) {
    comma();
    out << '[' << uses[0].toString() << '+' << imm << ']';
  } else if (meta.isStore) {
    comma();
    out << '[' << uses[0].toString() << '+' << imm << "], "
        << uses[1].toString();
  } else {
    for (const Reg& use : uses) {
      comma();
      out << use.toString();
    }
    if (meta.hasImm) {
      comma();
      out << imm;
    }
    if (meta.hasFpImm) {
      comma();
      out << fimm;
    }
  }
  if (op == Opcode::kBr) {
    comma();
    out << "bb" << target;
  } else if (op == Opcode::kBrCond) {
    comma();
    out << "bb" << target << ", bb" << target2;
  } else if (op == Opcode::kCall) {
    comma();
    out << "@fn" << callee;
  }
  return out.str();
}

}  // namespace casted::ir
