// IR verifier.
//
// Catches malformed programs before they reach the passes or the simulator:
// structural rules (terminators, operand signatures, branch targets, call
// arity), pass-metadata rules (duplicate/guard links), and a definite-
// assignment dataflow analysis that proves every register is written on all
// paths before it is read (the IR has no implicit zero-init).
#pragma once

#include <string>
#include <vector>

#include "ir/function.h"

namespace casted::ir {

// Returns all diagnostics found (empty means the program is well-formed).
std::vector<std::string> verify(const Program& program);

// Convenience for call sites that want hard failure: throws FatalError with
// the first few diagnostics if verify() is non-empty.
void verifyOrThrow(const Program& program);

}  // namespace casted::ir
