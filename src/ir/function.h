// BasicBlock, Function and Program.
//
// Control flow is explicit: every block ends in exactly one terminator and
// kBrCond names both successors (no fall-through), which keeps the verifier,
// the scheduler and the simulator simple.  A Program owns its functions plus
// an initialised global memory image with named symbols; workloads write
// their results into the symbol named "output", which is what the fault
// classifier diffs against the golden run.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace casted::ir {

class BasicBlock {
 public:
  BasicBlock(BlockId id, std::string name) : id_(id), name_(std::move(name)) {}

  BlockId id() const { return id_; }
  const std::string& name() const { return name_; }

  std::vector<Instruction>& insns() { return insns_; }
  const std::vector<Instruction>& insns() const { return insns_; }

  bool empty() const { return insns_.empty(); }

  // The block's terminator; requires a non-empty block.
  const Instruction& terminator() const;

  // Successor block ids derived from the terminator (empty for ret/halt).
  std::vector<BlockId> successors() const;

 private:
  BlockId id_;
  std::string name_;
  std::vector<Instruction> insns_;
};

class Function {
 public:
  Function(FuncId id, std::string name) : id_(id), name_(std::move(name)) {}

  FuncId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Parameters are virtual registers live on entry; callers pass values
  // positionally.  Returns are declared by class; kRet uses must match.
  std::vector<Reg>& params() { return params_; }
  const std::vector<Reg>& params() const { return params_; }
  std::vector<RegClass>& returnClasses() { return returnClasses_; }
  const std::vector<RegClass>& returnClasses() const { return returnClasses_; }

  // "Binary-only library" functions (paper §IV-C): the error-detection pass
  // skips unprotected functions, reproducing the residual data-corruption
  // vulnerability the paper attributes to system libraries.
  bool isProtected() const { return protected_; }
  void setProtected(bool value) { protected_ = value; }

  // Blocks are stored in a deque so handed-out references stay valid as more
  // blocks are added.  Block 0 is the entry.
  BasicBlock& addBlock(std::string name);
  BasicBlock& block(BlockId id);
  const BasicBlock& block(BlockId id) const;
  std::size_t blockCount() const { return blocks_.size(); }
  BasicBlock& entry();
  const BasicBlock& entry() const;

  // Fresh virtual register of the given class.
  Reg newReg(RegClass cls);
  // Number of virtual registers allocated so far in `cls`.
  std::uint32_t regCount(RegClass cls) const;
  // Raises the fresh-register floor so registers up to `count` are reserved.
  void reserveRegsAtLeast(RegClass cls, std::uint32_t count);

  // Fresh instruction id (unique within the function).
  InsnId newInsnId() { return nextInsn_++; }
  std::uint32_t insnIdBound() const { return nextInsn_; }
  // Raises the fresh-id floor so ids below `bound` are never handed out
  // again (used by the parser, which restores explicit ids).
  void reserveInsnIdsAtLeast(std::uint32_t bound) {
    nextInsn_ = std::max(nextInsn_, bound);
  }

  // Total instruction count across blocks.
  std::size_t insnCount() const;

 private:
  FuncId id_;
  std::string name_;
  bool protected_ = true;
  std::vector<Reg> params_;
  std::vector<RegClass> returnClasses_;
  std::deque<BasicBlock> blocks_;
  std::uint32_t nextReg_[3] = {0, 0, 0};
  InsnId nextInsn_ = 0;
};

// A named, initialised region of the global memory image.
struct GlobalSymbol {
  std::string name;
  std::uint64_t address = 0;
  std::uint64_t size = 0;
};

class Program {
 public:
  // Global data starts above the null guard page so that address 0 (and
  // small offsets off a corrupted null) always fault.
  static constexpr std::uint64_t kGlobalBase = 0x1000;

  Function& addFunction(std::string name);
  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  // Returns nullptr if no function has `name`.
  Function* findFunction(const std::string& name);
  std::size_t functionCount() const { return funcs_.size(); }

  FuncId entryFunction() const { return entry_; }
  void setEntryFunction(FuncId id) { entry_ = id; }

  // Allocates `size` bytes of zero-initialised global memory under `name`,
  // 8-byte aligned; returns its base address.
  std::uint64_t allocateGlobal(const std::string& name, std::uint64_t size);
  // As above but with initial contents.
  std::uint64_t allocateGlobal(const std::string& name,
                               const std::vector<std::uint8_t>& bytes);
  // Looks up a symbol; throws FatalError if absent.
  const GlobalSymbol& symbol(const std::string& name) const;
  bool hasSymbol(const std::string& name) const;
  const std::vector<GlobalSymbol>& symbols() const { return symbols_; }

  // The full initial memory image starting at kGlobalBase.
  const std::vector<std::uint8_t>& globalImage() const { return image_; }
  std::vector<std::uint8_t>& mutableGlobalImage() { return image_; }
  // One-past-the-end address of allocated globals.
  std::uint64_t globalEnd() const { return kGlobalBase + image_.size(); }

  // Total instruction count across functions.
  std::size_t insnCount() const;

 private:
  std::deque<Function> funcs_;
  FuncId entry_ = kInvalidFunc;
  std::vector<GlobalSymbol> symbols_;
  std::vector<std::uint8_t> image_;
};

}  // namespace casted::ir
