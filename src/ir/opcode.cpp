#include "ir/opcode.h"

#include <array>
#include <string_view>

#include "support/check.h"

namespace casted::ir {
namespace {

constexpr RegClass G = RegClass::kGp;
constexpr RegClass F = RegClass::kFp;
constexpr RegClass P = RegClass::kPr;

struct Row {
  Opcode op;
  OpcodeInfo info;
};

// One row per opcode; validated against the enum at startup by opcodeInfo.
// Fields: name, fuClass, defCount, defClass, useCount, {useClasses},
// variableArity, hasImm, hasFpImm, isTerminator, isBranch, isLoad, isStore,
// isCheck, canTrap.
constexpr std::array kTable = {
    Row{Opcode::kNop,
        {"nop", FuClass::kNone, 0, G, 0, {G, G, G}, false, false, false, false,
         false, false, false, false, false}},
    Row{Opcode::kMovImm,
        {"movi", FuClass::kIntAlu, 1, G, 0, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kMov,
        {"mov", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kAdd,
        {"add", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kSub,
        {"sub", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kMul,
        {"mul", FuClass::kIntMul, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kDiv,
        {"div", FuClass::kIntDiv, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, true}},
    Row{Opcode::kRem,
        {"rem", FuClass::kIntDiv, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, true}},
    Row{Opcode::kAnd,
        {"and", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kOr,
        {"or", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kXor,
        {"xor", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kShl,
        {"shl", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kShr,
        {"shr", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kSra,
        {"sra", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kMin,
        {"min", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kMax,
        {"max", FuClass::kIntAlu, 1, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kAddImm,
        {"addi", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kMulImm,
        {"muli", FuClass::kIntMul, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kAndImm,
        {"andi", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kShlImm,
        {"shli", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kShrImm,
        {"shri", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kSraImm,
        {"srai", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kNeg,
        {"neg", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kAbs,
        {"abs", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kNot,
        {"not", FuClass::kIntAlu, 1, G, 1, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kSelect,
        {"select", FuClass::kIntAlu, 1, G, 3, {P, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpEq,
        {"cmpeq", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpNe,
        {"cmpne", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpLt,
        {"cmplt", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpLe,
        {"cmple", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpGt,
        {"cmpgt", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpGe,
        {"cmpge", FuClass::kIntAlu, 1, P, 2, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpEqImm,
        {"cmpeqi", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpNeImm,
        {"cmpnei", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpLtImm,
        {"cmplti", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpLeImm,
        {"cmplei", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpGtImm,
        {"cmpgti", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kCmpGeImm,
        {"cmpgei", FuClass::kIntAlu, 1, P, 1, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPMov,
        {"pmov", FuClass::kIntAlu, 1, P, 1, {P, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPNot,
        {"pnot", FuClass::kIntAlu, 1, P, 1, {P, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPAnd,
        {"pand", FuClass::kIntAlu, 1, P, 2, {P, P, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPOr,
        {"por", FuClass::kIntAlu, 1, P, 2, {P, P, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPXor,
        {"pxor", FuClass::kIntAlu, 1, P, 2, {P, P, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kPSetImm,
        {"pseti", FuClass::kIntAlu, 1, P, 0, {G, G, G}, false, true, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFMovImm,
        {"fmovi", FuClass::kFpAlu, 1, F, 0, {G, G, G}, false, false, true,
         false, false, false, false, false, false}},
    Row{Opcode::kFMov,
        {"fmov", FuClass::kFpAlu, 1, F, 1, {F, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFAdd,
        {"fadd", FuClass::kFpAlu, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFSub,
        {"fsub", FuClass::kFpAlu, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFMul,
        {"fmul", FuClass::kFpMul, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFDiv,
        {"fdiv", FuClass::kFpDiv, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFMin,
        {"fmin", FuClass::kFpAlu, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFMax,
        {"fmax", FuClass::kFpAlu, 1, F, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFNeg,
        {"fneg", FuClass::kFpAlu, 1, F, 1, {F, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFAbs,
        {"fabs", FuClass::kFpAlu, 1, F, 1, {F, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFSqrt,
        {"fsqrt", FuClass::kFpDiv, 1, F, 1, {F, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFCmpEq,
        {"fcmpeq", FuClass::kFpAlu, 1, P, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFCmpLt,
        {"fcmplt", FuClass::kFpAlu, 1, P, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kFCmpLe,
        {"fcmple", FuClass::kFpAlu, 1, P, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kI2F,
        {"i2f", FuClass::kFpAlu, 1, F, 1, {G, G, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kF2I,
        {"f2i", FuClass::kFpAlu, 1, G, 1, {F, G, G}, false, false, false,
         false, false, false, false, false, true}},
    Row{Opcode::kLoad,
        {"load", FuClass::kMem, 1, G, 1, {G, G, G}, false, true, false, false,
         false, true, false, false, true}},
    Row{Opcode::kLoadB,
        {"loadb", FuClass::kMem, 1, G, 1, {G, G, G}, false, true, false,
         false, false, true, false, false, true}},
    Row{Opcode::kStore,
        {"store", FuClass::kMem, 0, G, 2, {G, G, G}, false, true, false,
         false, false, false, true, false, true}},
    Row{Opcode::kStoreB,
        {"storeb", FuClass::kMem, 0, G, 2, {G, G, G}, false, true, false,
         false, false, false, true, false, true}},
    Row{Opcode::kFLoad,
        {"fload", FuClass::kMem, 1, F, 1, {G, G, G}, false, true, false,
         false, false, true, false, false, true}},
    Row{Opcode::kFStore,
        {"fstore", FuClass::kMem, 0, G, 2, {G, F, G}, false, true, false,
         false, false, false, true, false, true}},
    Row{Opcode::kBr,
        {"br", FuClass::kBranch, 0, G, 0, {G, G, G}, false, false, false,
         true, true, false, false, false, false}},
    Row{Opcode::kBrCond,
        {"brc", FuClass::kBranch, 0, G, 1, {P, G, G}, false, false, false,
         true, true, false, false, false, false}},
    Row{Opcode::kCall,
        {"call", FuClass::kCall, 0, G, 0, {G, G, G}, true, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kRet,
        {"ret", FuClass::kBranch, 0, G, 0, {G, G, G}, true, false, false,
         true, false, false, false, false, false}},
    Row{Opcode::kHalt,
        {"halt", FuClass::kBranch, 0, G, 1, {G, G, G}, false, false, false,
         true, false, false, false, false, false}},
    Row{Opcode::kCheckG,
        {"chk", FuClass::kIntAlu, 0, G, 2, {G, G, G}, false, false, false,
         false, false, false, false, true, false}},
    Row{Opcode::kCheckF,
        {"fchk", FuClass::kIntAlu, 0, G, 2, {F, F, G}, false, false, false,
         false, false, false, false, true, false}},
    Row{Opcode::kCheckP,
        {"pchk", FuClass::kIntAlu, 0, G, 2, {P, P, G}, false, false, false,
         false, false, false, false, true, false}},
    Row{Opcode::kFCmpNeBits,
        {"fcmpneb", FuClass::kFpAlu, 1, P, 2, {F, F, G}, false, false, false,
         false, false, false, false, false, false}},
    Row{Opcode::kTrapIf,
        {"trapif", FuClass::kBranch, 0, G, 1, {P, G, G}, false, false, false,
         false, false, false, false, true, false}},
};

static_assert(kTable.size() == static_cast<std::size_t>(Opcode::kOpcodeCount),
              "opcode table out of sync with Opcode enum");

}  // namespace

const OpcodeInfo& opcodeInfo(Opcode op) {
  const auto index = static_cast<std::size_t>(op);
  CASTED_CHECK(index < kTable.size()) << "bad opcode " << index;
  const Row& row = kTable[index];
  CASTED_CHECK(row.op == op) << "opcode table row mismatch at " << index;
  return row.info;
}

bool isMemoryOp(Opcode op) {
  const OpcodeInfo& info = opcodeInfo(op);
  return info.isLoad || info.isStore;
}

bool isControlFlow(Opcode op) {
  const OpcodeInfo& info = opcodeInfo(op);
  return info.isTerminator || op == Opcode::kCall;
}

bool isReplicableOpcode(Opcode op) {
  if (op == Opcode::kNop) {
    return false;
  }
  const OpcodeInfo& info = opcodeInfo(op);
  // Algorithm 1: skip control flow (branches, calls, ret, halt), stores, and
  // checks.  Everything else — including loads — is replicated.
  return !info.isTerminator && !info.isStore && !info.isCheck &&
         op != Opcode::kCall;
}

Opcode opcodeFromName(std::string_view name) {
  for (const Row& row : kTable) {
    if (row.info.name == name) {
      return row.op;
    }
  }
  return Opcode::kOpcodeCount;
}

}  // namespace casted::ir
