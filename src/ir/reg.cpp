#include "ir/reg.h"

#include "support/check.h"

namespace casted::ir {

const char* regClassPrefix(RegClass cls) {
  switch (cls) {
    case RegClass::kGp:
      return "g";
    case RegClass::kFp:
      return "f";
    case RegClass::kPr:
      return "p";
  }
  CASTED_UNREACHABLE("bad RegClass");
}

std::string Reg::toString() const {
  if (!valid()) {
    return "<invalid>";
  }
  return std::string(regClassPrefix(cls)) + std::to_string(index);
}

}  // namespace casted::ir
