#include "ir/verifier.h"

#include <sstream>
#include <vector>

#include "support/check.h"

namespace casted::ir {
namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Program& program, const Function& fn,
                   std::vector<std::string>& errors)
      : program_(program), fn_(fn), errors_(errors) {}

  void run() {
    verifyStructure();
    if (structureOk_) {
      verifyDefiniteAssignment();
    }
  }

 private:
  template <typename... Parts>
  void error(const Instruction* insn, const Parts&... parts) {
    std::ostringstream out;
    out << "@" << fn_.name();
    if (insn != nullptr) {
      out << ": '" << insn->toString() << "'";
    }
    out << ": ";
    (out << ... << parts);
    errors_.push_back(out.str());
  }

  void verifyReg(const Instruction& insn, Reg reg, RegClass expected,
                 const char* kind) {
    if (!reg.valid()) {
      error(&insn, "invalid ", kind, " register");
      structureOk_ = false;
      return;
    }
    if (reg.cls != expected) {
      error(&insn, kind, " register ", reg.toString(), " has class ",
            regClassPrefix(reg.cls), ", expected ", regClassPrefix(expected));
    }
    if (reg.index >= fn_.regCount(reg.cls)) {
      error(&insn, kind, " register ", reg.toString(),
            " out of range (function allocated ", fn_.regCount(reg.cls), ")");
      structureOk_ = false;
    }
  }

  void verifySignature(const Instruction& insn) {
    const OpcodeInfo& info = insn.info();
    if (info.variableArity) {
      if (insn.op == Opcode::kCall) {
        if (insn.callee >= program_.functionCount()) {
          error(&insn, "call to unknown function id ", insn.callee);
          return;
        }
        const Function& callee = program_.function(insn.callee);
        if (insn.uses.size() != callee.params().size()) {
          error(&insn, "call passes ", insn.uses.size(), " args, @",
                callee.name(), " takes ", callee.params().size());
        } else {
          for (std::size_t i = 0; i < insn.uses.size(); ++i) {
            verifyReg(insn, insn.uses[i], callee.params()[i].cls, "argument");
          }
        }
        if (insn.defs.size() != callee.returnClasses().size()) {
          error(&insn, "call defines ", insn.defs.size(), " results, @",
                callee.name(), " returns ", callee.returnClasses().size());
        } else {
          for (std::size_t i = 0; i < insn.defs.size(); ++i) {
            verifyReg(insn, insn.defs[i], callee.returnClasses()[i], "result");
          }
        }
      } else {  // kRet
        if (insn.uses.size() != fn_.returnClasses().size()) {
          error(&insn, "ret passes ", insn.uses.size(), " values, function "
                "declares ", fn_.returnClasses().size());
        } else {
          for (std::size_t i = 0; i < insn.uses.size(); ++i) {
            verifyReg(insn, insn.uses[i], fn_.returnClasses()[i], "return");
          }
        }
      }
      return;
    }
    if (insn.defs.size() != info.defCount) {
      error(&insn, "expected ", static_cast<int>(info.defCount),
            " defs, got ", insn.defs.size());
      return;
    }
    if (info.defCount == 1) {
      verifyReg(insn, insn.defs[0], info.defClass, "def");
    }
    if (insn.uses.size() != info.useCount) {
      error(&insn, "expected ", static_cast<int>(info.useCount),
            " uses, got ", insn.uses.size());
      return;
    }
    for (std::size_t i = 0; i < insn.uses.size(); ++i) {
      verifyReg(insn, insn.uses[i], info.useClass[i], "use");
    }
  }

  void verifyBranchTargets(const Instruction& insn) {
    auto checkTarget = [&](BlockId id) {
      if (id >= fn_.blockCount()) {
        error(&insn, "branch target bb", id, " does not exist");
        structureOk_ = false;  // the dataflow pass would walk this edge
      }
    };
    if (insn.op == Opcode::kBr) {
      checkTarget(insn.target);
    } else if (insn.op == Opcode::kBrCond) {
      checkTarget(insn.target);
      checkTarget(insn.target2);
    }
  }

  void verifyMetadata(const Instruction& insn) {
    const bool isDup = insn.origin == InsnOrigin::kDuplicate;
    if (isDup != (insn.duplicateOf != kInvalidInsn)) {
      error(&insn, "duplicateOf link inconsistent with origin ",
            insnOriginName(insn.origin));
    }
    if (insn.isCheck() && insn.origin != InsnOrigin::kCheck) {
      error(&insn, "check instruction with origin ",
            insnOriginName(insn.origin));
    }
    if (insn.id == kInvalidInsn || insn.id >= fn_.insnIdBound()) {
      error(&insn, "instruction id out of range");
      structureOk_ = false;
    }
  }

  void verifyStructure() {
    if (fn_.blockCount() == 0) {
      error(nullptr, "function has no blocks");
      structureOk_ = false;
      return;
    }
    for (const Reg& param : fn_.params()) {
      if (!param.valid() || param.index >= fn_.regCount(param.cls)) {
        error(nullptr, "parameter ", param.toString(), " out of range");
        structureOk_ = false;
      }
    }
    for (BlockId b = 0; b < fn_.blockCount(); ++b) {
      const BasicBlock& block = fn_.block(b);
      if (block.empty()) {
        error(nullptr, "bb", b, " is empty");
        structureOk_ = false;
        continue;
      }
      if (!block.insns().back().isTerminator()) {
        error(nullptr, "bb", b, " does not end in a terminator");
        structureOk_ = false;
      }
      for (std::size_t i = 0; i < block.insns().size(); ++i) {
        const Instruction& insn = block.insns()[i];
        if (insn.isTerminator() && i + 1 != block.insns().size()) {
          error(&insn, "terminator in the middle of bb", b);
          structureOk_ = false;
        }
        verifySignature(insn);
        verifyBranchTargets(insn);
        verifyMetadata(insn);
      }
    }
  }

  // Definite assignment: forward may-not-be-assigned analysis.  A register
  // use is legal only if every path from entry assigns it first.
  void verifyDefiniteAssignment() {
    const std::size_t gpCount = fn_.regCount(RegClass::kGp);
    const std::size_t fpCount = fn_.regCount(RegClass::kFp);
    const std::size_t prCount = fn_.regCount(RegClass::kPr);
    const std::size_t total = gpCount + fpCount + prCount;
    auto slot = [&](Reg reg) -> std::size_t {
      switch (reg.cls) {
        case RegClass::kGp:
          return reg.index;
        case RegClass::kFp:
          return gpCount + reg.index;
        case RegClass::kPr:
          return gpCount + fpCount + reg.index;
      }
      CASTED_UNREACHABLE("bad RegClass");
    };

    const std::size_t blocks = fn_.blockCount();
    // in[b] / out[b]: registers definitely assigned at block entry/exit.
    std::vector<std::vector<bool>> in(blocks, std::vector<bool>(total, false));
    std::vector<std::vector<bool>> out(blocks,
                                       std::vector<bool>(total, false));
    std::vector<bool> reached(blocks, false);

    // Entry: parameters are assigned.
    for (const Reg& param : fn_.params()) {
      in[0][slot(param)] = true;
    }
    reached[0] = true;

    auto transfer = [&](BlockId b, std::vector<bool> defined) {
      for (const Instruction& insn : fn_.block(b).insns()) {
        for (const Reg& def : insn.defs) {
          defined[slot(def)] = true;
        }
      }
      return defined;
    };

    bool changed = true;
    while (changed) {
      changed = false;
      for (BlockId b = 0; b < blocks; ++b) {
        if (!reached[b]) {
          continue;
        }
        std::vector<bool> newOut = transfer(b, in[b]);
        if (newOut != out[b]) {
          out[b] = newOut;
          changed = true;
        }
        for (BlockId succ : fn_.block(b).successors()) {
          if (!reached[succ]) {
            reached[succ] = true;
            in[succ] = out[b];
            changed = true;
          } else {
            // Meet: intersection.
            bool shrunk = false;
            for (std::size_t i = 0; i < total; ++i) {
              if (in[succ][i] && !out[b][i]) {
                in[succ][i] = false;
                shrunk = true;
              }
            }
            changed = changed || shrunk;
          }
        }
      }
    }

    for (BlockId b = 0; b < blocks; ++b) {
      if (!reached[b]) {
        continue;  // unreachable code: structurally allowed
      }
      std::vector<bool> defined = in[b];
      for (const Instruction& insn : fn_.block(b).insns()) {
        for (const Reg& use : insn.uses) {
          if (!defined[slot(use)]) {
            error(&insn, "register ", use.toString(),
                  " may be read before assignment");
          }
        }
        for (const Reg& def : insn.defs) {
          defined[slot(def)] = true;
        }
      }
    }
  }

  const Program& program_;
  const Function& fn_;
  std::vector<std::string>& errors_;
  bool structureOk_ = true;
};

}  // namespace

std::vector<std::string> verify(const Program& program) {
  std::vector<std::string> errors;
  if (program.functionCount() == 0) {
    errors.push_back("program has no functions");
    return errors;
  }
  if (program.entryFunction() >= program.functionCount()) {
    errors.push_back("program entry function id is invalid");
  } else if (!program.function(program.entryFunction()).params().empty()) {
    errors.push_back("entry function must take no parameters");
  }
  for (FuncId f = 0; f < program.functionCount(); ++f) {
    FunctionVerifier(program, program.function(f), errors).run();
  }
  return errors;
}

void verifyOrThrow(const Program& program) {
  const std::vector<std::string> errors = verify(program);
  if (errors.empty()) {
    return;
  }
  std::ostringstream out;
  out << "IR verification failed (" << errors.size() << " errors):";
  const std::size_t shown = std::min<std::size_t>(errors.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    out << "\n  " << errors[i];
  }
  if (shown < errors.size()) {
    out << "\n  ... and " << (errors.size() - shown) << " more";
  }
  throw FatalError(out.str());
}

}  // namespace casted::ir
