// Textual IR form.
//
// The printer/parser pair round-trips every Program, including the metadata
// the passes attach (origin tags, duplicate links, check guards, cluster
// assignments), rendered as trailing `!key=value` annotations.  Instructions
// referenced by a link (`!dup=` / `!guard=`) carry an explicit `!id=N`
// annotation; all other instruction ids are implicit.
//
//   func @main() -> () {
//   bb0:
//     g0 = movi 4096
//     g1 = load [g0+0] !id=1
//     g2 = load [g0+0] !dup=1
//     chk g1, g2 !guard=4
//     store [g0+8], g1 !id=4
//     halt g0
//   }
//   entry @main
#pragma once

#include <string>

#include "ir/function.h"

namespace casted::ir {

// Renders one instruction with its annotations (no newline).  When `program`
// is non-null, call targets print as `@name`; otherwise as `@fn<id>`.
// `printId` forces an `!id=` annotation.
std::string printInstruction(const Instruction& insn,
                             const Program* program = nullptr,
                             bool printId = false);

// Renders a whole function (with `program` for call-target names).
std::string printFunction(const Function& fn,
                          const Program* program = nullptr);

// Renders the whole program: globals, then functions, then the entry marker.
std::string printProgram(const Program& program);

}  // namespace casted::ir
