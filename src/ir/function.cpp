#include "ir/function.h"

#include "support/check.h"

namespace casted::ir {

const Instruction& BasicBlock::terminator() const {
  CASTED_CHECK(!insns_.empty()) << "block bb" << id_ << " is empty";
  const Instruction& last = insns_.back();
  CASTED_CHECK(last.isTerminator())
      << "block bb" << id_ << " does not end in a terminator";
  return last;
}

std::vector<BlockId> BasicBlock::successors() const {
  const Instruction& term = terminator();
  switch (term.op) {
    case Opcode::kBr:
      return {term.target};
    case Opcode::kBrCond:
      return {term.target, term.target2};
    default:
      return {};
  }
}

BasicBlock& Function::addBlock(std::string name) {
  const BlockId id = static_cast<BlockId>(blocks_.size());
  blocks_.emplace_back(id, std::move(name));
  return blocks_.back();
}

BasicBlock& Function::block(BlockId id) {
  CASTED_CHECK(id < blocks_.size())
      << "bad block id " << id << " in @" << name_;
  return blocks_[id];
}

const BasicBlock& Function::block(BlockId id) const {
  CASTED_CHECK(id < blocks_.size())
      << "bad block id " << id << " in @" << name_;
  return blocks_[id];
}

BasicBlock& Function::entry() { return block(0); }
const BasicBlock& Function::entry() const { return block(0); }

Reg Function::newReg(RegClass cls) {
  return Reg(cls, nextReg_[static_cast<int>(cls)]++);
}

std::uint32_t Function::regCount(RegClass cls) const {
  return nextReg_[static_cast<int>(cls)];
}

void Function::reserveRegsAtLeast(RegClass cls, std::uint32_t count) {
  auto& next = nextReg_[static_cast<int>(cls)];
  next = std::max(next, count);
}

std::size_t Function::insnCount() const {
  std::size_t count = 0;
  for (const BasicBlock& block : blocks_) {
    count += block.insns().size();
  }
  return count;
}

Function& Program::addFunction(std::string name) {
  const FuncId id = static_cast<FuncId>(funcs_.size());
  funcs_.emplace_back(id, std::move(name));
  if (entry_ == kInvalidFunc) {
    entry_ = id;
  }
  return funcs_.back();
}

Function& Program::function(FuncId id) {
  CASTED_CHECK(id < funcs_.size()) << "bad function id " << id;
  return funcs_[id];
}

const Function& Program::function(FuncId id) const {
  CASTED_CHECK(id < funcs_.size()) << "bad function id " << id;
  return funcs_[id];
}

Function* Program::findFunction(const std::string& name) {
  for (Function& func : funcs_) {
    if (func.name() == name) {
      return &func;
    }
  }
  return nullptr;
}

std::uint64_t Program::allocateGlobal(const std::string& name,
                                      std::uint64_t size) {
  CASTED_CHECK(!hasSymbol(name)) << "duplicate global symbol " << name;
  // Keep every symbol 8-byte aligned so 64-bit accesses are aligned.
  while (image_.size() % 8 != 0) {
    image_.push_back(0);
  }
  const std::uint64_t address = kGlobalBase + image_.size();
  image_.resize(image_.size() + size, 0);
  symbols_.push_back({name, address, size});
  return address;
}

std::uint64_t Program::allocateGlobal(const std::string& name,
                                      const std::vector<std::uint8_t>& bytes) {
  const std::uint64_t address = allocateGlobal(name, bytes.size());
  std::copy(bytes.begin(), bytes.end(),
            image_.begin() + static_cast<std::ptrdiff_t>(address - kGlobalBase));
  return address;
}

const GlobalSymbol& Program::symbol(const std::string& name) const {
  for (const GlobalSymbol& sym : symbols_) {
    if (sym.name == name) {
      return sym;
    }
  }
  throw FatalError("unknown global symbol: " + name);
}

bool Program::hasSymbol(const std::string& name) const {
  for (const GlobalSymbol& sym : symbols_) {
    if (sym.name == name) {
      return true;
    }
  }
  return false;
}

std::size_t Program::insnCount() const {
  std::size_t count = 0;
  for (const Function& func : funcs_) {
    count += func.insnCount();
  }
  return count;
}

}  // namespace casted::ir
