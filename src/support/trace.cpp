#include "support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#ifndef CASTED_GIT_DESCRIBE
#define CASTED_GIT_DESCRIBE "unknown"
#endif

namespace casted::trace {
namespace detail {

std::atomic<int> gState{0};

namespace {

// One buffered event.  `dur == kInstant` marks an instant event.
constexpr std::uint64_t kInstant = ~0ULL;

struct Event {
  std::string name;
  std::uint64_t startNs = 0;
  std::uint64_t durNs = kInstant;
  std::uint32_t tid = 0;
};

struct ThreadBuffer;

// Process-wide sink.  Allocated once and deliberately leaked so no static
// destruction order can invalidate it under late thread-local flushes.
struct Registry {
  std::mutex mu;
  std::string path;
  std::vector<ThreadBuffer*> live;
  std::vector<Event> retiredEvents;
  std::map<std::string, std::int64_t, std::less<>> retiredCounters;
  std::map<std::string, std::string, std::less<>> metadata;
  std::uint32_t nextTid = 1;
};

Registry& registry() {
  static Registry* g = new Registry;
  return *g;
}

std::uint64_t processStartNs() {
  static const std::uint64_t start =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return start;
}

// Per-thread event/counter buffer.  Its own mutex is uncontended on the
// owning thread's hot path and only fought over by a concurrent exporter.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::uint32_t tid = 0;

  ThreadBuffer() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    tid = reg.nextTid++;
    reg.live.push_back(this);
  }

  ~ThreadBuffer() {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    flushLocked(reg);
    std::erase(reg.live, this);
  }

  // Moves this buffer's contents into the registry.  Caller holds reg.mu;
  // the owning thread is this thread (destructor) so `mu` is free.
  void flushLocked(Registry& reg) {
    std::lock_guard<std::mutex> lock(mu);
    reg.retiredEvents.insert(reg.retiredEvents.end(),
                             std::make_move_iterator(events.begin()),
                             std::make_move_iterator(events.end()));
    events.clear();
    for (auto& [name, value] : counters) {
      reg.retiredCounters[name] += value;
    }
    counters.clear();
  }

  void addCounter(std::string_view name, std::int64_t delta) {
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [existing, value] : counters) {
      if (existing == name) {
        value += delta;
        return;
      }
    }
    counters.emplace_back(std::string(name), delta);
  }

  void addEvent(Event event) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::move(event));
  }
};

ThreadBuffer& threadBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

void appendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microseconds with nanosecond fraction, the unit Chrome's "ts"/"dur"
// fields expect.
void appendMicros(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::uint64_t nowNs() {
  const std::uint64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return now - processStartNs();
}

bool initFromEnv() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  int state = gState.load(std::memory_order_relaxed);
  if (state != 0) {  // lost the race to another resolver
    return state == 2;
  }
  const char* env = std::getenv("CASTED_TRACE");
  if (env != nullptr && *env != '\0') {
    reg.path = env;
    state = 2;
  } else {
    state = 1;
  }
  gState.store(state, std::memory_order_relaxed);
  return state == 2;
}

void counterAddSlow(std::string_view name, std::int64_t delta) {
  threadBuffer().addCounter(name, delta);
}

void instantSlow(std::string_view name) {
  ThreadBuffer& buffer = threadBuffer();
  Event event;
  event.name.assign(name);
  event.startNs = nowNs();
  event.tid = buffer.tid;
  buffer.addEvent(std::move(event));
}

void scopeEndSlow(const std::string& name, std::uint64_t startNs) {
  ThreadBuffer& buffer = threadBuffer();
  Event event;
  event.name = name;
  event.startNs = startNs;
  event.durNs = nowNs() - startNs;
  event.tid = buffer.tid;
  buffer.addEvent(std::move(event));
}

}  // namespace detail

using detail::registry;

void enable(std::string path) {
  detail::Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.path = std::move(path);
  detail::gState.store(2, std::memory_order_relaxed);
}

void disable() { detail::gState.store(1, std::memory_order_relaxed); }

std::string outputPath() {
  enabled();  // force env resolution so the path is populated
  detail::Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.path;
}

void setMetadata(std::string_view key, std::string_view value) {
  if (!enabled()) {
    return;
  }
  detail::Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.metadata.insert_or_assign(std::string(key), std::string(value));
}

namespace {

// Snapshot of everything collected so far: retired buffers plus the live
// ones (each sampled under its own lock).
struct MergedState {
  std::vector<detail::Event> events;
  std::map<std::string, std::int64_t, std::less<>> counters;
  std::map<std::string, std::string, std::less<>> metadata;
};

MergedState mergeAll() {
  detail::Registry& reg = registry();
  MergedState merged;
  std::lock_guard<std::mutex> lock(reg.mu);
  merged.events = reg.retiredEvents;
  merged.counters = reg.retiredCounters;
  merged.metadata = reg.metadata;
  for (detail::ThreadBuffer* buffer : reg.live) {
    std::lock_guard<std::mutex> bufferLock(buffer->mu);
    merged.events.insert(merged.events.end(), buffer->events.begin(),
                         buffer->events.end());
    for (const auto& [name, value] : buffer->counters) {
      merged.counters[name] += value;
    }
  }
  return merged;
}

}  // namespace

std::int64_t counterValue(std::string_view name) {
  const MergedState merged = mergeAll();
  const auto it = merged.counters.find(name);
  return it == merged.counters.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::int64_t>> counterSnapshot() {
  const MergedState merged = mergeAll();
  return {merged.counters.begin(), merged.counters.end()};
}

std::string reportJson() {
  MergedState merged = mergeAll();
  std::stable_sort(merged.events.begin(), merged.events.end(),
                   [](const detail::Event& a, const detail::Event& b) {
                     return a.startNs < b.startNs;
                   });
  std::string out;
  out.reserve(256 + merged.events.size() * 96);
  out += "{\n  \"traceEvents\": [";
  bool first = true;
  for (const detail::Event& event : merged.events) {
    out += first ? "\n    {" : ",\n    {";
    first = false;
    out += "\"name\": ";
    detail::appendJsonString(out, event.name);
    out += ", \"cat\": \"casted\", \"pid\": 1, \"tid\": ";
    out += std::to_string(event.tid);
    out += ", \"ts\": ";
    detail::appendMicros(out, event.startNs);
    if (event.durNs == ~0ULL) {
      out += ", \"ph\": \"i\", \"s\": \"t\"";
    } else {
      out += ", \"ph\": \"X\", \"dur\": ";
      detail::appendMicros(out, event.durNs);
    }
    out += '}';
  }
  out += "\n  ],\n  \"metadata\": {";
  merged.metadata.emplace("git_describe", CASTED_GIT_DESCRIBE);
  merged.metadata.emplace("clock", "steady_clock, ns since session start");
  first = true;
  for (const auto& [key, value] : merged.metadata) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    detail::appendJsonString(out, key);
    out += ": ";
    detail::appendJsonString(out, value);
  }
  out += "\n  },\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : merged.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    detail::appendJsonString(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += "\n  }\n}\n";
  return out;
}

bool writeReport() { return writeReportTo(outputPath()); }

bool writeReportTo(const std::string& path) {
  if (!enabled() || path.empty()) {
    return false;
  }
  const std::string json = reportJson();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  return std::fclose(out) == 0 && ok;
}

void resetForTest() {
  detail::Registry& reg = registry();
  // Flush the calling thread first so its buffer does not re-merge stale
  // data into the cleared registry at thread exit.
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    for (detail::ThreadBuffer* buffer : reg.live) {
      std::lock_guard<std::mutex> bufferLock(buffer->mu);
      buffer->events.clear();
      buffer->counters.clear();
    }
    reg.retiredEvents.clear();
    reg.retiredCounters.clear();
    reg.metadata.clear();
    reg.path.clear();
  }
  detail::gState.store(0, std::memory_order_relaxed);
}

}  // namespace casted::trace
