// support/trace — the library's observability subsystem: thread-safe named
// counters, scoped duration events and instant events, buffered per thread
// and exported as Chrome `chrome://tracing` JSON plus a flat counter summary.
//
// Lifecycle.  A single process-wide trace session is either active or
// inactive.  It activates in one of two ways:
//   * programmatically — trace::enable(path) (path may be empty: collect
//     in memory only, e.g. for tests);
//   * by environment override — CASTED_TRACE=<path>, resolved lazily on the
//     first enabled() query, so library users get tracing without any
//     main() plumbing.
// Exporters (the bench/example binaries) finish with trace::writeReport(),
// which emits the JSON to the session path and returns whether a file was
// written.
//
// Cost contract.  Every instrumentation entry point is an inline guard
// around a single relaxed atomic load: when the session is inactive, a
// counter add, instant event or Scope construction performs NO work beyond
// that load — no thread-local access, no allocation, no string copy.  The
// campaign-throughput acceptance bound (<= 2% with tracing disabled,
// DESIGN.md §11) leans on exactly this property.
//
// Determinism contract.  Tracing only observes: it never feeds back into
// compilation, simulation or fault injection, so campaign and exhaustive
// reports are bit-identical with the session active or inactive
// (tests/trace_test.cpp and the campaign oracle test assert this).
//
// Threading.  Events and counters are buffered in a thread-local buffer
// (one uncontended mutex acquisition per record); buffers flush into a
// process-wide registry when their thread exits, and the exporter merges
// retired and still-live buffers under the registry lock.  Counters with
// the same name merge by summation across threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace casted::trace {

namespace detail {

// 0 = unresolved (consult CASTED_TRACE on first query), 1 = inactive,
// 2 = active.
extern std::atomic<int> gState;

// Resolves gState from the CASTED_TRACE environment variable; returns the
// resulting enabled state.
bool initFromEnv();

void counterAddSlow(std::string_view name, std::int64_t delta);
void instantSlow(std::string_view name);
void scopeEndSlow(const std::string& name, std::uint64_t startNs);
std::uint64_t nowNs();

}  // namespace detail

// True while the trace session is active.  The inline fast path is one
// relaxed atomic load; only the very first query may fall into the
// environment lookup.
inline bool enabled() {
  const int state = detail::gState.load(std::memory_order_relaxed);
  if (state == 0) {
    return detail::initFromEnv();
  }
  return state == 2;
}

// Activates the session programmatically.  `path` is where writeReport()
// emits the JSON; an empty path collects in memory only.  Overrides any
// CASTED_TRACE resolution.
void enable(std::string path);

// Deactivates the session.  Already-collected events and counters are kept
// (writeReportTo() can still export them) until resetForTest().
void disable();

// The session's output path ("" when none).
std::string outputPath();

// Adds `delta` to the named counter (created on first use; negative deltas
// are legal — instruction-delta counters shrink under DCE).  No-op while
// the session is inactive.
inline void counterAdd(std::string_view name, std::int64_t delta = 1) {
  if (enabled()) {
    detail::counterAddSlow(name, delta);
  }
}

// Records an instant event at the current timestamp.  No-op while inactive.
inline void instant(std::string_view name) {
  if (enabled()) {
    detail::instantSlow(name);
  }
}

// RAII duration event: construction stamps the start, destruction emits one
// complete ("ph":"X") Chrome event.  `gate` lets callers thread a
// per-operation opt-out (e.g. PipelineOptions::trace) through without
// branching at every use site.  Inactive-session cost: the enabled() load.
class Scope {
 public:
  explicit Scope(std::string_view name, bool gate = true) {
    if (gate && enabled()) {
      name_.assign(name);
      startNs_ = detail::nowNs();
      armed_ = true;
    }
  }
  ~Scope() {
    if (armed_) {
      detail::scopeEndSlow(name_, startNs_);
    }
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  std::string name_;
  std::uint64_t startNs_ = 0;
  bool armed_ = false;
};

// Attaches one key/value pair to the report's "metadata" object (threads,
// engine, injection mode, ...).  Last write per key wins.  The session
// always records "git_describe" (baked in at configure time) and
// "clock" on its own.
void setMetadata(std::string_view key, std::string_view value);

// Merged value of one counter across all threads (retired and live); 0 for
// a counter never touched.
std::int64_t counterValue(std::string_view name);

// Snapshot of every counter, merged across threads, sorted by name.
std::vector<std::pair<std::string, std::int64_t>> counterSnapshot();

// Renders the full report: {"traceEvents": [...], "metadata": {...},
// "counters": {...}} — loadable by chrome://tracing / Perfetto, which
// ignore the extra top-level keys.
std::string reportJson();

// Writes reportJson() to the session path.  Returns true when a file was
// written; false (and touches nothing) when the session is inactive or has
// no path.
bool writeReport();

// Writes reportJson() to an explicit path.  Refuses (returns false, no
// file) while the session is inactive — the disabled mode must stay
// observationally silent.
bool writeReportTo(const std::string& path);

// Test hook: drops all buffered events, counters and metadata, and returns
// the session to the unresolved state (the next enabled() query re-reads
// CASTED_TRACE).  Not safe concurrently with instrumented threads.
void resetForTest();

}  // namespace casted::trace
