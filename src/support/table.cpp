#include "support/table.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/check.h"

namespace casted {
namespace {

bool looksNumeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  for (char c : cell) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' && c != '%' &&
        c != 'x' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CASTED_CHECK(!header_.empty()) << "table needs at least one column";
}

void TextTable::addRow(std::vector<std::string> cells) {
  CASTED_CHECK(cells.size() == header_.size())
      << "row arity " << cells.size() << " != header arity " << header_.size();
  rows_.push_back({false, std::move(cells)});
}

void TextTable::addSeparator() { rows_.push_back({true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto renderCells = [&](const std::vector<std::string>& cells,
                         std::ostringstream& out) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      out << "| ";
      if (looksNumeric(cells[i])) {
        out << std::string(pad, ' ') << cells[i];
      } else {
        out << cells[i] << std::string(pad, ' ');
      }
      out << ' ';
    }
    out << "|\n";
  };

  auto renderRule = [&](std::ostringstream& out) {
    for (std::size_t width : widths) {
      out << '+' << std::string(width + 2, '-');
    }
    out << "+\n";
  };

  std::ostringstream out;
  renderRule(out);
  renderCells(header_, out);
  renderRule(out);
  for (const Row& row : rows_) {
    if (row.separator) {
      renderRule(out);
    } else {
      renderCells(row.cells, out);
    }
  }
  renderRule(out);
  return out.str();
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::addRow(std::vector<std::string> cells) {
  CASTED_CHECK(cells.size() == header_.size())
      << "row arity " << cells.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::render() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') {
        quoted += '"';
      }
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto renderRow = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        out << ',';
      }
      out << quote(cells[i]);
    }
    out << '\n';
  };
  renderRow(header_);
  for (const auto& row : rows_) {
    renderRow(row);
  }
  return out.str();
}

void CsvWriter::writeFile(const std::string& path) const {
  std::ofstream file(path);
  CASTED_CHECK(file.good()) << "cannot open " << path << " for writing";
  file << render();
  CASTED_CHECK(file.good()) << "write to " << path << " failed";
}

}  // namespace casted
