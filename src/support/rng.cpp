#include "support/rng.h"

#include "support/check.h"

namespace casted {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t bound) {
  CASTED_CHECK(bound != 0) << "nextBelow requires a positive bound";
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` that fits in 64 bits.
  const std::uint64_t limit = bound * (~0ULL / bound);
  std::uint64_t draw = next();
  while (draw >= limit) {
    draw = next();
  }
  return draw % bound;
}

std::int64_t Rng::nextInRange(std::int64_t lo, std::int64_t hi) {
  CASTED_CHECK(lo <= hi) << "empty range [" << lo << ", " << hi << "]";
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   nextBelow(span));
}

double Rng::nextDouble() {
  // 53 significant bits, uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double p) { return nextDouble() < p; }

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 step: advance the state by (stream + 1) golden-ratio strides,
  // then run the output finalizer.  +1 keeps stream 0 from collapsing to the
  // bare seed.
  std::uint64_t z = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace casted
