// Validated environment-variable parsing, shared by the bench harnesses
// (CASTED_TRIALS, CASTED_SCALE, ...) and the library's own observability
// knobs (CASTED_PROGRESS).
//
// History: the old bench-local helper called strtoul with a null endptr and
// cast the result, so CASTED_TRIALS=1e6 silently parsed as 1, junk as 0,
// and anything above UINT32_MAX wrapped.  This helper validates the full
// string, range-checks against uint32, and throws FatalError (CASTED_CHECK)
// naming the variable on malformed input — a misconfigured sweep should die
// loudly, not run quietly with the wrong size.
#pragma once

#include <cstdint>

namespace casted {

// Value of env var `name` parsed as a base-10 unsigned 32-bit integer, or
// `fallback` when the variable is unset or empty.  Every character must be
// a digit and the value must fit in uint32 — "1e6", "junk", "-1", " 5" and
// 4294967296 all throw FatalError with a message naming the variable.
std::uint32_t envU32(const char* name, std::uint32_t fallback);

}  // namespace casted
