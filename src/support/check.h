// Lightweight invariant checking for the CASTED library.
//
// CASTED_CHECK is used for conditions that indicate a programming error in
// the library or its caller (C++ Core Guidelines I.6/E.12: document and
// enforce preconditions).  Failures throw casted::FatalError, which carries
// the failing expression, location, and an optional formatted message, so
// library misuse is reported eagerly instead of corrupting state.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace casted {

// Thrown when an internal invariant or a caller-facing precondition fails.
class FatalError : public std::logic_error {
 public:
  explicit FatalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

// Builds the final FatalError message; kept out of the macro so the macro
// body stays small at every expansion site.
[[noreturn]] void throwCheckFailure(const char* expr, const char* file,
                                    int line, const std::string& message);

// Accumulates the optional streamed message of CASTED_CHECK.
class CheckMessageStream {
 public:
  CheckMessageStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}

  template <typename T>
  CheckMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageStream() noexcept(false) {
    throwCheckFailure(expr_, file_, line_, stream_.str());
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace casted

// Evaluates `cond`; on failure throws casted::FatalError.  Extra context can
// be streamed: CASTED_CHECK(x > 0) << "x=" << x;
#define CASTED_CHECK(cond)                                                  \
  if (cond) {                                                               \
  } else                                                                    \
    ::casted::detail::CheckMessageStream(#cond, __FILE__, __LINE__)

// Marks unreachable control flow; always throws.
#define CASTED_UNREACHABLE(msg)                                             \
  ::casted::detail::throwCheckFailure("unreachable", __FILE__, __LINE__, msg)
