// ASCII table rendering for the benchmark harnesses: every figure/table
// reproduction prints its rows through this writer so output is uniform and
// diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace casted {

// Column-aligned ASCII table.  Usage:
//   TextTable t({"bench", "SCED", "DCED", "CASTED"});
//   t.addRow({"cjpeg", "1.71", "2.10", "1.58"});
//   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  // Appends a horizontal separator line.
  void addSeparator();

  // Renders the table with a header rule and right-aligned numeric-looking
  // cells.
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

// Minimal CSV writer used to dump experiment data for offline plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);

  // Serialises with RFC-4180 quoting where needed.
  std::string render() const;

  // Writes render() to `path`; throws FatalError on I/O failure.
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace casted
