#include "support/check.h"

namespace casted::detail {

void throwCheckFailure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream out;
  out << "CASTED_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    out << " — " << message;
  }
  throw FatalError(out.str());
}

}  // namespace casted::detail
