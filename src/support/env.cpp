#include "support/env.h"

#include <cstdlib>
#include <limits>
#include <string_view>

#include "support/check.h"

namespace casted {

std::uint32_t envU32(const char* name, std::uint32_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const std::string_view text(value);
  std::uint64_t parsed = 0;
  for (const char c : text) {
    CASTED_CHECK(c >= '0' && c <= '9')
        << name << ": malformed unsigned integer '" << text
        << "' (every character must be a decimal digit)";
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
    CASTED_CHECK(parsed <= std::numeric_limits<std::uint32_t>::max())
        << name << ": value '" << text << "' exceeds the uint32 range";
  }
  return static_cast<std::uint32_t>(parsed);
}

}  // namespace casted
