// Small statistics helpers used by the benchmark harnesses and the fault
// coverage reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace casted {

// Summary statistics over a sample.  All members are 0 for an empty sample
// except count.
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  // Geometric mean.  Defined only for strictly positive, non-empty samples;
  // `geomeanValid` says whether `geomean` is meaningful (instead of the old
  // silent 0.0 that was indistinguishable from a genuine tiny geomean).
  double geomean = 0.0;
  bool geomeanValid = false;
  // Sample (n-1, Bessel-corrected) standard deviation: every caller feeds
  // summarize() a sample of bench repetitions, not a full population.
  // Defined as 0 for n <= 1.
  double stddev = 0.0;
};

// Computes summary statistics in one pass over `values`.
SampleSummary summarize(std::span<const double> values);

// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

// Geometric mean; requires strictly positive values (throws FatalError
// otherwise — the loud twin of SampleSummary::geomeanValid); 0 for an empty
// span.
double geomean(std::span<const double> values);

// A two-sided confidence interval for a binomial proportion.
struct ProportionInterval {
  double low = 0.0;
  double high = 1.0;

  bool contains(double p) const { return low <= p && p <= high; }
};

// Wilson score interval for `successes` out of `trials` Bernoulli draws at
// critical value `z` (default: two-sided 99%).  Unlike the normal
// approximation it behaves sensibly at p near 0 or 1 and for small samples —
// exactly the regime of the rare data-corrupt outcome class.  An empty
// sample yields the vacuous [0, 1].
inline constexpr double kZ99 = 2.5758293035489004;
ProportionInterval wilsonInterval(std::uint64_t successes,
                                  std::uint64_t trials, double z = kZ99);

// Formats `value` with `digits` digits after the decimal point.
std::string formatFixed(double value, int digits);

// Formats `fraction` (0..1) as a percentage with one decimal, e.g. "42.5%".
std::string formatPercent(double fraction);

}  // namespace casted
