// Small statistics helpers used by the benchmark harnesses and the fault
// coverage reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace casted {

// Summary statistics over a sample.  All members are 0 for an empty sample
// except count.
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double geomean = 0.0;  // only meaningful for strictly positive samples
  double stddev = 0.0;   // population standard deviation
};

// Computes summary statistics in one pass over `values`.
SampleSummary summarize(std::span<const double> values);

// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

// Geometric mean; requires strictly positive values; 0 for an empty span.
double geomean(std::span<const double> values);

// Formats `value` with `digits` digits after the decimal point.
std::string formatFixed(double value, int digits);

// Formats `fraction` (0..1) as a percentage with one decimal, e.g. "42.5%".
std::string formatPercent(double fraction);

}  // namespace casted
