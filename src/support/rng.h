// Deterministic pseudo-random number generation for workload data and the
// Monte Carlo fault-injection campaigns.
//
// We implement xoshiro256** (Blackman & Vigna) instead of relying on
// std::mt19937 so that streams are cheap to fork (one generator per Monte
// Carlo trial) and the sequence is stable across standard libraries — the
// fault-injection experiments must be reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace casted {

// xoshiro256** PRNG.  Copyable; copies continue independent deterministic
// streams.
class Rng {
 public:
  // Seeds via splitmix64 so that nearby seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Next raw 64-bit value.
  std::uint64_t next();

  // Uniform in [0, bound).  bound must be non-zero.  Uses rejection sampling
  // (unbiased).
  std::uint64_t nextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double nextDouble();

  // Bernoulli draw with probability p in [0, 1].
  bool nextBool(double p = 0.5);

  // Forks a child generator whose stream is independent of this one; used to
  // give each Monte Carlo trial its own stream regardless of how many draws
  // other trials consume.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

// Derives the seed for sub-stream `stream` of `seed` with a SplitMix64 mix
// (golden-ratio stride + finalizer).  Use this — not `seed ^ stream` or
// `seed + stream` — wherever many generators are forked from one master
// seed: the raw combinations collide across nearby master seeds (seed A,
// stream i and seed B, stream j coincide whenever A^i == B^j), whereas the
// mixed value decorrelates every (seed, stream) pair.  The fault campaign
// seeds each trial's Rng with deriveStreamSeed(seed, trialIndex).
std::uint64_t deriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace casted
