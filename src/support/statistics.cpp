#include "support/statistics.h"

#include <cmath>
#include <cstdio>

#include "support/check.h"

namespace casted {

SampleSummary summarize(std::span<const double> values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  double logSum = 0.0;
  bool allPositive = true;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    if (v > 0.0) {
      logSum += std::log(v);
    } else {
      allPositive = false;
    }
  }
  s.mean = sum / static_cast<double>(values.size());
  s.geomeanValid = allPositive;
  s.geomean =
      allPositive ? std::exp(logSum / static_cast<double>(values.size())) : 0.0;
  // Sample (n-1) standard deviation: the inputs are bench repetitions, i.e.
  // a sample, not the population.  A single observation has no spread
  // estimate, so stddev is defined as 0 for n <= 1.
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) {
      sq += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return s;
}

double mean(std::span<const double> values) { return summarize(values).mean; }

double geomean(std::span<const double> values) {
  const SampleSummary s = summarize(values);
  // Same validity rule as SampleSummary::geomeanValid, enforced loudly: the
  // throwing path and the flag path can never disagree.
  if (!values.empty() && !s.geomeanValid) {
    for (double v : values) {
      CASTED_CHECK(v > 0.0) << "geomean requires positive values, got " << v;
    }
  }
  return s.geomean;
}

ProportionInterval wilsonInterval(std::uint64_t successes,
                                  std::uint64_t trials, double z) {
  CASTED_CHECK(successes <= trials)
      << "successes " << successes << " > trials " << trials;
  if (trials == 0) {
    return {0.0, 1.0};
  }
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  ProportionInterval interval;
  interval.low = std::max(0.0, (centre - margin) / denom);
  interval.high = std::min(1.0, (centre + margin) / denom);
  return interval;
}

std::string formatFixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string formatPercent(double fraction) {
  return formatFixed(fraction * 100.0, 1) + "%";
}

}  // namespace casted
