#include "support/statistics.h"

#include <cmath>
#include <cstdio>

#include "support/check.h"

namespace casted {

SampleSummary summarize(std::span<const double> values) {
  SampleSummary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  double logSum = 0.0;
  bool allPositive = true;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    if (v > 0.0) {
      logSum += std::log(v);
    } else {
      allPositive = false;
    }
  }
  s.mean = sum / static_cast<double>(values.size());
  s.geomean =
      allPositive ? std::exp(logSum / static_cast<double>(values.size())) : 0.0;
  double sq = 0.0;
  for (double v : values) {
    sq += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double mean(std::span<const double> values) { return summarize(values).mean; }

double geomean(std::span<const double> values) {
  for (double v : values) {
    CASTED_CHECK(v > 0.0) << "geomean requires positive values, got " << v;
  }
  return summarize(values).geomean;
}

std::string formatFixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string formatPercent(double fraction) {
  return formatFixed(fraction * 100.0, 1) + "%";
}

}  // namespace casted
