#include "sched/reservation_table.h"

#include "support/check.h"

namespace casted::sched {

const ReservationTable::CycleState ReservationTable::kEmpty = {};

ReservationTable::ReservationTable(const arch::MachineConfig& config)
    : config_(&config),
      cycles_(config.clusterCount),
      used_(config.clusterCount, 0) {}

const ReservationTable::CycleState& ReservationTable::state(
    std::uint32_t cluster, std::uint32_t cycle) const {
  CASTED_CHECK(cluster < cycles_.size()) << "bad cluster " << cluster;
  if (cycle >= cycles_[cluster].size()) {
    return kEmpty;
  }
  return cycles_[cluster][cycle];
}

ReservationTable::CycleState& ReservationTable::mutableState(
    std::uint32_t cluster, std::uint32_t cycle) {
  CASTED_CHECK(cluster < cycles_.size()) << "bad cluster " << cluster;
  if (cycle >= cycles_[cluster].size()) {
    cycles_[cluster].resize(cycle + 1);
  }
  return cycles_[cluster][cycle];
}

bool ReservationTable::canIssue(std::uint32_t cluster, std::uint32_t cycle,
                                ir::FuClass cls) const {
  if (cycle < closedCycles_.size() && closedCycles_[cycle]) {
    return false;  // a branch already ended this machine-wide bundle
  }
  const CycleState& s = state(cluster, cycle);
  if (s.total >= config_->issueWidth) {
    return false;
  }
  if (cls == ir::FuClass::kMem && s.mem >= config_->portLimit(cls)) {
    return false;
  }
  if (isFp(cls) && s.fp >= config_->portLimit(cls)) {
    return false;
  }
  if (cls == ir::FuClass::kBranch && s.branch >= config_->portLimit(cls)) {
    return false;
  }
  return true;
}

std::uint32_t ReservationTable::earliestIssue(std::uint32_t cluster,
                                              std::uint32_t fromCycle,
                                              ir::FuClass cls) const {
  std::uint32_t cycle = fromCycle;
  while (!canIssue(cluster, cycle, cls)) {
    ++cycle;
  }
  return cycle;
}

std::uint32_t ReservationTable::reserve(std::uint32_t cluster,
                                        std::uint32_t cycle,
                                        ir::FuClass cls) {
  CASTED_CHECK(canIssue(cluster, cycle, cls))
      << "slot not available: cluster " << cluster << " cycle " << cycle;
  CycleState& s = mutableState(cluster, cycle);
  const std::uint32_t slot = s.total;
  ++s.total;
  if (cls == ir::FuClass::kMem) {
    ++s.mem;
  }
  if (isFp(cls)) {
    ++s.fp;
  }
  if (cls == ir::FuClass::kBranch) {
    ++s.branch;
    if (config_->branchClosesBundle) {
      if (cycle >= closedCycles_.size()) {
        closedCycles_.resize(cycle + 1, false);
      }
      closedCycles_[cycle] = true;
    }
  }
  ++used_[cluster];
  return slot;
}

std::uint32_t ReservationTable::usedSlots(std::uint32_t cluster) const {
  CASTED_CHECK(cluster < used_.size()) << "bad cluster " << cluster;
  return used_[cluster];
}

}  // namespace casted::sched
