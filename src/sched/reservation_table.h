// Issue-slot reservation table.
//
// Shared by the list scheduler and BUG (Algorithm 2 line 17, "Reserve issue
// slots in reservation table").  Tracks, per cluster and cycle, how many of
// the issue slots are taken, plus per-functional-unit-class counts so
// optional port limits (e.g. one memory port per cluster) can be enforced.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine_config.h"

namespace casted::sched {

class ReservationTable {
 public:
  explicit ReservationTable(const arch::MachineConfig& config);

  // True when `cls` can issue on `cluster` at `cycle`.
  bool canIssue(std::uint32_t cluster, std::uint32_t cycle,
                ir::FuClass cls) const;

  // Earliest cycle >= `fromCycle` at which `cls` can issue on `cluster`.
  std::uint32_t earliestIssue(std::uint32_t cluster, std::uint32_t fromCycle,
                              ir::FuClass cls) const;

  // Marks one slot used; returns the slot index within the cycle.
  std::uint32_t reserve(std::uint32_t cluster, std::uint32_t cycle,
                        ir::FuClass cls);

  // Total slots reserved so far on `cluster` (used for tie-breaking).
  std::uint32_t usedSlots(std::uint32_t cluster) const;

  const arch::MachineConfig& config() const { return *config_; }

 private:
  struct CycleState {
    std::uint32_t total = 0;
    std::uint32_t mem = 0;
    std::uint32_t fp = 0;
    std::uint32_t branch = 0;
  };

  const CycleState& state(std::uint32_t cluster, std::uint32_t cycle) const;
  CycleState& mutableState(std::uint32_t cluster, std::uint32_t cycle);

  static bool isFp(ir::FuClass cls) {
    return cls == ir::FuClass::kFpAlu || cls == ir::FuClass::kFpMul ||
           cls == ir::FuClass::kFpDiv;
  }

  const arch::MachineConfig* config_;
  std::vector<std::vector<CycleState>> cycles_;  // [cluster][cycle]
  std::vector<bool> closedCycles_;               // machine-wide group ends
  std::vector<std::uint32_t> used_;              // per cluster
  static const CycleState kEmpty;
};

}  // namespace casted::sched
