// Cluster-aware list scheduler.
//
// Classic priority list scheduling over the block DFG, honouring the cluster
// already assigned to each instruction by the assignment pass (SCED, DCED or
// BUG).  The operand-ready model prices cross-cluster register communication:
// a consumer on a different cluster than a data-edge producer waits an extra
// `interClusterDelay` cycles (paper §III-A — remote register-file reads go
// through the interconnect).  Guard/memory/ordering edges carry no cross-
// cluster penalty: control and memory are shared in the lockstep machine.
#pragma once

#include "arch/machine_config.h"
#include "dfg/dfg.h"
#include "pm/analysis_manager.h"
#include "sched/schedule.h"

namespace casted::sched {

// Schedules one block.  Every instruction's `cluster` field must be a valid
// cluster index in `config`.
BlockSchedule scheduleBlock(const dfg::DataFlowGraph& graph,
                            const arch::MachineConfig& config);

// Schedules every block of `fn`.  With `am`, block DFGs come from the
// manager's cache (typically warm from the assignment pass, which preserves
// them) instead of being rebuilt.
FunctionSchedule scheduleFunction(const ir::Function& fn,
                                  const arch::MachineConfig& config,
                                  pm::AnalysisManager* am = nullptr);

// Schedules every function of `program`.
ProgramSchedule scheduleProgram(const ir::Program& program,
                                const arch::MachineConfig& config,
                                pm::AnalysisManager* am = nullptr);

// The operand-ready helper shared with BUG's completion-cycle heuristic:
// earliest cycle `node` could issue on `cluster`, given issue cycles and
// clusters of its already-placed predecessors.
std::uint32_t operandReadyCycle(const dfg::DataFlowGraph& graph,
                                std::uint32_t node, std::uint32_t cluster,
                                const std::vector<std::uint32_t>& issueCycle,
                                const std::vector<std::uint32_t>& clusterOf,
                                std::uint32_t interClusterDelay);

}  // namespace casted::sched
