#include "sched/schedule.h"

#include <algorithm>
#include <sstream>

namespace casted::sched {

std::string BlockSchedule::render(const ir::BasicBlock& block,
                                  std::uint32_t clusterCount,
                                  std::uint32_t issueWidth) const {
  // Gather per (cycle, cluster) mnemonic lists.
  std::uint32_t maxCycle = 0;
  for (const ScheduledInsn& si : insns) {
    maxCycle = std::max(maxCycle, si.cycle);
  }
  std::vector<std::vector<std::string>> cells((maxCycle + 1) * clusterCount);
  for (const ScheduledInsn& si : insns) {
    const ir::Instruction& insn = block.insns()[si.node];
    std::string label = insn.info().name;
    if (insn.origin == ir::InsnOrigin::kDuplicate) {
      label += "'";
    }
    cells[si.cycle * clusterCount + si.cluster].push_back(label);
  }
  // Column widths.
  std::size_t width = 8;
  for (const auto& cell : cells) {
    std::size_t cellWidth = 0;
    for (const std::string& label : cell) {
      cellWidth += label.size() + 1;
    }
    width = std::max(width, cellWidth + 1);
  }
  std::ostringstream out;
  out << "cycle";
  for (std::uint32_t c = 0; c < clusterCount; ++c) {
    std::string head = " | cluster" + std::to_string(c) + " (" +
                       std::to_string(issueWidth) + "-wide)";
    head.resize(std::max(head.size(), width + 3), ' ');
    out << head;
  }
  out << '\n';
  for (std::uint32_t cycle = 0; cycle <= maxCycle; ++cycle) {
    std::string cycleText = std::to_string(cycle);
    cycleText.resize(5, ' ');
    out << cycleText;
    for (std::uint32_t c = 0; c < clusterCount; ++c) {
      std::string body;
      for (const std::string& label : cells[cycle * clusterCount + c]) {
        body += label + ' ';
      }
      std::string cell = " | " + body;
      cell.resize(width + 3, ' ');
      out << cell;
    }
    out << '\n';
  }
  out << "length: " << length << " cycles\n";
  return out.str();
}

std::uint64_t FunctionSchedule::totalLength() const {
  std::uint64_t total = 0;
  for (const BlockSchedule& block : blocks) {
    total += block.length;
  }
  return total;
}

}  // namespace casted::sched
