// Schedule containers: the static VLIW bundle schedule the list scheduler
// produces and the timing simulator consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.h"

namespace casted::sched {

// One scheduled instruction: where and when it issues.
struct ScheduledInsn {
  std::uint32_t node = 0;     // index into the block's instruction vector
  std::uint32_t cycle = 0;    // issue cycle, relative to block start
  std::uint32_t cluster = 0;
  std::uint32_t slot = 0;     // issue slot within (cluster, cycle)
  std::uint32_t latency = 0;  // operation latency used by the scheduler
};

// Static schedule of one basic block.
struct BlockSchedule {
  std::vector<ScheduledInsn> insns;  // sorted by (cycle, cluster, slot)
  std::uint32_t length = 0;          // cycles until all results complete

  // issueCycle[node] for O(1) lookup by the simulator.
  std::vector<std::uint32_t> issueCycle;

  // Renders the bundle view used by the motivating-example bench (one row
  // per cycle, one column per cluster), e.g.
  //   cycle | cluster0        | cluster1
  //   0     | A  B            | A'
  std::string render(const ir::BasicBlock& block,
                     std::uint32_t clusterCount,
                     std::uint32_t issueWidth) const;
};

// Static schedule of a function (one BlockSchedule per block, same order).
struct FunctionSchedule {
  std::vector<BlockSchedule> blocks;

  // Total static schedule length (sum of block lengths); a rough code-size /
  // latency indicator used by tests.
  std::uint64_t totalLength() const;
};

// Whole program.
struct ProgramSchedule {
  std::vector<FunctionSchedule> functions;
};

}  // namespace casted::sched
