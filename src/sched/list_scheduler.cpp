#include "sched/list_scheduler.h"

#include <algorithm>

#include "sched/reservation_table.h"
#include "support/check.h"

namespace casted::sched {
namespace {

// True when `kind` carries a signal between clusters, i.e. pays the
// inter-cluster delay when producer and consumer live on different clusters.
// Data edges move register values; guard edges move the check's "no error"
// outcome to the instruction it protects (the paper's DCED "suffers from the
// inter-core latency upon checks" — §IV-B5 — precisely because this signal
// crosses the interconnect when the check sits on the other cluster).
bool carriesValue(dfg::DepKind kind) {
  return kind == dfg::DepKind::kData || kind == dfg::DepKind::kGuard;
}

}  // namespace

std::uint32_t operandReadyCycle(const dfg::DataFlowGraph& graph,
                                std::uint32_t node, std::uint32_t cluster,
                                const std::vector<std::uint32_t>& issueCycle,
                                const std::vector<std::uint32_t>& clusterOf,
                                std::uint32_t interClusterDelay) {
  std::uint32_t ready = 0;
  for (const dfg::Edge& edge : graph.preds(node)) {
    std::uint32_t available = issueCycle[edge.from] + edge.latency;
    if (carriesValue(edge.kind) && clusterOf[edge.from] != cluster) {
      available += interClusterDelay;
    }
    ready = std::max(ready, available);
  }
  return ready;
}

BlockSchedule scheduleBlock(const dfg::DataFlowGraph& graph,
                            const arch::MachineConfig& config) {
  const std::size_t n = graph.size();
  BlockSchedule schedule;
  schedule.issueCycle.assign(n, 0);
  schedule.insns.reserve(n);
  if (n == 0) {
    return schedule;
  }

  ReservationTable table(config);
  std::vector<std::uint32_t> remainingPreds(n, 0);
  std::vector<std::uint32_t> clusterOf(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    remainingPreds[i] = static_cast<std::uint32_t>(graph.preds(i).size());
    const int cluster = graph.insn(i).cluster;
    CASTED_CHECK(cluster >= 0 &&
                 static_cast<std::uint32_t>(cluster) < config.clusterCount)
        << "instruction assigned to invalid cluster " << cluster;
    clusterOf[i] = static_cast<std::uint32_t>(cluster);
  }

  // Ready list ordered by priority: larger height first, then program order.
  std::vector<std::uint32_t> ready;
  auto priorityLess = [&](std::uint32_t a, std::uint32_t b) {
    if (graph.height(a) != graph.height(b)) {
      return graph.height(a) > graph.height(b);
    }
    return a < b;
  };
  for (std::uint32_t i = 0; i < n; ++i) {
    if (remainingPreds[i] == 0) {
      ready.push_back(i);
    }
  }
  std::sort(ready.begin(), ready.end(), priorityLess);

  std::uint32_t maxCompletion = 0;
  std::size_t done = 0;
  while (done < n) {
    CASTED_CHECK(!ready.empty()) << "scheduler stalled: DFG has a cycle?";
    // Pop the highest-priority ready node.
    const std::uint32_t node = ready.front();
    ready.erase(ready.begin());

    const std::uint32_t cluster = clusterOf[node];
    const ir::FuClass fuClass = graph.insn(node).info().fuClass;
    const std::uint32_t earliest = operandReadyCycle(
        graph, node, cluster, schedule.issueCycle, clusterOf,
        config.interClusterDelay);
    const std::uint32_t cycle = table.earliestIssue(cluster, earliest,
                                                    fuClass);
    const std::uint32_t slot = table.reserve(cluster, cycle, fuClass);
    const std::uint32_t latency = config.latencyFor(graph.insn(node).op);

    schedule.issueCycle[node] = cycle;
    schedule.insns.push_back({node, cycle, cluster, slot, latency});
    maxCompletion = std::max(maxCompletion, cycle + latency);
    ++done;

    for (const dfg::Edge& edge : graph.succs(node)) {
      if (--remainingPreds[edge.to] == 0) {
        // Insert keeping the priority order.
        const auto pos = std::lower_bound(ready.begin(), ready.end(),
                                          edge.to, priorityLess);
        ready.insert(pos, edge.to);
      }
    }
  }

  schedule.length = std::max<std::uint32_t>(maxCompletion, 1);
  std::sort(schedule.insns.begin(), schedule.insns.end(),
            [](const ScheduledInsn& a, const ScheduledInsn& b) {
              if (a.cycle != b.cycle) {
                return a.cycle < b.cycle;
              }
              if (a.cluster != b.cluster) {
                return a.cluster < b.cluster;
              }
              return a.slot < b.slot;
            });
  return schedule;
}

FunctionSchedule scheduleFunction(const ir::Function& fn,
                                  const arch::MachineConfig& config,
                                  pm::AnalysisManager* am) {
  FunctionSchedule schedule;
  schedule.blocks.reserve(fn.blockCount());
  for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
    if (am != nullptr) {
      schedule.blocks.push_back(
          scheduleBlock(am->dataFlowGraph(fn, b), config));
    } else {
      const dfg::DataFlowGraph graph(fn.block(b), config);
      schedule.blocks.push_back(scheduleBlock(graph, config));
    }
  }
  return schedule;
}

ProgramSchedule scheduleProgram(const ir::Program& program,
                                const arch::MachineConfig& config,
                                pm::AnalysisManager* am) {
  ProgramSchedule schedule;
  schedule.functions.reserve(program.functionCount());
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    schedule.functions.push_back(
        scheduleFunction(program.function(f), config, am));
  }
  return schedule;
}

}  // namespace casted::sched
