#include "passes/protection_lint.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "support/check.h"

namespace casted::passes {
namespace {

using ir::Function;
using ir::Instruction;
using ir::InsnOrigin;
using ir::Opcode;
using ir::Reg;
using ir::RegClass;

// One read of a register by a non-replicated consumer — the only way a value
// leaves the sphere of replication.  `guarded` records whether a live check
// (fused, or split compare + trap) compares `use` against `shadow`
// immediately before the consumer.
struct Escape {
  Opcode consumer = Opcode::kNop;
  Reg use;
  bool guarded = false;
  Reg shadow;  // the check's second operand; valid only when guarded
};

// Classifies one protected function.  Register-name-level and
// flow-insensitive: data flow is over-approximated, so every "protected"
// verdict is sound (see the header contract) while "unprotected" may be
// conservative.
class FunctionLint {
 public:
  explicit FunctionLint(const Function& fn) : fn_(fn) {
    base_[0] = 0;
    base_[1] = fn.regCount(RegClass::kGp);
    base_[2] = base_[1] + fn.regCount(RegClass::kFp);
    totalRegs_ = base_[2] + fn.regCount(RegClass::kPr);
    adj_.resize(totalRegs_);
    collect();
    for (std::vector<std::uint32_t>& edges : adj_) {
      std::sort(edges.begin(), edges.end());
      edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    }
  }

  // Verdict for one register defined by `insn`.
  std::pair<Protection, std::string> classifyDef(const Instruction& insn,
                                                 Reg def) {
    (void)insn;
    const std::vector<std::uint64_t>& reach = reachOf(slot(def));
    bool directExit = false;
    for (const Escape& escape : escapes_) {
      if (!test(reach, slot(escape.use))) {
        continue;
      }
      const char* consumer = ir::opcodeInfo(escape.consumer).name;
      if (!escape.guarded) {
        return {Protection::kUnprotected,
                std::string("reaches unchecked ") + escape.use.toString() +
                    " read by " + consumer};
      }
      if (test(reach, slot(escape.shadow))) {
        return {Protection::kUnprotected,
                std::string("poisons both operands of the check before ") +
                    consumer + " (" + escape.use.toString() + ", " +
                    escape.shadow.toString() + ")"};
      }
      directExit |= escape.use == def;
    }
    if (directExit) {
      return {Protection::kSphereExit,
              "read directly by a checked non-replicated consumer"};
    }
    return {Protection::kProtected,
            "every reachable sphere exit is check-guarded"};
  }

 private:
  std::uint32_t slot(Reg reg) const {
    return base_[static_cast<int>(reg.cls)] + reg.index;
  }

  static bool test(const std::vector<std::uint64_t>& bits,
                   std::uint32_t index) {
    return (bits[index >> 6] >> (index & 63)) & 1;
  }
  static void set(std::vector<std::uint64_t>& bits, std::uint32_t index) {
    bits[index >> 6] |= 1ULL << (index & 63);
  }

  // One linear walk per block: track which checks are still "live" (emitted,
  // and neither operand redefined) when their guarded instruction executes,
  // record every sphere exit, and build the register-flow edges.
  void collect() {
    struct ActiveCheck {
      ir::InsnId guard;
      Reg use;
      Reg shadow;
    };
    struct PendingCmp {  // split-check compare awaiting its kTrapIf
      Reg pred;
      Reg use;
      Reg shadow;
    };
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      std::vector<ActiveCheck> active;
      std::vector<PendingCmp> pending;
      const auto invalidate = [&](const std::vector<Reg>& defs) {
        for (const Reg& def : defs) {
          std::erase_if(active, [&](const ActiveCheck& check) {
            return check.use == def || check.shadow == def;
          });
          std::erase_if(pending, [&](const PendingCmp& cmp) {
            return cmp.pred == def || cmp.use == def || cmp.shadow == def;
          });
        }
      };
      for (const Instruction& insn : fn_.block(b).insns()) {
        if (insn.origin == InsnOrigin::kCheck) {
          invalidate(insn.defs);
          if (insn.isCheck() && insn.op != Opcode::kTrapIf &&
              insn.uses.size() == 2 && insn.guard != ir::kInvalidInsn) {
            active.push_back({insn.guard, insn.uses[0], insn.uses[1]});
          } else if (insn.op == Opcode::kTrapIf && insn.uses.size() == 1 &&
                     insn.guard != ir::kInvalidInsn) {
            for (const PendingCmp& cmp : pending) {
              if (cmp.pred == insn.uses[0]) {
                active.push_back({insn.guard, cmp.use, cmp.shadow});
                break;
              }
            }
          } else if (!insn.defs.empty() && insn.uses.size() == 2) {
            pending.push_back({insn.defs[0], insn.uses[0], insn.uses[1]});
          }
          addEdges(insn, /*skipGuarded=*/nullptr);
          continue;
        }

        // Which of this instruction's reads have a live check.
        std::unordered_map<Reg, Reg> guarded;
        for (const ActiveCheck& check : active) {
          if (check.guard == insn.id) {
            guarded.emplace(check.use, check.shadow);
          }
        }
        if (insn.isNonReplicated()) {
          std::unordered_set<Reg> seen;
          for (const Reg& use : insn.uses) {
            if (!seen.insert(use).second) {
              continue;
            }
            Escape escape;
            escape.consumer = insn.op;
            escape.use = use;
            const auto it = guarded.find(use);
            if (it != guarded.end()) {
              escape.guarded = true;
              escape.shadow = it->second;
            }
            escapes_.push_back(escape);
          }
        }
        addEdges(insn, guarded.empty() ? nullptr : &guarded);
        invalidate(insn.defs);
      }
    }
  }

  // Register-flow edges use -> def.  A guarded read contributes no edge: its
  // check fires before the consumer executes, so corruption on that operand
  // alone cannot flow through (corruption on BOTH operands is caught by the
  // poisons-both-operands rule at the escape instead).
  void addEdges(const Instruction& insn,
                const std::unordered_map<Reg, Reg>* guarded) {
    if (insn.defs.empty()) {
      return;
    }
    for (const Reg& use : insn.uses) {
      if (guarded != nullptr && guarded->contains(use)) {
        continue;
      }
      for (const Reg& def : insn.defs) {
        adj_[slot(use)].push_back(slot(def));
      }
    }
  }

  // Forward closure of {start} over the flow edges, memoised per register.
  const std::vector<std::uint64_t>& reachOf(std::uint32_t start) {
    const auto it = memo_.find(start);
    if (it != memo_.end()) {
      return it->second;
    }
    std::vector<std::uint64_t> bits((totalRegs_ + 63) / 64, 0);
    std::vector<std::uint32_t> stack{start};
    set(bits, start);
    while (!stack.empty()) {
      const std::uint32_t reg = stack.back();
      stack.pop_back();
      for (const std::uint32_t next : adj_[reg]) {
        if (!test(bits, next)) {
          set(bits, next);
          stack.push_back(next);
        }
      }
    }
    return memo_.emplace(start, std::move(bits)).first->second;
  }

  const Function& fn_;
  std::uint32_t base_[3] = {0, 0, 0};
  std::uint32_t totalRegs_ = 0;
  std::vector<std::vector<std::uint32_t>> adj_;
  std::vector<Escape> escapes_;
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> memo_;
};

}  // namespace

const char* protectionName(Protection protection) {
  switch (protection) {
    case Protection::kProtected:
      return "protected";
    case Protection::kSphereExit:
      return "sphere-exit";
    case Protection::kUnprotected:
      return "unprotected";
  }
  CASTED_UNREACHABLE("bad Protection");
}

std::uint64_t ProtectionLintResult::count(Protection protection) const {
  std::uint64_t total = 0;
  for (const LintSite& site : sites) {
    total += site.protection == protection ? 1 : 0;
  }
  return total;
}

std::string ProtectionLintResult::toString(bool gapsOnly) const {
  std::ostringstream out;
  out << "protection lint: " << count(Protection::kProtected)
      << " protected, " << count(Protection::kSphereExit) << " sphere-exit, "
      << count(Protection::kUnprotected) << " unprotected\n";
  for (const LintSite& site : sites) {
    if (gapsOnly && site.protection != Protection::kUnprotected) {
      continue;
    }
    out << "  [" << protectionName(site.protection) << "] f" << site.func
        << " bb" << site.block << " #" << site.insn << " def "
        << site.def.toString() << ": " << site.reason << "\n";
  }
  return out.str();
}

ProtectionLintResult lintProtection(const ir::Program& program,
                                    Scheme scheme) {
  ProtectionLintResult result;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    const Function& fn = program.function(f);
    const bool noDetection = scheme == Scheme::kNoed || !fn.isProtected();
    std::optional<FunctionLint> lint;
    if (!noDetection) {
      lint.emplace(fn);
    }
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      const auto& insns = fn.block(b).insns();
      for (std::uint32_t node = 0; node < insns.size(); ++node) {
        const Instruction& insn = insns[node];
        for (const Reg& def : insn.defs) {
          LintSite site;
          site.func = f;
          site.block = b;
          site.node = node;
          site.insn = insn.id;
          site.def = def;
          if (noDetection) {
            site.protection = Protection::kUnprotected;
            site.reason = scheme == Scheme::kNoed
                              ? "NOED: the scheme emits no detection"
                              : "unprotected (library) function";
          } else {
            std::tie(site.protection, site.reason) =
                lint->classifyDef(insn, def);
          }
          result.sites.push_back(std::move(site));
        }
      }
    }
  }
  return result;
}

pm::PassResult ProtectionLintPass::run(ir::Program& program,
                                       pm::AnalysisManager& am) {
  (void)am;
  const ProtectionLintResult result = lintProtection(program, scheme_);
  pm::PassResult passResult;
  passResult.preserved = pm::Preserved::kAll;  // analysis-only, no mutation
  passResult.add("protected", result.count(Protection::kProtected));
  passResult.add("sphere-exit", result.count(Protection::kSphereExit));
  passResult.add("unprotected", result.count(Protection::kUnprotected));
  return passResult;
}

}  // namespace casted::passes
