// Early (pre-error-detection) optimisations: constant folding and copy
// propagation.
//
// The paper compiles its benchmarks "with optimizations enabled (-O1)"
// before the CASTED passes run.  These two passes stand in for that stage:
// they run on the *unprotected* program, so they need no redundancy
// protection — they simply make the input code the error-detection pass
// sees tighter (fewer trivially-foldable instructions means less trivially-
// foldable duplicated code, which keeps the code-growth factor honest).
#pragma once

#include <cstdint>
#include <string_view>

#include "ir/function.h"
#include "pm/pass.h"

namespace casted::passes {

struct EarlyOptStats {
  std::uint64_t foldedConstants = 0;   // instructions rewritten to movi/pseti
  std::uint64_t propagatedCopies = 0;  // uses rewritten through mov chains
};

// Folds instructions whose operands are compile-time constants into
// immediate moves (integer ALU, compares, predicate logic and select; FP is
// left alone to avoid re-implementing IEEE semantics at compile time).
// Local (per block), iterated with copy propagation by the caller.
EarlyOptStats applyConstantFolding(ir::Program& program);

// Rewrites uses of registers that currently hold a plain copy (mov/fmov/
// pmov) of another register, when the source is still intact.  Local.
EarlyOptStats applyCopyPropagation(ir::Program& program);

// Convenience: folding + propagation + folding again.
EarlyOptStats applyEarlyOptimisations(ir::Program& program);

// pm adapter.  Stats: "folded-constants", "propagated-copies".
class EarlyOptsPass final : public pm::Pass {
 public:
  std::string_view name() const override { return "early-opts"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;
};

}  // namespace casted::passes
