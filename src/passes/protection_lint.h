// ProtectionLint — static classification of every def site under the active
// detection scheme.
//
// The error-detection pass (Algorithm 1) promises a sphere of replication:
// corruption of a replicated value diverges the two instruction streams and
// is caught by a CHECK before it can leave through a store or control flow.
// This analysis verifies that structure instruction by instruction and
// classifies every register an instruction defines as
//   * protected    — corruption is caught by a check (or never observable):
//                    every escape the value can reach compares it against an
//                    independent shadow;
//   * sphere-exit  — as protected, but the value is itself read directly by
//                    a non-replicated consumer (store, branch, call, ...),
//                    i.e. it leaves the sphere through a guarded exit;
//   * unprotected  — a silent-data-corruption channel exists: the value can
//                    reach a non-replicated consumer with no check, or with
//                    a check whose two operands the same corruption poisons
//                    (call results, unreplicated values, spilled values).
//
// The analysis is intentionally conservative in the sound direction: it
// over-approximates data flow (register-name-level reachability, no kill
// analysis), so it may call a site unprotected that never misbehaves — but a
// site it calls protected or sphere-exit must never classify as data-corrupt
// under exhaustive injection.  That contract is enforced by
// tests/exhaustive_ground_truth_test.cpp against fault::enumerateFaultSpace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/function.h"
#include "passes/scheme.h"
#include "pm/pass.h"

namespace casted::passes {

enum class Protection : std::uint8_t {
  kProtected,
  kSphereExit,
  kUnprotected,
};

const char* protectionName(Protection protection);

// Classification of one register defined by one static instruction (calls
// produce one site per returned register).
struct LintSite {
  ir::FuncId func = 0;
  ir::BlockId block = 0;
  std::uint32_t node = 0;  // instruction index within the block
  ir::InsnId insn = ir::kInvalidInsn;
  ir::Reg def;
  Protection protection = Protection::kUnprotected;
  std::string reason;  // why this classification, human-readable
};

struct ProtectionLintResult {
  std::vector<LintSite> sites;  // one per (def-producing insn, def)

  std::uint64_t count(Protection protection) const;
  // Unprotected sites — the protection gaps.
  std::uint64_t gaps() const { return count(Protection::kUnprotected); }
  // Gap listing for reports; all sites when `gapsOnly` is false.
  std::string toString(bool gapsOnly = true) const;
};

// Classifies every def site of `program` as compiled under `scheme`.  The
// scheme matters only as NOED-vs-protected (SCED/DCED/CASTED differ in
// cluster placement, not protection structure); under NOED every def is
// unprotected by construction.
ProtectionLintResult lintProtection(const ir::Program& program, Scheme scheme);

// pm adapter.  Analysis-only: mutates nothing, preserves all caches.
// Stats: "protected", "sphere-exit", "unprotected".
class ProtectionLintPass final : public pm::Pass {
 public:
  explicit ProtectionLintPass(Scheme scheme) : scheme_(scheme) {}

  std::string_view name() const override { return "protection-lint"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;

 private:
  Scheme scheme_;
};

}  // namespace casted::passes
