#include "passes/error_detection.h"

#include <unordered_map>
#include <unordered_set>

#include "support/check.h"

namespace casted::passes {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::InsnOrigin;
using ir::Opcode;
using ir::Reg;
using ir::RegClass;

Opcode copyOpcodeFor(RegClass cls) {
  switch (cls) {
    case RegClass::kGp:
      return Opcode::kMov;
    case RegClass::kFp:
      return Opcode::kFMov;
    case RegClass::kPr:
      return Opcode::kPMov;
  }
  CASTED_UNREACHABLE("bad RegClass");
}

Opcode checkOpcodeFor(RegClass cls) {
  switch (cls) {
    case RegClass::kGp:
      return Opcode::kCheckG;
    case RegClass::kFp:
      return Opcode::kCheckF;
    case RegClass::kPr:
      return Opcode::kCheckP;
  }
  CASTED_UNREACHABLE("bad RegClass");
}

class FunctionTransform {
 public:
  FunctionTransform(Function& fn, const ErrorDetectionOptions& options,
                    ErrorDetectionStats& stats)
      : fn_(fn), options_(options), stats_(stats) {}

  void run() {
    replicateInsns();
    registerRename();
    emitCheckInsns();
  }

 private:
  Reg shadowOf(Reg reg) {
    const auto it = shadow_.find(reg);
    CASTED_CHECK(it != shadow_.end())
        << "no shadow register for " << reg.toString() << " in @"
        << fn_.name();
    return it->second;
  }

  Reg ensureShadow(Reg reg) {
    const auto it = shadow_.find(reg);
    if (it != shadow_.end()) {
      return it->second;
    }
    const Reg fresh = fn_.newReg(reg.cls);
    shadow_.emplace(reg, fresh);
    return fresh;
  }

  // Phase 1 (Alg. 1, replicate_insns): duplicate every replicable
  // instruction, placing the duplicate just before the original.
  void replicateInsns() {
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      BasicBlock& block = fn_.block(b);
      std::vector<Instruction> rebuilt;
      rebuilt.reserve(block.insns().size() * 2);
      for (Instruction& insn : block.insns()) {
        if (insn.isReplicable()) {
          Instruction dup = insn;  // exact duplicate
          dup.id = fn_.newInsnId();
          dup.origin = InsnOrigin::kDuplicate;
          dup.duplicateOf = insn.id;
          newDuplicates_.insert(dup.id);
          rebuilt.push_back(std::move(dup));
          ++stats_.replicated;
        }
        rebuilt.push_back(std::move(insn));
      }
      block.insns() = std::move(rebuilt);
    }
  }

  // Phase 2 (Alg. 1, register_rename): establish the shadow register map
  // (Fig. 4b), rewrite the duplicates through it, and emit COPY instructions
  // after non-duplicated value producers (calls) and for incoming
  // parameters so their values enter the shadow stream.
  void registerRename() {
    // 2a. Shadows for everything the duplicate stream writes.  Only the
    // duplicates created by this run participate: re-running the pass on
    // already-protected code must not try to re-rename old duplicates.
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      for (const Instruction& insn : fn_.block(b).insns()) {
        if (newDuplicates_.contains(insn.id)) {
          for (const Reg& def : insn.defs) {
            ensureShadow(def);
          }
        }
      }
    }

    // 2b. Copies after non-duplicated value producers — Alg. 1 lines 34-37
    // ("if INSN_ORIG has no duplicates: create COPY_INSN").  These are
    // calls and compiler-generated spill reloads; each write also refreshes
    // the shadow so the two streams stay in sync across them.
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      BasicBlock& block = fn_.block(b);
      std::vector<Instruction> rebuilt;
      rebuilt.reserve(block.insns().size());
      for (Instruction& insn : block.insns()) {
        const bool needsCopies = producesUnduplicatedValue(insn);
        std::vector<Reg> defs;
        if (needsCopies) {
          defs = insn.defs;
        }
        rebuilt.push_back(std::move(insn));
        for (const Reg& def : defs) {
          rebuilt.push_back(makeCopy(def));
        }
      }
      block.insns() = std::move(rebuilt);
    }

    // 2c. Copies for parameters, at the top of the entry block.
    if (!fn_.params().empty()) {
      BasicBlock& entry = fn_.entry();
      std::vector<Instruction> rebuilt;
      rebuilt.reserve(entry.insns().size() + fn_.params().size());
      for (const Reg& param : fn_.params()) {
        rebuilt.push_back(makeCopy(param));
      }
      for (Instruction& insn : entry.insns()) {
        rebuilt.push_back(std::move(insn));
      }
      entry.insns() = std::move(rebuilt);
    }

    // 2d. Rewrite the new duplicates: writes and uses go through the shadow
    // map.
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      for (Instruction& insn : fn_.block(b).insns()) {
        if (!newDuplicates_.contains(insn.id)) {
          continue;
        }
        for (Reg& def : insn.defs) {
          def = shadowOf(def);
        }
        for (Reg& use : insn.uses) {
          use = shadowOf(use);
        }
      }
    }
  }

  // True when `insn` defines values the duplicate stream may read but has
  // no duplicate of its own: calls (non-replicable originals with results)
  // and spill reloads.  Checks and copies are internal to the redundancy
  // machinery and never feed duplicates.
  static bool producesUnduplicatedValue(const Instruction& insn) {
    if (insn.defs.empty()) {
      return false;
    }
    switch (insn.origin) {
      case InsnOrigin::kOriginal:
        return !insn.isReplicable();
      case InsnOrigin::kSpill:
        return insn.isLoad();
      case InsnOrigin::kDuplicate:
      case InsnOrigin::kCheck:
      case InsnOrigin::kCopy:
        return false;
    }
    CASTED_UNREACHABLE("bad InsnOrigin");
  }

  Instruction makeCopy(Reg original) {
    const Reg shadowReg = ensureShadow(original);
    Instruction copy;
    copy.op = copyOpcodeFor(original.cls);
    copy.id = fn_.newInsnId();
    copy.defs = {shadowReg};
    copy.uses = {original};
    copy.origin = InsnOrigin::kCopy;
    ++stats_.copies;
    return copy;
  }

  bool wantsChecks(const Instruction& insn) const {
    if (insn.origin != InsnOrigin::kOriginal || !insn.isNonReplicated()) {
      return false;
    }
    if (insn.isStore()) {
      return options_.checkStores;
    }
    // Branches, calls, ret, halt.
    return options_.checkControlFlow;
  }

  // Phase 3 (Alg. 1, emit_check_insns): one CHECK per distinct register read
  // by each non-replicated instruction, placed immediately before it.
  void emitCheckInsns() {
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      BasicBlock& block = fn_.block(b);
      std::vector<Instruction> rebuilt;
      rebuilt.reserve(block.insns().size());
      for (Instruction& insn : block.insns()) {
        if (wantsChecks(insn)) {
          std::unordered_set<Reg> seen;
          for (const Reg& use : insn.uses) {
            if (!seen.insert(use).second) {
              continue;
            }
            if (options_.splitChecks) {
              // The paper's literal form: a compare producing a predicate,
              // then an explicit conditional trap.
              Instruction cmp;
              cmp.op = use.cls == RegClass::kGp   ? Opcode::kCmpNe
                       : use.cls == RegClass::kFp ? Opcode::kFCmpNeBits
                                                  : Opcode::kPXor;
              cmp.id = fn_.newInsnId();
              cmp.defs = {fn_.newReg(RegClass::kPr)};
              cmp.uses = {use, shadowOf(use)};
              cmp.origin = InsnOrigin::kCheck;
              Instruction trap;
              trap.op = Opcode::kTrapIf;
              trap.id = fn_.newInsnId();
              trap.uses = {cmp.defs[0]};
              trap.origin = InsnOrigin::kCheck;
              trap.guard = insn.id;
              rebuilt.push_back(std::move(cmp));
              rebuilt.push_back(std::move(trap));
            } else {
              Instruction check;
              check.op = checkOpcodeFor(use.cls);
              check.id = fn_.newInsnId();
              check.uses = {use, shadowOf(use)};
              check.origin = InsnOrigin::kCheck;
              check.guard = insn.id;
              rebuilt.push_back(std::move(check));
            }
            ++stats_.checks;
          }
        }
        rebuilt.push_back(std::move(insn));
      }
      block.insns() = std::move(rebuilt);
    }
  }

  Function& fn_;
  const ErrorDetectionOptions& options_;
  ErrorDetectionStats& stats_;
  std::unordered_map<Reg, Reg> shadow_;
  std::unordered_set<ir::InsnId> newDuplicates_;
};

}  // namespace

ErrorDetectionStats applyErrorDetection(ir::Program& program,
                                        const ErrorDetectionOptions& options) {
  ErrorDetectionStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    Function& fn = program.function(f);
    if (!fn.isProtected()) {
      ++stats.skippedUnprotected;
      continue;
    }
    FunctionTransform(fn, options, stats).run();
  }
  return stats;
}

pm::PassResult ErrorDetectionPass::run(ir::Program& program,
                                       pm::AnalysisManager& am) {
  (void)am;
  const ErrorDetectionStats stats = applyErrorDetection(program, options_);
  pm::PassResult result;
  result.preserved = stats.totalInserted() == 0 ? pm::Preserved::kAll
                                                : pm::Preserved::kNone;
  result.add("replicated", stats.replicated);
  result.add("checks", stats.checks);
  result.add("copies", stats.copies);
  result.add("skipped-unprotected", stats.skippedUnprotected);
  return result;
}

}  // namespace casted::passes
