#include "passes/assignment.h"

#include <algorithm>
#include <vector>

#include "dfg/dfg.h"
#include "sched/list_scheduler.h"
#include "sched/reservation_table.h"
#include "support/check.h"

namespace casted::passes {
namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::InsnOrigin;

bool isRedundantCode(const Instruction& insn) {
  return insn.origin == InsnOrigin::kDuplicate ||
         insn.origin == InsnOrigin::kCheck ||
         insn.origin == InsnOrigin::kCopy;
}

void tallyAssignment(const Instruction& insn, AssignmentStats& stats) {
  ++stats.total;
  if (insn.cluster != 0) {
    ++stats.offCluster0;
  }
  if (insn.origin == InsnOrigin::kOriginal && insn.cluster != 0) {
    ++stats.originalsMoved;
  }
  if (insn.origin == InsnOrigin::kDuplicate && insn.cluster == 0) {
    ++stats.duplicatesHome;
  }
  if (insn.origin == InsnOrigin::kCheck && insn.cluster != 0) {
    ++stats.checksMoved;
  }
}

// Algorithm 2 on one block.
class BugAssigner {
 public:
  // `graph` must be the DFG of `block` under `config`; it is typically the
  // AnalysisManager's cached copy, shared with the list scheduler.
  BugAssigner(BasicBlock& block, const arch::MachineConfig& config,
              const dfg::DataFlowGraph& graph)
      : block_(block),
        config_(config),
        graph_(graph),
        table_(config),
        issueCycle_(graph_.size(), 0),
        clusterOf_(graph_.size(), 0),
        assigned_(graph_.size(), false) {}

  void run() {
    // Visit in critical-path preference order; the explicit stack below
    // still guarantees predecessors are placed first (topological order).
    for (std::uint32_t node : graph_.priorityOrder()) {
      assign(node);
    }
    for (std::uint32_t i = 0; i < graph_.size(); ++i) {
      block_.insns()[i].cluster = static_cast<int>(clusterOf_[i]);
    }
    if (config_.bugPlacementFallback && graph_.size() > 0) {
      applyPlacementFallbacks();
    }
  }

 private:
  // Iterative version of the paper's recursive bug(node): place all
  // predecessors (preferring the critical path), then place `node` on the
  // cluster where it completes earliest.
  void assign(std::uint32_t root) {
    if (assigned_[root]) {
      return;
    }
    std::vector<std::uint32_t> stack = {root};
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      if (assigned_[node]) {
        stack.pop_back();
        continue;
      }
      // Gather unassigned predecessors, critical path first.
      std::vector<std::uint32_t> pending;
      for (const dfg::Edge& edge : graph_.preds(node)) {
        if (!assigned_[edge.from]) {
          pending.push_back(edge.from);
        }
      }
      if (!pending.empty()) {
        std::sort(pending.begin(), pending.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    if (graph_.height(a) != graph_.height(b)) {
                      return graph_.height(a) > graph_.height(b);
                    }
                    return a < b;
                  });
        // Push in reverse so the most critical predecessor is handled first.
        for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
          stack.push_back(*it);
        }
        continue;
      }
      stack.pop_back();
      place(node);
    }
  }

  // The completion-cycle heuristic (Algorithm 2 line 11): earliest
  // completion over all clusters.  Ties are broken towards operand locality
  // (the cluster already holding more of the node's inputs — every operand
  // left behind is a latent inter-cluster transfer for some later consumer),
  // then towards the lower cluster index.  The locality tie-break is what
  // lets BUG collapse to a single-cluster (SCED-like) placement when the
  // machine is wide enough, instead of scattering operand-free instructions.
  void place(std::uint32_t node) {
    const ir::FuClass fuClass = graph_.insn(node).info().fuClass;
    const std::uint32_t latency = config_.latencyFor(graph_.insn(node).op);

    auto residentOperands = [&](std::uint32_t c) {
      std::uint32_t count = 0;
      for (const dfg::Edge& edge : graph_.preds(node)) {
        if (edge.kind == dfg::DepKind::kData && clusterOf_[edge.from] == c) {
          ++count;
        }
      }
      return count;
    };

    // Home cluster: where the plurality of data operands live (defaults to
    // cluster 0 for operand-free nodes).  Placing a node away from home is
    // only worth it when the completion gain beats half a round trip — the
    // result will usually have to travel back to its consumers, which a
    // bottom-up greedy pass cannot see directly (Bulldog used successor
    // estimates for the same reason).
    std::uint32_t home = 0;
    std::uint32_t homeResident = 0;
    for (std::uint32_t c = 0; c < config_.clusterCount; ++c) {
      const std::uint32_t resident = residentOperands(c);
      if (resident > homeResident) {
        home = c;
        homeResident = resident;
      }
    }
    // Anticipation scales with the delay *beyond* the first cycle: on a
    // 1-cycle interconnect transfers are nearly free and aggressive
    // spreading wins (paper Fig. 2); as the delay grows, off-home placement
    // increasingly has to pay for the way back (paper Fig. 3).
    const std::uint32_t awayPenalty =
        (config_.interClusterDelay > 0 ? config_.interClusterDelay - 1 : 0) *
        config_.bugAnticipationPercent / 100;

    std::uint32_t bestCluster = 0;
    std::uint32_t bestStart = 0;
    std::uint32_t bestScore = 0xffffffffu;
    std::uint32_t bestResident = 0;
    for (std::uint32_t c = 0; c < config_.clusterCount; ++c) {
      const std::uint32_t ready = sched::operandReadyCycle(
          graph_, node, c, issueCycle_, clusterOf_, config_.interClusterDelay);
      const std::uint32_t start = table_.earliestIssue(c, ready, fuClass);
      const std::uint32_t score =
          start + latency + (c == home ? 0 : awayPenalty);
      const std::uint32_t resident = residentOperands(c);
      const bool better = score < bestScore ||
                          (score == bestScore && resident > bestResident);
      if (better) {
        bestCluster = c;
        bestStart = start;
        bestScore = score;
        bestResident = resident;
      }
    }

    table_.reserve(bestCluster, bestStart, fuClass);
    issueCycle_[node] = bestStart;
    clusterOf_[node] = bestCluster;
    assigned_[node] = true;
  }

  // Schedules the block under the BUG placement and under the two fixed
  // reference placements (all-on-cluster-0 and original/redundant split);
  // keeps the shortest.  Ties favour BUG (it spreads memory operations and
  // thus MLP), then the split placement.
  void applyPlacementFallbacks() {
    const auto applyClusters = [&](auto&& clusterFor) {
      auto& insns = block_.insns();
      for (std::uint32_t i = 0; i < insns.size(); ++i) {
        insns[i].cluster = static_cast<int>(clusterFor(i));
      }
    };

    const sched::BlockSchedule bug = sched::scheduleBlock(graph_, config_);

    applyClusters([&](std::uint32_t i) {
      return isRedundantCode(block_.insns()[i]) ? 1u : 0u;
    });
    const sched::BlockSchedule split =
        config_.clusterCount >= 2 ? sched::scheduleBlock(graph_, config_)
                                  : bug;

    applyClusters([](std::uint32_t) { return 0u; });
    const sched::BlockSchedule single = sched::scheduleBlock(graph_, config_);

    if (bug.length <= split.length && bug.length <= single.length) {
      applyClusters([&](std::uint32_t i) { return clusterOf_[i]; });
    } else if (config_.clusterCount >= 2 && split.length <= single.length) {
      applyClusters([&](std::uint32_t i) {
        return isRedundantCode(block_.insns()[i]) ? 1u : 0u;
      });
    }
    // else: keep the single-cluster placement already written.
  }

  BasicBlock& block_;
  const arch::MachineConfig& config_;
  const dfg::DataFlowGraph& graph_;
  sched::ReservationTable table_;
  std::vector<std::uint32_t> issueCycle_;
  std::vector<std::uint32_t> clusterOf_;
  std::vector<bool> assigned_;
};

}  // namespace

AssignmentStats assignClusters(ir::Program& program,
                               const arch::MachineConfig& config,
                               Scheme scheme, pm::AnalysisManager* am) {
  config.validate();
  if (scheme == Scheme::kDced) {
    CASTED_CHECK(config.clusterCount >= 2)
        << "DCED requires at least two clusters";
  }
  AssignmentStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    ir::Function& fn = program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      BasicBlock& block = fn.block(b);
      switch (scheme) {
        case Scheme::kNoed:
        case Scheme::kSced:
          for (Instruction& insn : block.insns()) {
            insn.cluster = 0;
          }
          break;
        case Scheme::kDced:
          for (Instruction& insn : block.insns()) {
            insn.cluster = isRedundantCode(insn) ? 1 : 0;
          }
          break;
        case Scheme::kCasted: {
          if (am != nullptr) {
            BugAssigner(block, config, am->dataFlowGraph(fn, b)).run();
          } else {
            const dfg::DataFlowGraph graph(block, config);
            BugAssigner(block, config, graph).run();
          }
          break;
        }
      }
      for (const Instruction& insn : block.insns()) {
        tallyAssignment(insn, stats);
      }
    }
  }
  return stats;
}

pm::PassResult AssignmentPass::run(ir::Program& program,
                                   pm::AnalysisManager& am) {
  const AssignmentStats stats =
      assignClusters(program, am.config(), scheme_, &am);
  pm::PassResult result;
  // Only `Instruction::cluster` changes, which neither the DFG nor liveness
  // reads — the graphs BUG just walked stay valid for the scheduler.
  result.preserved = pm::Preserved::kAll;
  result.add("total", stats.total);
  result.add("off-cluster0", stats.offCluster0);
  result.add("originals-moved", stats.originalsMoved);
  result.add("duplicates-home", stats.duplicatesHome);
  result.add("checks-moved", stats.checksMoved);
  return result;
}

}  // namespace casted::passes
