#include "passes/late_opts.h"

#include <map>
#include <tuple>
#include <unordered_map>

#include "dfg/liveness.h"
#include "support/check.h"

namespace casted::passes {
namespace {

using ir::Instruction;
using ir::InsnOrigin;
using ir::Opcode;
using ir::Reg;
using ir::RegClass;

Opcode copyOpcodeFor(RegClass cls) {
  switch (cls) {
    case RegClass::kGp:
      return Opcode::kMov;
    case RegClass::kFp:
      return Opcode::kFMov;
    case RegClass::kPr:
      return Opcode::kPMov;
  }
  CASTED_UNREACHABLE("bad RegClass");
}

// An instruction is a CSE candidate when it is pure-by-value: exactly one
// def, no side effects, and its value depends only on register operands and
// immediates (loads additionally depend on a memory epoch).
bool isCseCandidate(const Instruction& insn) {
  const ir::OpcodeInfo& info = insn.info();
  if (info.defCount != 1 || info.variableArity) {
    return false;
  }
  if (info.isStore || info.isTerminator || info.isCheck ||
      insn.op == Opcode::kCall || insn.op == Opcode::kNop) {
    return false;
  }
  // Trapping arithmetic is still a fine CSE candidate (same operands, same
  // trap behaviour); loads are handled via the memory epoch.
  return true;
}

bool isPureRemovable(const Instruction& insn) {
  const ir::OpcodeInfo& info = insn.info();
  if (info.defCount == 0 || info.variableArity) {
    return false;
  }
  if (info.isStore || info.isTerminator || info.isCheck ||
      insn.op == Opcode::kCall) {
    return false;
  }
  // Keep anything that can trap: removing it would change the program's
  // exception behaviour, which the fault classifier observes.
  return !info.canTrap;
}

// Value-number key of an expression.
struct ExprKey {
  Opcode op;
  std::vector<std::uint64_t> operandVns;
  std::int64_t imm;
  double fimm;
  std::uint64_t memEpoch;

  friend bool operator<(const ExprKey& a, const ExprKey& b) {
    return std::tie(a.op, a.operandVns, a.imm, a.fimm, a.memEpoch) <
           std::tie(b.op, b.operandVns, b.imm, b.fimm, b.memEpoch);
  }
};

}  // namespace

LateOptStats applyLocalCse(ir::Program& program,
                           const LateOptOptions& options) {
  LateOptStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    ir::Function& fn = program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      std::unordered_map<Reg, std::uint64_t> vnOf;  // current value number
      std::uint64_t nextVn = 1;
      std::uint64_t memEpoch = 0;
      auto vn = [&](Reg reg) {
        const auto it = vnOf.find(reg);
        if (it != vnOf.end()) {
          return it->second;
        }
        const std::uint64_t fresh = nextVn++;
        vnOf.emplace(reg, fresh);
        return fresh;
      };
      // Available expressions: key -> (value number, register holding it).
      std::map<ExprKey, std::pair<std::uint64_t, Reg>> available;

      for (Instruction& insn : fn.block(b).insns()) {
        const bool excluded =
            options.protectRedundant && insn.origin != InsnOrigin::kOriginal;

        if (insn.isStore() || insn.isCall()) {
          ++memEpoch;
        }

        if (!excluded && isCseCandidate(insn)) {
          ExprKey key;
          key.op = insn.op;
          for (const Reg& use : insn.uses) {
            key.operandVns.push_back(vn(use));
          }
          key.imm = insn.info().hasImm || insn.isMemory() ? insn.imm : 0;
          key.fimm = insn.info().hasFpImm ? insn.fimm : 0.0;
          key.memEpoch = insn.isLoad() ? memEpoch : 0;

          const auto hit = available.find(key);
          if (hit != available.end()) {
            // Rewrite into a copy from the register holding the value; the
            // def keeps the *same* value number as the original result.
            const Reg source = hit->second.second;
            const Reg def = insn.defs[0];
            insn.op = copyOpcodeFor(def.cls);
            insn.uses = {source};
            insn.imm = 0;
            insn.fimm = 0.0;
            vnOf[def] = hit->second.first;
            // Invalidate expressions computed from the old value of def.
            for (auto it = available.begin(); it != available.end();) {
              if (it->second.second == def) {
                it = available.erase(it);
              } else {
                ++it;
              }
            }
            ++stats.cseReplaced;
            continue;
          }
          const Reg def = insn.defs[0];
          const std::uint64_t resultVn = nextVn++;
          vnOf[def] = resultVn;
          // Drop stale entries held in def.
          for (auto it = available.begin(); it != available.end();) {
            if (it->second.second == def) {
              it = available.erase(it);
            } else {
              ++it;
            }
          }
          available.emplace(std::move(key), std::make_pair(resultVn, def));
          continue;
        }

        // Not a candidate (or excluded): just update value numbers.
        for (const Reg& def : insn.defs) {
          vnOf[def] = nextVn++;
          for (auto it = available.begin(); it != available.end();) {
            if (it->second.second == def) {
              it = available.erase(it);
            } else {
              ++it;
            }
          }
        }
      }
    }
  }
  return stats;
}

LateOptStats applyDce(ir::Program& program, const LateOptOptions& options,
                      pm::AnalysisManager* am) {
  LateOptStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    ir::Function& fn = program.function(f);
    bool changed = true;
    while (changed) {
      changed = false;
      // With a manager, the first iteration's liveness can come from the
      // cache; after any deletion the function is invalidated below, so a
      // subsequent request recomputes.
      dfg::LivenessInfo computed;
      const dfg::LivenessInfo& liveness =
          am != nullptr ? am->liveness(fn)
                        : (computed = dfg::computeLiveness(fn), computed);
      for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
        auto& insns = fn.block(b).insns();
        // Backward walk with a running live set so within-block deadness is
        // caught in one sweep.
        std::unordered_set<Reg> live = liveness.liveOut[b];
        std::vector<bool> keep(insns.size(), true);
        for (std::size_t i = insns.size(); i-- > 0;) {
          Instruction& insn = insns[i];
          const bool excluded = options.protectRedundant &&
                                insn.origin != InsnOrigin::kOriginal;
          bool anyLive = insn.defs.empty();
          for (const Reg& def : insn.defs) {
            if (live.contains(def)) {
              anyLive = true;
            }
          }
          if (!anyLive && !excluded && isPureRemovable(insn)) {
            keep[i] = false;
            ++stats.dceRemoved;
            changed = true;
            continue;  // its uses do not become live
          }
          for (const Reg& def : insn.defs) {
            live.erase(def);
          }
          for (const Reg& use : insn.uses) {
            live.insert(use);
          }
        }
        if (changed) {
          std::vector<Instruction> rebuilt;
          rebuilt.reserve(insns.size());
          for (std::size_t i = 0; i < insns.size(); ++i) {
            if (keep[i]) {
              rebuilt.push_back(std::move(insns[i]));
            }
          }
          insns = std::move(rebuilt);
        }
      }
      if (changed && am != nullptr) {
        am->invalidateFunction(fn);
      }
    }
  }
  return stats;
}

pm::PassResult LocalCsePass::run(ir::Program& program,
                                 pm::AnalysisManager& am) {
  (void)am;
  const LateOptStats stats = applyLocalCse(program, options_);
  pm::PassResult result;
  result.preserved = stats.cseReplaced == 0 ? pm::Preserved::kAll
                                            : pm::Preserved::kNone;
  result.add("cse-replaced", stats.cseReplaced);
  return result;
}

pm::PassResult DcePass::run(ir::Program& program, pm::AnalysisManager& am) {
  const LateOptStats stats = applyDce(program, options_, &am);
  pm::PassResult result;
  // applyDce already invalidated the functions it rewrote, so the caches
  // that remain are exactly the still-valid ones.
  result.preserved = pm::Preserved::kAll;
  result.add("dce-removed", stats.dceRemoved);
  return result;
}

}  // namespace casted::passes
