// Register-pressure modelling: the spill inserter.
//
// The paper's passes run after register allocation, so the duplicated
// registers cost real spills ("the variation of register spilling it
// causes", §IV-B1).  Our IR keeps virtual registers; this pass restores the
// capacity effect: while the per-class register pressure exceeds the
// per-cluster file size (Table I: 64 GP / 64 FP / 32 PR), the longest-lived
// virtual registers are spilled to memory — a store after every definition,
// a reload before every use.
//
// Spill code is compiler-generated (origin kSpill): per Algorithm 1 it is
// neither replicated nor checked, which reproduces the classic SWIFT
// vulnerability window around spill slots.
//
// Predicate registers are not spilled (the IR has no predicate load/store,
// matching IA-64, where predicates move through GPRs); PR pressure above
// the file size is reported as a diagnostic instead.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "pm/pass.h"

namespace casted::passes {

struct SpillStats {
  std::uint64_t spilledRegs = 0;
  std::uint64_t spillStores = 0;
  std::uint64_t spillReloads = 0;
  std::uint64_t residualPrPressure = 0;  // PR pressure beyond the file, if any
};

// Spills until GP/FP pressure fits `config.registerFile` in every function.
// Allocates one "spill$<function>" global per spilling function.  With `am`,
// the pressure check reads the manager's cached liveness (invalidated per
// function whenever spill code is inserted).
SpillStats applySpilling(ir::Program& program,
                         const arch::MachineConfig& config,
                         pm::AnalysisManager* am = nullptr);

// pm adapter; the machine comes from the AnalysisManager's config.  Stats:
// "spilled-regs", "spill-stores", "spill-reloads", "residual-pr-pressure".
class SpillPass final : public pm::Pass {
 public:
  std::string_view name() const override { return "spill"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;
};

}  // namespace casted::passes
