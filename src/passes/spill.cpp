#include "passes/spill.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "dfg/liveness.h"
#include "support/check.h"

namespace casted::passes {
namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::InsnOrigin;
using ir::Opcode;
using ir::Program;
using ir::Reg;
using ir::RegClass;

// Fixed-size per-function spill arena; generous compared to any realistic
// pressure overshoot.
constexpr std::uint32_t kMaxSlots = 256;

class FunctionSpiller {
 public:
  FunctionSpiller(Program& program, Function& fn,
                  const arch::RegisterFileConfig& capacity,
                  SpillStats& stats, pm::AnalysisManager* am)
      : program_(program), fn_(fn), capacity_(capacity), stats_(stats),
        am_(am) {}

  void run() {
    for (int round = 0; round < 128; ++round) {
      dfg::LivenessInfo computed;
      const dfg::LivenessInfo& liveness =
          am_ != nullptr ? am_->liveness(fn_)
                         : (computed = dfg::computeLiveness(fn_), computed);
      RegClass cls;
      if (liveness.maxPressure[static_cast<int>(RegClass::kGp)] >
          capacity_.gp) {
        cls = RegClass::kGp;
      } else if (liveness.maxPressure[static_cast<int>(RegClass::kFp)] >
                 capacity_.fp) {
        cls = RegClass::kFp;
      } else {
        stats_.residualPrPressure = std::max<std::uint64_t>(
            stats_.residualPrPressure,
            liveness.maxPressure[static_cast<int>(RegClass::kPr)] >
                    capacity_.pr
                ? liveness.maxPressure[static_cast<int>(RegClass::kPr)] -
                      capacity_.pr
                : 0);
        return;
      }
      const Reg victim = pickVictim(cls);
      if (!victim.valid()) {
        return;  // nothing spillable left
      }
      spill(victim);
      if (am_ != nullptr) {
        am_->invalidateFunction(fn_);  // spill code changed the IR
      }
    }
  }

 private:
  // Longest live span of the class, excluding spill machinery.
  Reg pickVictim(RegClass cls) {
    std::unordered_map<Reg, std::uint64_t> span;
    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      std::unordered_map<Reg, std::pair<std::size_t, std::size_t>> range;
      const auto& insns = fn_.block(b).insns();
      for (std::size_t i = 0; i < insns.size(); ++i) {
        auto touch = [&](Reg reg) {
          if (reg.cls != cls || noSpill_.contains(reg)) {
            return;
          }
          auto [it, fresh] = range.try_emplace(reg, i, i);
          if (!fresh) {
            it->second.second = i;
          }
        };
        for (const Reg& def : insns[i].defs) {
          touch(def);
        }
        for (const Reg& use : insns[i].uses) {
          touch(use);
        }
      }
      for (const auto& [reg, firstLast] : range) {
        // +blockBonus so multi-block ranges dominate.
        span[reg] += (firstLast.second - firstLast.first) + 64;
      }
    }
    Reg best;
    std::uint64_t bestSpan = 0;
    for (const auto& [reg, regSpan] : span) {
      if (regSpan > bestSpan) {
        best = reg;
        bestSpan = regSpan;
      }
    }
    return best;
  }

  void ensureSpillBase() {
    if (spillBase_.valid()) {
      return;
    }
    const std::uint64_t address = program_.allocateGlobal(
        "spill$" + fn_.name(), std::uint64_t{kMaxSlots} * 8);
    spillBase_ = fn_.newReg(RegClass::kGp);
    noSpill_.insert(spillBase_);
    Instruction movi;
    movi.op = Opcode::kMovImm;
    movi.id = fn_.newInsnId();
    movi.defs = {spillBase_};
    movi.imm = static_cast<std::int64_t>(address);
    movi.origin = InsnOrigin::kSpill;
    auto& entry = fn_.entry().insns();
    entry.insert(entry.begin(), std::move(movi));
  }

  void spill(Reg victim) {
    ensureSpillBase();
    CASTED_CHECK(nextSlot_ < kMaxSlots)
        << "spill arena exhausted in @" << fn_.name();
    const std::int64_t offset = static_cast<std::int64_t>(nextSlot_++) * 8;
    noSpill_.insert(victim);
    ++stats_.spilledRegs;

    const Opcode storeOp =
        victim.cls == RegClass::kFp ? Opcode::kFStore : Opcode::kStore;
    const Opcode loadOp =
        victim.cls == RegClass::kFp ? Opcode::kFLoad : Opcode::kLoad;

    const bool isParam =
        std::find(fn_.params().begin(), fn_.params().end(), victim) !=
        fn_.params().end();

    for (ir::BlockId b = 0; b < fn_.blockCount(); ++b) {
      BasicBlock& block = fn_.block(b);
      std::vector<Instruction> rebuilt;
      rebuilt.reserve(block.insns().size());

      // Incoming parameter: store it once at function entry (after the
      // spill-base materialisation).
      const bool storeParamHere = isParam && b == 0;
      bool paramStored = false;

      for (Instruction& insn : block.insns()) {
        if (storeParamHere && !paramStored &&
            insn.origin != InsnOrigin::kSpill) {
          rebuilt.push_back(makeStore(storeOp, offset, victim));
          paramStored = true;
        }
        // Reload before a user.
        bool reads = false;
        for (const Reg& use : insn.uses) {
          reads = reads || use == victim;
        }
        if (reads) {
          const Reg temp = fn_.newReg(victim.cls);
          noSpill_.insert(temp);
          Instruction reload;
          reload.op = loadOp;
          reload.id = fn_.newInsnId();
          reload.defs = {temp};
          reload.uses = {spillBase_};
          reload.imm = offset;
          reload.origin = InsnOrigin::kSpill;
          rebuilt.push_back(std::move(reload));
          ++stats_.spillReloads;
          for (Reg& use : insn.uses) {
            if (use == victim) {
              use = temp;
            }
          }
        }
        bool writes = false;
        for (const Reg& def : insn.defs) {
          writes = writes || def == victim;
        }
        rebuilt.push_back(std::move(insn));
        // Store right after a definition.
        if (writes) {
          rebuilt.push_back(makeStore(storeOp, offset, victim));
        }
      }
      block.insns() = std::move(rebuilt);
    }
  }

  Instruction makeStore(Opcode storeOp, std::int64_t offset, Reg victim) {
    Instruction store;
    store.op = storeOp;
    store.id = fn_.newInsnId();
    store.uses = {spillBase_, victim};
    store.imm = offset;
    store.origin = InsnOrigin::kSpill;
    ++stats_.spillStores;
    return store;
  }

  Program& program_;
  Function& fn_;
  const arch::RegisterFileConfig& capacity_;
  SpillStats& stats_;
  pm::AnalysisManager* am_;
  Reg spillBase_;
  std::uint32_t nextSlot_ = 0;
  std::unordered_set<Reg> noSpill_;
};

}  // namespace

SpillStats applySpilling(ir::Program& program,
                         const arch::MachineConfig& config,
                         pm::AnalysisManager* am) {
  SpillStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    FunctionSpiller(program, program.function(f), config.registerFile, stats,
                    am)
        .run();
  }
  return stats;
}

pm::PassResult SpillPass::run(ir::Program& program, pm::AnalysisManager& am) {
  const SpillStats stats = applySpilling(program, am.config(), &am);
  pm::PassResult result;
  // applySpilling invalidates every function it rewrites as it goes, so the
  // remaining caches are exactly the untouched functions'.
  result.preserved = pm::Preserved::kAll;
  result.add("spilled-regs", stats.spilledRegs);
  result.add("spill-stores", stats.spillStores);
  result.add("spill-reloads", stats.spillReloads);
  result.add("residual-pr-pressure", stats.residualPrPressure);
  return result;
}

}  // namespace casted::passes
