// Cluster-assignment passes.
//
// SCED and DCED are the fixed state-of-the-art placements the paper compares
// against (§II-B): SCED puts everything on cluster 0; DCED puts the original
// and non-replicated instructions on cluster 0 and the redundant code
// (duplicates, checks, shadow copies) on cluster 1.
//
// CASTED's assigner is Bottom-Up-Greedy (Algorithm 2, after Ellis'85): walk
// the block DFG in topological order preferring the critical path, compute
// each node's completion cycle on every cluster (operand-ready time priced
// with the inter-cluster delay, plus the earliest free issue slot in the
// assigner's reservation table), assign the node to the cluster with the
// earliest completion, and reserve the slot.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "passes/scheme.h"
#include "pm/pass.h"

namespace casted::passes {

struct AssignmentStats {
  std::uint64_t total = 0;        // instructions assigned
  std::uint64_t offCluster0 = 0;  // instructions not on cluster 0
  // CASTED adaptivity indicators (always 0 for the fixed schemes):
  std::uint64_t originalsMoved = 0;   // original insns placed off cluster 0
  std::uint64_t duplicatesHome = 0;   // duplicates placed ON cluster 0
  std::uint64_t checksMoved = 0;      // checks placed off cluster 0
};

// Assigns every instruction's `cluster` field according to `scheme`.
// NOED and SCED use only cluster 0; DCED requires >= 2 clusters.  With `am`,
// BUG walks the manager's cached block DFGs instead of rebuilding them —
// and since assignment only writes `Instruction::cluster` (which no
// analysis reads), those same graphs stay valid for the list scheduler.
AssignmentStats assignClusters(ir::Program& program,
                               const arch::MachineConfig& config,
                               Scheme scheme,
                               pm::AnalysisManager* am = nullptr);

// pm adapter; the machine comes from the AnalysisManager's config.  Stats:
// "total", "off-cluster0", "originals-moved", "duplicates-home",
// "checks-moved".
class AssignmentPass final : public pm::Pass {
 public:
  explicit AssignmentPass(Scheme scheme) : scheme_(scheme) {}

  std::string_view name() const override { return "assignment"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;

 private:
  Scheme scheme_;
};

}  // namespace casted::passes
