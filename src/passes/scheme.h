// The four code-generation schemes the paper evaluates (§IV-B).
#pragma once

#include <string>

namespace casted::passes {

enum class Scheme {
  kNoed,    // no error detection: the unmodified single-cluster code
  kSced,    // single-core error detection: everything on cluster 0
  kDced,    // dual-core: original on cluster 0, redundant code on cluster 1
  kCasted,  // adaptive: Bottom-Up-Greedy assignment (Algorithm 2)
};

inline const char* schemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNoed:
      return "NOED";
    case Scheme::kSced:
      return "SCED";
    case Scheme::kDced:
      return "DCED";
    case Scheme::kCasted:
      return "CASTED";
  }
  return "?";
}

inline constexpr Scheme kAllSchemes[] = {Scheme::kNoed, Scheme::kSced,
                                         Scheme::kDced, Scheme::kCasted};

}  // namespace casted::passes
