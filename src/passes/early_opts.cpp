#include "passes/early_opts.h"

#include <optional>
#include <unordered_map>

#include "support/check.h"

namespace casted::passes {
namespace {

using ir::Instruction;
using ir::InsnOrigin;
using ir::Opcode;
using ir::Reg;
using ir::RegClass;

std::int64_t wrap(std::uint64_t value) {
  return static_cast<std::int64_t>(value);
}

// Folds an integer/predicate operation over constant operands.  Returns
// nullopt for opcodes this pass does not fold (memory, FP, trapping ops).
std::optional<std::int64_t> foldOp(const Instruction& insn,
                                   std::int64_t a, std::int64_t b) {
  const std::int64_t imm = insn.imm;
  switch (insn.op) {
    case Opcode::kMov:
      return a;
    case Opcode::kAdd:
      return wrap(static_cast<std::uint64_t>(a) +
                  static_cast<std::uint64_t>(b));
    case Opcode::kSub:
      return wrap(static_cast<std::uint64_t>(a) -
                  static_cast<std::uint64_t>(b));
    case Opcode::kMul:
      return wrap(static_cast<std::uint64_t>(a) *
                  static_cast<std::uint64_t>(b));
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return wrap(static_cast<std::uint64_t>(a) << (b & 63));
    case Opcode::kShr:
      return wrap(static_cast<std::uint64_t>(a) >> (b & 63));
    case Opcode::kSra:
      return a >> (b & 63);
    case Opcode::kMin:
      return std::min(a, b);
    case Opcode::kMax:
      return std::max(a, b);
    case Opcode::kAddImm:
      return wrap(static_cast<std::uint64_t>(a) +
                  static_cast<std::uint64_t>(imm));
    case Opcode::kMulImm:
      return wrap(static_cast<std::uint64_t>(a) *
                  static_cast<std::uint64_t>(imm));
    case Opcode::kAndImm:
      return a & imm;
    case Opcode::kShlImm:
      return wrap(static_cast<std::uint64_t>(a) << (imm & 63));
    case Opcode::kShrImm:
      return wrap(static_cast<std::uint64_t>(a) >> (imm & 63));
    case Opcode::kSraImm:
      return a >> (imm & 63);
    case Opcode::kNeg:
      return wrap(0 - static_cast<std::uint64_t>(a));
    case Opcode::kAbs:
      return a < 0 ? wrap(0 - static_cast<std::uint64_t>(a)) : a;
    case Opcode::kNot:
      return ~a;
    case Opcode::kCmpEq:
      return a == b ? 1 : 0;
    case Opcode::kCmpNe:
      return a != b ? 1 : 0;
    case Opcode::kCmpLt:
      return a < b ? 1 : 0;
    case Opcode::kCmpLe:
      return a <= b ? 1 : 0;
    case Opcode::kCmpGt:
      return a > b ? 1 : 0;
    case Opcode::kCmpGe:
      return a >= b ? 1 : 0;
    case Opcode::kCmpEqImm:
      return a == imm ? 1 : 0;
    case Opcode::kCmpNeImm:
      return a != imm ? 1 : 0;
    case Opcode::kCmpLtImm:
      return a < imm ? 1 : 0;
    case Opcode::kCmpLeImm:
      return a <= imm ? 1 : 0;
    case Opcode::kCmpGtImm:
      return a > imm ? 1 : 0;
    case Opcode::kCmpGeImm:
      return a >= imm ? 1 : 0;
    case Opcode::kPMov:
      return a != 0 ? 1 : 0;
    case Opcode::kPNot:
      return a != 0 ? 0 : 1;
    case Opcode::kPAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case Opcode::kPOr:
      return (a != 0 || b != 0) ? 1 : 0;
    case Opcode::kPXor:
      return ((a != 0) != (b != 0)) ? 1 : 0;
    default:
      return std::nullopt;  // FP, memory, control flow, trapping, checks
  }
}

}  // namespace

EarlyOptStats applyConstantFolding(ir::Program& program) {
  EarlyOptStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    ir::Function& fn = program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      std::unordered_map<Reg, std::int64_t> constants;
      for (Instruction& insn : fn.block(b).insns()) {
        if (insn.origin != InsnOrigin::kOriginal) {
          // Never touch redundancy machinery; re-track its defs only.
          for (const Reg& def : insn.defs) {
            constants.erase(def);
          }
          continue;
        }
        if (insn.op == Opcode::kMovImm) {
          constants[insn.defs[0]] = insn.imm;
          continue;
        }
        if (insn.op == Opcode::kPSetImm) {
          constants[insn.defs[0]] = insn.imm != 0 ? 1 : 0;
          continue;
        }

        // Select folds when the predicate is known.
        if (insn.op == Opcode::kSelect) {
          const auto pred = constants.find(insn.uses[0]);
          if (pred != constants.end()) {
            const Reg chosen =
                pred->second != 0 ? insn.uses[1] : insn.uses[2];
            const Reg def = insn.defs[0];
            insn.op = Opcode::kMov;
            insn.uses = {chosen};
            ++stats.foldedConstants;
            const auto value = constants.find(chosen);
            if (value != constants.end()) {
              constants[def] = value->second;
            } else {
              constants.erase(def);
            }
            continue;
          }
        }

        // General fold: all register operands constant.
        bool allConstant = !insn.uses.empty() || insn.info().hasImm;
        std::int64_t a = 0;
        std::int64_t b2 = 0;
        for (std::size_t i = 0; i < insn.uses.size() && allConstant; ++i) {
          const auto it = constants.find(insn.uses[i]);
          if (it == constants.end()) {
            allConstant = false;
          } else if (i == 0) {
            a = it->second;
          } else {
            b2 = it->second;
          }
        }
        std::optional<std::int64_t> folded;
        if (allConstant && insn.uses.size() <= 2 && insn.defs.size() == 1) {
          folded = foldOp(insn, a, b2);
        }
        if (folded.has_value()) {
          const Reg def = insn.defs[0];
          if (def.cls == RegClass::kPr) {
            insn.op = Opcode::kPSetImm;
          } else {
            insn.op = Opcode::kMovImm;
          }
          insn.uses.clear();
          insn.imm = *folded;
          constants[def] = *folded;
          ++stats.foldedConstants;
          continue;
        }
        for (const Reg& def : insn.defs) {
          constants.erase(def);
        }
      }
    }
  }
  return stats;
}

EarlyOptStats applyCopyPropagation(ir::Program& program) {
  EarlyOptStats stats;
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    ir::Function& fn = program.function(f);
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      // copyOf[r] = s means r currently holds the value of s (and s has not
      // been redefined since the copy).
      std::unordered_map<Reg, Reg> copyOf;
      auto resolve = [&](Reg reg) {
        const auto it = copyOf.find(reg);
        return it != copyOf.end() ? it->second : reg;
      };
      auto invalidate = [&](Reg def) {
        copyOf.erase(def);
        for (auto it = copyOf.begin(); it != copyOf.end();) {
          if (it->second == def) {
            it = copyOf.erase(it);
          } else {
            ++it;
          }
        }
      };
      for (Instruction& insn : fn.block(b).insns()) {
        if (insn.origin == InsnOrigin::kOriginal) {
          for (Reg& use : insn.uses) {
            const Reg source = resolve(use);
            if (source != use) {
              use = source;
              ++stats.propagatedCopies;
            }
          }
        }
        const bool isCopy = (insn.op == Opcode::kMov ||
                             insn.op == Opcode::kFMov ||
                             insn.op == Opcode::kPMov) &&
                            insn.origin == InsnOrigin::kOriginal;
        for (const Reg& def : insn.defs) {
          invalidate(def);
        }
        if (isCopy && insn.defs[0] != insn.uses[0]) {
          copyOf[insn.defs[0]] = insn.uses[0];
        }
      }
    }
  }
  return stats;
}

EarlyOptStats applyEarlyOptimisations(ir::Program& program) {
  EarlyOptStats total;
  const EarlyOptStats fold1 = applyConstantFolding(program);
  const EarlyOptStats copies = applyCopyPropagation(program);
  const EarlyOptStats fold2 = applyConstantFolding(program);
  total.foldedConstants = fold1.foldedConstants + fold2.foldedConstants;
  total.propagatedCopies = copies.propagatedCopies;
  return total;
}

pm::PassResult EarlyOptsPass::run(ir::Program& program,
                                  pm::AnalysisManager& am) {
  (void)am;
  const EarlyOptStats stats = applyEarlyOptimisations(program);
  pm::PassResult result;
  result.preserved = stats.foldedConstants + stats.propagatedCopies == 0
                         ? pm::Preserved::kAll
                         : pm::Preserved::kNone;
  result.add("folded-constants", stats.foldedConstants);
  result.add("propagated-copies", stats.propagatedCopies);
  return result;
}

}  // namespace casted::passes
