// ErrorDetectionPass — Algorithm 1 of the paper.
//
// Three phases, applied to every protected function:
//   1. replicate_insns: emit an exact duplicate immediately before every
//      replicable instruction (everything except control flow, stores and
//      compiler-generated code; loads ARE replicated — the memory system is
//      inside its own sphere of protection, SWIFT-style).
//   2. register_rename: isolate the replicated stream by renaming every
//      register the duplicates write to a fresh shadow register, and
//      rewriting duplicate uses through the shadow map (Fig. 4b).  Values
//      produced by non-duplicated instructions (call results, incoming
//      parameters) enter the shadow stream through an explicit COPY
//      (Alg. 1 lines 34-37).
//   3. emit_check_insns: before every non-replicated instruction, for every
//      register it reads, emit CHECK(reg, shadow(reg)) which traps to the
//      detection handler on mismatch.
//
// Unprotected ("binary-only library") functions are left untouched,
// reproducing the paper's §IV-C observation that library code remains
// vulnerable.
#pragma once

#include <cstdint>
#include <string_view>

#include "ir/function.h"
#include "pm/pass.h"

namespace casted::passes {

struct ErrorDetectionOptions {
  // Check operands of stores (paper: always true — stores must never write
  // corrupt data).
  bool checkStores = true;
  // Check operands of control-flow instructions (branches, calls, ret,
  // halt).  The paper's algorithm checks them; turning this off approximates
  // Shoestring-style reduced checking and is used by an ablation bench.
  bool checkControlFlow = true;
  // Emit each check as the paper's literal compare + jump pair (two issue
  // slots, a real dependence chain) instead of the default fused
  // compare-and-trap instruction (one slot).  The fused form is the
  // default because it keeps the schedules readable; `ablation_checks`
  // quantifies the difference (split checks raise every scheme's overhead
  // and make the checking code more serial — the paper's h263enc point).
  bool splitChecks = false;
};

struct ErrorDetectionStats {
  std::uint64_t replicated = 0;   // duplicates emitted
  std::uint64_t checks = 0;       // check instructions emitted
  std::uint64_t copies = 0;       // shadow copies for non-duplicated defs
  std::uint64_t skippedUnprotected = 0;  // functions left untouched

  std::uint64_t totalInserted() const {
    return replicated + checks + copies;
  }
};

// Applies Algorithm 1 to every protected function of `program`.
ErrorDetectionStats applyErrorDetection(
    ir::Program& program, const ErrorDetectionOptions& options = {});

// pm adapter.  Stats: "replicated", "checks", "copies",
// "skipped-unprotected".
class ErrorDetectionPass final : public pm::Pass {
 public:
  explicit ErrorDetectionPass(ErrorDetectionOptions options = {})
      : options_(options) {}

  std::string_view name() const override { return "error-detection"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;

 private:
  ErrorDetectionOptions options_;
};

}  // namespace casted::passes
