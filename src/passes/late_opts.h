// Late optimisation passes: local CSE and liveness-based DCE.
//
// These reproduce the paper's methodology point (§IV-A): GCC's late CSE/DCE
// stages, run after the CASTED passes, would fold or delete the replicated
// code (a duplicate is by construction a common subexpression of its
// original once their operands coincide — e.g. immediate moves).  The paper
// disables them after the error-detection pass; here the same is expressed
// by `protectRedundant`, which excludes non-original instructions from both
// transformations.  An ablation bench runs with protection off to quantify
// the coverage loss.
#pragma once

#include <cstdint>
#include <string_view>

#include "ir/function.h"
#include "pm/pass.h"

namespace casted::passes {

struct LateOptOptions {
  // When true (the paper's setting), duplicates/checks/copies neither
  // participate in CSE nor are eligible for DCE.
  bool protectRedundant = true;
};

struct LateOptStats {
  std::uint64_t cseReplaced = 0;  // instructions rewritten into copies
  std::uint64_t dceRemoved = 0;   // instructions deleted
};

// Local (per-block) common-subexpression elimination via value numbering.
// A recomputation of an available expression is rewritten into a register
// copy from the earlier result.
LateOptStats applyLocalCse(ir::Program& program,
                           const LateOptOptions& options = {});

// Dead-code elimination: deletes side-effect-free instructions whose results
// are dead (liveness-based, iterated to a fixpoint).  Trapping instructions
// (div/rem, loads, f2i) are conservatively kept.  With `am`, the first
// liveness per function comes from the cache (and the cache is invalidated
// whenever instructions are deleted).
LateOptStats applyDce(ir::Program& program, const LateOptOptions& options = {},
                      pm::AnalysisManager* am = nullptr);

// pm adapter for CSE.  Stats: "cse-replaced".
class LocalCsePass final : public pm::Pass {
 public:
  explicit LocalCsePass(LateOptOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "local-cse"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;

 private:
  LateOptOptions options_;
};

// pm adapter for DCE.  Stats: "dce-removed".
class DcePass final : public pm::Pass {
 public:
  explicit DcePass(LateOptOptions options = {}) : options_(options) {}

  std::string_view name() const override { return "dce"; }
  pm::PassResult run(ir::Program& program, pm::AnalysisManager& am) override;

 private:
  LateOptOptions options_;
};

}  // namespace casted::passes
