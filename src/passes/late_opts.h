// Late optimisation passes: local CSE and liveness-based DCE.
//
// These reproduce the paper's methodology point (§IV-A): GCC's late CSE/DCE
// stages, run after the CASTED passes, would fold or delete the replicated
// code (a duplicate is by construction a common subexpression of its
// original once their operands coincide — e.g. immediate moves).  The paper
// disables them after the error-detection pass; here the same is expressed
// by `protectRedundant`, which excludes non-original instructions from both
// transformations.  An ablation bench runs with protection off to quantify
// the coverage loss.
#pragma once

#include <cstdint>

#include "ir/function.h"

namespace casted::passes {

struct LateOptOptions {
  // When true (the paper's setting), duplicates/checks/copies neither
  // participate in CSE nor are eligible for DCE.
  bool protectRedundant = true;
};

struct LateOptStats {
  std::uint64_t cseReplaced = 0;  // instructions rewritten into copies
  std::uint64_t dceRemoved = 0;   // instructions deleted
};

// Local (per-block) common-subexpression elimination via value numbering.
// A recomputation of an available expression is rewritten into a register
// copy from the earlier result.
LateOptStats applyLocalCse(ir::Program& program,
                           const LateOptOptions& options = {});

// Dead-code elimination: deletes side-effect-free instructions whose results
// are dead (liveness-based, iterated to a fixpoint).  Trapping instructions
// (div/rem, loads, f2i) are conservatively kept.
LateOptStats applyDce(ir::Program& program, const LateOptOptions& options = {});

}  // namespace casted::passes
