// PassManager — owns the pass pipeline: ordering, optional post-pass IR
// verification, per-pass instrumentation, and analysis-cache invalidation.
//
// core::compile builds one declaratively from PipelineOptions + Scheme
// (see core::buildPipeline) and runs it; tests build small ad-hoc pipelines
// directly.  The caller owns the AnalysisManager so later consumers (the
// list scheduler) can keep using analyses the passes left valid.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "ir/function.h"
#include "pm/analysis_manager.h"
#include "pm/pass.h"
#include "pm/report.h"

namespace casted::pm {

class PassManager {
 public:
  struct Options {
    // Verify the IR after each pass (cheap; keep on outside the inner loops
    // of big sweeps).  Verification failure throws FatalError.
    bool verifyAfterEachPass = true;
    // Emit one scoped duration event ("pm.<pass>") plus an instruction-delta
    // counter per executed pass when the global trace session
    // (support/trace.h) is active.  Observation only — the PipelineReport
    // is identical either way.
    bool trace = true;
  };

  PassManager() = default;
  explicit PassManager(Options options) : options_(options) {}

  PassManager(PassManager&&) = default;
  PassManager& operator=(PassManager&&) = default;

  void addPass(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
  }

  template <typename PassT, typename... Args>
  void emplacePass(Args&&... args) {
    passes_.push_back(std::make_unique<PassT>(std::forward<Args>(args)...));
  }

  std::size_t passCount() const { return passes_.size(); }
  const Pass& pass(std::size_t index) const { return *passes_[index]; }

  const Options& options() const { return options_; }

  // Runs every pass in order over `program`.  After a pass that does not
  // preserve analyses, all of `am`'s caches are invalidated.  The returned
  // report carries one entry per pass plus the cache counters at return
  // time (the caller may keep using `am` and re-read the counters).
  PipelineReport run(ir::Program& program, AnalysisManager& am) const;

 private:
  Options options_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace casted::pm
