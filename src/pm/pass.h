// The Pass interface of the casted::pm layer.
//
// A Pass is one stage of the paper's tool flow (Fig. 5) — error detection,
// cluster assignment, an optimisation — wrapped behind a uniform surface the
// PassManager can order, time, verify and instrument.  Passes run at module
// scope (`ir::Program&`): several of them allocate globals (the spill arena)
// or keep cross-function totals, so a per-function interface would need a
// side channel anyway.  Analyses are still cached per *function* inside the
// AnalysisManager, which is where the granularity matters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ir/function.h"
#include "pm/analysis_manager.h"

namespace casted::pm {

// What a pass's run() left intact.  kAll keeps every cached analysis (the
// pass did not mutate anything an analysis reads — e.g. cluster assignment
// only writes `Instruction::cluster`); kNone drops the caches.
enum class Preserved : std::uint8_t {
  kAll,
  kNone,
};

// Outcome of one Pass::run(): the preserved-analyses declaration plus the
// pass's own counters as generic key/value stats.  The keys become columns
// of the pm::PipelineReport, replacing the per-pass `*Stats` structs that
// used to be baked into core::CompiledProgram.
struct PassResult {
  Preserved preserved = Preserved::kNone;
  std::vector<std::pair<std::string, std::uint64_t>> stats;

  void add(std::string key, std::uint64_t value) {
    stats.emplace_back(std::move(key), value);
  }
};

class Pass {
 public:
  virtual ~Pass() = default;

  // Stable identifier, used for report lookup (PipelineReport::stat) and
  // the pipeline-ordering tests.  Lower-case, dash-separated.
  virtual std::string_view name() const = 0;

  // Transforms `program`; may consume cached analyses through `am`.  A pass
  // that mutates the IR must also invalidate the touched functions in `am`
  // if it reads analyses *after* mutating (the PassManager only invalidates
  // between passes, based on the returned Preserved).
  virtual PassResult run(ir::Program& program, AnalysisManager& am) = 0;
};

}  // namespace casted::pm
