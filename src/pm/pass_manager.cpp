#include "pm/pass_manager.h"

#include <chrono>
#include <string>

#include "ir/verifier.h"
#include "support/trace.h"

namespace casted::pm {

PipelineReport PassManager::run(ir::Program& program,
                                AnalysisManager& am) const {
  PipelineReport report;
  report.sourceInsns = program.insnCount();

  for (const std::unique_ptr<Pass>& pass : passes_) {
    const std::size_t before = program.insnCount();
    const auto start = std::chrono::steady_clock::now();
    PassResult result;
    {
      // Build the event name only when it will be recorded: the disabled
      // path must not allocate.
      const bool traced = options_.trace && trace::enabled();
      const trace::Scope scope(
          traced ? "pm." + std::string(pass->name()) : std::string(), traced);
      result = pass->run(program, am);
    }
    const auto end = std::chrono::steady_clock::now();

    if (result.preserved == Preserved::kNone) {
      am.invalidateAll();
    }

    PassReport entry;
    entry.pass = std::string(pass->name());
    entry.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    entry.insnsAfter = program.insnCount();
    entry.insnDelta = static_cast<std::int64_t>(entry.insnsAfter) -
                      static_cast<std::int64_t>(before);
    // The gate comes first so the disabled path never pays the name
    // concatenation.
    if (options_.trace && trace::enabled()) {
      trace::counterAdd("pm." + entry.pass + ".insn_delta", entry.insnDelta);
      trace::counterAdd("pm." + entry.pass + ".runs");
    }
    entry.preservedAnalyses = result.preserved == Preserved::kAll;
    entry.stats = std::move(result.stats);
    if (options_.verifyAfterEachPass) {
      ir::verifyOrThrow(program);
      entry.verified = true;
    }
    report.passes.push_back(std::move(entry));
  }

  report.finalInsns = program.insnCount();
  report.analysisHits = am.hits();
  report.analysisMisses = am.misses();
  return report;
}

}  // namespace casted::pm
