#include "pm/pass_manager.h"

#include <chrono>

#include "ir/verifier.h"

namespace casted::pm {

PipelineReport PassManager::run(ir::Program& program,
                                AnalysisManager& am) const {
  PipelineReport report;
  report.sourceInsns = program.insnCount();

  for (const std::unique_ptr<Pass>& pass : passes_) {
    const std::size_t before = program.insnCount();
    const auto start = std::chrono::steady_clock::now();
    PassResult result = pass->run(program, am);
    const auto end = std::chrono::steady_clock::now();

    if (result.preserved == Preserved::kNone) {
      am.invalidateAll();
    }

    PassReport entry;
    entry.pass = std::string(pass->name());
    entry.millis =
        std::chrono::duration<double, std::milli>(end - start).count();
    entry.insnsAfter = program.insnCount();
    entry.insnDelta = static_cast<std::int64_t>(entry.insnsAfter) -
                      static_cast<std::int64_t>(before);
    entry.preservedAnalyses = result.preserved == Preserved::kAll;
    entry.stats = std::move(result.stats);
    if (options_.verifyAfterEachPass) {
      ir::verifyOrThrow(program);
      entry.verified = true;
    }
    report.passes.push_back(std::move(entry));
  }

  report.finalInsns = program.insnCount();
  report.analysisHits = am.hits();
  report.analysisMisses = am.misses();
  return report;
}

}  // namespace casted::pm
