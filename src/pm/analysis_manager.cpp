#include "pm/analysis_manager.h"

#include "support/check.h"

namespace casted::pm {

const dfg::DataFlowGraph& AnalysisManager::dataFlowGraph(
    const ir::Function& fn, ir::BlockId block) {
  CASTED_CHECK(block < fn.blockCount())
      << "no block " << block << " in @" << fn.name();
  FunctionAnalyses& entry = cache_[fn.id()];
  if (entry.dfgs.size() < fn.blockCount()) {
    entry.dfgs.resize(fn.blockCount());
  }
  std::unique_ptr<dfg::DataFlowGraph>& slot = entry.dfgs[block];
  if (slot == nullptr) {
    ++misses_;
    slot = std::make_unique<dfg::DataFlowGraph>(fn.block(block), config_);
  } else {
    ++hits_;
  }
  return *slot;
}

const dfg::LivenessInfo& AnalysisManager::liveness(const ir::Function& fn) {
  FunctionAnalyses& entry = cache_[fn.id()];
  if (entry.liveness == nullptr) {
    ++misses_;
    entry.liveness =
        std::make_unique<dfg::LivenessInfo>(dfg::computeLiveness(fn));
  } else {
    ++hits_;
  }
  return *entry.liveness;
}

void AnalysisManager::invalidateFunction(const ir::Function& fn) {
  if (cache_.erase(fn.id()) > 0) {
    ++invalidations_;
  }
}

void AnalysisManager::invalidateAll() {
  if (!cache_.empty()) {
    ++invalidations_;
    cache_.clear();
  }
}

}  // namespace casted::pm
