// AnalysisManager — lazily computed, cached IR analyses.
//
// Every pass used to rebuild the per-block DataFlowGraph and the per-function
// liveness from scratch; on the big sweep benches (fig6-10, the design-space
// explorer) that rebuild dominated compile time.  The manager computes each
// analysis on first request, hands out const references, and keeps them until
// a pass reports that it mutated the IR (pm::Preserved::kNone), at which
// point the affected caches are dropped.
//
// The flagship reuse: BUG (Algorithm 2) walks the block DFGs to place
// instructions, and the list scheduler walks the *same* DFGs right after —
// cluster assignment only writes `Instruction::cluster`, which no analysis
// reads, so the scheduler gets every graph for free.
//
// Cached analyses reference the function's instruction storage directly, so
// they must be invalidated (or the manager discarded) before the analysed
// program is destroyed, moved, or structurally mutated outside the pass
// manager's knowledge.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/machine_config.h"
#include "dfg/dfg.h"
#include "dfg/liveness.h"
#include "ir/function.h"

namespace casted::pm {

class AnalysisManager {
 public:
  // The config is copied: managers routinely outlive the expression that
  // configured them, and a dangling reference here is invisible until the
  // first cache miss.
  explicit AnalysisManager(const arch::MachineConfig& config)
      : config_(config) {}

  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  const arch::MachineConfig& config() const { return config_; }

  // Per-block data-flow graph of `fn` (built with the manager's machine
  // config).  The reference stays valid until the function is invalidated.
  const dfg::DataFlowGraph& dataFlowGraph(const ir::Function& fn,
                                          ir::BlockId block);

  // Per-function liveness (live-in/out sets + register pressure).
  const dfg::LivenessInfo& liveness(const ir::Function& fn);

  // Drops every cached analysis for `fn` (a pass mutated just this one).
  void invalidateFunction(const ir::Function& fn);

  // Drops everything (a pass mutated the IR without finer-grained tracking).
  void invalidateAll();

  // Cache counters, surfaced in pm::PipelineReport.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t invalidations() const { return invalidations_; }

 private:
  struct FunctionAnalyses {
    // Indexed by block id; null until requested.
    std::vector<std::unique_ptr<dfg::DataFlowGraph>> dfgs;
    std::unique_ptr<dfg::LivenessInfo> liveness;
  };

  arch::MachineConfig config_;
  std::unordered_map<ir::FuncId, FunctionAnalyses> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace casted::pm
