// PipelineReport — per-pass instrumentation for one compile.
//
// One PassReport per executed pass: wall time, instruction-count delta, the
// pass's key/value stats, and whether it preserved the cached analyses.
// This single structure replaces the five hard-coded `*Stats` members the
// old core::CompiledProgram carried; callers look values up by
// (pass name, key) and get 0 for passes that did not run — which keeps
// "NOED has no checks"-style queries branch-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace casted::pm {

struct PassReport {
  std::string pass;
  double millis = 0.0;
  // insnsAfter - insnsBefore: what the pass added (replication) or removed
  // (DCE).  Summing deltas over the whole report reproduces the observed
  // code growth (~2.4x for the CASTED schemes).
  std::int64_t insnDelta = 0;
  std::size_t insnsAfter = 0;
  bool preservedAnalyses = false;
  bool verified = false;  // post-pass IR verification ran (and passed)
  std::vector<std::pair<std::string, std::uint64_t>> stats;

  // Value of `key`, or 0 if the pass did not record it.
  std::uint64_t stat(std::string_view key) const;
};

struct PipelineReport {
  std::vector<PassReport> passes;
  std::size_t sourceInsns = 0;  // before the first pass
  std::size_t finalInsns = 0;   // after the last pass

  // Analysis-cache behaviour across the pipeline (including the scheduler's
  // reuse of the assignment pass's DFGs when the caller shares the manager).
  std::uint64_t analysisHits = 0;
  std::uint64_t analysisMisses = 0;

  // Report of pass `name`, or nullptr if it did not run.
  const PassReport* find(std::string_view name) const;

  // stat(`key`) of pass `name`; 0 when the pass did not run or did not
  // record the key.
  std::uint64_t stat(std::string_view name, std::string_view key) const;

  double totalMillis() const;

  // Net instruction delta across all passes (== finalInsns - sourceInsns).
  std::int64_t totalInsnDelta() const;

  // Multi-line ASCII table: pass, time, Δinsns, preserved, stats.
  std::string toString() const;
};

}  // namespace casted::pm
