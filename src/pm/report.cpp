#include "pm/report.h"

#include <cstdio>

#include "support/table.h"

namespace casted::pm {

std::uint64_t PassReport::stat(std::string_view key) const {
  for (const auto& [name, value] : stats) {
    if (name == key) {
      return value;
    }
  }
  return 0;
}

const PassReport* PipelineReport::find(std::string_view name) const {
  for (const PassReport& report : passes) {
    if (report.pass == name) {
      return &report;
    }
  }
  return nullptr;
}

std::uint64_t PipelineReport::stat(std::string_view name,
                                   std::string_view key) const {
  const PassReport* report = find(name);
  return report == nullptr ? 0 : report->stat(key);
}

double PipelineReport::totalMillis() const {
  double total = 0.0;
  for (const PassReport& report : passes) {
    total += report.millis;
  }
  return total;
}

std::int64_t PipelineReport::totalInsnDelta() const {
  std::int64_t total = 0;
  for (const PassReport& report : passes) {
    total += report.insnDelta;
  }
  return total;
}

std::string PipelineReport::toString() const {
  TextTable table({"pass", "ms", "Δinsns", "insns", "preserved", "stats"});
  for (const PassReport& report : passes) {
    char ms[32];
    std::snprintf(ms, sizeof(ms), "%.3f", report.millis);
    std::string stats;
    for (const auto& [key, value] : report.stats) {
      if (!stats.empty()) {
        stats += "  ";
      }
      stats += key + "=" + std::to_string(value);
    }
    table.addRow({report.pass, ms,
                  (report.insnDelta >= 0 ? "+" : "") +
                      std::to_string(report.insnDelta),
                  std::to_string(report.insnsAfter),
                  report.preservedAnalyses ? "yes" : "no", stats});
  }
  std::string out = table.render();
  out += "total: " + std::to_string(sourceInsns) + " -> " +
         std::to_string(finalInsns) + " insns";
  char total[64];
  std::snprintf(total, sizeof(total), " in %.3f ms; ", totalMillis());
  out += total;
  out += "analysis cache " + std::to_string(analysisHits) + " hits / " +
         std::to_string(analysisMisses) + " misses\n";
  return out;
}

}  // namespace casted::pm
