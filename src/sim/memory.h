// Flat simulated memory.
//
// The arena covers [0, arenaEnd).  Addresses below Program::kGlobalBase form
// a guard region that always faults (so a corrupted near-null pointer raises
// an exception, one of the paper's outcome classes), globals sit at
// kGlobalBase, and a zero-initialised scratch/heap region follows them.
// 64-bit accesses must be 8-byte aligned; violations raise kMisaligned.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace casted::sim {

// Why a run trapped.
enum class TrapKind : std::uint8_t {
  kNone,
  kBadAddress,
  kMisaligned,
  kDivByZero,
  kBadConversion,  // f2i of NaN/infinity/out-of-range
  kStackOverflow,
};

const char* trapKindName(TrapKind kind);

// Raised by Memory/Executor on a trap; caught by the simulator run loop and
// classified as an Exception outcome.
struct TrapError {
  TrapKind kind = TrapKind::kNone;
  std::uint64_t address = 0;
};

class Memory {
 public:
  // Builds the memory image of `program` with `heapBytes` of zeroed scratch
  // after the globals.
  Memory(const ir::Program& program, std::uint64_t heapBytes);

  std::uint64_t arenaEnd() const {
    return ir::Program::kGlobalBase + bytes_.size();
  }

  std::uint64_t readU64(std::uint64_t address) const;
  std::uint8_t readU8(std::uint64_t address) const;
  double readF64(std::uint64_t address) const;
  void writeU64(std::uint64_t address, std::uint64_t value);
  void writeU8(std::uint64_t address, std::uint8_t value);
  void writeF64(std::uint64_t address, double value);

  // Snapshot of `size` bytes at `address` (bounds-checked) — used to capture
  // the output region for golden comparison.
  std::vector<std::uint8_t> snapshot(std::uint64_t address,
                                     std::uint64_t size) const;

 private:
  std::size_t checkRange(std::uint64_t address, std::uint32_t width) const;

  std::vector<std::uint8_t> bytes_;  // starts at kGlobalBase
};

}  // namespace casted::sim
