// Flat simulated memory.
//
// The arena covers [0, arenaEnd).  Addresses below Program::kGlobalBase form
// a guard region that always faults (so a corrupted near-null pointer raises
// an exception, one of the paper's outcome classes), globals sit at
// kGlobalBase, and a zero-initialised scratch/heap region follows them.
// 64-bit accesses must be 8-byte aligned; violations raise kMisaligned.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "ir/function.h"

namespace casted::sim {

// Why a run trapped.
enum class TrapKind : std::uint8_t {
  kNone,
  kBadAddress,
  kMisaligned,
  kDivByZero,
  kBadConversion,  // f2i of NaN/infinity/out-of-range
  kStackOverflow,
};

const char* trapKindName(TrapKind kind);

// Raised by Memory/Executor on a trap; caught by the simulator run loop and
// classified as an Exception outcome.
struct TrapError {
  TrapKind kind = TrapKind::kNone;
  std::uint64_t address = 0;
};

class Memory {
 public:
  // Builds the memory image of `program` with `heapBytes` of zeroed scratch
  // after the globals.
  Memory(const ir::Program& program, std::uint64_t heapBytes);

  // Same, from a raw global image (starting at kGlobalBase) — the decoded
  // engine keeps a copy of the image instead of the ir::Program.
  Memory(const std::vector<std::uint8_t>& globalImage,
         std::uint64_t heapBytes);

  std::uint64_t arenaEnd() const {
    return ir::Program::kGlobalBase + bytes_.size();
  }

  // Accessors are header-inline: they are the single hottest call sites of
  // both simulator engines (one per simulated load/store).
  std::uint64_t readU64(std::uint64_t address) const {
    const std::size_t offset = checkRange(address, 8);
    std::uint64_t value;
    std::memcpy(&value, bytes_.data() + offset, 8);
    return value;
  }
  std::uint8_t readU8(std::uint64_t address) const {
    return bytes_[checkRange(address, 1)];
  }
  double readF64(std::uint64_t address) const {
    const std::size_t offset = checkRange(address, 8);
    double value;
    std::memcpy(&value, bytes_.data() + offset, 8);
    return value;
  }
  void writeU64(std::uint64_t address, std::uint64_t value) {
    const std::size_t offset = checkRange(address, 8);
    noteWrite(offset, 8);
    std::memcpy(bytes_.data() + offset, &value, 8);
  }
  void writeU8(std::uint64_t address, std::uint8_t value) {
    const std::size_t offset = checkRange(address, 1);
    noteWrite(offset, 1);
    bytes_[offset] = value;
  }
  void writeF64(std::uint64_t address, double value) {
    const std::size_t offset = checkRange(address, 8);
    noteWrite(offset, 8);
    std::memcpy(bytes_.data() + offset, &value, 8);
  }

  // Snapshot of `size` bytes at `address` (bounds-checked) — used to capture
  // the output region for golden comparison.
  std::vector<std::uint8_t> snapshot(std::uint64_t address,
                                     std::uint64_t size) const;

  // Write logging, for contexts that run many programs against the same
  // image (the decoded engine's per-campaign runners).  With the log on,
  // every successful write records its (offset, width); resetLogged()
  // restores exactly those bytes from `pristine` (the global image; bytes
  // past it are heap and revert to zero) instead of rebuilding the whole
  // multi-megabyte arena.  Cost is proportional to bytes written by the
  // run, not to arena size.
  void enableWriteLog();
  void resetLogged(const std::vector<std::uint8_t>& pristine);

  // Checkpoint support for the decoded engine's golden-prefix restore
  // (sim/decoded.h).  setCheckpoint() marks the current contents as the
  // rewind target and starts recording each write's pre-image;
  // rewindToCheckpoint() undoes every write since the mark in reverse order,
  // so restore cost is O(bytes written since the mark), not O(arena).  One
  // checkpoint is live at a time; a new setCheckpoint() replaces the mark,
  // and rewinding can be repeated (the undo log re-accumulates after each
  // rewind).  Requires the write log: rewinding also truncates `log_` back
  // to the mark, which keeps resetLogged() exact — every byte the rewind
  // restores holds its checkpoint-time value, and any such byte that differs
  // from pristine was already covered by a pre-mark log entry.
  void setCheckpoint();
  void rewindToCheckpoint();
  void dropCheckpoint();

 private:
  struct WriteRecord {
    std::size_t offset = 0;
    std::uint32_t width = 0;
  };
  struct UndoRecord {
    std::size_t offset = 0;
    std::uint64_t oldBits = 0;  // pre-image, low `width` bytes
    std::uint32_t width = 0;
  };

  void noteWrite(std::size_t offset, std::uint32_t width) {
    if (logging_) {
      log_.push_back({offset, width});
    }
    if (undoArmed_) {
      std::uint64_t old = 0;
      std::memcpy(&old, bytes_.data() + offset, width);
      undo_.push_back({offset, old, width});
    }
  }

  std::size_t checkRange(std::uint64_t address, std::uint32_t width) const {
    if (address < ir::Program::kGlobalBase || address + width > arenaEnd() ||
        address + width < address) {
      throw TrapError{TrapKind::kBadAddress, address};
    }
    if (width == 8 && (address & 7) != 0) {
      throw TrapError{TrapKind::kMisaligned, address};
    }
    return static_cast<std::size_t>(address - ir::Program::kGlobalBase);
  }

  std::vector<std::uint8_t> bytes_;  // starts at kGlobalBase
  std::vector<WriteRecord> log_;
  std::vector<UndoRecord> undo_;
  std::size_t logMark_ = 0;  // log_.size() at setCheckpoint()
  bool logging_ = false;
  bool undoArmed_ = false;
};

}  // namespace casted::sim
