// Cache hierarchy model (Table I).
//
// Three set-associative LRU levels over a flat physical address space, plus
// main memory.  The hierarchy is shared by both clusters (the target's
// memory subsystem sits outside the clusters, Fig. 1) and is *timing only*:
// data lives in sim::Memory; the caches track which lines are resident and
// answer "how many cycles did this access cost".
//
// Misses use write-allocate fills into every level (inclusive).  Write-back
// traffic is not modelled — stores cost the same as loads at the same level,
// which preserves the paper-relevant behaviour (miss stalls and MLP).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine_config.h"

namespace casted::sim {

struct CacheLevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double hitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// One set-associative LRU level.
class CacheLevel {
 public:
  explicit CacheLevel(const arch::CacheLevelConfig& config);

  // True when the line holding `address` is resident; updates LRU on hit.
  bool lookup(std::uint64_t address);

  // Inserts the line holding `address`, evicting the LRU way.
  void fill(std::uint64_t address);

  void reset();

  const CacheLevelStats& stats() const { return stats_; }
  const arch::CacheLevelConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;
    bool valid = false;
  };

  std::uint64_t setIndex(std::uint64_t address) const;
  std::uint64_t tagOf(std::uint64_t address) const;

  arch::CacheLevelConfig config_;
  std::uint32_t setCount_;
  std::vector<Way> ways_;  // setCount_ * associativity
  std::uint64_t clock_ = 0;
  CacheLevelStats stats_;
};

// The full hierarchy.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const arch::CacheConfig& config);

  // Performs one access; returns its total latency in cycles (L1 latency on
  // an L1 hit, ... , memoryLatency on a full miss) and fills all levels.
  std::uint32_t access(std::uint64_t address);

  void reset();

  const CacheLevelStats& levelStats(std::size_t level) const;
  std::uint64_t memoryAccesses() const { return memoryAccesses_; }

 private:
  std::vector<CacheLevel> levels_;
  std::uint32_t memoryLatency_;
  std::uint64_t memoryAccesses_ = 0;
};

}  // namespace casted::sim
