// Cache hierarchy model (Table I).
//
// Three set-associative LRU levels over a flat physical address space, plus
// main memory.  The hierarchy is shared by both clusters (the target's
// memory subsystem sits outside the clusters, Fig. 1) and is *timing only*:
// data lives in sim::Memory; the caches track which lines are resident and
// answer "how many cycles did this access cost".
//
// Misses use write-allocate fills into every level (inclusive).  Write-back
// traffic is not modelled — stores cost the same as loads at the same level,
// which preserves the paper-relevant behaviour (miss stalls and MLP).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine_config.h"

namespace casted::sim {

struct CacheLevelStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  double hitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// One set-associative LRU level.  The lookup/fill path is header-inline:
// every simulated memory access goes through it (millions of calls per
// campaign), and the call overhead is measurable for both engines.
class CacheLevel {
 public:
  explicit CacheLevel(const arch::CacheLevelConfig& config);

  // True when the line holding `address` is resident; updates LRU on hit.
  bool lookup(std::uint64_t address) {
    ++clock_;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Way* base = &ways_[set * config_.associativity];
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
      if (base[w].epoch == epoch_ && base[w].tag == tag) {
        noteMutation(&base[w]);
        base[w].lastUse = clock_;
        ++stats_.hits;
        return true;
      }
    }
    ++stats_.misses;
    return false;
  }

  // Inserts the line holding `address`, evicting the LRU way.
  void fill(std::uint64_t address) {
    ++clock_;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    Way* base = &ways_[set * config_.associativity];
    Way* victim = &base[0];
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
      if (base[w].epoch != epoch_) {
        victim = &base[w];
        break;
      }
      if (base[w].lastUse < victim->lastUse) {
        victim = &base[w];
      }
    }
    noteMutation(victim);
    victim->epoch = epoch_;
    victim->tag = tag;
    victim->lastUse = clock_;
  }

  // Invalidates every line and zeroes the stats.  O(1): validity is an
  // epoch stamp per way, so a reset just opens a new epoch instead of
  // touching the (potentially megabytes of) way array — that keeps the
  // reusable decoded-engine contexts cheap.  Behaviour is identical to a
  // freshly constructed level: stale-epoch ways read as invalid, and LRU
  // only ever compares `lastUse` between ways of the current epoch.
  void reset();

  // Checkpoint support, mirroring Memory: between setCheckpoint() and
  // rewindToCheckpoint() every way mutation records its pre-image, and the
  // rewind replays them backwards plus restores the scalar state (clock,
  // epoch, stats) by value — O(accesses since the mark), never O(way
  // array).  Cache metadata is timing state the reconvergence cutoff
  // (DESIGN.md) compares implicitly via cycle counts, so it must rewind
  // bit-exactly with the architectural state.
  void setCheckpoint();
  void rewindToCheckpoint();
  void dropCheckpoint();

  const CacheLevelStats& stats() const { return stats_; }
  const arch::CacheLevelConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;
    std::uint64_t epoch = 0;  // valid iff equal to the level's epoch_
  };
  struct WayUndo {
    std::size_t way = 0;  // index into ways_
    Way old;
  };
  struct SavedScalars {
    std::uint64_t clock = 0;
    std::uint64_t epoch = 0;
    CacheLevelStats stats;
  };

  void noteMutation(const Way* way) {
    if (undoArmed_) {
      undo_.push_back({static_cast<std::size_t>(way - ways_.data()), *way});
    }
  }

  // Block size and set count are powers of two (checked in the
  // constructor), so the per-access index/tag math is two shifts and a
  // mask — no integer division on the hottest path in the simulator.
  std::uint64_t setIndex(std::uint64_t address) const {
    return (address >> blockShift_) & (setCount_ - 1);
  }
  std::uint64_t tagOf(std::uint64_t address) const {
    return address >> (blockShift_ + setShift_);
  }

  arch::CacheLevelConfig config_;
  std::uint32_t setCount_;
  std::uint32_t blockShift_ = 0;
  std::uint32_t setShift_ = 0;
  std::vector<Way> ways_;  // setCount_ * associativity
  std::uint64_t clock_ = 0;
  std::uint64_t epoch_ = 1;  // ways start at 0, i.e. all invalid
  CacheLevelStats stats_;
  std::vector<WayUndo> undo_;
  SavedScalars saved_;
  bool undoArmed_ = false;
};

// The full hierarchy.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const arch::CacheConfig& config);

  // Performs one access; returns its total latency in cycles (L1 latency on
  // an L1 hit, ... , memoryLatency on a full miss) and fills all levels.
  std::uint32_t access(std::uint64_t address) {
    for (std::size_t i = 0; i < levels_.size(); ++i) {
      if (levels_[i].lookup(address)) {
        // Fill the line into the faster levels (inclusive hierarchy).
        for (std::size_t j = 0; j < i; ++j) {
          levels_[j].fill(address);
        }
        return levels_[i].config().latency;
      }
    }
    ++memoryAccesses_;
    for (CacheLevel& level : levels_) {
      level.fill(address);
    }
    return memoryLatency_;
  }

  void reset();

  // Checkpoint the whole hierarchy (per-level undo logs + the main-memory
  // access counter).  See CacheLevel::setCheckpoint.
  void setCheckpoint();
  void rewindToCheckpoint();
  void dropCheckpoint();

  const CacheLevelStats& levelStats(std::size_t level) const;
  std::uint64_t memoryAccesses() const { return memoryAccesses_; }

 private:
  std::vector<CacheLevel> levels_;
  std::uint32_t memoryLatency_;
  std::uint64_t memoryAccesses_ = 0;
  std::uint64_t savedMemoryAccesses_ = 0;
};

}  // namespace casted::sim
