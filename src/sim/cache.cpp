#include "sim/cache.h"

#include <bit>

#include "support/check.h"

namespace casted::sim {

CacheLevel::CacheLevel(const arch::CacheLevelConfig& config)
    : config_(config),
      setCount_(static_cast<std::uint32_t>(
          config.sizeBytes / config.blockBytes / config.associativity)),
      ways_(static_cast<std::size_t>(setCount_) * config.associativity) {
  CASTED_CHECK(setCount_ > 0) << config.name << " has no sets";
  // The index/tag math assumes power-of-two geometry (it always did — the
  // set mask silently required it; now it is enforced).
  CASTED_CHECK((config.blockBytes & (config.blockBytes - 1)) == 0)
      << config.name << " block size is not a power of two";
  CASTED_CHECK((setCount_ & (setCount_ - 1)) == 0)
      << config.name << " set count is not a power of two";
  blockShift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(config.blockBytes)));
  setShift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(setCount_)));
}

void CacheLevel::reset() {
  // Opening a new epoch invalidates every way without touching the array;
  // clock_ keeps running, which is invisible (LRU is a total order on the
  // current epoch's lastUse values regardless of their absolute base).
  ++epoch_;
  stats_ = CacheLevelStats{};
}

void CacheLevel::setCheckpoint() {
  undoArmed_ = true;
  undo_.clear();
  saved_ = {clock_, epoch_, stats_};
}

void CacheLevel::rewindToCheckpoint() {
  CASTED_CHECK(undoArmed_) << config_.name << ": no live cache checkpoint";
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    ways_[it->way] = it->old;
  }
  undo_.clear();
  clock_ = saved_.clock;
  epoch_ = saved_.epoch;
  stats_ = saved_.stats;
}

void CacheLevel::dropCheckpoint() {
  undoArmed_ = false;
  undo_.clear();
}

CacheHierarchy::CacheHierarchy(const arch::CacheConfig& config)
    : memoryLatency_(config.memoryLatency) {
  config.validate();
  levels_.reserve(config.levels.size());
  for (const arch::CacheLevelConfig& level : config.levels) {
    levels_.emplace_back(level);
  }
}

void CacheHierarchy::reset() {
  for (CacheLevel& level : levels_) {
    level.reset();
  }
  memoryAccesses_ = 0;
}

void CacheHierarchy::setCheckpoint() {
  for (CacheLevel& level : levels_) {
    level.setCheckpoint();
  }
  savedMemoryAccesses_ = memoryAccesses_;
}

void CacheHierarchy::rewindToCheckpoint() {
  for (CacheLevel& level : levels_) {
    level.rewindToCheckpoint();
  }
  memoryAccesses_ = savedMemoryAccesses_;
}

void CacheHierarchy::dropCheckpoint() {
  for (CacheLevel& level : levels_) {
    level.dropCheckpoint();
  }
}

const CacheLevelStats& CacheHierarchy::levelStats(std::size_t level) const {
  CASTED_CHECK(level < levels_.size()) << "bad cache level " << level;
  return levels_[level].stats();
}

}  // namespace casted::sim
