#include "sim/cache.h"

#include "support/check.h"

namespace casted::sim {

CacheLevel::CacheLevel(const arch::CacheLevelConfig& config)
    : config_(config),
      setCount_(static_cast<std::uint32_t>(
          config.sizeBytes / config.blockBytes / config.associativity)),
      ways_(static_cast<std::size_t>(setCount_) * config.associativity) {
  CASTED_CHECK(setCount_ > 0) << config.name << " has no sets";
}

std::uint64_t CacheLevel::setIndex(std::uint64_t address) const {
  return (address / config_.blockBytes) & (setCount_ - 1);
}

std::uint64_t CacheLevel::tagOf(std::uint64_t address) const {
  return address / config_.blockBytes / setCount_;
}

bool CacheLevel::lookup(std::uint64_t address) {
  ++clock_;
  const std::uint64_t set = setIndex(address);
  const std::uint64_t tag = tagOf(address);
  Way* base = &ways_[set * config_.associativity];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lastUse = clock_;
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

void CacheLevel::fill(std::uint64_t address) {
  ++clock_;
  const std::uint64_t set = setIndex(address);
  const std::uint64_t tag = tagOf(address);
  Way* base = &ways_[set * config_.associativity];
  Way* victim = &base[0];
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lastUse < victim->lastUse) {
      victim = &base[w];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lastUse = clock_;
}

void CacheLevel::reset() {
  for (Way& way : ways_) {
    way = Way{};
  }
  clock_ = 0;
  stats_ = CacheLevelStats{};
}

CacheHierarchy::CacheHierarchy(const arch::CacheConfig& config)
    : memoryLatency_(config.memoryLatency) {
  config.validate();
  levels_.reserve(config.levels.size());
  for (const arch::CacheLevelConfig& level : config.levels) {
    levels_.emplace_back(level);
  }
}

std::uint32_t CacheHierarchy::access(std::uint64_t address) {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].lookup(address)) {
      // Fill the line into the faster levels (inclusive hierarchy).
      for (std::size_t j = 0; j < i; ++j) {
        levels_[j].fill(address);
      }
      return levels_[i].config().latency;
    }
  }
  ++memoryAccesses_;
  for (CacheLevel& level : levels_) {
    level.fill(address);
  }
  return memoryLatency_;
}

void CacheHierarchy::reset() {
  for (CacheLevel& level : levels_) {
    level.reset();
  }
  memoryAccesses_ = 0;
}

const CacheLevelStats& CacheHierarchy::levelStats(std::size_t level) const {
  CASTED_CHECK(level < levels_.size()) << "bad cache level " << level;
  return levels_[level].stats();
}

}  // namespace casted::sim
