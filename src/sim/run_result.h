// Run outcomes and statistics reported by the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.h"
#include "sim/memory.h"

namespace casted::sim {

// How a run ended.
enum class ExitKind : std::uint8_t {
  kHalted,    // reached kHalt (normal termination)
  kDetected,  // a CHECK instruction fired — the error-detection outcome
  kException, // hardware trap (bad address, div-by-zero, ...)
  kTimeout,   // watchdog expired (runaway execution)
};

const char* exitKindName(ExitKind kind);

struct RunStats {
  std::uint64_t cycles = 0;           // total simulated cycles
  std::uint64_t stallCycles = 0;      // portion of cycles from cache misses
  std::uint64_t dynamicInsns = 0;     // instructions executed
  std::uint64_t dynamicDefInsns = 0;  // executed instructions with outputs
  std::uint64_t blockExecutions = 0;
  std::uint64_t memAccesses = 0;
  CacheLevelStats cacheLevel[3];
  std::uint64_t memoryAccesses = 0;   // accesses that reached main memory
};

struct RunResult {
  ExitKind exit = ExitKind::kHalted;
  TrapKind trap = TrapKind::kNone;
  std::int64_t exitCode = 0;
  RunStats stats;
  // Snapshot of the program's "output" symbol (empty if none declared).
  std::vector<std::uint8_t> output;
};

// Surfaces one completed run's RunStats into the trace session's counters
// (sim.<engine>.runs / .insns / .cycles / .l<k>.hits|misses / ...).  Shared
// by both engines; a no-op beyond one atomic load while tracing is
// inactive.  Defined in simulator.cpp.
void traceRunStats(const char* engine, const RunStats& stats);

// Static identity of one dynamically executed def-producing instruction:
// the function, the block, and the instruction's position within the block.
// When SimOptions::defTrace is set, both engines append one DefSite per def
// ordinal, in ordinal order — the hook the exhaustive fault-space layer
// (fault/exhaustive.h) builds its site table from.
struct DefSite {
  std::uint32_t func = 0;
  std::uint32_t block = 0;
  std::uint32_t node = 0;  // instruction index within the block

  friend bool operator==(const DefSite&, const DefSite&) = default;
};

// One bit flip: at the `ordinal`-th dynamically executed def-producing
// instruction (0-based, counted across the whole run), flip bit `bit` of
// output register `whichDef`.
struct FaultPoint {
  std::uint64_t ordinal = 0;
  std::uint32_t whichDef = 0;
  std::uint32_t bit = 0;
};

// A deterministic injection plan: points sorted by ordinal.  An empty plan
// is a fault-free (golden) run.
struct FaultPlan {
  std::vector<FaultPoint> points;
};

}  // namespace casted::sim
