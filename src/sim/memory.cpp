#include "sim/memory.h"

#include <cstring>

#include "support/check.h"

namespace casted::sim {

const char* trapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone:
      return "none";
    case TrapKind::kBadAddress:
      return "bad-address";
    case TrapKind::kMisaligned:
      return "misaligned";
    case TrapKind::kDivByZero:
      return "div-by-zero";
    case TrapKind::kBadConversion:
      return "bad-conversion";
    case TrapKind::kStackOverflow:
      return "stack-overflow";
  }
  CASTED_UNREACHABLE("bad TrapKind");
}

Memory::Memory(const ir::Program& program, std::uint64_t heapBytes) {
  bytes_ = program.globalImage();
  bytes_.resize(bytes_.size() + heapBytes, 0);
}

std::size_t Memory::checkRange(std::uint64_t address,
                               std::uint32_t width) const {
  if (address < ir::Program::kGlobalBase ||
      address + width > arenaEnd() || address + width < address) {
    throw TrapError{TrapKind::kBadAddress, address};
  }
  if (width == 8 && (address & 7) != 0) {
    throw TrapError{TrapKind::kMisaligned, address};
  }
  return static_cast<std::size_t>(address - ir::Program::kGlobalBase);
}

std::uint64_t Memory::readU64(std::uint64_t address) const {
  const std::size_t offset = checkRange(address, 8);
  std::uint64_t value;
  std::memcpy(&value, bytes_.data() + offset, 8);
  return value;
}

std::uint8_t Memory::readU8(std::uint64_t address) const {
  return bytes_[checkRange(address, 1)];
}

double Memory::readF64(std::uint64_t address) const {
  const std::size_t offset = checkRange(address, 8);
  double value;
  std::memcpy(&value, bytes_.data() + offset, 8);
  return value;
}

void Memory::writeU64(std::uint64_t address, std::uint64_t value) {
  const std::size_t offset = checkRange(address, 8);
  std::memcpy(bytes_.data() + offset, &value, 8);
}

void Memory::writeU8(std::uint64_t address, std::uint8_t value) {
  bytes_[checkRange(address, 1)] = value;
}

void Memory::writeF64(std::uint64_t address, double value) {
  const std::size_t offset = checkRange(address, 8);
  std::memcpy(bytes_.data() + offset, &value, 8);
}

std::vector<std::uint8_t> Memory::snapshot(std::uint64_t address,
                                           std::uint64_t size) const {
  std::vector<std::uint8_t> copy(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    copy[i] = bytes_[checkRange(address + i, 1)];
  }
  return copy;
}

}  // namespace casted::sim
