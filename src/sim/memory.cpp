#include "sim/memory.h"

#include <cstring>

#include "support/check.h"

namespace casted::sim {

const char* trapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone:
      return "none";
    case TrapKind::kBadAddress:
      return "bad-address";
    case TrapKind::kMisaligned:
      return "misaligned";
    case TrapKind::kDivByZero:
      return "div-by-zero";
    case TrapKind::kBadConversion:
      return "bad-conversion";
    case TrapKind::kStackOverflow:
      return "stack-overflow";
  }
  CASTED_UNREACHABLE("bad TrapKind");
}

Memory::Memory(const ir::Program& program, std::uint64_t heapBytes)
    : Memory(program.globalImage(), heapBytes) {}

Memory::Memory(const std::vector<std::uint8_t>& globalImage,
               std::uint64_t heapBytes) {
  bytes_ = globalImage;
  bytes_.resize(bytes_.size() + heapBytes, 0);
}

void Memory::enableWriteLog() {
  logging_ = true;
  log_.clear();
}

void Memory::resetLogged(const std::vector<std::uint8_t>& pristine) {
  for (const WriteRecord& record : log_) {
    for (std::uint32_t i = 0; i < record.width; ++i) {
      const std::size_t offset = record.offset + i;
      bytes_[offset] = offset < pristine.size() ? pristine[offset] : 0;
    }
  }
  log_.clear();
  logMark_ = 0;
}

void Memory::setCheckpoint() {
  CASTED_CHECK(logging_) << "memory checkpoints require the write log";
  undoArmed_ = true;
  undo_.clear();
  logMark_ = log_.size();
}

void Memory::rewindToCheckpoint() {
  CASTED_CHECK(undoArmed_) << "no live memory checkpoint";
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    std::memcpy(bytes_.data() + it->offset, &it->oldBits, it->width);
  }
  undo_.clear();
  log_.resize(logMark_);
}

void Memory::dropCheckpoint() {
  undoArmed_ = false;
  undo_.clear();
  logMark_ = 0;
}

std::vector<std::uint8_t> Memory::snapshot(std::uint64_t address,
                                           std::uint64_t size) const {
  std::vector<std::uint8_t> copy(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    copy[i] = bytes_[checkRange(address + i, 1)];
  }
  return copy;
}

}  // namespace casted::sim
