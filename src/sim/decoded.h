// The decoded execution engine: a one-time per-program decode pass that
// flattens each function into dense micro-op arrays so the hot trial loop of
// the fault campaign never touches ir::Instruction again.
//
// What the decode resolves statically (all of which the reference walk in
// simulator.cpp re-derives on every visit):
//   * operands — frame-slot offsets held inline in the micro-op (the IR
//     stores defs/uses in per-instruction heap vectors);
//   * branch targets — block indices, ready to index the block array;
//   * per-block timing — the schedule length plus the cycle-sorted memory
//     bundle plan (which memory ops overlap their misses), precomputed from
//     the static VLIW schedule;
//   * call/ret marshalling — operand lists resolved into a shared pool so a
//     call copies register bits caller→callee frame without RawValue boxing.
//
// A DecodedProgram is immutable and self-contained (it copies the global
// image, symbol table and cache geometry), so fault::runCampaign builds it
// once and shares it read-only across all worker threads.
//
// Equivalence contract: for every program, schedule, machine and fault plan,
// runDecoded() must produce a RunResult field-for-field identical to the
// reference walk — cycles, stalls, instruction/def counts, cache hit/miss
// counts, trap kind, exit code and output snapshot.
// tests/engine_differential_test.cpp enforces this over random programs and
// random fault plans; when the two engines disagree, the reference walk is
// the oracle and the decoded engine is wrong.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "sched/schedule.h"
#include "sim/run_result.h"

namespace casted::sim {

struct SimOptions;
struct FaultPlan;

// A register operand resolved to its frame slot (used for the variable-arity
// operand lists of calls and returns, and for fault-injection targets).
struct DecodedReg {
  std::uint8_t cls = 0;  // raw ir::RegClass
  std::uint32_t slot = 0;
};

// One decoded instruction.  Fixed-arity operands live inline; kCall/kRet
// index the DecodedProgram operand pool.  Field usage by opcode:
//   * fixed arity: def/a/b/c are frame slots, imm the immediate (kFMovImm
//     keeps its double bit-cast into imm);
//   * kBr/kBrCond: t1 = taken target, t2 = not-taken target;
//   * kCall: t1 = callee function index, a = pool offset of the argument
//     list, b = argument count, c = pool offset of the return-def list,
//     defCount = return-def count;
//   * kRet: a = pool offset of the returned-value list, b = its count.
struct MicroOp {
  ir::Opcode op = ir::Opcode::kNop;
  std::uint8_t defClass = 0;   // raw ir::RegClass of defs[0] (defCount == 1)
  std::uint16_t defCount = 0;
  std::uint32_t def = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t t1 = 0;
  std::uint32_t t2 = 0;
  std::int64_t imm = 0;
};

// Static per-block data: the micro-op range plus the precomputed timing
// summary (schedule length, cycle-sorted memory plan and its same-cycle
// bundle partition).
struct DecodedBlock {
  std::uint32_t firstOp = 0;
  std::uint32_t opCount = 0;
  std::uint32_t schedLength = 0;   // BlockSchedule::length
  std::uint32_t planFirst = 0;     // into DecodedFunction::memPlan
  std::uint32_t planCount = 0;
  std::uint32_t bundleFirst = 0;   // into DecodedFunction::bundleSizes
  std::uint32_t bundleCount = 0;
};

struct DecodedFunction {
  std::string name;
  std::vector<MicroOp> ops;           // blocks flattened back to back
  std::vector<DecodedBlock> blocks;
  // Memory-op node indices in the exact cache-access order of the reference
  // walk (sorted by issue cycle with the reference's own comparator), and
  // the sizes of the same-cycle bundles partitioning that order.
  std::vector<std::uint32_t> memPlan;
  std::vector<std::uint32_t> bundleSizes;
  std::vector<DecodedReg> params;
  std::uint32_t regCount[3] = {0, 0, 0};  // frame slots per register class
};

// The immutable product of the decode pass.  Build once, run many times,
// share freely across threads.
class DecodedProgram {
 public:
  // `schedule` must have been produced from `program` with `config`, exactly
  // as for the reference Simulator.
  static DecodedProgram build(const ir::Program& program,
                              const sched::ProgramSchedule& schedule,
                              const arch::MachineConfig& config);

  const std::vector<DecodedFunction>& functions() const { return funcs_; }
  const std::vector<DecodedReg>& pool() const { return pool_; }
  std::uint32_t entryFunction() const { return entry_; }
  const std::vector<ir::GlobalSymbol>& symbols() const { return symbols_; }
  const std::vector<std::uint8_t>& globalImage() const { return globalImage_; }
  const arch::CacheConfig& cacheConfig() const { return cacheConfig_; }
  std::uint32_t memBaseLatency() const { return memBaseLatency_; }
  std::size_t maxBlockInsns() const { return maxBlockInsns_; }

 private:
  DecodedProgram() = default;

  std::vector<DecodedFunction> funcs_;
  std::vector<DecodedReg> pool_;
  std::uint32_t entry_ = 0;
  std::vector<ir::GlobalSymbol> symbols_;
  std::vector<std::uint8_t> globalImage_;
  arch::CacheConfig cacheConfig_;
  std::uint32_t memBaseLatency_ = 1;
  std::size_t maxBlockInsns_ = 0;
};

// An opaque snapshot of a DecodedRunner's complete mid-run state: register
// arenas, call-stack frames, per-block scratch, run statistics, fault-plan
// cursor — plus a mark in the runner's undo-logged memory and cache model.
// Saved while the runner is paused at a dynamic def ordinal
// (DecodedRunner::runToDef) and restored any number of times; restore cost
// is O(state touched since the save), not O(heap).  A checkpoint is bound
// to the runner that saved it and is invalidated by the runner's next
// saveCheckpoint()/begin()/run() (enforced with a generation check).
class ArchCheckpoint {
 public:
  ArchCheckpoint();
  ~ArchCheckpoint();
  ArchCheckpoint(ArchCheckpoint&&) noexcept;
  ArchCheckpoint& operator=(ArchCheckpoint&&) noexcept;

  ArchCheckpoint(const ArchCheckpoint&) = delete;
  ArchCheckpoint& operator=(const ArchCheckpoint&) = delete;

  // Opaque payload, defined (and only complete) inside decoded.cpp.
  struct Data;

 private:
  friend class DecodedRunner;
  std::unique_ptr<Data> data_;
};

// A reusable execution context over one DecodedProgram: the memory image,
// cache hierarchy and register arenas are allocated once and recycled
// between runs in O(state the previous run touched) — epoch-invalidated
// caches, write-log-restored memory — rather than O(arena size).  This is
// what makes the campaign's trial loop fast: a Monte Carlo trial executes
// ~10^4 instructions, while rebuilding megabytes of image and way arrays
// per trial costs as much as running them.  Each campaign worker owns one
// runner; a runner is single-threaded, the shared DecodedProgram read-only.
class DecodedRunner {
 public:
  explicit DecodedRunner(const DecodedProgram& program);
  ~DecodedRunner();

  DecodedRunner(const DecodedRunner&) = delete;
  DecodedRunner& operator=(const DecodedRunner&) = delete;

  // Executes the program once under `options`.  Every run starts from the
  // same architectural state as a fresh context (the equivalence contract
  // holds run by run, regardless of what ran before).
  RunResult run(const SimOptions& options);

  // ---- Stepwise execution (checkpoint-and-diverge injection) ----
  //
  // The injection drivers drive a run in pieces instead of whole:
  //
  //   runner.begin(options);                 // options.faultPlan must be null
  //   runner.setCutoffReference(&golden);    // arms the reconvergence cutoff
  //   runner.runToDef(d);                    // golden prefix, once per def
  //   runner.saveCheckpoint(cp);
  //   for (each site at d) {
  //     runner.restoreCheckpoint(cp);
  //     runner.injectAtPause(plan);          // plan.points[0].ordinal == d
  //     RunResult faulty = runner.finish();
  //   }
  //
  // The pause point sits inside the def bookkeeping of the instruction that
  // produced dynamic def ordinal `d`: after its execution and def-count /
  // def-trace accounting, immediately before the fault-injection check —
  // exactly where a FaultPlan targeting `d` takes effect.  A finished or
  // cut-off run yields a RunResult field-for-field identical to
  // run(options-with-plan); tests/engine_differential_test.cpp and the
  // driver oracle tests enforce this.

  // Starts a stepwise run.  `options.faultPlan` and `options.defTrace` must
  // be null (faults enter via injectAtPause; a def trace cannot be rewound).
  void begin(const SimOptions& options);

  // Advances to the pause point of def ordinal `ordinal` (>= the current
  // position).  Returns true when paused there; false when the run finished
  // first (its result is then available via finish()).
  bool runToDef(std::uint64_t ordinal);

  // The def ordinal of the current pause point.  Only valid while paused.
  std::uint64_t pausedOrdinal() const;

  // Snapshot / restore of the paused state.  save overwrites `out` (and
  // invalidates any previous checkpoint of this runner); restore requires
  // the runner's latest checkpoint.
  void saveCheckpoint(ArchCheckpoint& out);
  void restoreCheckpoint(const ArchCheckpoint& checkpoint);

  // Arms the reconvergence cutoff: after an injection, the runner tracks a
  // conservative taint set over registers and memory bytes, and the moment
  // the set is empty (and no flips are pending) the live state is provably
  // bit-identical to the fault-free trajectory, so the remaining execution
  // is skipped and `*golden` — the fault-free final result, which must
  // outlive the run — is returned verbatim.  Optional; without it every
  // injected run executes to its natural end.
  void setCutoffReference(const RunResult* golden);

  // Injects `plan` while paused; plan.points[0].ordinal must equal
  // pausedOrdinal() (later points fire during finish()).  `plan` must
  // outlive the run.
  void injectAtPause(const FaultPlan& plan);

  // Runs the paused (or already finished) stepwise run to completion and
  // returns its result.
  RunResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Executes a decoded program to completion in a fresh context.
// `options.faultPlan`, `maxCycles`, `heapBytes`, `maxCallDepth` and
// `outputSymbol` behave exactly as in the reference engine;
// `options.engine` is ignored (this IS the decoded engine).
RunResult runDecoded(const DecodedProgram& program, const SimOptions& options);

}  // namespace casted::sim
