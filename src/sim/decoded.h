// The decoded execution engine: a one-time per-program decode pass that
// flattens each function into dense micro-op arrays so the hot trial loop of
// the fault campaign never touches ir::Instruction again.
//
// What the decode resolves statically (all of which the reference walk in
// simulator.cpp re-derives on every visit):
//   * operands — frame-slot offsets held inline in the micro-op (the IR
//     stores defs/uses in per-instruction heap vectors);
//   * branch targets — block indices, ready to index the block array;
//   * per-block timing — the schedule length plus the cycle-sorted memory
//     bundle plan (which memory ops overlap their misses), precomputed from
//     the static VLIW schedule;
//   * call/ret marshalling — operand lists resolved into a shared pool so a
//     call copies register bits caller→callee frame without RawValue boxing.
//
// A DecodedProgram is immutable and self-contained (it copies the global
// image, symbol table and cache geometry), so fault::runCampaign builds it
// once and shares it read-only across all worker threads.
//
// Equivalence contract: for every program, schedule, machine and fault plan,
// runDecoded() must produce a RunResult field-for-field identical to the
// reference walk — cycles, stalls, instruction/def counts, cache hit/miss
// counts, trap kind, exit code and output snapshot.
// tests/engine_differential_test.cpp enforces this over random programs and
// random fault plans; when the two engines disagree, the reference walk is
// the oracle and the decoded engine is wrong.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "sched/schedule.h"
#include "sim/run_result.h"

namespace casted::sim {

struct SimOptions;

// A register operand resolved to its frame slot (used for the variable-arity
// operand lists of calls and returns, and for fault-injection targets).
struct DecodedReg {
  std::uint8_t cls = 0;  // raw ir::RegClass
  std::uint32_t slot = 0;
};

// One decoded instruction.  Fixed-arity operands live inline; kCall/kRet
// index the DecodedProgram operand pool.  Field usage by opcode:
//   * fixed arity: def/a/b/c are frame slots, imm the immediate (kFMovImm
//     keeps its double bit-cast into imm);
//   * kBr/kBrCond: t1 = taken target, t2 = not-taken target;
//   * kCall: t1 = callee function index, a = pool offset of the argument
//     list, b = argument count, c = pool offset of the return-def list,
//     defCount = return-def count;
//   * kRet: a = pool offset of the returned-value list, b = its count.
struct MicroOp {
  ir::Opcode op = ir::Opcode::kNop;
  std::uint8_t defClass = 0;   // raw ir::RegClass of defs[0] (defCount == 1)
  std::uint16_t defCount = 0;
  std::uint32_t def = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  std::uint32_t t1 = 0;
  std::uint32_t t2 = 0;
  std::int64_t imm = 0;
};

// Static per-block data: the micro-op range plus the precomputed timing
// summary (schedule length, cycle-sorted memory plan and its same-cycle
// bundle partition).
struct DecodedBlock {
  std::uint32_t firstOp = 0;
  std::uint32_t opCount = 0;
  std::uint32_t schedLength = 0;   // BlockSchedule::length
  std::uint32_t planFirst = 0;     // into DecodedFunction::memPlan
  std::uint32_t planCount = 0;
  std::uint32_t bundleFirst = 0;   // into DecodedFunction::bundleSizes
  std::uint32_t bundleCount = 0;
};

struct DecodedFunction {
  std::string name;
  std::vector<MicroOp> ops;           // blocks flattened back to back
  std::vector<DecodedBlock> blocks;
  // Memory-op node indices in the exact cache-access order of the reference
  // walk (sorted by issue cycle with the reference's own comparator), and
  // the sizes of the same-cycle bundles partitioning that order.
  std::vector<std::uint32_t> memPlan;
  std::vector<std::uint32_t> bundleSizes;
  std::vector<DecodedReg> params;
  std::uint32_t regCount[3] = {0, 0, 0};  // frame slots per register class
};

// The immutable product of the decode pass.  Build once, run many times,
// share freely across threads.
class DecodedProgram {
 public:
  // `schedule` must have been produced from `program` with `config`, exactly
  // as for the reference Simulator.
  static DecodedProgram build(const ir::Program& program,
                              const sched::ProgramSchedule& schedule,
                              const arch::MachineConfig& config);

  const std::vector<DecodedFunction>& functions() const { return funcs_; }
  const std::vector<DecodedReg>& pool() const { return pool_; }
  std::uint32_t entryFunction() const { return entry_; }
  const std::vector<ir::GlobalSymbol>& symbols() const { return symbols_; }
  const std::vector<std::uint8_t>& globalImage() const { return globalImage_; }
  const arch::CacheConfig& cacheConfig() const { return cacheConfig_; }
  std::uint32_t memBaseLatency() const { return memBaseLatency_; }
  std::size_t maxBlockInsns() const { return maxBlockInsns_; }

 private:
  DecodedProgram() = default;

  std::vector<DecodedFunction> funcs_;
  std::vector<DecodedReg> pool_;
  std::uint32_t entry_ = 0;
  std::vector<ir::GlobalSymbol> symbols_;
  std::vector<std::uint8_t> globalImage_;
  arch::CacheConfig cacheConfig_;
  std::uint32_t memBaseLatency_ = 1;
  std::size_t maxBlockInsns_ = 0;
};

// A reusable execution context over one DecodedProgram: the memory image,
// cache hierarchy and register arenas are allocated once and recycled
// between runs in O(state the previous run touched) — epoch-invalidated
// caches, write-log-restored memory — rather than O(arena size).  This is
// what makes the campaign's trial loop fast: a Monte Carlo trial executes
// ~10^4 instructions, while rebuilding megabytes of image and way arrays
// per trial costs as much as running them.  Each campaign worker owns one
// runner; a runner is single-threaded, the shared DecodedProgram read-only.
class DecodedRunner {
 public:
  explicit DecodedRunner(const DecodedProgram& program);
  ~DecodedRunner();

  DecodedRunner(const DecodedRunner&) = delete;
  DecodedRunner& operator=(const DecodedRunner&) = delete;

  // Executes the program once under `options`.  Every run starts from the
  // same architectural state as a fresh context (the equivalence contract
  // holds run by run, regardless of what ran before).
  RunResult run(const SimOptions& options);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Executes a decoded program to completion in a fresh context.
// `options.faultPlan`, `maxCycles`, `heapBytes`, `maxCallDepth` and
// `outputSymbol` behave exactly as in the reference engine;
// `options.engine` is ignored (this IS the decoded engine).
RunResult runDecoded(const DecodedProgram& program, const SimOptions& options);

}  // namespace casted::sim
