#include "sim/simulator.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "sim/decoded.h"
#include "support/check.h"
#include "support/trace.h"

namespace casted::sim {

void traceRunStats(const char* engine, const RunStats& stats) {
  if (!trace::enabled()) {
    return;
  }
  const std::string prefix = std::string("sim.") + engine;
  trace::counterAdd(prefix + ".runs");
  trace::counterAdd(prefix + ".insns",
                    static_cast<std::int64_t>(stats.dynamicInsns));
  trace::counterAdd(prefix + ".cycles",
                    static_cast<std::int64_t>(stats.cycles));
  trace::counterAdd(prefix + ".mem_accesses",
                    static_cast<std::int64_t>(stats.memoryAccesses));
  for (int level = 0; level < 3; ++level) {
    const std::string levelPrefix = prefix + ".l" + std::to_string(level + 1);
    trace::counterAdd(levelPrefix + ".hits",
                      static_cast<std::int64_t>(stats.cacheLevel[level].hits));
    trace::counterAdd(
        levelPrefix + ".misses",
        static_cast<std::int64_t>(stats.cacheLevel[level].misses));
  }
}

const char* engineName(Engine engine) {
  switch (engine) {
    case Engine::kDecoded:
      return "decoded";
    case Engine::kReference:
      return "reference";
  }
  CASTED_UNREACHABLE("bad Engine");
}

const char* exitKindName(ExitKind kind) {
  switch (kind) {
    case ExitKind::kHalted:
      return "halted";
    case ExitKind::kDetected:
      return "detected";
    case ExitKind::kException:
      return "exception";
    case ExitKind::kTimeout:
      return "timeout";
  }
  CASTED_UNREACHABLE("bad ExitKind");
}

namespace {

using ir::Instruction;
using ir::Opcode;
using ir::Reg;
using ir::RegClass;

// Internal control-flow signals, thrown to unwind nested calls.
struct DetectedSignal {};
struct TimeoutSignal {};
struct HaltSignal {
  std::int64_t exitCode = 0;
};

struct Frame {
  const ir::Function* fn = nullptr;
  std::vector<std::int64_t> gp;
  std::vector<double> fp;
  std::vector<std::uint8_t> pr;

  explicit Frame(const ir::Function& function) : fn(&function) {
    gp.assign(function.regCount(RegClass::kGp), 0);
    fp.assign(function.regCount(RegClass::kFp), 0.0);
    pr.assign(function.regCount(RegClass::kPr), 0);
  }
};

// Raw (bit-pattern) value used to marshal call arguments/returns.
struct RawValue {
  RegClass cls = RegClass::kGp;
  std::uint64_t bits = 0;
};

std::int64_t wrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapNeg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}

}  // namespace

struct Simulator::Impl {
  const ir::Program& program;
  const sched::ProgramSchedule& schedule;
  const arch::MachineConfig& config;
  SimOptions options;
  Memory memory;
  CacheHierarchy caches;
  RunStats stats;

  // Per function/block: memory-op nodes sorted by issue cycle, used by the
  // timing walk to model per-bundle miss overlap.
  struct MemOp {
    std::uint32_t cycle = 0;
    std::uint32_t node = 0;
  };
  std::vector<std::vector<std::vector<MemOp>>> memPlans;

  // Scratch: address computed for each memory node of the current block.
  std::vector<std::uint64_t> addrScratch;

  std::size_t faultCursor = 0;
  std::uint64_t defOrdinal = 0;
  std::vector<RawValue> returnScratch;

  Impl(const ir::Program& prog, const sched::ProgramSchedule& sched,
       const arch::MachineConfig& cfg, SimOptions opts)
      : program(prog),
        schedule(sched),
        config(cfg),
        options(std::move(opts)),
        memory(prog, options.heapBytes),
        caches(cfg.cache) {
    CASTED_CHECK(schedule.functions.size() == program.functionCount())
        << "schedule/program function count mismatch";
    std::size_t maxBlockSize = 0;
    memPlans.resize(program.functionCount());
    for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
      const ir::Function& fn = program.function(f);
      CASTED_CHECK(schedule.functions[f].blocks.size() == fn.blockCount())
          << "schedule/program block count mismatch in @" << fn.name();
      memPlans[f].resize(fn.blockCount());
      for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
        const auto& insns = fn.block(b).insns();
        maxBlockSize = std::max(maxBlockSize, insns.size());
        const sched::BlockSchedule& blockSched =
            schedule.functions[f].blocks[b];
        CASTED_CHECK(blockSched.issueCycle.size() == insns.size())
            << "schedule built from a different program shape (@"
            << fn.name() << " bb" << b << ")";
        auto& plan = memPlans[f][b];
        for (std::uint32_t node = 0; node < insns.size(); ++node) {
          if (insns[node].isMemory()) {
            plan.push_back({blockSched.issueCycle[node], node});
          }
        }
        std::sort(plan.begin(), plan.end(),
                  [](const MemOp& a, const MemOp& b) {
                    return a.cycle < b.cycle;
                  });
      }
    }
    addrScratch.assign(maxBlockSize, 0);
  }

  // --- register access -----------------------------------------------------
  static std::int64_t& gp(Frame& frame, Reg reg) { return frame.gp[reg.index]; }
  static double& fp(Frame& frame, Reg reg) { return frame.fp[reg.index]; }
  static std::uint8_t& pr(Frame& frame, Reg reg) { return frame.pr[reg.index]; }

  // Effective address of a memory instruction, computed with wrapping
  // unsigned arithmetic (a corrupted base register must not cause UB).
  static std::uint64_t addressOf(Frame& frame, const Instruction& insn) {
    return static_cast<std::uint64_t>(gp(frame, insn.uses[0])) +
           static_cast<std::uint64_t>(insn.imm);
  }

  // --- fault injection -------------------------------------------------------
  // Records the static site of the def-producing instruction about to claim
  // the next def ordinal (see SimOptions::defTrace).
  void recordDef(ir::FuncId func, ir::BlockId block, std::uint32_t node) {
    if (options.defTrace != nullptr) {
      options.defTrace->push_back({func, block, node});
    }
  }

  void maybeInjectFault(Frame& frame, const Instruction& insn) {
    if (insn.defs.empty()) {
      return;
    }
    if (options.faultPlan != nullptr &&
        faultCursor < options.faultPlan->points.size() &&
        options.faultPlan->points[faultCursor].ordinal == defOrdinal) {
      const FaultPoint& point = options.faultPlan->points[faultCursor];
      ++faultCursor;
      const Reg target = insn.defs[point.whichDef % insn.defs.size()];
      switch (target.cls) {
        case RegClass::kGp:
          gp(frame, target) ^= static_cast<std::int64_t>(
              1ULL << (point.bit & 63));
          break;
        case RegClass::kFp: {
          std::uint64_t bits;
          std::memcpy(&bits, &fp(frame, target), 8);
          bits ^= 1ULL << (point.bit & 63);
          std::memcpy(&fp(frame, target), &bits, 8);
          break;
        }
        case RegClass::kPr:
          // Predicate registers are one bit wide.
          pr(frame, target) ^= 1;
          break;
      }
    }
    ++defOrdinal;
  }

  // --- functional semantics ---------------------------------------------------
  // Executes one non-control-flow instruction.  Returns the address used for
  // memory ops (stored into addrScratch by the caller).
  void execute(Frame& frame, const Instruction& insn, std::uint32_t node) {
    switch (insn.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMovImm:
        gp(frame, insn.defs[0]) = insn.imm;
        break;
      case Opcode::kMov:
        gp(frame, insn.defs[0]) = gp(frame, insn.uses[0]);
        break;
      case Opcode::kAdd:
        gp(frame, insn.defs[0]) =
            wrapAdd(gp(frame, insn.uses[0]), gp(frame, insn.uses[1]));
        break;
      case Opcode::kSub:
        gp(frame, insn.defs[0]) =
            wrapSub(gp(frame, insn.uses[0]), gp(frame, insn.uses[1]));
        break;
      case Opcode::kMul:
        gp(frame, insn.defs[0]) =
            wrapMul(gp(frame, insn.uses[0]), gp(frame, insn.uses[1]));
        break;
      case Opcode::kDiv: {
        const std::int64_t divisor = gp(frame, insn.uses[1]);
        if (divisor == 0) {
          throw TrapError{TrapKind::kDivByZero, 0};
        }
        const std::int64_t dividend = gp(frame, insn.uses[0]);
        if (dividend == std::numeric_limits<std::int64_t>::min() &&
            divisor == -1) {
          gp(frame, insn.defs[0]) = dividend;  // hardware-defined wrap
        } else {
          gp(frame, insn.defs[0]) = dividend / divisor;
        }
        break;
      }
      case Opcode::kRem: {
        const std::int64_t divisor = gp(frame, insn.uses[1]);
        if (divisor == 0) {
          throw TrapError{TrapKind::kDivByZero, 0};
        }
        const std::int64_t dividend = gp(frame, insn.uses[0]);
        if (dividend == std::numeric_limits<std::int64_t>::min() &&
            divisor == -1) {
          gp(frame, insn.defs[0]) = 0;
        } else {
          gp(frame, insn.defs[0]) = dividend % divisor;
        }
        break;
      }
      case Opcode::kAnd:
        gp(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) & gp(frame, insn.uses[1]);
        break;
      case Opcode::kOr:
        gp(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) | gp(frame, insn.uses[1]);
        break;
      case Opcode::kXor:
        gp(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) ^ gp(frame, insn.uses[1]);
        break;
      case Opcode::kShl:
        gp(frame, insn.defs[0]) = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gp(frame, insn.uses[0]))
            << (gp(frame, insn.uses[1]) & 63));
        break;
      case Opcode::kShr:
        gp(frame, insn.defs[0]) = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gp(frame, insn.uses[0])) >>
            (gp(frame, insn.uses[1]) & 63));
        break;
      case Opcode::kSra:
        gp(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) >> (gp(frame, insn.uses[1]) & 63);
        break;
      case Opcode::kMin:
        gp(frame, insn.defs[0]) =
            std::min(gp(frame, insn.uses[0]), gp(frame, insn.uses[1]));
        break;
      case Opcode::kMax:
        gp(frame, insn.defs[0]) =
            std::max(gp(frame, insn.uses[0]), gp(frame, insn.uses[1]));
        break;
      case Opcode::kAddImm:
        gp(frame, insn.defs[0]) = wrapAdd(gp(frame, insn.uses[0]), insn.imm);
        break;
      case Opcode::kMulImm:
        gp(frame, insn.defs[0]) = wrapMul(gp(frame, insn.uses[0]), insn.imm);
        break;
      case Opcode::kAndImm:
        gp(frame, insn.defs[0]) = gp(frame, insn.uses[0]) & insn.imm;
        break;
      case Opcode::kShlImm:
        gp(frame, insn.defs[0]) = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gp(frame, insn.uses[0]))
            << (insn.imm & 63));
        break;
      case Opcode::kShrImm:
        gp(frame, insn.defs[0]) = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(gp(frame, insn.uses[0])) >>
            (insn.imm & 63));
        break;
      case Opcode::kSraImm:
        gp(frame, insn.defs[0]) = gp(frame, insn.uses[0]) >> (insn.imm & 63);
        break;
      case Opcode::kNeg:
        gp(frame, insn.defs[0]) = wrapNeg(gp(frame, insn.uses[0]));
        break;
      case Opcode::kAbs: {
        const std::int64_t value = gp(frame, insn.uses[0]);
        gp(frame, insn.defs[0]) = value < 0 ? wrapNeg(value) : value;
        break;
      }
      case Opcode::kNot:
        gp(frame, insn.defs[0]) = ~gp(frame, insn.uses[0]);
        break;
      case Opcode::kSelect:
        gp(frame, insn.defs[0]) = pr(frame, insn.uses[0]) != 0
                                      ? gp(frame, insn.uses[1])
                                      : gp(frame, insn.uses[2]);
        break;
      case Opcode::kCmpEq:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) == gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpNe:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) != gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpLt:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) < gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpLe:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) <= gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpGt:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) > gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpGe:
        pr(frame, insn.defs[0]) =
            gp(frame, insn.uses[0]) >= gp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kCmpEqImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) == insn.imm ? 1 : 0;
        break;
      case Opcode::kCmpNeImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) != insn.imm ? 1 : 0;
        break;
      case Opcode::kCmpLtImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) < insn.imm ? 1 : 0;
        break;
      case Opcode::kCmpLeImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) <= insn.imm ? 1 : 0;
        break;
      case Opcode::kCmpGtImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) > insn.imm ? 1 : 0;
        break;
      case Opcode::kCmpGeImm:
        pr(frame, insn.defs[0]) = gp(frame, insn.uses[0]) >= insn.imm ? 1 : 0;
        break;
      case Opcode::kPMov:
        pr(frame, insn.defs[0]) = pr(frame, insn.uses[0]);
        break;
      case Opcode::kPNot:
        pr(frame, insn.defs[0]) = pr(frame, insn.uses[0]) != 0 ? 0 : 1;
        break;
      case Opcode::kPAnd:
        pr(frame, insn.defs[0]) =
            (pr(frame, insn.uses[0]) != 0 && pr(frame, insn.uses[1]) != 0)
                ? 1
                : 0;
        break;
      case Opcode::kPOr:
        pr(frame, insn.defs[0]) =
            (pr(frame, insn.uses[0]) != 0 || pr(frame, insn.uses[1]) != 0)
                ? 1
                : 0;
        break;
      case Opcode::kPXor:
        pr(frame, insn.defs[0]) =
            ((pr(frame, insn.uses[0]) != 0) != (pr(frame, insn.uses[1]) != 0))
                ? 1
                : 0;
        break;
      case Opcode::kPSetImm:
        pr(frame, insn.defs[0]) = insn.imm != 0 ? 1 : 0;
        break;
      case Opcode::kFMovImm:
        fp(frame, insn.defs[0]) = insn.fimm;
        break;
      case Opcode::kFMov:
        fp(frame, insn.defs[0]) = fp(frame, insn.uses[0]);
        break;
      case Opcode::kFAdd:
        fp(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) + fp(frame, insn.uses[1]);
        break;
      case Opcode::kFSub:
        fp(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) - fp(frame, insn.uses[1]);
        break;
      case Opcode::kFMul:
        fp(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) * fp(frame, insn.uses[1]);
        break;
      case Opcode::kFDiv:
        fp(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) / fp(frame, insn.uses[1]);
        break;
      case Opcode::kFMin:
        fp(frame, insn.defs[0]) =
            std::fmin(fp(frame, insn.uses[0]), fp(frame, insn.uses[1]));
        break;
      case Opcode::kFMax:
        fp(frame, insn.defs[0]) =
            std::fmax(fp(frame, insn.uses[0]), fp(frame, insn.uses[1]));
        break;
      case Opcode::kFNeg:
        fp(frame, insn.defs[0]) = -fp(frame, insn.uses[0]);
        break;
      case Opcode::kFAbs:
        fp(frame, insn.defs[0]) = std::fabs(fp(frame, insn.uses[0]));
        break;
      case Opcode::kFSqrt:
        fp(frame, insn.defs[0]) = std::sqrt(fp(frame, insn.uses[0]));
        break;
      case Opcode::kFCmpEq:
        pr(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) == fp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kFCmpLt:
        pr(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) < fp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kFCmpLe:
        pr(frame, insn.defs[0]) =
            fp(frame, insn.uses[0]) <= fp(frame, insn.uses[1]) ? 1 : 0;
        break;
      case Opcode::kI2F:
        fp(frame, insn.defs[0]) =
            static_cast<double>(gp(frame, insn.uses[0]));
        break;
      case Opcode::kF2I: {
        const double value = fp(frame, insn.uses[0]);
        if (!std::isfinite(value) || value >= 9.2233720368547758e18 ||
            value < -9.2233720368547758e18) {
          throw TrapError{TrapKind::kBadConversion, 0};
        }
        gp(frame, insn.defs[0]) = static_cast<std::int64_t>(value);
        break;
      }
      case Opcode::kLoad: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        gp(frame, insn.defs[0]) =
            static_cast<std::int64_t>(memory.readU64(address));
        break;
      }
      case Opcode::kLoadB: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        gp(frame, insn.defs[0]) = memory.readU8(address);
        break;
      }
      case Opcode::kStore: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        memory.writeU64(address,
                        static_cast<std::uint64_t>(gp(frame, insn.uses[1])));
        break;
      }
      case Opcode::kStoreB: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        memory.writeU8(address,
                       static_cast<std::uint8_t>(gp(frame, insn.uses[1])));
        break;
      }
      case Opcode::kFLoad: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        fp(frame, insn.defs[0]) = memory.readF64(address);
        break;
      }
      case Opcode::kFStore: {
        const std::uint64_t address =
            addressOf(frame, insn);
        addrScratch[node] = address;
        ++stats.memAccesses;
        memory.writeF64(address, fp(frame, insn.uses[1]));
        break;
      }
      case Opcode::kCheckG:
        if (gp(frame, insn.uses[0]) != gp(frame, insn.uses[1])) {
          throw DetectedSignal{};
        }
        break;
      case Opcode::kCheckF: {
        // Bit-pattern compare: NaN-safe and sensitive to every flipped bit.
        std::uint64_t a;
        std::uint64_t b;
        std::memcpy(&a, &fp(frame, insn.uses[0]), 8);
        std::memcpy(&b, &fp(frame, insn.uses[1]), 8);
        if (a != b) {
          throw DetectedSignal{};
        }
        break;
      }
      case Opcode::kCheckP:
        if (pr(frame, insn.uses[0]) != pr(frame, insn.uses[1])) {
          throw DetectedSignal{};
        }
        break;
      case Opcode::kFCmpNeBits: {
        std::uint64_t a;
        std::uint64_t b;
        std::memcpy(&a, &fp(frame, insn.uses[0]), 8);
        std::memcpy(&b, &fp(frame, insn.uses[1]), 8);
        pr(frame, insn.defs[0]) = a != b ? 1 : 0;
        break;
      }
      case Opcode::kTrapIf:
        if (pr(frame, insn.uses[0]) != 0) {
          throw DetectedSignal{};
        }
        break;
      case Opcode::kBr:
      case Opcode::kBrCond:
      case Opcode::kCall:
      case Opcode::kRet:
      case Opcode::kHalt:
        CASTED_UNREACHABLE("control flow handled by runFunction");
      case Opcode::kOpcodeCount:
        CASTED_UNREACHABLE("bad opcode");
    }
  }

  void chargeBlockTiming(ir::FuncId func, ir::BlockId blockId) {
    const sched::BlockSchedule& blockSched =
        schedule.functions[func].blocks[blockId];
    std::uint64_t stalls = 0;
    const auto& plan = memPlans[func][blockId];
    const std::uint32_t baseLatency = config.latencies.mem;
    std::size_t i = 0;
    while (i < plan.size()) {
      // One bundle: all memory ops issued in the same cycle overlap their
      // misses (non-blocking caches); the bundle pays the worst extra.
      const std::uint32_t cycle = plan[i].cycle;
      std::uint32_t worstExtra = 0;
      while (i < plan.size() && plan[i].cycle == cycle) {
        const std::uint32_t latency = caches.access(addrScratch[plan[i].node]);
        if (latency > baseLatency) {
          worstExtra = std::max(worstExtra, latency - baseLatency);
        }
        ++i;
      }
      stalls += worstExtra;
    }
    stats.cycles += blockSched.length + stalls;
    stats.stallCycles += stalls;
    ++stats.blockExecutions;
  }

  // Executes `fn` until it returns; return values land in returnScratch.
  void runFunction(const ir::Function& fn, const std::vector<RawValue>& args,
                   std::uint32_t depth) {
    if (depth > options.maxCallDepth) {
      throw TrapError{TrapKind::kStackOverflow, 0};
    }
    Frame frame(fn);
    CASTED_CHECK(args.size() == fn.params().size())
        << "bad argument count calling @" << fn.name();
    for (std::size_t i = 0; i < args.size(); ++i) {
      const Reg param = fn.params()[i];
      switch (param.cls) {
        case RegClass::kGp:
          gp(frame, param) = static_cast<std::int64_t>(args[i].bits);
          break;
        case RegClass::kFp:
          std::memcpy(&fp(frame, param), &args[i].bits, 8);
          break;
        case RegClass::kPr:
          pr(frame, param) = args[i].bits != 0 ? 1 : 0;
          break;
      }
    }

    ir::BlockId current = 0;
    while (true) {
      if (stats.cycles > options.maxCycles) {
        throw TimeoutSignal{};
      }
      const ir::BasicBlock& block = fn.block(current);
      const auto& insns = block.insns();
      ir::BlockId next = ir::kInvalidBlock;
      bool returned = false;
      for (std::uint32_t node = 0; node < insns.size(); ++node) {
        const Instruction& insn = insns[node];
        ++stats.dynamicInsns;
        switch (insn.op) {
          case Opcode::kBr:
            next = insn.target;
            break;
          case Opcode::kBrCond:
            next = pr(frame, insn.uses[0]) != 0 ? insn.target : insn.target2;
            break;
          case Opcode::kCall: {
            const ir::Function& callee = program.function(insn.callee);
            std::vector<RawValue> callArgs;
            callArgs.reserve(insn.uses.size());
            for (const Reg& use : insn.uses) {
              RawValue value;
              value.cls = use.cls;
              switch (use.cls) {
                case RegClass::kGp:
                  value.bits = static_cast<std::uint64_t>(gp(frame, use));
                  break;
                case RegClass::kFp:
                  std::memcpy(&value.bits, &fp(frame, use), 8);
                  break;
                case RegClass::kPr:
                  value.bits = pr(frame, use);
                  break;
              }
              callArgs.push_back(value);
            }
            runFunction(callee, callArgs, depth + 1);
            CASTED_CHECK(returnScratch.size() == insn.defs.size())
                << "@" << callee.name() << " returned "
                << returnScratch.size() << " values, caller expects "
                << insn.defs.size();
            for (std::size_t i = 0; i < insn.defs.size(); ++i) {
              const Reg def = insn.defs[i];
              switch (def.cls) {
                case RegClass::kGp:
                  gp(frame, def) =
                      static_cast<std::int64_t>(returnScratch[i].bits);
                  break;
                case RegClass::kFp:
                  std::memcpy(&fp(frame, def), &returnScratch[i].bits, 8);
                  break;
                case RegClass::kPr:
                  pr(frame, def) = returnScratch[i].bits != 0 ? 1 : 0;
                  break;
              }
            }
            if (!insn.defs.empty()) {
              ++stats.dynamicDefInsns;
              recordDef(fn.id(), current, node);
            }
            maybeInjectFault(frame, insn);
            break;
          }
          case Opcode::kRet: {
            returnScratch.clear();
            for (const Reg& use : insn.uses) {
              RawValue value;
              value.cls = use.cls;
              switch (use.cls) {
                case RegClass::kGp:
                  value.bits = static_cast<std::uint64_t>(gp(frame, use));
                  break;
                case RegClass::kFp:
                  std::memcpy(&value.bits, &fp(frame, use), 8);
                  break;
                case RegClass::kPr:
                  value.bits = pr(frame, use);
                  break;
              }
              returnScratch.push_back(value);
            }
            returned = true;
            break;
          }
          case Opcode::kHalt:
            chargeBlockTiming(fn.id(), current);
            throw HaltSignal{gp(frame, insn.uses[0])};
          default:
            execute(frame, insn, node);
            if (!insn.defs.empty()) {
              ++stats.dynamicDefInsns;
              recordDef(fn.id(), current, node);
              maybeInjectFault(frame, insn);
            }
            break;
        }
      }
      chargeBlockTiming(fn.id(), current);
      if (returned) {
        return;
      }
      CASTED_CHECK(next != ir::kInvalidBlock)
          << "block bb" << current << " of @" << fn.name()
          << " fell through without a branch";
      current = next;
    }
  }

  RunResult run() {
    RunResult result;
    CASTED_CHECK(options.faultPlan == nullptr || options.defTrace == nullptr)
        << "SimOptions::defTrace must stay null in injection runs (the "
           "trace belongs to the golden profiling run)";
    if (options.defTrace != nullptr) {
      options.defTrace->clear();
    }
    const ir::Function& entry = program.function(program.entryFunction());
    try {
      runFunction(entry, {}, 0);
      // Entry returned without halting: treat as a clean exit with code 0.
      result.exit = ExitKind::kHalted;
      result.exitCode = 0;
    } catch (const HaltSignal& halt) {
      result.exit = ExitKind::kHalted;
      result.exitCode = halt.exitCode;
    } catch (const DetectedSignal&) {
      result.exit = ExitKind::kDetected;
    } catch (const TrapError& trap) {
      result.exit = ExitKind::kException;
      result.trap = trap.kind;
    } catch (const TimeoutSignal&) {
      result.exit = ExitKind::kTimeout;
    }
    for (int level = 0; level < 3; ++level) {
      stats.cacheLevel[level] = caches.levelStats(level);
    }
    stats.memoryAccesses = caches.memoryAccesses();
    result.stats = stats;
    if (program.hasSymbol(options.outputSymbol)) {
      const ir::GlobalSymbol& sym = program.symbol(options.outputSymbol);
      result.output = memory.snapshot(sym.address, sym.size);
    }
    return result;
  }
};

Simulator::Simulator(const ir::Program& program,
                     const sched::ProgramSchedule& schedule,
                     const arch::MachineConfig& config, SimOptions options)
    : program_(program),
      schedule_(schedule),
      config_(config),
      options_(std::move(options)) {}

Simulator::~Simulator() = default;

RunResult Simulator::run() {
  if (options_.engine == Engine::kDecoded) {
    const DecodedProgram decoded =
        DecodedProgram::build(program_, schedule_, config_);
    return runDecoded(decoded, options_);
  }
  Impl impl(program_, schedule_, config_, options_);
  RunResult result = impl.run();
  traceRunStats("reference", result.stats);
  return result;
}

RunResult simulate(const ir::Program& program,
                   const sched::ProgramSchedule& schedule,
                   const arch::MachineConfig& config, SimOptions options) {
  Simulator simulator(program, schedule, config, std::move(options));
  return simulator.run();
}

}  // namespace casted::sim
