// The clustered-VLIW simulator (our stand-in for the paper's modified SKI).
//
// Execution is split in two coupled walks per basic-block execution:
//   * a functional walk in program order — computes values, follows calls
//     and branches, performs memory reads/writes, fires CHECKs, raises
//     traps, and (for fault-injection runs) applies the planned bit flips to
//     instruction outputs;
//   * a timing walk over the block's static VLIW schedule — charges the
//     schedule length plus cache-miss stalls.  Misses issued in the same
//     bundle overlap (non-blocking caches): the bundle pays only the worst
//     extra latency, which is the MLP mechanism CASTED's spreading of
//     memory operations exploits (§III-D).
//
// The split is sound because the scheduler honours every DFG dependence, so
// the scheduled order computes exactly the program-order values.
#pragma once

#include <cstdint>
#include <string>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "sched/schedule.h"
#include "sim/run_result.h"

namespace casted::sim {

struct SimOptions {
  std::uint64_t heapBytes = 1 << 20;   // zeroed scratch after the globals
  std::uint64_t maxCycles = ~0ULL;     // watchdog (timeout outcome)
  std::uint32_t maxCallDepth = 256;
  std::string outputSymbol = "output"; // snapshot target for classification
  const FaultPlan* faultPlan = nullptr;
};

class Simulator {
 public:
  // `schedule` must have been produced from `program` with `config` (same
  // block/function shapes).
  Simulator(const ir::Program& program, const sched::ProgramSchedule& schedule,
            const arch::MachineConfig& config, SimOptions options = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Executes the program from its entry function to completion.
  RunResult run();

 private:
  struct Impl;
  Impl* impl_;
};

// Convenience wrapper: schedule + simulate in one call.
RunResult simulate(const ir::Program& program,
                   const sched::ProgramSchedule& schedule,
                   const arch::MachineConfig& config, SimOptions options = {});

}  // namespace casted::sim
