// The clustered-VLIW simulator (our stand-in for the paper's modified SKI).
//
// Two interchangeable engines execute a program:
//   * kDecoded (default) — runs the flat pre-decoded micro-op arrays of
//     sim::DecodedProgram (see decoded.h), the fast path the Monte Carlo
//     campaigns use;
//   * kReference — the original IR-walking interpreter below, kept as the
//     behavioural oracle the decoded engine is differentially tested
//     against (tests/engine_differential_test.cpp).
// Both engines are required to produce field-for-field identical RunResults
// for every program, schedule, machine and fault plan.
//
// Execution is split in two coupled walks per basic-block execution:
//   * a functional walk in program order — computes values, follows calls
//     and branches, performs memory reads/writes, fires CHECKs, raises
//     traps, and (for fault-injection runs) applies the planned bit flips to
//     instruction outputs;
//   * a timing walk over the block's static VLIW schedule — charges the
//     schedule length plus cache-miss stalls.  Misses issued in the same
//     bundle overlap (non-blocking caches): the bundle pays only the worst
//     extra latency, which is the MLP mechanism CASTED's spreading of
//     memory operations exploits (§III-D).
//
// The split is sound because the scheduler honours every DFG dependence, so
// the scheduled order computes exactly the program-order values.
#pragma once

#include <cstdint>
#include <string>

#include "arch/machine_config.h"
#include "ir/function.h"
#include "sched/schedule.h"
#include "sim/run_result.h"

namespace casted::sim {

// Which interpreter executes the program.
enum class Engine : std::uint8_t {
  kDecoded,    // flat micro-op arrays (fast path; see decoded.h)
  kReference,  // the original IR-walking interpreter (the oracle)
};

const char* engineName(Engine engine);

struct SimOptions {
  std::uint64_t heapBytes = 1 << 20;   // zeroed scratch after the globals
  std::uint64_t maxCycles = ~0ULL;     // watchdog (timeout outcome)
  std::uint32_t maxCallDepth = 256;
  std::string outputSymbol = "output"; // snapshot target for classification
  const FaultPlan* faultPlan = nullptr;
  Engine engine = Engine::kDecoded;
  // When non-null, the engine clears the vector at run start and appends the
  // static site of every dynamically executed def-producing instruction, in
  // def-ordinal order (so (*defTrace)[i] is the instruction FaultPoint
  // ordinal i targets).  Identical for both engines.  The trace belongs to
  // the golden profiling run: both engines CHECK that it is null whenever
  // faultPlan is set (it would cost a push_back per def in the hot injection
  // loop, and a rewound stepwise run could not keep it consistent).
  std::vector<DefSite>* defTrace = nullptr;
};

class Simulator {
 public:
  // `schedule` must have been produced from `program` with `config` (same
  // block/function shapes).
  Simulator(const ir::Program& program, const sched::ProgramSchedule& schedule,
            const arch::MachineConfig& config, SimOptions options = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Executes the program from its entry function to completion with the
  // engine selected by `options.engine`.
  RunResult run();

 private:
  struct Impl;
  const ir::Program& program_;
  const sched::ProgramSchedule& schedule_;
  const arch::MachineConfig& config_;
  SimOptions options_;
};

// Convenience wrapper: schedule + simulate in one call.
RunResult simulate(const ir::Program& program,
                   const sched::ProgramSchedule& schedule,
                   const arch::MachineConfig& config, SimOptions options = {});

}  // namespace casted::sim
