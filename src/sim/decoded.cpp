#include "sim/decoded.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "sim/simulator.h"
#include "support/check.h"

namespace casted::sim {

namespace {

using ir::Opcode;
using ir::Reg;
using ir::RegClass;

// Mirrors of the reference engine's unwind signals.
struct DetectedSignal {};
struct TimeoutSignal {};
struct HaltSignal {
  std::int64_t exitCode = 0;
};

std::int64_t wrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapNeg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}

constexpr std::uint32_t kDiscardReturns = 0xffffffffu;
constexpr std::uint64_t kNoFault = ~0ULL;

}  // namespace

DecodedProgram DecodedProgram::build(const ir::Program& program,
                                     const sched::ProgramSchedule& schedule,
                                     const arch::MachineConfig& config) {
  DecodedProgram decoded;
  CASTED_CHECK(schedule.functions.size() == program.functionCount())
      << "schedule/program function count mismatch";
  decoded.entry_ = program.entryFunction();
  decoded.symbols_ = program.symbols();
  decoded.globalImage_ = program.globalImage();
  decoded.cacheConfig_ = config.cache;
  decoded.memBaseLatency_ = config.latencies.mem;

  decoded.funcs_.resize(program.functionCount());
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    const ir::Function& fn = program.function(f);
    DecodedFunction& dfn = decoded.funcs_[f];
    CASTED_CHECK(schedule.functions[f].blocks.size() == fn.blockCount())
        << "schedule/program block count mismatch in @" << fn.name();
    dfn.name = fn.name();
    dfn.regCount[0] = fn.regCount(RegClass::kGp);
    dfn.regCount[1] = fn.regCount(RegClass::kFp);
    dfn.regCount[2] = fn.regCount(RegClass::kPr);
    for (const Reg& param : fn.params()) {
      dfn.params.push_back(
          {static_cast<std::uint8_t>(param.cls), param.index});
    }

    dfn.blocks.resize(fn.blockCount());
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      const auto& insns = fn.block(b).insns();
      decoded.maxBlockInsns_ = std::max(decoded.maxBlockInsns_, insns.size());
      const sched::BlockSchedule& blockSched =
          schedule.functions[f].blocks[b];
      CASTED_CHECK(blockSched.issueCycle.size() == insns.size())
          << "schedule built from a different program shape (@" << fn.name()
          << " bb" << b << ")";

      DecodedBlock& dbk = dfn.blocks[b];
      dbk.firstOp = static_cast<std::uint32_t>(dfn.ops.size());
      dbk.opCount = static_cast<std::uint32_t>(insns.size());
      dbk.schedLength = blockSched.length;

      // The memory plan must replay the reference walk's cache-access order
      // exactly (LRU state and hit/miss counts depend on it), so it is
      // built with the identical input sequence, comparator and sort.
      struct MemOp {
        std::uint32_t cycle = 0;
        std::uint32_t node = 0;
      };
      std::vector<MemOp> plan;
      for (std::uint32_t node = 0; node < insns.size(); ++node) {
        if (insns[node].isMemory()) {
          plan.push_back({blockSched.issueCycle[node], node});
        }
      }
      std::sort(plan.begin(), plan.end(),
                [](const MemOp& a, const MemOp& b) {
                  return a.cycle < b.cycle;
                });
      dbk.planFirst = static_cast<std::uint32_t>(dfn.memPlan.size());
      dbk.planCount = static_cast<std::uint32_t>(plan.size());
      dbk.bundleFirst = static_cast<std::uint32_t>(dfn.bundleSizes.size());
      std::size_t i = 0;
      while (i < plan.size()) {
        const std::uint32_t cycle = plan[i].cycle;
        std::uint32_t size = 0;
        while (i < plan.size() && plan[i].cycle == cycle) {
          dfn.memPlan.push_back(plan[i].node);
          ++size;
          ++i;
        }
        dfn.bundleSizes.push_back(size);
        ++dbk.bundleCount;
      }

      for (const ir::Instruction& insn : insns) {
        MicroOp u;
        u.op = insn.op;
        u.defCount = static_cast<std::uint16_t>(insn.defs.size());
        if (u.defCount == 1) {
          u.defClass = static_cast<std::uint8_t>(insn.defs[0].cls);
          u.def = insn.defs[0].index;
        }
        u.imm = insn.op == Opcode::kFMovImm
                    ? std::bit_cast<std::int64_t>(insn.fimm)
                    : insn.imm;
        switch (insn.op) {
          case Opcode::kBr:
            u.t1 = insn.target;
            break;
          case Opcode::kBrCond:
            u.a = insn.uses[0].index;
            u.t1 = insn.target;
            u.t2 = insn.target2;
            break;
          case Opcode::kCall: {
            u.t1 = insn.callee;
            u.a = static_cast<std::uint32_t>(decoded.pool_.size());
            u.b = static_cast<std::uint32_t>(insn.uses.size());
            for (const Reg& use : insn.uses) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(use.cls), use.index});
            }
            u.c = static_cast<std::uint32_t>(decoded.pool_.size());
            for (const Reg& def : insn.defs) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(def.cls), def.index});
            }
            break;
          }
          case Opcode::kRet: {
            u.a = static_cast<std::uint32_t>(decoded.pool_.size());
            u.b = static_cast<std::uint32_t>(insn.uses.size());
            for (const Reg& use : insn.uses) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(use.cls), use.index});
            }
            break;
          }
          default: {
            if (insn.uses.size() > 0) {
              u.a = insn.uses[0].index;
            }
            if (insn.uses.size() > 1) {
              u.b = insn.uses[1].index;
            }
            if (insn.uses.size() > 2) {
              u.c = insn.uses[2].index;
            }
            break;
          }
        }
        dfn.ops.push_back(u);
      }
    }
  }
  return decoded;
}

namespace {

// The decoded interpreter.  Frames live in three per-class arenas (one
// contiguous slab per register class) instead of per-call heap vectors; a
// call pushes `regCount` zeroed slots per class and pops them on return.
//
// One Interp is a reusable context: reset() restores the fresh-construction
// architectural state in time proportional to what the previous run touched
// (write-logged memory, epoch-invalidated caches, cleared arenas), so a
// campaign worker pays the megabyte-scale allocations once, not per trial.
struct Interp {
  const DecodedProgram& prog;
  const SimOptions* options = nullptr;  // set by reset() before each run
  Memory memory;
  std::uint64_t heapBytes;
  CacheHierarchy caches;
  RunStats stats;

  std::vector<std::int64_t> gpStack;
  std::vector<double> fpStack;
  std::vector<std::uint8_t> prStack;

  // Address computed for each memory op of the current block, indexed by the
  // op's node position — the same indexing the reference walk uses, so the
  // (harmless, never observed for completed blocks) aliasing of the scratch
  // across nested calls is bit-identical too.
  std::vector<std::uint64_t> addr;

  std::size_t faultCursor = 0;
  std::uint64_t defOrdinal = 0;
  std::uint64_t nextFaultOrdinal = kNoFault;

  struct FrameBase {
    std::uint32_t gp = 0;
    std::uint32_t fp = 0;
    std::uint32_t pr = 0;
  };

  explicit Interp(const DecodedProgram& program)
      : prog(program),
        memory(program.globalImage(), SimOptions{}.heapBytes),
        heapBytes(SimOptions{}.heapBytes),
        caches(program.cacheConfig()) {
    memory.enableWriteLog();
    addr.assign(prog.maxBlockInsns(), 0);
  }

  // Restores fresh-context state and arms the run with `opts`.
  void reset(const SimOptions& opts) {
    options = &opts;
    if (opts.heapBytes != heapBytes) {
      memory = Memory(prog.globalImage(), opts.heapBytes);
      memory.enableWriteLog();
      heapBytes = opts.heapBytes;
    } else {
      memory.resetLogged(prog.globalImage());
    }
    caches.reset();
    stats = RunStats{};
    gpStack.clear();
    fpStack.clear();
    prStack.clear();
    std::fill(addr.begin(), addr.end(), 0);
    faultCursor = 0;
    defOrdinal = 0;
    nextFaultOrdinal =
        (opts.faultPlan != nullptr && !opts.faultPlan->points.empty())
            ? opts.faultPlan->points[0].ordinal
            : kNoFault;
    if (opts.defTrace != nullptr) {
      opts.defTrace->clear();
    }
  }

  // Reads one register as raw bits; the marshalling used for call arguments
  // and returned values (identical to the reference's RawValue round trip).
  std::uint64_t readBits(const FrameBase& frame, const DecodedReg& reg) const {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        return static_cast<std::uint64_t>(gpStack[frame.gp + reg.slot]);
      case RegClass::kFp:
        return std::bit_cast<std::uint64_t>(fpStack[frame.fp + reg.slot]);
      case RegClass::kPr:
        return prStack[frame.pr + reg.slot];
    }
    CASTED_UNREACHABLE("bad RegClass");
  }

  void writeBits(const FrameBase& frame, const DecodedReg& reg,
                 std::uint64_t bits) {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        gpStack[frame.gp + reg.slot] = static_cast<std::int64_t>(bits);
        break;
      case RegClass::kFp:
        fpStack[frame.fp + reg.slot] = std::bit_cast<double>(bits);
        break;
      case RegClass::kPr:
        prStack[frame.pr + reg.slot] = bits != 0 ? 1 : 0;
        break;
    }
  }

  // Applies the pending fault point to one def of `target` (the op whose
  // defOrdinal just matched), then advances the plan cursor.
  void injectFault(const MicroOp& u, const FrameBase& frame) {
    const FaultPoint& point = options->faultPlan->points[faultCursor];
    ++faultCursor;
    nextFaultOrdinal = faultCursor < options->faultPlan->points.size()
                           ? options->faultPlan->points[faultCursor].ordinal
                           : kNoFault;
    DecodedReg target;
    if (u.op == Opcode::kCall) {
      target = prog.pool()[u.c + point.whichDef % u.defCount];
    } else {
      target = {u.defClass, u.def};
    }
    switch (static_cast<RegClass>(target.cls)) {
      case RegClass::kGp:
        gpStack[frame.gp + target.slot] ^=
            static_cast<std::int64_t>(1ULL << (point.bit & 63));
        break;
      case RegClass::kFp: {
        std::uint64_t bits =
            std::bit_cast<std::uint64_t>(fpStack[frame.fp + target.slot]);
        bits ^= 1ULL << (point.bit & 63);
        fpStack[frame.fp + target.slot] = std::bit_cast<double>(bits);
        break;
      }
      case RegClass::kPr:
        prStack[frame.pr + target.slot] ^= 1;
        break;
    }
  }

  void chargeBlockTiming(const DecodedFunction& fn, const DecodedBlock& blk) {
    std::uint64_t stalls = 0;
    const std::uint32_t* plan = fn.memPlan.data() + blk.planFirst;
    const std::uint32_t* bundles = fn.bundleSizes.data() + blk.bundleFirst;
    const std::uint32_t baseLatency = prog.memBaseLatency();
    std::uint32_t cursor = 0;
    for (std::uint32_t bundle = 0; bundle < blk.bundleCount; ++bundle) {
      // All memory ops issued in the same cycle overlap their misses; the
      // bundle pays only the worst extra latency.
      std::uint32_t worstExtra = 0;
      for (std::uint32_t n = 0; n < bundles[bundle]; ++n) {
        const std::uint32_t latency = caches.access(addr[plan[cursor]]);
        if (latency > baseLatency) {
          worstExtra = std::max(worstExtra, latency - baseLatency);
        }
        ++cursor;
      }
      stalls += worstExtra;
    }
    stats.cycles += blk.schedLength + stalls;
    stats.stallCycles += stalls;
    ++stats.blockExecutions;
  }

  // Executes function `funcIdx` until it returns.  Arguments are copied from
  // the caller frame via the pool list at [argPool, argPool+argCount);
  // returned values are written back to the caller's call-def list at
  // [retPool, retPool+retCount) — or discarded for the entry invocation
  // (retCount == kDiscardReturns).
  void runFunction(std::uint32_t funcIdx, std::uint32_t argPool,
                   std::uint32_t argCount, FrameBase caller,
                   std::uint32_t retPool, std::uint32_t retCount,
                   std::uint32_t depth) {
    if (depth > options->maxCallDepth) {
      throw TrapError{TrapKind::kStackOverflow, 0};
    }
    const DecodedFunction& fn = prog.functions()[funcIdx];
    CASTED_CHECK(argCount == fn.params.size())
        << "bad argument count calling @" << fn.name;

    FrameBase self{static_cast<std::uint32_t>(gpStack.size()),
                   static_cast<std::uint32_t>(fpStack.size()),
                   static_cast<std::uint32_t>(prStack.size())};
    gpStack.resize(self.gp + fn.regCount[0], 0);
    fpStack.resize(self.fp + fn.regCount[1], 0.0);
    prStack.resize(self.pr + fn.regCount[2], 0);
    for (std::uint32_t i = 0; i < argCount; ++i) {
      writeBits(self, fn.params[i],
                readBits(caller, prog.pool()[argPool + i]));
    }

    std::uint32_t current = 0;
    while (true) {
      if (stats.cycles > options->maxCycles) {
        throw TimeoutSignal{};
      }
      const DecodedBlock& blk = fn.blocks[current];
      const MicroOp* ops = fn.ops.data() + blk.firstOp;
      // Frame pointers are refreshed per block and after every call — the
      // arenas may reallocate while a callee runs.
      std::int64_t* gp = gpStack.data() + self.gp;
      double* fp = fpStack.data() + self.fp;
      std::uint8_t* pr = prStack.data() + self.pr;
      std::uint32_t next = ir::kInvalidBlock;
      bool returned = false;
      for (std::uint32_t node = 0; node < blk.opCount; ++node) {
        const MicroOp& u = ops[node];
        ++stats.dynamicInsns;
        switch (u.op) {
          case Opcode::kNop:
            break;
          case Opcode::kMovImm:
            gp[u.def] = u.imm;
            break;
          case Opcode::kMov:
            gp[u.def] = gp[u.a];
            break;
          case Opcode::kAdd:
            gp[u.def] = wrapAdd(gp[u.a], gp[u.b]);
            break;
          case Opcode::kSub:
            gp[u.def] = wrapSub(gp[u.a], gp[u.b]);
            break;
          case Opcode::kMul:
            gp[u.def] = wrapMul(gp[u.a], gp[u.b]);
            break;
          case Opcode::kDiv: {
            const std::int64_t divisor = gp[u.b];
            if (divisor == 0) {
              throw TrapError{TrapKind::kDivByZero, 0};
            }
            const std::int64_t dividend = gp[u.a];
            if (dividend == std::numeric_limits<std::int64_t>::min() &&
                divisor == -1) {
              gp[u.def] = dividend;  // hardware-defined wrap
            } else {
              gp[u.def] = dividend / divisor;
            }
            break;
          }
          case Opcode::kRem: {
            const std::int64_t divisor = gp[u.b];
            if (divisor == 0) {
              throw TrapError{TrapKind::kDivByZero, 0};
            }
            const std::int64_t dividend = gp[u.a];
            if (dividend == std::numeric_limits<std::int64_t>::min() &&
                divisor == -1) {
              gp[u.def] = 0;
            } else {
              gp[u.def] = dividend % divisor;
            }
            break;
          }
          case Opcode::kAnd:
            gp[u.def] = gp[u.a] & gp[u.b];
            break;
          case Opcode::kOr:
            gp[u.def] = gp[u.a] | gp[u.b];
            break;
          case Opcode::kXor:
            gp[u.def] = gp[u.a] ^ gp[u.b];
            break;
          case Opcode::kShl:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) << (gp[u.b] & 63));
            break;
          case Opcode::kShr:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) >> (gp[u.b] & 63));
            break;
          case Opcode::kSra:
            gp[u.def] = gp[u.a] >> (gp[u.b] & 63);
            break;
          case Opcode::kMin:
            gp[u.def] = std::min(gp[u.a], gp[u.b]);
            break;
          case Opcode::kMax:
            gp[u.def] = std::max(gp[u.a], gp[u.b]);
            break;
          case Opcode::kAddImm:
            gp[u.def] = wrapAdd(gp[u.a], u.imm);
            break;
          case Opcode::kMulImm:
            gp[u.def] = wrapMul(gp[u.a], u.imm);
            break;
          case Opcode::kAndImm:
            gp[u.def] = gp[u.a] & u.imm;
            break;
          case Opcode::kShlImm:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) << (u.imm & 63));
            break;
          case Opcode::kShrImm:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) >> (u.imm & 63));
            break;
          case Opcode::kSraImm:
            gp[u.def] = gp[u.a] >> (u.imm & 63);
            break;
          case Opcode::kNeg:
            gp[u.def] = wrapNeg(gp[u.a]);
            break;
          case Opcode::kAbs: {
            const std::int64_t value = gp[u.a];
            gp[u.def] = value < 0 ? wrapNeg(value) : value;
            break;
          }
          case Opcode::kNot:
            gp[u.def] = ~gp[u.a];
            break;
          case Opcode::kSelect:
            gp[u.def] = pr[u.a] != 0 ? gp[u.b] : gp[u.c];
            break;
          case Opcode::kCmpEq:
            pr[u.def] = gp[u.a] == gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpNe:
            pr[u.def] = gp[u.a] != gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpLt:
            pr[u.def] = gp[u.a] < gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpLe:
            pr[u.def] = gp[u.a] <= gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpGt:
            pr[u.def] = gp[u.a] > gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpGe:
            pr[u.def] = gp[u.a] >= gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpEqImm:
            pr[u.def] = gp[u.a] == u.imm ? 1 : 0;
            break;
          case Opcode::kCmpNeImm:
            pr[u.def] = gp[u.a] != u.imm ? 1 : 0;
            break;
          case Opcode::kCmpLtImm:
            pr[u.def] = gp[u.a] < u.imm ? 1 : 0;
            break;
          case Opcode::kCmpLeImm:
            pr[u.def] = gp[u.a] <= u.imm ? 1 : 0;
            break;
          case Opcode::kCmpGtImm:
            pr[u.def] = gp[u.a] > u.imm ? 1 : 0;
            break;
          case Opcode::kCmpGeImm:
            pr[u.def] = gp[u.a] >= u.imm ? 1 : 0;
            break;
          case Opcode::kPMov:
            pr[u.def] = pr[u.a];
            break;
          case Opcode::kPNot:
            pr[u.def] = pr[u.a] != 0 ? 0 : 1;
            break;
          case Opcode::kPAnd:
            pr[u.def] = (pr[u.a] != 0 && pr[u.b] != 0) ? 1 : 0;
            break;
          case Opcode::kPOr:
            pr[u.def] = (pr[u.a] != 0 || pr[u.b] != 0) ? 1 : 0;
            break;
          case Opcode::kPXor:
            pr[u.def] = ((pr[u.a] != 0) != (pr[u.b] != 0)) ? 1 : 0;
            break;
          case Opcode::kPSetImm:
            pr[u.def] = u.imm != 0 ? 1 : 0;
            break;
          case Opcode::kFMovImm:
            fp[u.def] = std::bit_cast<double>(u.imm);
            break;
          case Opcode::kFMov:
            fp[u.def] = fp[u.a];
            break;
          case Opcode::kFAdd:
            fp[u.def] = fp[u.a] + fp[u.b];
            break;
          case Opcode::kFSub:
            fp[u.def] = fp[u.a] - fp[u.b];
            break;
          case Opcode::kFMul:
            fp[u.def] = fp[u.a] * fp[u.b];
            break;
          case Opcode::kFDiv:
            fp[u.def] = fp[u.a] / fp[u.b];
            break;
          case Opcode::kFMin:
            fp[u.def] = std::fmin(fp[u.a], fp[u.b]);
            break;
          case Opcode::kFMax:
            fp[u.def] = std::fmax(fp[u.a], fp[u.b]);
            break;
          case Opcode::kFNeg:
            fp[u.def] = -fp[u.a];
            break;
          case Opcode::kFAbs:
            fp[u.def] = std::fabs(fp[u.a]);
            break;
          case Opcode::kFSqrt:
            fp[u.def] = std::sqrt(fp[u.a]);
            break;
          case Opcode::kFCmpEq:
            pr[u.def] = fp[u.a] == fp[u.b] ? 1 : 0;
            break;
          case Opcode::kFCmpLt:
            pr[u.def] = fp[u.a] < fp[u.b] ? 1 : 0;
            break;
          case Opcode::kFCmpLe:
            pr[u.def] = fp[u.a] <= fp[u.b] ? 1 : 0;
            break;
          case Opcode::kI2F:
            fp[u.def] = static_cast<double>(gp[u.a]);
            break;
          case Opcode::kF2I: {
            const double value = fp[u.a];
            if (!std::isfinite(value) || value >= 9.2233720368547758e18 ||
                value < -9.2233720368547758e18) {
              throw TrapError{TrapKind::kBadConversion, 0};
            }
            gp[u.def] = static_cast<std::int64_t>(value);
            break;
          }
          case Opcode::kLoad: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            gp[u.def] = static_cast<std::int64_t>(memory.readU64(address));
            break;
          }
          case Opcode::kLoadB: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            gp[u.def] = memory.readU8(address);
            break;
          }
          case Opcode::kStore: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeU64(address, static_cast<std::uint64_t>(gp[u.b]));
            break;
          }
          case Opcode::kStoreB: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeU8(address, static_cast<std::uint8_t>(gp[u.b]));
            break;
          }
          case Opcode::kFLoad: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            fp[u.def] = memory.readF64(address);
            break;
          }
          case Opcode::kFStore: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeF64(address, fp[u.b]);
            break;
          }
          case Opcode::kCheckG:
            if (gp[u.a] != gp[u.b]) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kCheckF:
            // Bit-pattern compare: NaN-safe, sensitive to every flipped bit.
            if (std::bit_cast<std::uint64_t>(fp[u.a]) !=
                std::bit_cast<std::uint64_t>(fp[u.b])) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kCheckP:
            if (pr[u.a] != pr[u.b]) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kFCmpNeBits:
            pr[u.def] = std::bit_cast<std::uint64_t>(fp[u.a]) !=
                                std::bit_cast<std::uint64_t>(fp[u.b])
                            ? 1
                            : 0;
            break;
          case Opcode::kTrapIf:
            if (pr[u.a] != 0) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kBr:
            next = u.t1;
            break;
          case Opcode::kBrCond:
            next = pr[u.a] != 0 ? u.t1 : u.t2;
            break;
          case Opcode::kCall: {
            runFunction(u.t1, u.a, u.b, self, u.c, u.defCount, depth + 1);
            gp = gpStack.data() + self.gp;
            fp = fpStack.data() + self.fp;
            pr = prStack.data() + self.pr;
            break;
          }
          case Opcode::kRet: {
            if (retCount != kDiscardReturns) {
              CASTED_CHECK(u.b == retCount)
                  << "@" << fn.name << " returned " << u.b
                  << " values, caller expects " << retCount;
              for (std::uint32_t i = 0; i < u.b; ++i) {
                writeBits(caller, prog.pool()[retPool + i],
                          readBits(self, prog.pool()[u.a + i]));
              }
            }
            returned = true;
            break;
          }
          case Opcode::kHalt:
            chargeBlockTiming(fn, blk);
            throw HaltSignal{gp[u.a]};
          case Opcode::kOpcodeCount:
            CASTED_UNREACHABLE("bad opcode");
        }
        // Def bookkeeping + fault injection, shared by every def-producing
        // opcode including calls (whose defs were just written back).
        if (u.defCount != 0) {
          ++stats.dynamicDefInsns;
          if (options->defTrace != nullptr) {
            options->defTrace->push_back({funcIdx, current, node});
          }
          if (defOrdinal == nextFaultOrdinal) {
            injectFault(u, self);
          }
          ++defOrdinal;
        }
      }
      chargeBlockTiming(fn, blk);
      if (returned) {
        break;
      }
      CASTED_CHECK(next != ir::kInvalidBlock)
          << "block bb" << current << " of @" << fn.name
          << " fell through without a branch";
      current = next;
    }
    gpStack.resize(self.gp);
    fpStack.resize(self.fp);
    prStack.resize(self.pr);
  }

  RunResult run() {
    RunResult result;
    try {
      runFunction(prog.entryFunction(), 0, 0, FrameBase{}, 0,
                  kDiscardReturns, 0);
      // Entry returned without halting: a clean exit with code 0.
      result.exit = ExitKind::kHalted;
      result.exitCode = 0;
    } catch (const HaltSignal& halt) {
      result.exit = ExitKind::kHalted;
      result.exitCode = halt.exitCode;
    } catch (const DetectedSignal&) {
      result.exit = ExitKind::kDetected;
    } catch (const TrapError& trap) {
      result.exit = ExitKind::kException;
      result.trap = trap.kind;
    } catch (const TimeoutSignal&) {
      result.exit = ExitKind::kTimeout;
    }
    for (int level = 0; level < 3; ++level) {
      stats.cacheLevel[level] = caches.levelStats(level);
    }
    stats.memoryAccesses = caches.memoryAccesses();
    result.stats = stats;
    for (const ir::GlobalSymbol& sym : prog.symbols()) {
      if (sym.name == options->outputSymbol) {
        result.output = memory.snapshot(sym.address, sym.size);
        break;
      }
    }
    return result;
  }
};

}  // namespace

struct DecodedRunner::Impl {
  Interp interp;
  explicit Impl(const DecodedProgram& program) : interp(program) {}
};

DecodedRunner::DecodedRunner(const DecodedProgram& program)
    : impl_(std::make_unique<Impl>(program)) {}

DecodedRunner::~DecodedRunner() = default;

RunResult DecodedRunner::run(const SimOptions& options) {
  impl_->interp.reset(options);
  return impl_->interp.run();
}

RunResult runDecoded(const DecodedProgram& program, const SimOptions& options) {
  Interp engine(program);
  engine.reset(options);
  return engine.run();
}

}  // namespace casted::sim
