#include "sim/decoded.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "sim/simulator.h"
#include "support/check.h"
#include "support/trace.h"

namespace casted::sim {

namespace {

using ir::Opcode;
using ir::Reg;
using ir::RegClass;

// Mirrors of the reference engine's unwind signals.
struct DetectedSignal {};
struct TimeoutSignal {};
struct HaltSignal {
  std::int64_t exitCode = 0;
};

std::int64_t wrapAdd(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapSub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapMul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

std::int64_t wrapNeg(std::int64_t a) {
  return static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a));
}

constexpr std::uint32_t kDiscardReturns = 0xffffffffu;
constexpr std::uint64_t kNoFault = ~0ULL;

}  // namespace

DecodedProgram DecodedProgram::build(const ir::Program& program,
                                     const sched::ProgramSchedule& schedule,
                                     const arch::MachineConfig& config) {
  DecodedProgram decoded;
  CASTED_CHECK(schedule.functions.size() == program.functionCount())
      << "schedule/program function count mismatch";
  decoded.entry_ = program.entryFunction();
  decoded.symbols_ = program.symbols();
  decoded.globalImage_ = program.globalImage();
  decoded.cacheConfig_ = config.cache;
  decoded.memBaseLatency_ = config.latencies.mem;

  decoded.funcs_.resize(program.functionCount());
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    const ir::Function& fn = program.function(f);
    DecodedFunction& dfn = decoded.funcs_[f];
    CASTED_CHECK(schedule.functions[f].blocks.size() == fn.blockCount())
        << "schedule/program block count mismatch in @" << fn.name();
    dfn.name = fn.name();
    dfn.regCount[0] = fn.regCount(RegClass::kGp);
    dfn.regCount[1] = fn.regCount(RegClass::kFp);
    dfn.regCount[2] = fn.regCount(RegClass::kPr);
    for (const Reg& param : fn.params()) {
      dfn.params.push_back(
          {static_cast<std::uint8_t>(param.cls), param.index});
    }

    dfn.blocks.resize(fn.blockCount());
    for (ir::BlockId b = 0; b < fn.blockCount(); ++b) {
      const auto& insns = fn.block(b).insns();
      decoded.maxBlockInsns_ = std::max(decoded.maxBlockInsns_, insns.size());
      const sched::BlockSchedule& blockSched =
          schedule.functions[f].blocks[b];
      CASTED_CHECK(blockSched.issueCycle.size() == insns.size())
          << "schedule built from a different program shape (@" << fn.name()
          << " bb" << b << ")";

      DecodedBlock& dbk = dfn.blocks[b];
      dbk.firstOp = static_cast<std::uint32_t>(dfn.ops.size());
      dbk.opCount = static_cast<std::uint32_t>(insns.size());
      dbk.schedLength = blockSched.length;

      // The memory plan must replay the reference walk's cache-access order
      // exactly (LRU state and hit/miss counts depend on it), so it is
      // built with the identical input sequence, comparator and sort.
      struct MemOp {
        std::uint32_t cycle = 0;
        std::uint32_t node = 0;
      };
      std::vector<MemOp> plan;
      for (std::uint32_t node = 0; node < insns.size(); ++node) {
        if (insns[node].isMemory()) {
          plan.push_back({blockSched.issueCycle[node], node});
        }
      }
      std::sort(plan.begin(), plan.end(),
                [](const MemOp& a, const MemOp& b) {
                  return a.cycle < b.cycle;
                });
      dbk.planFirst = static_cast<std::uint32_t>(dfn.memPlan.size());
      dbk.planCount = static_cast<std::uint32_t>(plan.size());
      dbk.bundleFirst = static_cast<std::uint32_t>(dfn.bundleSizes.size());
      std::size_t i = 0;
      while (i < plan.size()) {
        const std::uint32_t cycle = plan[i].cycle;
        std::uint32_t size = 0;
        while (i < plan.size() && plan[i].cycle == cycle) {
          dfn.memPlan.push_back(plan[i].node);
          ++size;
          ++i;
        }
        dfn.bundleSizes.push_back(size);
        ++dbk.bundleCount;
      }

      for (const ir::Instruction& insn : insns) {
        MicroOp u;
        u.op = insn.op;
        u.defCount = static_cast<std::uint16_t>(insn.defs.size());
        if (u.defCount == 1) {
          u.defClass = static_cast<std::uint8_t>(insn.defs[0].cls);
          u.def = insn.defs[0].index;
        }
        u.imm = insn.op == Opcode::kFMovImm
                    ? std::bit_cast<std::int64_t>(insn.fimm)
                    : insn.imm;
        switch (insn.op) {
          case Opcode::kBr:
            u.t1 = insn.target;
            break;
          case Opcode::kBrCond:
            u.a = insn.uses[0].index;
            u.t1 = insn.target;
            u.t2 = insn.target2;
            break;
          case Opcode::kCall: {
            u.t1 = insn.callee;
            u.a = static_cast<std::uint32_t>(decoded.pool_.size());
            u.b = static_cast<std::uint32_t>(insn.uses.size());
            for (const Reg& use : insn.uses) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(use.cls), use.index});
            }
            u.c = static_cast<std::uint32_t>(decoded.pool_.size());
            for (const Reg& def : insn.defs) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(def.cls), def.index});
            }
            break;
          }
          case Opcode::kRet: {
            u.a = static_cast<std::uint32_t>(decoded.pool_.size());
            u.b = static_cast<std::uint32_t>(insn.uses.size());
            for (const Reg& use : insn.uses) {
              decoded.pool_.push_back(
                  {static_cast<std::uint8_t>(use.cls), use.index});
            }
            break;
          }
          default: {
            if (insn.uses.size() > 0) {
              u.a = insn.uses[0].index;
            }
            if (insn.uses.size() > 1) {
              u.b = insn.uses[1].index;
            }
            if (insn.uses.size() > 2) {
              u.c = insn.uses[2].index;
            }
            break;
          }
        }
        dfn.ops.push_back(u);
      }
    }
  }
  return decoded;
}

// Arena bases of one call frame (slots below these belong to callers).
struct InterpFrameBase {
  std::uint32_t gp = 0;
  std::uint32_t fp = 0;
  std::uint32_t pr = 0;
};

// One explicit call-stack frame of the iterative interpreter.  The recursive
// runFunction of earlier revisions kept this state in C++ stack locals; an
// explicit frame makes the whole machine state a value that ArchCheckpoint
// can copy and restore.
struct InterpFrame {
  std::uint32_t func = 0;
  std::uint32_t block = 0;
  std::uint32_t node = 0;                       // resume position in block
  std::uint32_t nextBlock = ir::kInvalidBlock;  // pending branch target
  std::uint32_t retPool = 0;   // caller-side call-def list (pool offset)
  std::uint32_t retCount = 0;  // kDiscardReturns for the entry frame
  bool returned = false;       // a kRet already executed in this block
  InterpFrameBase base;
};

// The snapshot behind sim::ArchCheckpoint: every piece of interpreter state
// that is not covered by the Memory/CacheHierarchy undo logs, copied by
// value.  Vectors keep their capacity across assignments, so repeated saves
// into the same checkpoint do not allocate after the first.
struct ArchCheckpoint::Data {
  std::vector<std::int64_t> gp;
  std::vector<double> fp;
  std::vector<std::uint8_t> pr;
  std::vector<std::uint64_t> addr;
  std::vector<InterpFrame> frames;
  RunStats stats;
  std::uint64_t defOrdinal = 0;
  std::size_t faultCursor = 0;
  std::uint64_t nextFaultOrdinal = 0;
  const FaultPlan* faultPlan = nullptr;
  std::uint64_t generation = 0;  // must match the owner's live generation
  const void* owner = nullptr;   // the interpreter that saved it
};

ArchCheckpoint::ArchCheckpoint() = default;
ArchCheckpoint::~ArchCheckpoint() = default;
ArchCheckpoint::ArchCheckpoint(ArchCheckpoint&&) noexcept = default;
ArchCheckpoint& ArchCheckpoint::operator=(ArchCheckpoint&&) noexcept =
    default;

namespace {

// What stopped the resumable core loop.
enum class Flow : std::uint8_t {
  kContinue,  // nothing did (internal: keep executing)
  kFinished,  // the entry function returned
  kPause,     // reached the runToDef() target ordinal
  kCutoff,    // reconverged with the golden trajectory (see taintStep)
};

// The decoded interpreter.  Frames live in three per-class arenas (one
// contiguous slab per register class) instead of per-call heap vectors; a
// call pushes `regCount` zeroed slots per class and pops them on return.
// Control state lives in an explicit InterpFrame stack, so execution can
// pause at any dynamic def ordinal, be snapshotted/restored through
// ArchCheckpoint, and resume — the machinery behind checkpoint-and-diverge
// fault injection (sim/decoded.h).
//
// One Interp is a reusable context: reset() restores the fresh-construction
// architectural state in time proportional to what the previous run touched
// (write-logged memory, epoch-invalidated caches, cleared arenas), so a
// campaign worker pays the megabyte-scale allocations once, not per trial.
struct Interp {
  const DecodedProgram& prog;
  const SimOptions* options = nullptr;  // set by reset() before each run
  Memory memory;
  std::uint64_t heapBytes;
  CacheHierarchy caches;
  RunStats stats;

  std::vector<std::int64_t> gpStack;
  std::vector<double> fpStack;
  std::vector<std::uint8_t> prStack;

  // Address computed for each memory op of the current block, indexed by the
  // op's node position — the same indexing the reference walk uses, so the
  // (harmless, never observed for completed blocks) aliasing of the scratch
  // across nested calls is bit-identical too.
  std::vector<std::uint64_t> addr;

  std::size_t faultCursor = 0;
  std::uint64_t defOrdinal = 0;
  std::uint64_t nextFaultOrdinal = kNoFault;

  using FrameBase = InterpFrameBase;

  // The explicit call stack.  frames.back() is the executing frame; its
  // `node` is only authoritative while paused or calling (the op loop runs
  // on a local cursor and flushes it at those points).
  std::vector<InterpFrame> frames;

  // Stepwise-run state (begin/runToDef/injectAtPause/finish).
  SimOptions stepOptions;  // storage backing `options` in stepwise mode
  std::uint64_t pauseAt = kNoFault;  // runToDef target ordinal
  bool stepMode = false;
  bool started = false;
  bool pausedAtDef = false;
  bool finished = false;
  RunResult result;
  std::uint64_t checkpointGen = 0;  // invalidates outstanding checkpoints

  // Reconvergence-cutoff state.  While `tracking`, the sets below hold every
  // register slot / memory byte whose value MAY differ from the golden
  // (fault-free) trajectory at the current execution point.  Empty sets with
  // no pending flips prove the whole machine state is bit-identical to
  // golden, so the run's remainder is the golden suffix and `goldenFinal`
  // is its result.  The tracking is conservative: any approximation keeps
  // slots tainted longer (delaying or forfeiting the cutoff), never the
  // reverse, so a fired cutoff is always sound.  Linear-scan vectors: the
  // sets stay tiny (give-up caps below) and are scanned per tracked op.
  const RunResult* goldenFinal = nullptr;
  bool tracking = false;
  std::uint64_t trackBudget = 0;
  std::vector<std::uint32_t> gpTaint;   // absolute arena slots
  std::vector<std::uint32_t> fpTaint;
  std::vector<std::uint32_t> prTaint;
  std::vector<std::uint64_t> memTaint;  // absolute byte addresses
  // Give-up bounds: past these the bookkeeping would cost more than the
  // cutoff saves, so tracking turns off and the run simply executes to its
  // natural end (still exact, just not shortcut).
  static constexpr std::size_t kMaxRegTaint = 64;
  static constexpr std::size_t kMaxMemTaint = 512;
  static constexpr std::uint64_t kTrackWindow = 4096;  // defs after inject

  explicit Interp(const DecodedProgram& program)
      : prog(program),
        memory(program.globalImage(), SimOptions{}.heapBytes),
        heapBytes(SimOptions{}.heapBytes),
        caches(program.cacheConfig()) {
    memory.enableWriteLog();
    addr.assign(prog.maxBlockInsns(), 0);
  }

  // Restores fresh-context state and arms the run with `opts`.
  void reset(const SimOptions& opts) {
    CASTED_CHECK(opts.faultPlan == nullptr || opts.defTrace == nullptr)
        << "SimOptions::defTrace must stay null in injection runs (the trace "
           "belongs to the golden profiling run)";
    options = &opts;
    memory.dropCheckpoint();
    caches.dropCheckpoint();
    if (opts.heapBytes != heapBytes) {
      memory = Memory(prog.globalImage(), opts.heapBytes);
      memory.enableWriteLog();
      heapBytes = opts.heapBytes;
    } else {
      memory.resetLogged(prog.globalImage());
    }
    caches.reset();
    stats = RunStats{};
    gpStack.clear();
    fpStack.clear();
    prStack.clear();
    std::fill(addr.begin(), addr.end(), 0);
    faultCursor = 0;
    defOrdinal = 0;
    nextFaultOrdinal =
        (opts.faultPlan != nullptr && !opts.faultPlan->points.empty())
            ? opts.faultPlan->points[0].ordinal
            : kNoFault;
    if (opts.defTrace != nullptr) {
      opts.defTrace->clear();
    }
    frames.clear();
    pauseAt = kNoFault;
    stepMode = false;
    started = false;
    pausedAtDef = false;
    finished = false;
    result = RunResult{};
    ++checkpointGen;  // outstanding checkpoints are now stale
    goldenFinal = nullptr;
    giveUpTracking();
    trackBudget = 0;
  }

  // Reads one register as raw bits; the marshalling used for call arguments
  // and returned values (identical to the reference's RawValue round trip).
  std::uint64_t readBits(const FrameBase& frame, const DecodedReg& reg) const {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        return static_cast<std::uint64_t>(gpStack[frame.gp + reg.slot]);
      case RegClass::kFp:
        return std::bit_cast<std::uint64_t>(fpStack[frame.fp + reg.slot]);
      case RegClass::kPr:
        return prStack[frame.pr + reg.slot];
    }
    CASTED_UNREACHABLE("bad RegClass");
  }

  void writeBits(const FrameBase& frame, const DecodedReg& reg,
                 std::uint64_t bits) {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        gpStack[frame.gp + reg.slot] = static_cast<std::int64_t>(bits);
        break;
      case RegClass::kFp:
        fpStack[frame.fp + reg.slot] = std::bit_cast<double>(bits);
        break;
      case RegClass::kPr:
        prStack[frame.pr + reg.slot] = bits != 0 ? 1 : 0;
        break;
    }
  }

  // Applies the pending fault point to one def of `target` (the op whose
  // defOrdinal just matched), then advances the plan cursor.
  void injectFault(const MicroOp& u, const FrameBase& frame) {
    const FaultPoint& point = options->faultPlan->points[faultCursor];
    ++faultCursor;
    nextFaultOrdinal = faultCursor < options->faultPlan->points.size()
                           ? options->faultPlan->points[faultCursor].ordinal
                           : kNoFault;
    DecodedReg target;
    if (u.op == Opcode::kCall) {
      target = prog.pool()[u.c + point.whichDef % u.defCount];
    } else {
      target = {u.defClass, u.def};
    }
    switch (static_cast<RegClass>(target.cls)) {
      case RegClass::kGp:
        gpStack[frame.gp + target.slot] ^=
            static_cast<std::int64_t>(1ULL << (point.bit & 63));
        break;
      case RegClass::kFp: {
        std::uint64_t bits =
            std::bit_cast<std::uint64_t>(fpStack[frame.fp + target.slot]);
        bits ^= 1ULL << (point.bit & 63);
        fpStack[frame.fp + target.slot] = std::bit_cast<double>(bits);
        break;
      }
      case RegClass::kPr:
        prStack[frame.pr + target.slot] ^= 1;
        break;
    }
    if (tracking) {
      // Seed the divergence: the flipped slot is the only state that differs
      // from the golden trajectory at this instant.
      setRegTaint(frame, target, true);
    }
  }

  // ---- Reconvergence taint tracking ----

  void giveUpTracking() {
    // Forfeits the cutoff for the rest of this run; execution stays exact.
    tracking = false;
    gpTaint.clear();
    fpTaint.clear();
    prTaint.clear();
    memTaint.clear();
  }

  static bool taintHas(const std::vector<std::uint32_t>& set,
                       std::uint32_t slot) {
    return std::find(set.begin(), set.end(), slot) != set.end();
  }

  void setTaint(std::vector<std::uint32_t>& set, std::uint32_t slot,
                bool on) {
    if (!tracking) {
      return;
    }
    const auto it = std::find(set.begin(), set.end(), slot);
    if (on) {
      if (it == set.end()) {
        if (set.size() >= kMaxRegTaint) {
          giveUpTracking();
          return;
        }
        set.push_back(slot);
      }
    } else if (it != set.end()) {
      *it = set.back();
      set.pop_back();
    }
  }

  bool regTaint(const FrameBase& frame, const DecodedReg& reg) const {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        return taintHas(gpTaint, frame.gp + reg.slot);
      case RegClass::kFp:
        return taintHas(fpTaint, frame.fp + reg.slot);
      case RegClass::kPr:
        return taintHas(prTaint, frame.pr + reg.slot);
    }
    CASTED_UNREACHABLE("bad RegClass");
  }

  void setRegTaint(const FrameBase& frame, const DecodedReg& reg, bool on) {
    switch (static_cast<RegClass>(reg.cls)) {
      case RegClass::kGp:
        setTaint(gpTaint, frame.gp + reg.slot, on);
        break;
      case RegClass::kFp:
        setTaint(fpTaint, frame.fp + reg.slot, on);
        break;
      case RegClass::kPr:
        setTaint(prTaint, frame.pr + reg.slot, on);
        break;
    }
  }

  bool memTainted(std::uint64_t address, std::uint32_t width) const {
    for (const std::uint64_t byte : memTaint) {
      if (byte - address < width) {
        return true;
      }
    }
    return false;
  }

  void setMemTaint(std::uint64_t address, std::uint32_t width, bool on) {
    for (std::uint32_t i = 0; i < width; ++i) {
      if (!tracking) {
        return;
      }
      const std::uint64_t byte = address + i;
      const auto it = std::find(memTaint.begin(), memTaint.end(), byte);
      if (on) {
        if (it == memTaint.end()) {
          if (memTaint.size() >= kMaxMemTaint) {
            giveUpTracking();
            return;
          }
          memTaint.push_back(byte);
        }
      } else if (it != memTaint.end()) {
        *it = memTaint.back();
        memTaint.pop_back();
      }
    }
  }

  // Erases every taint belonging to a popped frame (its slots are dead; the
  // golden run's slots at the same ordinals die identically).
  void dropFrameTaint(const FrameBase& base) {
    const auto eraseFrom = [](std::vector<std::uint32_t>& set,
                              std::uint32_t floor) {
      for (std::size_t i = 0; i < set.size();) {
        if (set[i] >= floor) {
          set[i] = set.back();
          set.pop_back();
        } else {
          ++i;
        }
      }
    };
    eraseFrom(gpTaint, base.gp);
    eraseFrom(fpTaint, base.fp);
    eraseFrom(prTaint, base.pr);
  }

  // Post-execution taint transfer for one op: a def becomes tainted iff any
  // input may differ from golden; clean stores scrub memory bytes; tainted
  // control (branch predicates) or tainted access addresses end tracking —
  // after either, execution points, cache state or touched bytes may drift
  // from the golden trajectory in ways these sets do not model.  Runs only
  // while `tracking`, after the op executed and before its def bookkeeping
  // (so a multi-point plan's later flip re-taints its target afterwards).
  void taintStep(const MicroOp& u, const FrameBase& f, std::uint32_t node) {
    switch (u.op) {
      case Opcode::kNop:
      case Opcode::kBr:
      case Opcode::kCheckG:   // compare-only: no def, no state change
      case Opcode::kCheckF:
      case Opcode::kCheckP:
      case Opcode::kTrapIf:
      case Opcode::kCall:  // args taint at pushFrame, defs at ret writeback
      case Opcode::kRet:   // writeback handled by the execute case
      case Opcode::kHalt:  // unwound before taint runs
        break;
      case Opcode::kMovImm:
        setTaint(gpTaint, f.gp + u.def, false);
        break;
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kNeg:
      case Opcode::kAbs:
      case Opcode::kAddImm:
      case Opcode::kMulImm:
      case Opcode::kAndImm:
      case Opcode::kShlImm:
      case Opcode::kShrImm:
      case Opcode::kSraImm:
        setTaint(gpTaint, f.gp + u.def, taintHas(gpTaint, f.gp + u.a));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kSra:
      case Opcode::kMin:
      case Opcode::kMax:
        setTaint(gpTaint, f.gp + u.def,
                 taintHas(gpTaint, f.gp + u.a) ||
                     taintHas(gpTaint, f.gp + u.b));
        break;
      case Opcode::kSelect:
        // Conservative: a tainted predicate may pick the other arm.
        setTaint(gpTaint, f.gp + u.def,
                 taintHas(prTaint, f.pr + u.a) ||
                     taintHas(gpTaint, f.gp + u.b) ||
                     taintHas(gpTaint, f.gp + u.c));
        break;
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
        setTaint(prTaint, f.pr + u.def,
                 taintHas(gpTaint, f.gp + u.a) ||
                     taintHas(gpTaint, f.gp + u.b));
        break;
      case Opcode::kCmpEqImm:
      case Opcode::kCmpNeImm:
      case Opcode::kCmpLtImm:
      case Opcode::kCmpLeImm:
      case Opcode::kCmpGtImm:
      case Opcode::kCmpGeImm:
        setTaint(prTaint, f.pr + u.def, taintHas(gpTaint, f.gp + u.a));
        break;
      case Opcode::kPMov:
      case Opcode::kPNot:
        setTaint(prTaint, f.pr + u.def, taintHas(prTaint, f.pr + u.a));
        break;
      case Opcode::kPAnd:
      case Opcode::kPOr:
      case Opcode::kPXor:
        setTaint(prTaint, f.pr + u.def,
                 taintHas(prTaint, f.pr + u.a) ||
                     taintHas(prTaint, f.pr + u.b));
        break;
      case Opcode::kPSetImm:
        setTaint(prTaint, f.pr + u.def, false);
        break;
      case Opcode::kFMovImm:
        setTaint(fpTaint, f.fp + u.def, false);
        break;
      case Opcode::kFMov:
      case Opcode::kFNeg:
      case Opcode::kFAbs:
      case Opcode::kFSqrt:
        setTaint(fpTaint, f.fp + u.def, taintHas(fpTaint, f.fp + u.a));
        break;
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kFMul:
      case Opcode::kFDiv:
      case Opcode::kFMin:
      case Opcode::kFMax:
        setTaint(fpTaint, f.fp + u.def,
                 taintHas(fpTaint, f.fp + u.a) ||
                     taintHas(fpTaint, f.fp + u.b));
        break;
      case Opcode::kFCmpEq:
      case Opcode::kFCmpLt:
      case Opcode::kFCmpLe:
      case Opcode::kFCmpNeBits:
        setTaint(prTaint, f.pr + u.def,
                 taintHas(fpTaint, f.fp + u.a) ||
                     taintHas(fpTaint, f.fp + u.b));
        break;
      case Opcode::kI2F:
        setTaint(fpTaint, f.fp + u.def, taintHas(gpTaint, f.gp + u.a));
        break;
      case Opcode::kF2I:
        setTaint(gpTaint, f.gp + u.def, taintHas(fpTaint, f.fp + u.a));
        break;
      case Opcode::kLoad:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();  // divergent address: cache state drifts
          break;
        }
        setTaint(gpTaint, f.gp + u.def, memTainted(addr[node], 8));
        break;
      case Opcode::kLoadB:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();
          break;
        }
        setTaint(gpTaint, f.gp + u.def, memTainted(addr[node], 1));
        break;
      case Opcode::kFLoad:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();
          break;
        }
        setTaint(fpTaint, f.fp + u.def, memTainted(addr[node], 8));
        break;
      case Opcode::kStore:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();
          break;
        }
        setMemTaint(addr[node], 8, taintHas(gpTaint, f.gp + u.b));
        break;
      case Opcode::kStoreB:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();
          break;
        }
        setMemTaint(addr[node], 1, taintHas(gpTaint, f.gp + u.b));
        break;
      case Opcode::kFStore:
        if (taintHas(gpTaint, f.gp + u.a)) {
          giveUpTracking();
          break;
        }
        setMemTaint(addr[node], 8, taintHas(fpTaint, f.fp + u.b));
        break;
      case Opcode::kBrCond:
        if (taintHas(prTaint, f.pr + u.a)) {
          giveUpTracking();  // control may diverge from golden
        }
        break;
      case Opcode::kOpcodeCount:
        CASTED_UNREACHABLE("bad opcode");
    }
  }

  void chargeBlockTiming(const DecodedFunction& fn, const DecodedBlock& blk) {
    std::uint64_t stalls = 0;
    const std::uint32_t* plan = fn.memPlan.data() + blk.planFirst;
    const std::uint32_t* bundles = fn.bundleSizes.data() + blk.bundleFirst;
    const std::uint32_t baseLatency = prog.memBaseLatency();
    std::uint32_t cursor = 0;
    for (std::uint32_t bundle = 0; bundle < blk.bundleCount; ++bundle) {
      // All memory ops issued in the same cycle overlap their misses; the
      // bundle pays only the worst extra latency.
      std::uint32_t worstExtra = 0;
      for (std::uint32_t n = 0; n < bundles[bundle]; ++n) {
        const std::uint32_t latency = caches.access(addr[plan[cursor]]);
        if (latency > baseLatency) {
          worstExtra = std::max(worstExtra, latency - baseLatency);
        }
        ++cursor;
      }
      stalls += worstExtra;
    }
    stats.cycles += blk.schedLength + stalls;
    stats.stallCycles += stalls;
    ++stats.blockExecutions;
  }

  // Pushes a frame for `funcIdx` and marshals its arguments from the caller
  // frame via the pool list at [argPool, argPool+argCount); returned values
  // will be written back to the caller's call-def list at retPool — or
  // discarded for the entry invocation (retCount == kDiscardReturns).
  // Ordering matches the recursive interpreter this replaced bit for bit:
  // depth check, argument-count check, arena push, argument copy, then the
  // timeout check that used to sit at the head of the callee's run loop.
  void pushFrame(std::uint32_t funcIdx, std::uint32_t argPool,
                 std::uint32_t argCount, FrameBase caller,
                 std::uint32_t retPool, std::uint32_t retCount) {
    if (frames.size() > options->maxCallDepth) {
      throw TrapError{TrapKind::kStackOverflow, 0};
    }
    const DecodedFunction& fn = prog.functions()[funcIdx];
    CASTED_CHECK(argCount == fn.params.size())
        << "bad argument count calling @" << fn.name;

    InterpFrame f;
    f.func = funcIdx;
    f.retPool = retPool;
    f.retCount = retCount;
    f.base = FrameBase{static_cast<std::uint32_t>(gpStack.size()),
                       static_cast<std::uint32_t>(fpStack.size()),
                       static_cast<std::uint32_t>(prStack.size())};
    gpStack.resize(f.base.gp + fn.regCount[0], 0);
    fpStack.resize(f.base.fp + fn.regCount[1], 0.0);
    prStack.resize(f.base.pr + fn.regCount[2], 0);
    for (std::uint32_t i = 0; i < argCount; ++i) {
      writeBits(f.base, fn.params[i],
                readBits(caller, prog.pool()[argPool + i]));
    }
    if (tracking) {
      // Fresh slots are zero in both trajectories; arguments inherit the
      // caller's taint.
      for (std::uint32_t i = 0; i < argCount; ++i) {
        setRegTaint(f.base, fn.params[i],
                    regTaint(caller, prog.pool()[argPool + i]));
      }
    }
    frames.push_back(f);
    if (stats.cycles > options->maxCycles) {
      throw TimeoutSignal{};
    }
  }

  // Def bookkeeping, shared by every def-producing op including calls
  // (invoked after the callee's returns were written back).  The first half
  // (counting + trace) runs before a potential runToDef pause; finishDef is
  // the post-pause half.
  Flow noteDef(const MicroOp& u, const InterpFrame& f, std::uint32_t node) {
    ++stats.dynamicDefInsns;
    if (options->defTrace != nullptr) {
      options->defTrace->push_back({f.func, f.block, node});
    }
    if (defOrdinal == pauseAt) {
      return Flow::kPause;
    }
    return finishDef(u, f.base);
  }

  // Fault check, ordinal advance, and the reconvergence-cutoff test: empty
  // taint sets with no flips pending prove every register, memory byte,
  // cache way and statistic equals the golden trajectory at this ordinal,
  // so the remaining execution is exactly the golden suffix.
  Flow finishDef(const MicroOp& u, const FrameBase& base) {
    if (defOrdinal == nextFaultOrdinal) {
      injectFault(u, base);
    }
    ++defOrdinal;
    if (tracking) {
      if (--trackBudget == 0) {
        giveUpTracking();
      } else if (nextFaultOrdinal == kNoFault && gpTaint.empty() &&
                 fpTaint.empty() && prTaint.empty() && memTaint.empty()) {
        return Flow::kCutoff;
      }
    }
    return Flow::kContinue;
  }

  // The core loop: executes frames.back() until the entry function returns,
  // a runToDef pause ordinal is reached, or the cutoff fires.  Signals
  // (halt/detect/trap/timeout) unwind as exceptions into drive().
  Flow exec() {
    while (true) {
      InterpFrame& f = frames.back();
      const DecodedFunction& fn = prog.functions()[f.func];
      const DecodedBlock& blk = fn.blocks[f.block];
      const MicroOp* ops = fn.ops.data() + blk.firstOp;
      // Raw pointers are safe within the op loop: the arenas only grow at a
      // call, and a call breaks out to re-derive everything (including `f`,
      // which frames.push_back invalidates).
      std::int64_t* gp = gpStack.data() + f.base.gp;
      double* fp = fpStack.data() + f.base.fp;
      std::uint8_t* pr = prStack.data() + f.base.pr;
      std::uint32_t next = f.nextBlock;
      bool returned = f.returned;
      bool pushed = false;
      std::uint32_t node = f.node;
      for (; node < blk.opCount; ++node) {
        const MicroOp& u = ops[node];
        ++stats.dynamicInsns;
        switch (u.op) {
          case Opcode::kNop:
            break;
          case Opcode::kMovImm:
            gp[u.def] = u.imm;
            break;
          case Opcode::kMov:
            gp[u.def] = gp[u.a];
            break;
          case Opcode::kAdd:
            gp[u.def] = wrapAdd(gp[u.a], gp[u.b]);
            break;
          case Opcode::kSub:
            gp[u.def] = wrapSub(gp[u.a], gp[u.b]);
            break;
          case Opcode::kMul:
            gp[u.def] = wrapMul(gp[u.a], gp[u.b]);
            break;
          case Opcode::kDiv: {
            const std::int64_t divisor = gp[u.b];
            if (divisor == 0) {
              throw TrapError{TrapKind::kDivByZero, 0};
            }
            const std::int64_t dividend = gp[u.a];
            if (dividend == std::numeric_limits<std::int64_t>::min() &&
                divisor == -1) {
              gp[u.def] = dividend;  // hardware-defined wrap
            } else {
              gp[u.def] = dividend / divisor;
            }
            break;
          }
          case Opcode::kRem: {
            const std::int64_t divisor = gp[u.b];
            if (divisor == 0) {
              throw TrapError{TrapKind::kDivByZero, 0};
            }
            const std::int64_t dividend = gp[u.a];
            if (dividend == std::numeric_limits<std::int64_t>::min() &&
                divisor == -1) {
              gp[u.def] = 0;
            } else {
              gp[u.def] = dividend % divisor;
            }
            break;
          }
          case Opcode::kAnd:
            gp[u.def] = gp[u.a] & gp[u.b];
            break;
          case Opcode::kOr:
            gp[u.def] = gp[u.a] | gp[u.b];
            break;
          case Opcode::kXor:
            gp[u.def] = gp[u.a] ^ gp[u.b];
            break;
          case Opcode::kShl:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) << (gp[u.b] & 63));
            break;
          case Opcode::kShr:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) >> (gp[u.b] & 63));
            break;
          case Opcode::kSra:
            gp[u.def] = gp[u.a] >> (gp[u.b] & 63);
            break;
          case Opcode::kMin:
            gp[u.def] = std::min(gp[u.a], gp[u.b]);
            break;
          case Opcode::kMax:
            gp[u.def] = std::max(gp[u.a], gp[u.b]);
            break;
          case Opcode::kAddImm:
            gp[u.def] = wrapAdd(gp[u.a], u.imm);
            break;
          case Opcode::kMulImm:
            gp[u.def] = wrapMul(gp[u.a], u.imm);
            break;
          case Opcode::kAndImm:
            gp[u.def] = gp[u.a] & u.imm;
            break;
          case Opcode::kShlImm:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) << (u.imm & 63));
            break;
          case Opcode::kShrImm:
            gp[u.def] = static_cast<std::int64_t>(
                static_cast<std::uint64_t>(gp[u.a]) >> (u.imm & 63));
            break;
          case Opcode::kSraImm:
            gp[u.def] = gp[u.a] >> (u.imm & 63);
            break;
          case Opcode::kNeg:
            gp[u.def] = wrapNeg(gp[u.a]);
            break;
          case Opcode::kAbs: {
            const std::int64_t value = gp[u.a];
            gp[u.def] = value < 0 ? wrapNeg(value) : value;
            break;
          }
          case Opcode::kNot:
            gp[u.def] = ~gp[u.a];
            break;
          case Opcode::kSelect:
            gp[u.def] = pr[u.a] != 0 ? gp[u.b] : gp[u.c];
            break;
          case Opcode::kCmpEq:
            pr[u.def] = gp[u.a] == gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpNe:
            pr[u.def] = gp[u.a] != gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpLt:
            pr[u.def] = gp[u.a] < gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpLe:
            pr[u.def] = gp[u.a] <= gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpGt:
            pr[u.def] = gp[u.a] > gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpGe:
            pr[u.def] = gp[u.a] >= gp[u.b] ? 1 : 0;
            break;
          case Opcode::kCmpEqImm:
            pr[u.def] = gp[u.a] == u.imm ? 1 : 0;
            break;
          case Opcode::kCmpNeImm:
            pr[u.def] = gp[u.a] != u.imm ? 1 : 0;
            break;
          case Opcode::kCmpLtImm:
            pr[u.def] = gp[u.a] < u.imm ? 1 : 0;
            break;
          case Opcode::kCmpLeImm:
            pr[u.def] = gp[u.a] <= u.imm ? 1 : 0;
            break;
          case Opcode::kCmpGtImm:
            pr[u.def] = gp[u.a] > u.imm ? 1 : 0;
            break;
          case Opcode::kCmpGeImm:
            pr[u.def] = gp[u.a] >= u.imm ? 1 : 0;
            break;
          case Opcode::kPMov:
            pr[u.def] = pr[u.a];
            break;
          case Opcode::kPNot:
            pr[u.def] = pr[u.a] != 0 ? 0 : 1;
            break;
          case Opcode::kPAnd:
            pr[u.def] = (pr[u.a] != 0 && pr[u.b] != 0) ? 1 : 0;
            break;
          case Opcode::kPOr:
            pr[u.def] = (pr[u.a] != 0 || pr[u.b] != 0) ? 1 : 0;
            break;
          case Opcode::kPXor:
            pr[u.def] = ((pr[u.a] != 0) != (pr[u.b] != 0)) ? 1 : 0;
            break;
          case Opcode::kPSetImm:
            pr[u.def] = u.imm != 0 ? 1 : 0;
            break;
          case Opcode::kFMovImm:
            fp[u.def] = std::bit_cast<double>(u.imm);
            break;
          case Opcode::kFMov:
            fp[u.def] = fp[u.a];
            break;
          case Opcode::kFAdd:
            fp[u.def] = fp[u.a] + fp[u.b];
            break;
          case Opcode::kFSub:
            fp[u.def] = fp[u.a] - fp[u.b];
            break;
          case Opcode::kFMul:
            fp[u.def] = fp[u.a] * fp[u.b];
            break;
          case Opcode::kFDiv:
            fp[u.def] = fp[u.a] / fp[u.b];
            break;
          case Opcode::kFMin:
            fp[u.def] = std::fmin(fp[u.a], fp[u.b]);
            break;
          case Opcode::kFMax:
            fp[u.def] = std::fmax(fp[u.a], fp[u.b]);
            break;
          case Opcode::kFNeg:
            fp[u.def] = -fp[u.a];
            break;
          case Opcode::kFAbs:
            fp[u.def] = std::fabs(fp[u.a]);
            break;
          case Opcode::kFSqrt:
            fp[u.def] = std::sqrt(fp[u.a]);
            break;
          case Opcode::kFCmpEq:
            pr[u.def] = fp[u.a] == fp[u.b] ? 1 : 0;
            break;
          case Opcode::kFCmpLt:
            pr[u.def] = fp[u.a] < fp[u.b] ? 1 : 0;
            break;
          case Opcode::kFCmpLe:
            pr[u.def] = fp[u.a] <= fp[u.b] ? 1 : 0;
            break;
          case Opcode::kI2F:
            fp[u.def] = static_cast<double>(gp[u.a]);
            break;
          case Opcode::kF2I: {
            const double value = fp[u.a];
            if (!std::isfinite(value) || value >= 9.2233720368547758e18 ||
                value < -9.2233720368547758e18) {
              throw TrapError{TrapKind::kBadConversion, 0};
            }
            gp[u.def] = static_cast<std::int64_t>(value);
            break;
          }
          case Opcode::kLoad: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            gp[u.def] = static_cast<std::int64_t>(memory.readU64(address));
            break;
          }
          case Opcode::kLoadB: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            gp[u.def] = memory.readU8(address);
            break;
          }
          case Opcode::kStore: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeU64(address, static_cast<std::uint64_t>(gp[u.b]));
            break;
          }
          case Opcode::kStoreB: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeU8(address, static_cast<std::uint8_t>(gp[u.b]));
            break;
          }
          case Opcode::kFLoad: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            fp[u.def] = memory.readF64(address);
            break;
          }
          case Opcode::kFStore: {
            const std::uint64_t address =
                static_cast<std::uint64_t>(gp[u.a]) +
                static_cast<std::uint64_t>(u.imm);
            addr[node] = address;
            ++stats.memAccesses;
            memory.writeF64(address, fp[u.b]);
            break;
          }
          case Opcode::kCheckG:
            if (gp[u.a] != gp[u.b]) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kCheckF:
            // Bit-pattern compare: NaN-safe, sensitive to every flipped bit.
            if (std::bit_cast<std::uint64_t>(fp[u.a]) !=
                std::bit_cast<std::uint64_t>(fp[u.b])) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kCheckP:
            if (pr[u.a] != pr[u.b]) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kFCmpNeBits:
            pr[u.def] = std::bit_cast<std::uint64_t>(fp[u.a]) !=
                                std::bit_cast<std::uint64_t>(fp[u.b])
                            ? 1
                            : 0;
            break;
          case Opcode::kTrapIf:
            if (pr[u.a] != 0) {
              throw DetectedSignal{};
            }
            break;
          case Opcode::kBr:
            next = u.t1;
            break;
          case Opcode::kBrCond:
            next = pr[u.a] != 0 ? u.t1 : u.t2;
            break;
          case Opcode::kCall: {
            // Flush the cursor and push the callee; the call op's own def
            // bookkeeping runs when the callee's frame pops.
            f.node = node;
            f.nextBlock = next;
            f.returned = returned;
            pushFrame(u.t1, u.a, u.b, f.base, u.c, u.defCount);
            pushed = true;  // `f` is dangling now (frames reallocated)
            break;
          }
          case Opcode::kRet: {
            if (f.retCount != kDiscardReturns) {
              CASTED_CHECK(u.b == f.retCount)
                  << "@" << fn.name << " returned " << u.b
                  << " values, caller expects " << f.retCount;
              const FrameBase caller = frames[frames.size() - 2].base;
              for (std::uint32_t i = 0; i < u.b; ++i) {
                writeBits(caller, prog.pool()[f.retPool + i],
                          readBits(f.base, prog.pool()[u.a + i]));
              }
              if (tracking) {
                for (std::uint32_t i = 0; i < u.b; ++i) {
                  setRegTaint(caller, prog.pool()[f.retPool + i],
                              regTaint(f.base, prog.pool()[u.a + i]));
                }
              }
            }
            returned = true;
            break;
          }
          case Opcode::kHalt:
            chargeBlockTiming(fn, blk);
            throw HaltSignal{gp[u.a]};
          case Opcode::kOpcodeCount:
            CASTED_UNREACHABLE("bad opcode");
        }
        if (pushed) {
          break;  // enter the callee frame
        }
        if (tracking) {
          taintStep(u, f.base, node);
        }
        if (u.defCount != 0) {
          const Flow flow = noteDef(u, f, node);
          if (flow != Flow::kContinue) {
            f.node = node;
            f.nextBlock = next;
            f.returned = returned;
            return flow;
          }
        }
      }
      if (pushed) {
        continue;  // run the callee; the call op completes at its pop
      }
      chargeBlockTiming(fn, blk);
      if (returned) {
        // Pop the frame, then complete the caller's pending call op (its
        // defs were written back by the kRet above).
        const FrameBase base = f.base;
        gpStack.resize(base.gp);
        fpStack.resize(base.fp);
        prStack.resize(base.pr);
        if (tracking) {
          dropFrameTaint(base);
        }
        frames.pop_back();
        if (frames.empty()) {
          return Flow::kFinished;  // the entry function returned
        }
        InterpFrame& caller = frames.back();
        const DecodedFunction& cfn = prog.functions()[caller.func];
        const MicroOp& call =
            cfn.ops[cfn.blocks[caller.block].firstOp + caller.node];
        if (call.defCount != 0) {
          const Flow flow = noteDef(call, caller, caller.node);
          if (flow != Flow::kContinue) {
            return flow;  // caller.node still points at the call op
          }
        }
        ++caller.node;
        continue;
      }
      CASTED_CHECK(next != ir::kInvalidBlock)
          << "block bb" << f.block << " of @" << fn.name
          << " fell through without a branch";
      f.block = next;
      f.node = 0;
      f.nextBlock = ir::kInvalidBlock;
      f.returned = false;
      if (stats.cycles > options->maxCycles) {
        throw TimeoutSignal{};
      }
    }
  }

  // Completes the def bookkeeping a pause interrupted — the paused op's
  // counting and trace already ran, so only the fault check / ordinal
  // advance / cutoff test remain — then steps past the op.
  Flow finishPausedDef() {
    InterpFrame& f = frames.back();
    const DecodedFunction& fn = prog.functions()[f.func];
    const MicroOp& u = fn.ops[fn.blocks[f.block].firstOp + f.node];
    const Flow flow = finishDef(u, f.base);
    if (flow == Flow::kContinue) {
      ++f.node;
    }
    return flow;
  }

  // Runs or resumes until a pause, the cutoff, or completion.  Returns true
  // while paused at a def; otherwise `result` is final and `finished` set.
  bool drive() {
    CASTED_CHECK(!finished) << "run already complete";
    try {
      if (!started) {
        started = true;
        pushFrame(prog.entryFunction(), 0, 0, FrameBase{}, 0,
                  kDiscardReturns);
      }
      Flow flow = Flow::kContinue;
      if (pausedAtDef) {
        pausedAtDef = false;
        flow = finishPausedDef();
      }
      if (flow == Flow::kContinue) {
        flow = exec();
      }
      if (flow == Flow::kPause) {
        pausedAtDef = true;
        return true;
      }
      if (flow == Flow::kCutoff) {
        // Provably bit-identical to the fault-free trajectory with no flips
        // pending: the rest of the run IS the golden suffix, so its final
        // result (stats, output, exit state) is this run's result verbatim.
        trace::counterAdd("sim.cutoff.hits");
        result = *goldenFinal;
        finished = true;
        return false;
      }
      // The entry function returned without halting: clean exit, code 0.
      result = RunResult{};
      result.exit = ExitKind::kHalted;
      result.exitCode = 0;
    } catch (const HaltSignal& halt) {
      result = RunResult{};
      result.exit = ExitKind::kHalted;
      result.exitCode = halt.exitCode;
    } catch (const DetectedSignal&) {
      result = RunResult{};
      result.exit = ExitKind::kDetected;
    } catch (const TrapError& trap) {
      result = RunResult{};
      result.exit = ExitKind::kException;
      result.trap = trap.kind;
    } catch (const TimeoutSignal&) {
      result = RunResult{};
      result.exit = ExitKind::kTimeout;
    }
    for (int level = 0; level < 3; ++level) {
      stats.cacheLevel[level] = caches.levelStats(level);
    }
    stats.memoryAccesses = caches.memoryAccesses();
    result.stats = stats;
    for (const ir::GlobalSymbol& sym : prog.symbols()) {
      if (sym.name == options->outputSymbol) {
        result.output = memory.snapshot(sym.address, sym.size);
        break;
      }
    }
    finished = true;
    return false;
  }

  // Whole-run execution; reset() must have armed `options` first.
  RunResult run() {
    pauseAt = kNoFault;
    const bool paused = drive();
    CASTED_CHECK(!paused);
    return result;
  }

  // ---- Stepwise API (see DecodedRunner) ----

  void begin(const SimOptions& opts) {
    CASTED_CHECK(opts.faultPlan == nullptr)
        << "stepwise runs inject via injectAtPause, not SimOptions";
    CASTED_CHECK(opts.defTrace == nullptr)
        << "a def trace cannot be rewound across checkpoint restores";
    stepOptions = opts;
    reset(stepOptions);
    stepMode = true;
  }

  bool runToDef(std::uint64_t ordinal) {
    CASTED_CHECK(stepMode) << "runToDef requires begin()";
    CASTED_CHECK(!finished) << "run already complete";
    CASTED_CHECK(pausedAtDef ? ordinal > defOrdinal : ordinal >= defOrdinal)
        << "cannot rewind to def " << ordinal << " (at " << defOrdinal
        << "); restore a checkpoint instead";
    pauseAt = ordinal;
    const bool paused = drive();
    pauseAt = kNoFault;
    return paused;
  }

  void saveCheckpoint(ArchCheckpoint::Data& d) {
    CASTED_CHECK(stepMode && pausedAtDef)
        << "checkpoints are taken while paused at a def";
    d.gp = gpStack;
    d.fp = fpStack;
    d.pr = prStack;
    d.addr = addr;
    d.frames = frames;
    d.stats = stats;
    d.defOrdinal = defOrdinal;
    d.faultCursor = faultCursor;
    d.nextFaultOrdinal = nextFaultOrdinal;
    d.faultPlan = stepOptions.faultPlan;
    d.generation = ++checkpointGen;
    d.owner = this;
    memory.setCheckpoint();
    caches.setCheckpoint();
  }

  void restoreCheckpoint(const ArchCheckpoint::Data& d) {
    CASTED_CHECK(stepMode) << "restore requires begin()";
    CASTED_CHECK(d.owner == this && d.generation == checkpointGen)
        << "checkpoint is stale or belongs to another runner";
    memory.rewindToCheckpoint();
    caches.rewindToCheckpoint();
    gpStack = d.gp;
    fpStack = d.fp;
    prStack = d.pr;
    addr = d.addr;
    frames = d.frames;
    stats = d.stats;
    defOrdinal = d.defOrdinal;
    faultCursor = d.faultCursor;
    nextFaultOrdinal = d.nextFaultOrdinal;
    stepOptions.faultPlan = d.faultPlan;
    pausedAtDef = true;
    finished = false;
    giveUpTracking();
    trackBudget = 0;
  }

  void injectAtPause(const FaultPlan& plan) {
    CASTED_CHECK(stepMode && pausedAtDef)
        << "injection requires a def pause";
    CASTED_CHECK(!plan.points.empty() &&
                 plan.points[0].ordinal == defOrdinal)
        << "plan must start at the paused ordinal";
    stepOptions.faultPlan = &plan;
    faultCursor = 0;
    nextFaultOrdinal = plan.points[0].ordinal;
    if (goldenFinal != nullptr) {
      tracking = true;
      trackBudget = kTrackWindow;
      gpTaint.clear();
      fpTaint.clear();
      prTaint.clear();
      memTaint.clear();
    }
    // Apply point 0 to the op we are paused on (injectFault advances the
    // cursor to any later points, which fire during finish()).
    InterpFrame& f = frames.back();
    const DecodedFunction& fn = prog.functions()[f.func];
    const MicroOp& u = fn.ops[fn.blocks[f.block].firstOp + f.node];
    injectFault(u, f.base);
  }

  RunResult finishRun() {
    CASTED_CHECK(stepMode) << "finish requires begin()";
    if (!finished) {
      pauseAt = kNoFault;
      const bool paused = drive();
      CASTED_CHECK(!paused);
    }
    return result;
  }
};

}  // namespace

struct DecodedRunner::Impl {
  Interp interp;
  explicit Impl(const DecodedProgram& program) : interp(program) {}
};

DecodedRunner::DecodedRunner(const DecodedProgram& program)
    : impl_(std::make_unique<Impl>(program)) {}

DecodedRunner::~DecodedRunner() = default;

RunResult DecodedRunner::run(const SimOptions& options) {
  impl_->interp.reset(options);
  RunResult result = impl_->interp.run();
  traceRunStats("decoded", result.stats);
  return result;
}

void DecodedRunner::begin(const SimOptions& options) {
  impl_->interp.begin(options);
}

bool DecodedRunner::runToDef(std::uint64_t ordinal) {
  return impl_->interp.runToDef(ordinal);
}

std::uint64_t DecodedRunner::pausedOrdinal() const {
  CASTED_CHECK(impl_->interp.pausedAtDef) << "runner is not paused";
  return impl_->interp.defOrdinal;
}

void DecodedRunner::saveCheckpoint(ArchCheckpoint& out) {
  if (out.data_ == nullptr) {
    out.data_ = std::make_unique<ArchCheckpoint::Data>();
  }
  trace::counterAdd("sim.checkpoint.saves");
  impl_->interp.saveCheckpoint(*out.data_);
}

void DecodedRunner::restoreCheckpoint(const ArchCheckpoint& checkpoint) {
  CASTED_CHECK(checkpoint.data_ != nullptr) << "checkpoint was never saved";
  trace::counterAdd("sim.checkpoint.restores");
  impl_->interp.restoreCheckpoint(*checkpoint.data_);
}

void DecodedRunner::setCutoffReference(const RunResult* golden) {
  impl_->interp.goldenFinal = golden;
}

void DecodedRunner::injectAtPause(const FaultPlan& plan) {
  impl_->interp.injectAtPause(plan);
}

RunResult DecodedRunner::finish() {
  return impl_->interp.finishRun();
}

RunResult runDecoded(const DecodedProgram& program, const SimOptions& options) {
  Interp engine(program);
  engine.reset(options);
  RunResult result = engine.run();
  traceRunStats("decoded", result.stats);
  return result;
}

}  // namespace casted::sim
