// Per-basic-block data-flow graph.
//
// This is the structure both algorithms of the paper walk: the
// ErrorDetectionPass's output is analysed through it, BUG (Algorithm 2)
// traverses it "in a topological order, giving preference to the
// instructions in the critical path", and the list scheduler consumes the
// same edges.  Edges only point forward in program order, so program order
// is a valid topological order.
//
// Edge kinds:
//   kData    RAW through a register; latency = producer latency.
//   kAnti    WAR; latency 0 (issue-order constraint).
//   kOutput  WAW; latency keeps the write times ordered.
//   kMemory  load/store ordering (after static disambiguation by base
//            register + offset range).
//   kBarrier call ordering against memory ops and other calls.
//   kGuard   CHECK -> guarded non-replicated instruction (Algorithm 1: the
//            check must complete before the store/branch/call it protects).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine_config.h"
#include "ir/function.h"

namespace casted::dfg {

enum class DepKind : std::uint8_t {
  kData,
  kAnti,
  kOutput,
  kMemory,
  kBarrier,
  kGuard,
};

const char* depKindName(DepKind kind);

struct Edge {
  std::uint32_t from = 0;  // node index (position in block)
  std::uint32_t to = 0;
  DepKind kind = DepKind::kData;
  std::uint32_t latency = 0;
};

class DataFlowGraph {
 public:
  // Builds the graph for `block` using `config` latencies.
  DataFlowGraph(const ir::BasicBlock& block,
                const arch::MachineConfig& config);

  std::size_t size() const { return insns_->size(); }
  const ir::Instruction& insn(std::uint32_t node) const {
    return (*insns_)[node];
  }

  const std::vector<Edge>& preds(std::uint32_t node) const {
    return preds_[node];
  }
  const std::vector<Edge>& succs(std::uint32_t node) const {
    return succs_[node];
  }

  // Longest-path distance (in cycles) from `node` to the end of the block,
  // inclusive of the node's own latency — the list-scheduling priority.
  std::uint32_t height(std::uint32_t node) const { return heights_[node]; }

  // Critical-path length of the whole block (max height).
  std::uint32_t criticalPathLength() const;

  // Node indices sorted by decreasing height; ties resolved by program
  // order.  This is both BUG's visit preference and the scheduler's ready-
  // list priority.
  std::vector<std::uint32_t> priorityOrder() const;

  std::size_t edgeCount() const { return edgeCount_; }

 private:
  void addEdge(std::uint32_t from, std::uint32_t to, DepKind kind,
               std::uint32_t latency);
  void buildEdges(const arch::MachineConfig& config);
  void computeHeights();

  const std::vector<ir::Instruction>* insns_;
  std::vector<std::vector<Edge>> preds_;
  std::vector<std::vector<Edge>> succs_;
  std::vector<std::uint32_t> heights_;
  std::size_t edgeCount_ = 0;
};

}  // namespace casted::dfg
