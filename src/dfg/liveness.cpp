#include "dfg/liveness.h"

#include <algorithm>

#include "support/check.h"

namespace casted::dfg {

LivenessInfo computeLiveness(const ir::Function& fn) {
  const std::size_t blocks = fn.blockCount();
  LivenessInfo info;
  info.liveIn.resize(blocks);
  info.liveOut.resize(blocks);

  // Per-block use (upward-exposed) and def sets.
  std::vector<std::unordered_set<ir::Reg>> uses(blocks);
  std::vector<std::unordered_set<ir::Reg>> defs(blocks);
  for (ir::BlockId b = 0; b < blocks; ++b) {
    for (const ir::Instruction& insn : fn.block(b).insns()) {
      for (const ir::Reg& use : insn.uses) {
        if (!defs[b].contains(use)) {
          uses[b].insert(use);
        }
      }
      for (const ir::Reg& def : insn.defs) {
        defs[b].insert(def);
      }
    }
  }

  // Backward fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ir::BlockId b = blocks; b-- > 0;) {
      std::unordered_set<ir::Reg> out;
      for (ir::BlockId succ : fn.block(b).successors()) {
        for (const ir::Reg& reg : info.liveIn[succ]) {
          out.insert(reg);
        }
      }
      std::unordered_set<ir::Reg> in = uses[b];
      for (const ir::Reg& reg : out) {
        if (!defs[b].contains(reg)) {
          in.insert(reg);
        }
      }
      if (out != info.liveOut[b] || in != info.liveIn[b]) {
        info.liveOut[b] = std::move(out);
        info.liveIn[b] = std::move(in);
        changed = true;
      }
    }
  }

  // Pressure: walk each block backwards from live-out.
  for (ir::BlockId b = 0; b < blocks; ++b) {
    std::unordered_set<ir::Reg> live = info.liveOut[b];
    auto recordPressure = [&] {
      std::array<std::uint32_t, 3> counts = {0, 0, 0};
      for (const ir::Reg& reg : live) {
        ++counts[static_cast<int>(reg.cls)];
      }
      for (int c = 0; c < 3; ++c) {
        info.maxPressure[c] = std::max(info.maxPressure[c], counts[c]);
      }
    };
    recordPressure();
    const auto& insns = fn.block(b).insns();
    for (std::size_t i = insns.size(); i-- > 0;) {
      const ir::Instruction& insn = insns[i];
      for (const ir::Reg& def : insn.defs) {
        live.erase(def);
      }
      for (const ir::Reg& use : insn.uses) {
        live.insert(use);
      }
      recordPressure();
    }
  }
  return info;
}

std::array<std::uint32_t, 3> maxPressure(const ir::Program& program) {
  std::array<std::uint32_t, 3> worst = {0, 0, 0};
  for (ir::FuncId f = 0; f < program.functionCount(); ++f) {
    const LivenessInfo info = computeLiveness(program.function(f));
    for (int c = 0; c < 3; ++c) {
      worst[c] = std::max(worst[c], info.maxPressure[c]);
    }
  }
  return worst;
}

}  // namespace casted::dfg
