// Register liveness analysis.
//
// Classic backward may-liveness over the CFG.  Used by dead-code
// elimination, by the register-pressure report (the paper attributes part of
// the SCED slowdown variation to the extra spilling the duplicated registers
// cause — §IV-B1), and by the spill-inserter extension.
//
// Lives next to the DFG because both are *analyses* of the IR: the
// pm::AnalysisManager caches them per function below the pass layer, so a
// chain of passes that does not mutate the IR shares one computation.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ir/function.h"

namespace casted::dfg {

struct LivenessInfo {
  // Indexed by block id.
  std::vector<std::unordered_set<ir::Reg>> liveIn;
  std::vector<std::unordered_set<ir::Reg>> liveOut;

  // Maximum number of simultaneously live registers of each class at any
  // program point, indexed by RegClass.
  std::array<std::uint32_t, 3> maxPressure = {0, 0, 0};

  bool isLiveOut(ir::BlockId block, ir::Reg reg) const {
    return liveOut[block].contains(reg);
  }
};

// Computes liveness for `fn`.
LivenessInfo computeLiveness(const ir::Function& fn);

// Register-pressure summary for a whole program: the worst per-class
// pressure over all functions.
std::array<std::uint32_t, 3> maxPressure(const ir::Program& program);

}  // namespace casted::dfg
