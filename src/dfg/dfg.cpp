#include "dfg/dfg.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "support/check.h"

namespace casted::dfg {
namespace {

using ir::Instruction;
using ir::Opcode;
using ir::Reg;

// Access width in bytes of a memory instruction.
std::uint32_t accessWidth(Opcode op) {
  switch (op) {
    case Opcode::kLoadB:
    case Opcode::kStoreB:
      return 1;
    default:
      return 8;
  }
}

// Identity of a memory op's base address value: register plus its def
// version at the point of the access.  Two accesses with the same base value
// and disjoint [offset, offset+width) ranges cannot alias.
struct BaseKey {
  Reg reg;
  std::uint32_t version = 0;

  friend bool operator==(const BaseKey& a, const BaseKey& b) {
    return a.reg == b.reg && a.version == b.version;
  }
};

struct MemRef {
  std::uint32_t node = 0;
  bool isStore = false;
  BaseKey base;
  std::int64_t offset = 0;
  std::uint32_t width = 0;
};

bool mayAlias(const MemRef& a, const MemRef& b) {
  if (a.base == b.base) {
    // Same base value: alias only if the byte ranges overlap.
    return a.offset < b.offset + static_cast<std::int64_t>(b.width) &&
           b.offset < a.offset + static_cast<std::int64_t>(a.width);
  }
  return true;  // different/unknown bases: conservative
}

}  // namespace

const char* depKindName(DepKind kind) {
  switch (kind) {
    case DepKind::kData:
      return "data";
    case DepKind::kAnti:
      return "anti";
    case DepKind::kOutput:
      return "output";
    case DepKind::kMemory:
      return "memory";
    case DepKind::kBarrier:
      return "barrier";
    case DepKind::kGuard:
      return "guard";
  }
  CASTED_UNREACHABLE("bad DepKind");
}

DataFlowGraph::DataFlowGraph(const ir::BasicBlock& block,
                             const arch::MachineConfig& config)
    : insns_(&block.insns()),
      preds_(insns_->size()),
      succs_(insns_->size()),
      heights_(insns_->size(), 0) {
  buildEdges(config);
  computeHeights();
}

void DataFlowGraph::addEdge(std::uint32_t from, std::uint32_t to,
                            DepKind kind, std::uint32_t latency) {
  CASTED_CHECK(from < to) << "DFG edges must point forward (" << from
                          << " -> " << to << ")";
  // Drop exact duplicates with lower or equal latency.
  for (Edge& edge : succs_[from]) {
    if (edge.to == to) {
      if (latency > edge.latency) {
        edge.latency = latency;
        for (Edge& pred : preds_[to]) {
          if (pred.from == from) {
            pred.latency = latency;
          }
        }
      }
      return;
    }
  }
  succs_[from].push_back({from, to, kind, latency});
  preds_[to].push_back({from, to, kind, latency});
  ++edgeCount_;
}

void DataFlowGraph::buildEdges(const arch::MachineConfig& config) {
  const std::vector<Instruction>& insns = *insns_;
  // Per-register bookkeeping since block entry.
  std::unordered_map<Reg, std::uint32_t> lastDef;       // node index
  std::unordered_map<Reg, std::uint32_t> defVersion;    // bumped per def
  std::unordered_map<Reg, std::vector<std::uint32_t>> usesSinceDef;
  std::vector<MemRef> memRefs;
  std::vector<std::uint32_t> calls;
  std::vector<std::uint32_t> checksSinceCall;

  auto latencyOf = [&](std::uint32_t node) {
    return config.latencyFor(insns[node].op);
  };

  // Most recent explicit trap-jump (split-check mode).  A branch is a code-
  // motion barrier in the paper's compiler: nothing after it in program
  // order may issue in or before its group, which is what makes dense
  // checking sequential (§IV-B2).  Each instruction depends on the nearest
  // preceding side exit; exits chain transitively.
  std::uint32_t lastSideExit = 0xffffffffu;

  for (std::uint32_t i = 0; i < insns.size(); ++i) {
    const Instruction& insn = insns[i];

    if (lastSideExit != 0xffffffffu) {
      addEdge(lastSideExit, i, DepKind::kBarrier, 1);
    }
    if (insn.op == Opcode::kTrapIf) {
      lastSideExit = i;
    }

    // RAW edges.
    for (const Reg& use : insn.uses) {
      const auto def = lastDef.find(use);
      if (def != lastDef.end()) {
        addEdge(def->second, i, DepKind::kData, latencyOf(def->second));
      }
      usesSinceDef[use].push_back(i);
    }

    // Memory ordering (with base+offset disambiguation).
    if (insn.isMemory()) {
      MemRef ref;
      ref.node = i;
      ref.isStore = insn.isStore();
      const Reg base = insn.uses[0];
      ref.base = BaseKey{base, defVersion.contains(base) ? defVersion[base]
                                                         : 0};
      ref.offset = insn.imm;
      ref.width = accessWidth(insn.op);
      for (const MemRef& prior : memRefs) {
        if (!prior.isStore && !ref.isStore) {
          continue;  // load-load: never ordered
        }
        if (!mayAlias(prior, ref)) {
          continue;
        }
        // store->load and store->store: the write must be visible (1 cycle);
        // load->store: same-cycle issue is fine (read-at-issue).
        const std::uint32_t latency = prior.isStore ? 1 : 0;
        const DepKind kind = DepKind::kMemory;
        if (latency == 0) {
          addEdge(prior.node, i, kind, 0);
        } else {
          addEdge(prior.node, i, kind, latency);
        }
      }
      memRefs.push_back(ref);
      // Calls are barriers for memory.
      if (!calls.empty()) {
        addEdge(calls.back(), i, DepKind::kBarrier,
                config.latencies.call);
      }
    }

    if (insn.isCall()) {
      for (const MemRef& prior : memRefs) {
        if (prior.node != i) {
          addEdge(prior.node, i, DepKind::kBarrier, 1);
        }
      }
      if (!calls.empty()) {
        addEdge(calls.back(), i, DepKind::kBarrier, config.latencies.call);
      }
      calls.push_back(i);
    }

    // CHECK guards: the check's id is linked from the guarded instruction
    // side via `guard`, so when we *are* the guarded instruction we find the
    // preceding checks that name us.
    if (insn.isCheck() && insn.guard != ir::kInvalidInsn) {
      for (std::uint32_t j = i + 1; j < insns.size(); ++j) {
        if (insns[j].id == insn.guard) {
          addEdge(i, j, DepKind::kGuard, latencyOf(i));
          break;
        }
      }
    }

    // WAR / WAW edges for defs.
    for (const Reg& def : insn.defs) {
      const auto prevDef = lastDef.find(def);
      if (prevDef != lastDef.end() && prevDef->second != i) {
        // Keep write times ordered: start_i + lat_i > start_prev + lat_prev.
        const std::int64_t needed =
            static_cast<std::int64_t>(latencyOf(prevDef->second)) -
            static_cast<std::int64_t>(latencyOf(i)) + 1;
        addEdge(prevDef->second, i, DepKind::kOutput,
                static_cast<std::uint32_t>(std::max<std::int64_t>(0, needed)));
      }
      auto& uses = usesSinceDef[def];
      for (std::uint32_t use : uses) {
        if (use != i) {
          addEdge(use, i, DepKind::kAnti, 0);
        }
      }
      uses.clear();
      lastDef[def] = i;
      ++defVersion[def];
    }
  }
}

void DataFlowGraph::computeHeights() {
  // Nodes are in topological (program) order; sweep backwards.
  for (std::uint32_t i = static_cast<std::uint32_t>(insns_->size()); i > 0;) {
    --i;
    std::uint32_t height = 1;  // occupies at least its own issue cycle
    for (const Edge& edge : succs_[i]) {
      height = std::max(height, edge.latency + heights_[edge.to]);
    }
    heights_[i] = height;
  }
}

std::uint32_t DataFlowGraph::criticalPathLength() const {
  std::uint32_t length = 0;
  for (std::uint32_t height : heights_) {
    length = std::max(length, height);
  }
  return length;
}

std::vector<std::uint32_t> DataFlowGraph::priorityOrder() const {
  std::vector<std::uint32_t> order(size());
  for (std::uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return heights_[a] > heights_[b];
                   });
  return order;
}

}  // namespace casted::dfg
